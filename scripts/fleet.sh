#!/usr/bin/env sh
# EXP-FLEET gate: the remote shard fleet under real process death.
#
# Starts four benes-serve daemons on ephemeral loopback ports — three
# fleet primaries plus one spare for shard 1 — then runs
# `benes-cli fleet soak` against them with shards 1 and 2 declared
# killable. Once the soak prints its second `fleet-round` line, this
# script `kill -9`s the primaries of shards 1 and 2 mid-soak:
#
#   * shard 1 has a spare, so its rounds must stay fully verified
#     through failover (nonzero benes_fleet_failovers_total);
#   * shard 2 has no spare, so its rounds go degraded — and the soak
#     (exit code) enforces that degradation stayed element-exact:
#     zero contaminated units, zero recombine mismatches, and every
#     shard ledger conserving submitted = completed+failed+shed+canceled;
#   * the health gauge must show shard 2 red by the end.
#
# Afterwards the two surviving daemons take a clean `load_gen --fleet`
# benchmark run (every round must verify), optionally writing the
# EXP-FLEET JSON.
#
# Env:
#   FLEET_ROUNDS   soak rounds                       (default 8)
#   FLEET_N        permutation order per round, 2^n  (default 8)
#   FLEET_PAUSE_MS pause between rounds              (default 150)
#   FLEET_BENCH    bench rounds on the survivors     (default 40)
#   FLEET_OUT      optional BENCH_FLEET.json path    (default: none)
#
# tier-1 runs this as-is; the committed BENCH_FLEET.json at the repo
# root comes from a run with FLEET_BENCH=200.
set -eu

cd "$(dirname "$0")/.."

ROUNDS="${FLEET_ROUNDS:-8}"
N="${FLEET_N:-8}"
PAUSE="${FLEET_PAUSE_MS:-150}"
BENCH="${FLEET_BENCH:-40}"
OUT="${FLEET_OUT:-}"

cargo build --release --offline -p benes-serve -p benes-cli -p benes-bench

# Four daemons: primaries for shards 0..2, plus shard 1's spare.
LOGDIR=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$LOGDIR"
}
trap cleanup EXIT

spawn() {
    ./target/release/benes-serve --addr 127.0.0.1:0 --workers 2 \
        > "$LOGDIR/$1.log" 2>&1 &
    PIDS="$PIDS $!"
    eval "$2=$!"
}
spawn p0 PID0
spawn p1 PID1
spawn p2 PID2
spawn spare PIDS1
addr_of() {
    _a=""
    for _ in $(seq 1 100); do
        _a=$(sed -n 's/^listening on //p' "$LOGDIR/$1.log")
        [ -n "$_a" ] && break
        sleep 0.1
    done
    if [ -z "$_a" ]; then
        echo "fleet.sh: daemon $1 did not start:" >&2
        cat "$LOGDIR/$1.log" >&2
        exit 1
    fi
    printf '%s' "$_a"
}
A0=$(addr_of p0); A1=$(addr_of p1); A2=$(addr_of p2); ASPARE=$(addr_of spare)

# The soak, streamed to a log so we can time the kill off its rounds.
SOAK="$LOGDIR/soak.log"
./target/release/benes-cli fleet soak --addrs "$A0,$A1,$A2" \
    --spare "1=$ASPARE" --killable 1,2 --rounds "$ROUNDS" --n "$N" \
    --pause-ms "$PAUSE" > "$SOAK" 2>&1 &
CLI=$!

# Chaos: once round 2 is on the wire, hard-kill shards 1 and 2.
KILLED=0
for _ in $(seq 1 200); do
    if grep -q '^fleet-round 1:' "$SOAK"; then
        kill -9 "$PID1" "$PID2"
        KILLED=1
        break
    fi
    kill -0 "$CLI" 2>/dev/null || break
    sleep 0.1
done
if [ "$KILLED" != "1" ]; then
    echo "fleet.sh: soak never reached round 2; log:" >&2
    cat "$SOAK" >&2
    exit 1
fi

# The soak's own exit code carries the verdict: degraded-not-
# contaminated, per-shard conservation, every round accounted for.
if ! wait "$CLI"; then
    echo "fleet.sh: fleet soak reported UNHEALTHY:" >&2
    cat "$SOAK" >&2
    exit 1
fi
cat "$SOAK"

require() {
    if ! grep -q "$1" "$SOAK"; then
        echo "fleet.sh: missing '$1' in soak output" >&2
        exit 1
    fi
}
require '^fleet-soak: HEALTHY$'
require '^fleet-soak: contaminated_units=0 '
# The kill must actually have been felt: degraded rounds on the
# spare-less shard, failovers on the spared one, and a red gauge.
if grep -q '^fleet-soak: rounds=.* degraded=0 ' "$SOAK"; then
    echo "fleet.sh: kill -9 landed but no round degraded" >&2
    exit 1
fi
if grep -q '^benes_fleet_failovers_total 0$' "$SOAK"; then
    echo "fleet.sh: spare never took over (failovers = 0)" >&2
    exit 1
fi
require '^benes_fleet_shard_healthy{shard="2",kind="remote"} 0$'

# Clean-fleet benchmark on the two survivors (shard 0 + the ex-spare):
# load_gen exits nonzero unless every round verifies and every backend
# ledger conserves.
./target/release/load_gen --fleet "$A0,$ASPARE" --requests "$BENCH" \
    --order 6 ${OUT:+--json "$OUT"}

echo "fleet.sh: OK — $ROUNDS soak rounds survived kill -9 x2 (degraded, not contaminated), $BENCH clean bench rounds"
