#!/usr/bin/env sh
# EXP-SHARD soak runner: the deterministic shard-isolation gate. Routes
# a seeded stream of giant permutations through the benes-shard
# coordinator (three-stage block decomposition scattered across a fleet
# of engine shards), injects an always-fail failpoint into exactly one
# shard for the middle round, and exits nonzero when any fleet
# invariant is violated:
#   - cross-shard contamination: a routing unit failing on any shard
#     other than the faulted one,
#   - a conservation violation: some shard's request ledger not
#     balancing (completed + failed + shed + canceled == submitted),
#   - a clean round whose recombination is not bitwise-verified,
#   - a fault round that does not actually degrade (failpoint inert).
#
# Env:
#   SHARD_SEED   stream/failpoint seed          (default 1980)
#   SHARD_N      permutation index width 2^n    (default 12)
#   SHARD_PERMS  permutations in the stream     (default 6)
#   SHARD_COUNT  engine shards in the fleet     (default 4)
#
# tier-1 runs this with the defaults.
set -eu

cd "$(dirname "$0")/.."

SEED="${SHARD_SEED:-1980}"
N="${SHARD_N:-12}"
PERMS="${SHARD_PERMS:-6}"
SHARDS="${SHARD_COUNT:-4}"

cargo run --release --offline -p benes-cli --bin benes-cli -- \
    shard soak "$SEED" "$N" "$PERMS" "$SHARDS"
