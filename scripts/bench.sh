#!/usr/bin/env sh
# EXP-ENGINE benchmark runner: drives the batched routing engine over
# the reproducible mixed workload grid (n x workers x open/closed load
# model) and writes the machine-readable results as schema-stable JSON
# (experiment, requests, seed, runs[] with per-run throughput, latency,
# queue-wait and service-time quantiles), plus the human-readable table
# on stdout. Also runs EXP-WORD, the scalar-vs-word kernel microbench.
#
# Both runs carry smoke assertions:
#   * engine: closed-loop throughput at n=8 must scale from 1 to 8
#     workers by BENCH_SCALE_FACTOR ("auto" keys the factor to the
#     machine's available cores; a single-core runner only asserts no
#     regression). The open model paces arrivals at 70% of the
#     measured closed capacity across >= 2 submitter threads, so its
#     latency quantiles are end-to-end under load, not backlog depth.
#   * word kernel: single-thread routing at n=8 must beat the scalar
#     kernel by BENCH_WORD_SPEEDUP (default 5; the committed
#     EXPERIMENTS.md numbers are well above it — the default leaves
#     headroom for noisy CI boxes).
#
# Env:
#   BENCH_REQUESTS      requests per grid cell      (default 4000)
#   BENCH_OUT           JSON output path            (default BENCH_ENGINE.json)
#   BENCH_SCALE_FACTOR  worker-scaling assertion    (default auto)
#   BENCH_WORD_SPEEDUP  word-kernel assertion       (default 5)
#   BENCH_WORD_PERMS    perms per kernel grid cell  (default 2000)
#
# tier-1 runs this with BENCH_REQUESTS=200 BENCH_OUT=target/... as a
# smoke test; the committed BENCH_ENGINE.json at the repo root comes
# from a default run.
set -eu

cd "$(dirname "$0")/.."

REQUESTS="${BENCH_REQUESTS:-4000}"
OUT="${BENCH_OUT:-BENCH_ENGINE.json}"
SCALE="${BENCH_SCALE_FACTOR:-auto}"
SPEEDUP="${BENCH_WORD_SPEEDUP:-5}"
WORD_PERMS="${BENCH_WORD_PERMS:-2000}"

cargo run --release --offline -p benes-bench --bin engine_throughput -- \
    --requests "$REQUESTS" --json "$OUT" --assert-scaling "$SCALE"

cargo run --release --offline -p benes-bench --bin word_kernel -- \
    --perms "$WORD_PERMS" --assert-speedup "$SPEEDUP"
