#!/usr/bin/env sh
# EXP-ENGINE benchmark runner: drives the batched routing engine over
# the reproducible mixed workload grid (n x workers) and writes the
# machine-readable results as schema-stable JSON (experiment, requests,
# seed, runs[] with per-run throughput and latency quantiles), plus the
# human-readable table on stdout.
#
# Env:
#   BENCH_REQUESTS  requests per grid cell   (default 4000)
#   BENCH_OUT       JSON output path         (default BENCH_ENGINE.json)
#
# tier-1 runs this with BENCH_REQUESTS=200 BENCH_OUT=target/... as a
# smoke test; the committed BENCH_ENGINE.json at the repo root comes
# from a default run.
set -eu

cd "$(dirname "$0")/.."

REQUESTS="${BENCH_REQUESTS:-4000}"
OUT="${BENCH_OUT:-BENCH_ENGINE.json}"

cargo run --release --offline -p benes-bench --bin engine_throughput -- \
    --requests "$REQUESTS" --json "$OUT"
