#!/usr/bin/env sh
# EXP-SERVE gate: end-to-end smoke of the benes-serve wire service.
#
# Starts the daemon on an ephemeral loopback port (parsing the
# "listening on HOST:PORT" line), drives the load_gen fleet against it
# — including one chaos connection hard-closed mid-flight — and then:
#
#   * load_gen itself exits nonzero unless every per-tenant ledger
#     conserves (submitted = completed + failed + shed + canceled) and
#     the steady tenants' server-side completions match the client-side
#     ok replies;
#   * this script additionally asserts ZERO wire-protocol errors via
#     the daemon's metrics exposition, then drains the server over the
#     wire (a Drain frame) and requires a clean exit.
#
# Env:
#   SERVE_REQUESTS  requests through the steady conns   (default 20000)
#   SERVE_CONNS     total connections, incl. chaos      (default 3)
#   SERVE_KILL      chaos connections killed mid-flight (default 1)
#   SERVE_WINDOW    pipelining window per connection    (default 256)
#   SERVE_OUT       optional BENCH_SERVE.json path      (default: none)
#
# tier-1 runs this with SERVE_REQUESTS=2000 as a smoke test; the
# committed BENCH_SERVE.json at the repo root comes from a default run
# with SERVE_REQUESTS=50000.
set -eu

cd "$(dirname "$0")/.."

REQUESTS="${SERVE_REQUESTS:-20000}"
CONNS="${SERVE_CONNS:-3}"
KILL="${SERVE_KILL:-1}"
WINDOW="${SERVE_WINDOW:-256}"
OUT="${SERVE_OUT:-}"

cargo build --release --offline -p benes-serve -p benes-bench

LOG=$(mktemp)
./target/release/benes-serve --addr 127.0.0.1:0 --allow-drain --workers 2 \
    --metrics-addr 127.0.0.1:0 > "$LOG" 2>&1 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true; rm -f "$LOG"' EXIT

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$LOG")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve.sh: server did not start:" >&2
    cat "$LOG" >&2
    exit 1
fi
MADDR=$(sed -n 's|^metrics on http://||p' "$LOG" | sed 's|/metrics$||')

# The load itself: conservation and ledger/client reconciliation are
# asserted inside load_gen (nonzero exit on violation). No --drain yet:
# the metrics endpoint must still be up for the protocol-error check.
./target/release/load_gen --addr "$ADDR" --conns "$CONNS" --tenants 2 \
    --requests "$REQUESTS" --window "$WINDOW" --kill-conns "$KILL" \
    ${OUT:+--json "$OUT"}

ERRS=$(curl -s --max-time 5 "http://$MADDR/metrics" \
    | sed -n 's/^benes_serve_protocol_errors_total //p')
if [ "$ERRS" != "0" ]; then
    echo "serve.sh: expected zero wire-protocol errors, got '$ERRS'" >&2
    exit 1
fi

# Drain over the wire (one extra single-request tenant ride-along) and
# require the daemon to exit cleanly.
./target/release/load_gen --addr "$ADDR" --conns 1 --tenants 1 \
    --requests 1 --window 1 --drain
wait "$SRV"
trap 'rm -f "$LOG"' EXIT
echo "serve.sh: OK — $REQUESTS requests, $KILL chaos conns, 0 protocol errors, drained clean"
