#!/usr/bin/env sh
# EXP-CHAOS runner: the deterministic chaos soak for the engine's
# overload-protection layer. Drives the seeded schedule (traffic, a
# forced-failure burst, recovery, a real stuck-switch burst, heal,
# drain) and exits nonzero when any invariant is violated —
# conservation (completed + failed + shed + canceled == submitted),
# hung waiters, or a breaker that fails to open/re-close.
#
# Env:
#   CHAOS_SEED      schedule seed                   (default 3962 — the
#                   tier-1 seed, pinned by crates/engine/tests/chaos.rs)
#   CHAOS_REQUESTS  base traffic per schedule phase (default 200)
#
# tier-1 runs this as a smoke test with the defaults.
set -eu

cd "$(dirname "$0")/.."

SEED="${CHAOS_SEED:-3962}"
REQUESTS="${CHAOS_REQUESTS:-200}"

cargo run --release --offline -p benes-bench --bin chaos_soak -- \
    --seed "$SEED" --requests "$REQUESTS"
