#!/usr/bin/env sh
# Tier-1 verification: the canonical must-stay-green gate for every PR.
# The build environment is fully offline; dependencies resolve to the
# vendored stubs via [patch.crates-io], and Cargo.lock is committed.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings
sh scripts/analyze.sh
sh scripts/race.sh
BENCH_REQUESTS=200 BENCH_OUT=target/BENCH_ENGINE.json sh scripts/bench.sh
CHAOS_REQUESTS=200 sh scripts/chaos.sh
sh scripts/shard.sh
SERVE_REQUESTS=2000 sh scripts/serve.sh
sh scripts/fleet.sh
