#!/usr/bin/env sh
# Static analysis gate: the workspace invariant linter plus the domain
# self-check battery, via `benes-cli analyze workspace`. Exits nonzero
# on any finding. Writes machine-readable findings (JSON lines) to
# target/analyze.jsonl for tooling; prints the human report to stdout.
set -eu

cd "$(dirname "$0")/.."

mkdir -p target

# JSON-lines pass. Findings are emitted on stderr (that is what makes
# the exit code nonzero); keep only the JSON records for tooling.
if ! cargo run -q --offline -p benes-cli -- analyze workspace . --json \
    2> target/analyze.raw; then
    grep '^{' target/analyze.raw > target/analyze.jsonl || true
    rm -f target/analyze.raw
    echo "analyze: findings (see target/analyze.jsonl)" >&2
    cat target/analyze.jsonl >&2
    exit 1
fi
: > target/analyze.jsonl
rm -f target/analyze.raw

# Human-readable pass for the log.
cargo run -q --offline -p benes-cli -- analyze workspace .
