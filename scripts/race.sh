#!/usr/bin/env sh
# Concurrency-proof gate: pillar 3 of the analyzer.
#
#  * `analyze concurrency` — exhaustive model check of the sharded
#    submission-queue protocol (request conservation, deadlock freedom,
#    no lost wakeups) under per-push, coalesced-burst and bounded
#    abstractions, plus the seeded-mutant self-test (the reseeded PR 7
#    lost-wakeup bug and the pre-PR 7 single-global-queue design must
#    both be flagged with replayable traces).
#  * `analyze word` — symbolic equivalence proof of the word-parallel
#    routing kernels (including fault overlays) against the scalar
#    oracle for every n <= 8, zero sampled inputs.
#
# Exits nonzero on any counterexample, any unflagged mutant, or budget
# exhaustion (an exhausted budget proves nothing). Writes JSON-lines
# findings to target/race.jsonl for tooling; prints the human reports.
set -eu

cd "$(dirname "$0")/.."

# State-budget cap for the model checker; the shipped protocol explores
# ~15k states, so the default leaves two orders of magnitude of slack.
RACE_BUDGET="${RACE_BUDGET:-4000000}"

mkdir -p target
: > target/race.jsonl

run_gate() {
    # JSON-lines pass (findings land on stderr and flip the exit code),
    # then the human pass for the log.
    if ! cargo run -q --offline -p benes-cli -- "$@" --json 2> target/race.raw; then
        grep '^{' target/race.raw >> target/race.jsonl || true
        rm -f target/race.raw
        echo "race: findings from \`$*\` (see target/race.jsonl)" >&2
        cat target/race.jsonl >&2
        exit 1
    fi
    rm -f target/race.raw
    cargo run -q --offline -p benes-cli -- "$@"
}

run_gate analyze concurrency --budget "$RACE_BUDGET"
run_gate analyze word 8
