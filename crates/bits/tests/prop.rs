//! Property-based tests for the bit-field primitives.

use benes_bits::{
    bit, bit_slice, deinterleave, flip_bit, interleave, mask, reverse_bits, rotate_left,
    rotate_right, shuffle, unshuffle, with_bit,
};
use proptest::prelude::*;

/// A width in `1..=16` and a value fitting in that many bits.
fn value_with_width() -> impl Strategy<Value = (u64, u32)> {
    (1u32..=16).prop_flat_map(|w| (0..(1u64 << w), Just(w)))
}

proptest! {
    #[test]
    fn reconstruct_from_bits((v, w) in value_with_width()) {
        let rebuilt: u64 = (0..w).map(|j| bit(v, j) << j).sum();
        prop_assert_eq!(rebuilt, v);
    }

    #[test]
    fn bit_slice_concatenation((v, w) in value_with_width(), split in 0u32..16) {
        prop_assume!(split < w);
        // v = (v)_{w-1..split+?}; splitting at any point reassembles v.
        let high = if split < w - 1 { bit_slice(v, w - 1, split + 1) } else { 0 };
        let low = bit_slice(v, split, 0);
        prop_assert_eq!((high << (split + 1)) | low, v);
    }

    #[test]
    fn with_bit_then_read((v, w) in value_with_width(), j in 0u32..16, b in 0u64..2) {
        prop_assume!(j < w);
        let u = with_bit(v, j, b);
        prop_assert_eq!(bit(u, j), b);
        // All other bits untouched.
        for k in 0..w {
            if k != j {
                prop_assert_eq!(bit(u, k), bit(v, k));
            }
        }
    }

    #[test]
    fn flip_bit_flips_exactly_one((v, w) in value_with_width(), b in 0u32..16) {
        prop_assume!(b < w);
        let u = flip_bit(v, b);
        prop_assert_eq!(u ^ v, 1 << b);
    }

    #[test]
    fn reverse_involution((v, w) in value_with_width()) {
        prop_assert_eq!(reverse_bits(reverse_bits(v, w), w), v);
    }

    #[test]
    fn reverse_moves_bits((v, w) in value_with_width()) {
        for j in 0..w {
            prop_assert_eq!(bit(reverse_bits(v, w), w - 1 - j), bit(v, j));
        }
    }

    #[test]
    fn shuffle_unshuffle_inverse((v, w) in value_with_width()) {
        prop_assert_eq!(unshuffle(shuffle(v, w), w), v);
        prop_assert_eq!(shuffle(unshuffle(v, w), w), v);
    }

    #[test]
    fn shuffle_is_rotate_left_one((v, w) in value_with_width()) {
        prop_assert_eq!(shuffle(v, w), rotate_left(v, w, 1));
    }

    #[test]
    fn rotate_composition((v, w) in value_with_width(), a in 0u32..32, b in 0u32..32) {
        prop_assert_eq!(
            rotate_left(rotate_left(v, w, a), w, b),
            rotate_left(v, w, (a + b) % w)
        );
        prop_assert_eq!(rotate_right(rotate_left(v, w, a), w, a), v);
    }

    #[test]
    fn rotate_preserves_popcount((v, w) in value_with_width(), a in 0u32..32) {
        prop_assert_eq!(rotate_left(v, w, a).count_ones(), v.count_ones());
    }

    #[test]
    fn interleave_roundtrip(half in 1u32..8, raw in any::<u64>()) {
        let v = raw & mask(2 * half);
        prop_assert_eq!(deinterleave(interleave(v, half), half), v);
    }

    #[test]
    fn interleave_bit_positions(half in 1u32..8, raw in any::<u64>()) {
        let v = raw & mask(2 * half);
        let out = interleave(v, half);
        for b in 0..half {
            prop_assert_eq!(bit(out, 2 * b), bit(v, b), "low-half bit {}", b);
            prop_assert_eq!(bit(out, 2 * b + 1), bit(v, half + b), "high-half bit {}", b);
        }
    }
}
