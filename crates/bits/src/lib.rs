//! Bit-field notation and manipulation utilities for the self-routing Benes
//! network reproduction.
//!
//! The paper (Nassimi & Sahni, *A Self-Routing Benes Network and Parallel
//! Permutation Algorithms*, 1980) works entirely in terms of the binary
//! representation of terminal and processing-element indices. Section II
//! introduces the notation
//!
//! * `(i)_j` — the *j*-th bit of `i` (bit 0 is least significant), and
//! * `(i)_{j..k}` with `j ≥ k` — the integer whose binary representation is
//!   the bit-slice `(i)_j (i)_{j-1} … (i)_k`.
//!
//! This crate provides those primitives ([`bit`], [`bit_slice`]) plus the
//! handful of derived operations the paper relies on: the *cube neighbour*
//! `i^{(b)}` ([`flip_bit`]), bit reversal within a fixed width
//! ([`reverse_bits`]), the perfect shuffle / unshuffle as bit rotations
//! ([`shuffle`], [`unshuffle`]), and bit interleaving for the
//! "shuffled row major" and "bit shuffle" permutations of Table I
//! ([`interleave`], [`deinterleave`]).
//!
//! All functions operate on `u64` values interpreted as `width`-bit unsigned
//! integers, where `width` is at most [`MAX_WIDTH`] (63). Widths are validated
//! eagerly (the crate is the foundation of everything above it, so silent
//! wrap-around here would be very hard to debug later).
//!
//! # Examples
//!
//! ```
//! use benes_bits::{bit, bit_slice, reverse_bits};
//!
//! let i = 0b101101;
//! assert_eq!(bit(i, 0), 1);
//! assert_eq!(bit(i, 1), 0);
//! // The paper's example: i = 101101 ⇒ (i)_{4..1} = 0110.
//! assert_eq!(bit_slice(i, 4, 1), 0b0110);
//! // Bit reversal within 6 bits.
//! assert_eq!(reverse_bits(i, 6), 0b101101);
//! assert_eq!(reverse_bits(0b100110, 6), 0b011001);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The largest supported bit width for the fixed-width operations.
///
/// Values are held in `u64`; one bit of headroom is kept so that
/// `1 << width` (the modulus `N = 2^n`) never overflows.
pub const MAX_WIDTH: u32 = 63;

/// Returns bit `j` of `i` — the paper's `(i)_j` — as `0` or `1`.
///
/// Bit 0 is the least-significant bit.
///
/// # Panics
///
/// Panics if `j > 63`.
///
/// # Examples
///
/// ```
/// use benes_bits::bit;
/// assert_eq!(bit(0b100, 2), 1);
/// assert_eq!(bit(0b100, 1), 0);
/// ```
#[inline]
#[must_use]
pub fn bit(i: u64, j: u32) -> u64 {
    assert!(j <= MAX_WIDTH, "bit index {j} out of range (max {MAX_WIDTH})");
    (i >> j) & 1
}

/// Returns the bit-slice `(i)_{j..k}` (inclusive on both ends, `j ≥ k`).
///
/// The result is the integer whose binary representation is
/// `(i)_j (i)_{j-1} … (i)_k`; equivalently `(i >> k)` masked to `j - k + 1`
/// bits. The paper's example: for `i = 101101₂`, `(i)_{4..1} = 0110₂`.
///
/// # Panics
///
/// Panics if `j < k` or `j > 63`.
///
/// # Examples
///
/// ```
/// use benes_bits::bit_slice;
/// assert_eq!(bit_slice(0b101101, 4, 1), 0b0110);
/// assert_eq!(bit_slice(0b101101, 3, 3), 1);
/// ```
#[inline]
#[must_use]
pub fn bit_slice(i: u64, j: u32, k: u32) -> u64 {
    assert!(j >= k, "bit_slice requires j >= k (got j={j}, k={k})");
    assert!(j <= MAX_WIDTH, "bit index {j} out of range (max {MAX_WIDTH})");
    (i >> k) & mask(j - k + 1)
}

/// Returns `i` with bit `j` forced to `v` (`v` must be 0 or 1).
///
/// # Panics
///
/// Panics if `j > 63` or `v > 1`.
///
/// # Examples
///
/// ```
/// use benes_bits::with_bit;
/// assert_eq!(with_bit(0b100, 0, 1), 0b101);
/// assert_eq!(with_bit(0b101, 2, 0), 0b001);
/// ```
#[inline]
#[must_use]
pub fn with_bit(i: u64, j: u32, v: u64) -> u64 {
    assert!(j <= MAX_WIDTH, "bit index {j} out of range (max {MAX_WIDTH})");
    assert!(v <= 1, "bit value must be 0 or 1 (got {v})");
    (i & !(1 << j)) | (v << j)
}

/// Returns the cube neighbour `i^{(b)}`: `i` with bit `b` complemented.
///
/// This is the paper's `i_(b)` notation — the index whose binary
/// representation differs from that of `i` only in bit `b`. In the cube
/// connected computer, `PE(i)` is directly connected to `PE(i^{(b)})` for
/// every `b < n`.
///
/// # Panics
///
/// Panics if `b > 63`.
///
/// # Examples
///
/// ```
/// use benes_bits::flip_bit;
/// assert_eq!(flip_bit(0b000, 2), 0b100);
/// assert_eq!(flip_bit(0b111, 0), 0b110);
/// ```
#[inline]
#[must_use]
pub fn flip_bit(i: u64, b: u32) -> u64 {
    assert!(b <= MAX_WIDTH, "bit index {b} out of range (max {MAX_WIDTH})");
    i ^ (1 << b)
}

/// Returns a mask of `width` low one-bits.
///
/// # Panics
///
/// Panics if `width > 63`.
///
/// # Examples
///
/// ```
/// use benes_bits::mask;
/// assert_eq!(mask(0), 0);
/// assert_eq!(mask(4), 0b1111);
/// ```
#[inline]
#[must_use]
pub fn mask(width: u32) -> u64 {
    assert!(width <= MAX_WIDTH, "width {width} out of range (max {MAX_WIDTH})");
    (1u64 << width) - 1
}

/// Checks that `i` fits in `width` bits.
///
/// # Examples
///
/// ```
/// use benes_bits::fits;
/// assert!(fits(0b111, 3));
/// assert!(!fits(0b1000, 3));
/// ```
#[inline]
#[must_use]
pub fn fits(i: u64, width: u32) -> bool {
    width > MAX_WIDTH || i <= mask(width)
}

/// Reverses the low `width` bits of `i` (the paper's `i^R`).
///
/// Bits at positions `width..64` must be zero. Bit reversal is the
/// permutation of Fig. 4 of the paper and the `A = (0, 1, …, n−1)` entry of
/// Table I.
///
/// # Panics
///
/// Panics if `width > 63` or `i` does not fit in `width` bits.
///
/// # Examples
///
/// ```
/// use benes_bits::reverse_bits;
/// assert_eq!(reverse_bits(0b110, 3), 0b011);
/// assert_eq!(reverse_bits(0b001, 3), 0b100);
/// assert_eq!(reverse_bits(0, 0), 0); // width 0 is the empty reversal
/// ```
#[inline]
#[must_use]
pub fn reverse_bits(i: u64, width: u32) -> u64 {
    assert!(fits(i, width), "value {i:#b} does not fit in {width} bits");
    if width == 0 {
        return 0;
    }
    i.reverse_bits() >> (64 - width)
}

/// The perfect shuffle of an index: a cyclic *left* rotation of the low
/// `width` bits.
///
/// `shuffle(i, n)` maps `i_{n-1} i_{n-2} … i_0` to `i_{n-2} … i_0 i_{n-1}`.
/// In a perfect shuffle computer, `PE(i)` has a "shuffle" link to
/// `PE(shuffle(i, n))`. As a data permutation this is Table I's
/// "Perfect Shuffle", `A = (0, n−1, n−2, …, 1)`.
///
/// # Panics
///
/// Panics if `width == 0`, `width > 63`, or `i` does not fit in `width` bits.
///
/// # Examples
///
/// ```
/// use benes_bits::shuffle;
/// assert_eq!(shuffle(0b100, 3), 0b001);
/// assert_eq!(shuffle(0b011, 3), 0b110);
/// ```
#[inline]
#[must_use]
pub fn shuffle(i: u64, width: u32) -> u64 {
    assert!(width > 0, "shuffle requires a positive width");
    assert!(fits(i, width), "value {i:#b} does not fit in {width} bits");
    ((i << 1) | (i >> (width - 1))) & mask(width)
}

/// The inverse perfect shuffle (unshuffle): a cyclic *right* rotation of the
/// low `width` bits.
///
/// Inverse of [`shuffle`]. As a data permutation this is Table I's
/// "Unshuffle", `A = (n−2, n−3, …, 0, n−1)`.
///
/// # Panics
///
/// Panics if `width == 0`, `width > 63`, or `i` does not fit in `width` bits.
///
/// # Examples
///
/// ```
/// use benes_bits::{shuffle, unshuffle};
/// assert_eq!(unshuffle(0b001, 3), 0b100);
/// assert_eq!(unshuffle(shuffle(0b101, 3), 3), 0b101);
/// ```
#[inline]
#[must_use]
pub fn unshuffle(i: u64, width: u32) -> u64 {
    assert!(width > 0, "unshuffle requires a positive width");
    assert!(fits(i, width), "value {i:#b} does not fit in {width} bits");
    ((i >> 1) | ((i & 1) << (width - 1))) & mask(width)
}

/// Rotates the low `width` bits of `i` left by `amount` positions.
///
/// `rotate_left(i, n, 1)` equals [`shuffle(i, n)`](shuffle).
///
/// # Panics
///
/// Panics if `width == 0`, `width > 63`, or `i` does not fit in `width` bits.
///
/// # Examples
///
/// ```
/// use benes_bits::rotate_left;
/// assert_eq!(rotate_left(0b1000, 4, 2), 0b0010);
/// assert_eq!(rotate_left(0b1000, 4, 4), 0b1000);
/// ```
#[inline]
#[must_use]
pub fn rotate_left(i: u64, width: u32, amount: u32) -> u64 {
    assert!(width > 0, "rotate_left requires a positive width");
    assert!(fits(i, width), "value {i:#b} does not fit in {width} bits");
    let r = amount % width;
    if r == 0 {
        i
    } else {
        ((i << r) | (i >> (width - r))) & mask(width)
    }
}

/// Rotates the low `width` bits of `i` right by `amount` positions.
///
/// # Panics
///
/// Panics if `width == 0`, `width > 63`, or `i` does not fit in `width` bits.
///
/// # Examples
///
/// ```
/// use benes_bits::rotate_right;
/// assert_eq!(rotate_right(0b0010, 4, 2), 0b1000);
/// ```
#[inline]
#[must_use]
pub fn rotate_right(i: u64, width: u32, amount: u32) -> u64 {
    assert!(width > 0, "rotate_right requires a positive width");
    let r = amount % width;
    rotate_left(i, width, width - r)
}

/// Interleaves the two halves of a `2·half`-bit index (Table I's
/// "Shuffled Row Major" inverse building block).
///
/// Writing `i = x_{h-1} … x_0 y_{h-1} … y_0` (high half `x`, low half `y`),
/// the result is `x_{h-1} y_{h-1} … x_0 y_0`.
///
/// # Panics
///
/// Panics if `half == 0`, `2·half > 63`, or `i` does not fit in `2·half`
/// bits.
///
/// # Examples
///
/// ```
/// use benes_bits::interleave;
/// // x = 10, y = 11 → 1101
/// assert_eq!(interleave(0b1011, 2), 0b1101);
/// ```
#[inline]
#[must_use]
pub fn interleave(i: u64, half: u32) -> u64 {
    assert!(half > 0, "interleave requires a positive half-width");
    let width = 2 * half;
    assert!(width <= MAX_WIDTH, "width {width} out of range (max {MAX_WIDTH})");
    assert!(fits(i, width), "value {i:#b} does not fit in {width} bits");
    let x = i >> half;
    let y = i & mask(half);
    let mut out = 0u64;
    for b in 0..half {
        out |= bit(y, b) << (2 * b);
        out |= bit(x, b) << (2 * b + 1);
    }
    out
}

/// Inverse of [`interleave`]: gathers even bits into the low half and odd
/// bits into the high half.
///
/// # Panics
///
/// Panics if `half == 0`, `2·half > 63`, or `i` does not fit in `2·half`
/// bits.
///
/// # Examples
///
/// ```
/// use benes_bits::{deinterleave, interleave};
/// assert_eq!(deinterleave(interleave(0b1011, 2), 2), 0b1011);
/// ```
#[inline]
#[must_use]
pub fn deinterleave(i: u64, half: u32) -> u64 {
    assert!(half > 0, "deinterleave requires a positive half-width");
    let width = 2 * half;
    assert!(width <= MAX_WIDTH, "width {width} out of range (max {MAX_WIDTH})");
    assert!(fits(i, width), "value {i:#b} does not fit in {width} bits");
    let mut x = 0u64;
    let mut y = 0u64;
    for b in 0..half {
        y |= bit(i, 2 * b) << b;
        x |= bit(i, 2 * b + 1) << b;
    }
    (x << half) | y
}

/// Mask of the 64 word positions whose index has bit `b` clear.
///
/// These are the classic bit-slicing "magic masks": `delta_mask(0)` is
/// `0x5555…`, `delta_mask(1)` is `0x3333…`, up to `delta_mask(5)` which
/// selects the low 32-bit half. In a bit-sliced Benes column, position `p`
/// pairs with position `p + 2^b` exactly when bit `b` of `p` is clear, so
/// `delta_mask(b)` selects the *lower* (upper-input) element of every pair at
/// distance `2^b` within one word.
///
/// # Panics
///
/// Panics if `b >= 6` (pairs at distance ≥ 64 span whole words and are not
/// expressible as an intra-word mask).
///
/// # Examples
///
/// ```
/// use benes_bits::delta_mask;
/// assert_eq!(delta_mask(0), 0x5555_5555_5555_5555);
/// assert_eq!(delta_mask(1), 0x3333_3333_3333_3333);
/// assert_eq!(delta_mask(5), 0x0000_0000_ffff_ffff);
/// ```
#[inline]
#[must_use]
pub fn delta_mask(b: u32) -> u64 {
    const MU: [u64; 6] = [
        0x5555_5555_5555_5555,
        0x3333_3333_3333_3333,
        0x0f0f_0f0f_0f0f_0f0f,
        0x00ff_00ff_00ff_00ff,
        0x0000_ffff_0000_ffff,
        0x0000_0000_ffff_ffff,
    ];
    assert!(b < 6, "delta_mask distance log2 {b} out of range (max 5)");
    MU[b as usize]
}

/// Exchanges the bits of `x` selected by `m` with the bits `shift` positions
/// above them (the classic delta-swap).
///
/// For every set bit `p` of `m`, bits `p` and `p + shift` of `x` are swapped;
/// all other bits are untouched. `m` and `m << shift` must not overlap and
/// `m << shift` must not overflow — i.e. each selected pair must be disjoint
/// and in range. This is the word-parallel primitive behind a column of 2×2
/// crossbar switches: with `m` the cross-mask over upper inputs and
/// `shift = 2^b` the pairing distance, one `delta_swap` applies a whole
/// column of switch settings at once (SNIPPETS.md snippet 1's `benes_step`
/// idiom).
///
/// # Panics
///
/// Panics if `shift` is 0 or ≥ 64, or if the selected pairs are not disjoint
/// (`m & (m << shift) != 0` after overflow check).
///
/// # Examples
///
/// ```
/// use benes_bits::{delta_mask, delta_swap};
/// // Swap bit 0 with bit 1 only: 0b10 → 0b01.
/// assert_eq!(delta_swap(0b10, 0b01, 1), 0b01);
/// // A full column at distance 1: every even/odd pair exchanges.
/// assert_eq!(delta_swap(0b0110, delta_mask(0) & 0b0101, 1), 0b1001);
/// ```
#[inline]
#[must_use]
pub fn delta_swap(x: u64, m: u64, shift: u32) -> u64 {
    assert!((1..64).contains(&shift), "delta_swap shift {shift} out of range (1..64)");
    debug_assert!((m << shift) & m == 0, "delta_swap mask selects overlapping pairs");
    let t = (x ^ (x >> shift)) & m;
    x ^ t ^ (t << shift)
}

/// The normative bit-by-bit specification of [`delta_swap`]: for every set
/// bit `p` of `m`, bits `p` and `p + shift` exchange; everything else is
/// untouched. `benes-analyze`'s symbolic word-kernel prover transcribes
/// exactly this positional shape over symbolic bits, so the equivalence
/// `delta_swap == delta_swap_spec` (tested here) is the link between the
/// proof object and the shipped primitive.
///
/// # Panics
///
/// Same contract as [`delta_swap`]: `shift` in `1..64` and disjoint pairs.
#[must_use]
pub fn delta_swap_spec(x: u64, m: u64, shift: u32) -> u64 {
    assert!((1..64).contains(&shift), "delta_swap shift {shift} out of range (1..64)");
    debug_assert!((m << shift) & m == 0, "delta_swap mask selects overlapping pairs");
    let mut out = x;
    for p in 0..64 - shift {
        if (m >> p) & 1 == 1 {
            let lo = (x >> p) & 1;
            let hi = (x >> (p + shift)) & 1;
            out &= !((1 << p) | (1 << (p + shift)));
            out |= (hi << p) | (lo << (p + shift));
        }
    }
    out
}

/// Returns `log2(n)` if `n` is a power of two, `None` otherwise.
///
/// Used throughout the workspace to recover `n` from `N = 2^n`.
///
/// # Examples
///
/// ```
/// use benes_bits::log2_exact;
/// assert_eq!(log2_exact(8), Some(3));
/// assert_eq!(log2_exact(6), None);
/// assert_eq!(log2_exact(0), None);
/// ```
#[inline]
#[must_use]
pub fn log2_exact(n: u64) -> Option<u32> {
    if n.is_power_of_two() {
        Some(n.trailing_zeros())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_extracts_each_position() {
        let v = 0b1011_0101;
        let expected = [1, 0, 1, 0, 1, 1, 0, 1];
        for (j, &e) in expected.iter().enumerate() {
            assert_eq!(bit(v, j as u32), e, "bit {j}");
        }
    }

    #[test]
    fn bit_of_high_position_is_zero() {
        assert_eq!(bit(0b1, 63), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_rejects_index_64() {
        let _ = bit(1, 64);
    }

    #[test]
    fn bit_slice_matches_paper_example() {
        // Paper §II: i = 101101 ⇒ (i)_{4..1} = 0110.
        assert_eq!(bit_slice(0b101101, 4, 1), 0b0110);
    }

    #[test]
    fn bit_slice_single_bit_equals_bit() {
        let v = 0b110101;
        for j in 0..6 {
            assert_eq!(bit_slice(v, j, j), bit(v, j));
        }
    }

    #[test]
    fn bit_slice_full_width_is_identity() {
        assert_eq!(bit_slice(0b101101, 5, 0), 0b101101);
    }

    #[test]
    #[should_panic(expected = "j >= k")]
    fn bit_slice_rejects_reversed_range() {
        let _ = bit_slice(0, 1, 2);
    }

    #[test]
    fn with_bit_sets_and_clears() {
        assert_eq!(with_bit(0, 3, 1), 0b1000);
        assert_eq!(with_bit(0b1111, 2, 0), 0b1011);
        assert_eq!(with_bit(0b1111, 2, 1), 0b1111);
    }

    #[test]
    #[should_panic(expected = "bit value")]
    fn with_bit_rejects_nonbinary_value() {
        let _ = with_bit(0, 0, 2);
    }

    #[test]
    fn flip_bit_is_involution() {
        for i in 0..16u64 {
            for b in 0..4 {
                assert_eq!(flip_bit(flip_bit(i, b), b), i);
                assert_ne!(flip_bit(i, b), i);
            }
        }
    }

    #[test]
    fn mask_widths() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(1), 1);
        assert_eq!(mask(8), 0xff);
        assert_eq!(mask(63), u64::MAX >> 1);
    }

    #[test]
    fn fits_boundaries() {
        assert!(fits(7, 3));
        assert!(!fits(8, 3));
        assert!(fits(0, 0));
        assert!(!fits(1, 0));
    }

    #[test]
    fn reverse_bits_small_cases() {
        assert_eq!(reverse_bits(0b000, 3), 0b000);
        assert_eq!(reverse_bits(0b001, 3), 0b100);
        assert_eq!(reverse_bits(0b010, 3), 0b010);
        assert_eq!(reverse_bits(0b011, 3), 0b110);
        assert_eq!(reverse_bits(0b100, 3), 0b001);
        assert_eq!(reverse_bits(0b101, 3), 0b101);
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0b111, 3), 0b111);
    }

    #[test]
    fn reverse_bits_is_involution() {
        for width in 1..10 {
            for i in 0..(1u64 << width) {
                assert_eq!(reverse_bits(reverse_bits(i, width), width), i);
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn reverse_bits_rejects_oversized_value() {
        let _ = reverse_bits(0b1000, 3);
    }

    #[test]
    fn shuffle_rotates_left() {
        // 3-bit: i2 i1 i0 → i1 i0 i2
        assert_eq!(shuffle(0b100, 3), 0b001);
        assert_eq!(shuffle(0b010, 3), 0b100);
        assert_eq!(shuffle(0b001, 3), 0b010);
        assert_eq!(shuffle(0b110, 3), 0b101);
    }

    #[test]
    fn unshuffle_inverts_shuffle() {
        for width in 1..8 {
            for i in 0..(1u64 << width) {
                assert_eq!(unshuffle(shuffle(i, width), width), i);
                assert_eq!(shuffle(unshuffle(i, width), width), i);
            }
        }
    }

    #[test]
    fn shuffle_width_one_is_identity() {
        assert_eq!(shuffle(0, 1), 0);
        assert_eq!(shuffle(1, 1), 1);
        assert_eq!(unshuffle(1, 1), 1);
    }

    #[test]
    fn rotations_compose() {
        for width in 1..8 {
            for i in 0..(1u64 << width) {
                assert_eq!(rotate_left(i, width, 1), shuffle(i, width));
                assert_eq!(rotate_right(i, width, 1), unshuffle(i, width));
                assert_eq!(rotate_left(i, width, width), i);
                if width >= 2 {
                    assert_eq!(rotate_left(rotate_left(i, width, 2), width, width - 2), i);
                }
            }
        }
    }

    #[test]
    fn rotate_amount_wraps_modulo_width() {
        assert_eq!(rotate_left(0b011, 3, 4), rotate_left(0b011, 3, 1));
        assert_eq!(rotate_right(0b011, 3, 5), rotate_right(0b011, 3, 2));
    }

    #[test]
    fn interleave_small_cases() {
        // x = 1 0, y = 1 1 → x1 y1 x0 y0 = 1 1 0 1
        assert_eq!(interleave(0b10_11, 2), 0b1101);
        // half = 1 degenerates to identity on 2 bits.
        for i in 0..4u64 {
            assert_eq!(interleave(i, 1), i);
        }
    }

    #[test]
    fn deinterleave_inverts_interleave() {
        for half in 1..5u32 {
            for i in 0..(1u64 << (2 * half)) {
                assert_eq!(deinterleave(interleave(i, half), half), i);
                assert_eq!(interleave(deinterleave(i, half), half), i);
            }
        }
    }

    #[test]
    fn delta_mask_matches_index_bit_definition() {
        for b in 0..6u32 {
            let mut expected = 0u64;
            for p in 0..64u32 {
                if bit(u64::from(p), b) == 0 {
                    expected |= 1 << p;
                }
            }
            assert_eq!(delta_mask(b), expected, "distance log2 {b}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn delta_mask_rejects_word_spanning_distance() {
        let _ = delta_mask(6);
    }

    #[test]
    fn delta_swap_swaps_exactly_selected_pairs() {
        // Naive reference: swap bits p and p+shift for each set bit p of m.
        fn naive(x: u64, m: u64, shift: u32) -> u64 {
            let mut out = x;
            for p in 0..(64 - shift) {
                if bit(m, p) == 1 {
                    let lo = bit(x, p);
                    let hi = bit(x, p + shift);
                    out = with_bit(out, p, hi);
                    out = with_bit(out, p + shift, lo);
                }
            }
            out
        }
        // Deterministic xorshift-ish sweep over values, masks, distances.
        let mut v = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..200 {
            v ^= v << 13;
            v ^= v >> 7;
            v ^= v << 17;
            for b in 0..6u32 {
                let shift = 1 << b;
                let m = delta_mask(b) & v.rotate_left(b);
                assert_eq!(delta_swap(v, m, shift), naive(v, m, shift));
                // Involution: applying the same swap twice restores x.
                assert_eq!(delta_swap(delta_swap(v, m, shift), m, shift), v);
            }
        }
    }

    #[test]
    fn delta_swap_full_mask_exchanges_halves() {
        let x = 0xdead_beef_0123_4567u64;
        assert_eq!(delta_swap(x, delta_mask(5), 32), x.rotate_left(32));
    }

    #[test]
    fn delta_swap_matches_its_normative_spec() {
        // The spec is what the symbolic prover transcribes; the fast form
        // is what the kernel ships. They must be the same function.
        let mut v = 0x0123_4567_89ab_cdefu64;
        for _ in 0..200 {
            v ^= v << 13;
            v ^= v >> 7;
            v ^= v << 17;
            for b in 0..6u32 {
                let shift = 1 << b;
                let m = delta_mask(b) & v.rotate_right(b + 1);
                assert_eq!(delta_swap(v, m, shift), delta_swap_spec(v, m, shift));
            }
        }
    }

    #[test]
    fn log2_exact_cases() {
        assert_eq!(log2_exact(1), Some(0));
        assert_eq!(log2_exact(2), Some(1));
        assert_eq!(log2_exact(1 << 20), Some(20));
        assert_eq!(log2_exact(3), None);
        assert_eq!(log2_exact(0), None);
    }
}
