//! Experiment EXP-SERVE: wire-service load generator.
//!
//! Drives a running `benes-serve` daemon over the length-prefixed
//! binary protocol: a fleet of client connections, each pinned to a
//! tenant, pipelines Route frames with a bounded window of outstanding
//! requests, tallies reply statuses and the engine-reported latency
//! distribution, then polls the Stats frame until every per-tenant
//! ledger reaches conservation (`submitted = completed + failed +
//! shed + canceled`).
//!
//! `--kill-conns K` is the chaos mode: the first `K` connections send
//! half their share and then hard-close the socket mid-flight without
//! reading a single reply. Those connections carry a dedicated chaos
//! tenant, so the steady tenants' ledgers can still be matched exactly
//! against client-side reply counts while the chaos tenant only has to
//! conserve — which it must, by construction: a vanished connection
//! drops its reply tickets, but the engine still books every admitted
//! request to a terminal state.
//!
//! Usage: `load_gen --addr HOST:PORT [--conns C] [--tenants T]
//!                  [--requests N] [--window W] [--order n]
//!                  [--kill-conns K] [--drain] [--json PATH]`
//!
//! `--drain` sends a Drain frame after the conservation check (the
//! daemon must run with `--allow-drain`), so a script can shut the
//! server down over the wire. `--json` writes the machine-readable
//! results as `BENCH_SERVE.json` with a stable schema (`experiment`,
//! the load parameters, `req_per_s`, per-status reply counts, latency
//! quantiles, and the per-tenant ledger with a `conserved` flag).
//!
//! Exits nonzero on any reply on an unexpected status, a ledger that
//! fails to conserve, or a steady tenant whose server-side ledger
//! disagrees with the client-side reply count.
//!
//! # Fleet mode (EXP-FLEET)
//!
//! `load_gen --fleet HOST:PORT,HOST:PORT,... [--requests R] [--order n]
//! [--json PATH]` benchmarks the **remote shard fleet** instead: one
//! `RemoteShard` backend per address, a `ShardCoordinator` scattering
//! `R` rounds of random `2^n` permutations over the wire, per-round
//! wall latency, and the fleet transport ledger (retries, failovers,
//! hedges, reconnects). `--json` writes `BENCH_FLEET.json` with a
//! stable schema; exits nonzero if any round fails to verify or any
//! backend ledger does not conserve.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use benes_engine::workload::mixed_workload;
use benes_obs::hist::Histogram;
use benes_serve::{Client, Frame, Status, TenantRow};

struct Args {
    addr: String,
    fleet: Vec<String>,
    conns: usize,
    tenants: u64,
    requests: usize,
    window: usize,
    order: u32,
    kill_conns: usize,
    drain: bool,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        addr: String::new(),
        fleet: Vec::new(),
        conns: 4,
        tenants: 2,
        requests: 20_000,
        window: 64,
        order: 3,
        kill_conns: 0,
        drain: false,
        json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |what: &str| args.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match arg.as_str() {
            "--addr" => parsed.addr = value("--addr"),
            "--fleet" => {
                parsed.fleet = value("--fleet").split(',').map(str::to_string).collect();
            }
            "--conns" => parsed.conns = value("--conns").parse().expect("--conns: usize"),
            "--tenants" => {
                parsed.tenants = value("--tenants").parse().expect("--tenants: u64")
            }
            "--requests" => {
                parsed.requests = value("--requests").parse().expect("--requests: usize")
            }
            "--window" => {
                parsed.window = value("--window").parse().expect("--window: usize")
            }
            "--order" => parsed.order = value("--order").parse().expect("--order: u32"),
            "--kill-conns" => {
                parsed.kill_conns =
                    value("--kill-conns").parse().expect("--kill-conns: usize")
            }
            "--drain" => parsed.drain = true,
            "--json" => parsed.json = Some(value("--json")),
            other => panic!("unknown argument {other} (see the module docs for usage)"),
        }
    }
    assert!(
        !parsed.addr.is_empty() || !parsed.fleet.is_empty(),
        "--addr HOST:PORT (or --fleet A,B,...) is required"
    );
    assert!(parsed.conns >= 1, "--conns must be >= 1");
    assert!(parsed.tenants >= 1, "--tenants must be >= 1");
    assert!(parsed.window >= 1, "--window must be >= 1");
    assert!((1..=12).contains(&parsed.order), "--order must be in 1..=12");
    assert!(parsed.kill_conns <= parsed.conns, "--kill-conns cannot exceed --conns");
    if !parsed.fleet.is_empty() {
        assert!(parsed.order >= 2, "--fleet needs --order >= 2 (block decomposition)");
    }
    parsed
}

/// EXP-FLEET: scatter `requests` rounds of random `2^order`
/// permutations across one `RemoteShard` per fleet address, measure
/// per-round wall latency, and reconcile every backend's transport
/// ledger. Panics (nonzero exit) on an unverified round or a
/// conservation violation.
fn run_fleet(args: &Args) {
    use benes_engine::workload::{random_permutation, Rng64};
    use benes_shard::{Backend, RemoteConfig, RemoteShard, ShardConfig, ShardCoordinator};

    let rounds = args.requests;
    let backends: Vec<Box<dyn Backend>> = args
        .fleet
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            Box::new(RemoteShard::new(RemoteConfig::new(addr.clone()), i))
                as Box<dyn Backend>
        })
        .collect();
    let coord = ShardCoordinator::with_backends(ShardConfig::default(), backends);

    println!(
        "== EXP-FLEET: remote shard fleet ==\n\
         {} shards ({}), {rounds} rounds of 2^{}",
        args.fleet.len(),
        args.fleet.join(", "),
        args.order,
    );

    let round_latency = Histogram::new();
    let mut rng = Rng64::new(0xf1ee7);
    let mut verified = 0usize;
    let mut units_total = 0usize;
    let start = Instant::now();
    for round in 0..rounds {
        let pi = random_permutation(&mut rng, 1usize << args.order);
        let round_start = Instant::now();
        let out = coord.route(&pi).expect("power-of-two perms decompose");
        let ns = u64::try_from(round_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        round_latency.record(ns);
        units_total += out.units.len();
        assert!(out.verified, "round {round} failed to verify: {}", out.summary());
        verified += 1;
    }
    let wall = start.elapsed();
    let fleet = coord.fleet_stats();
    let snap = round_latency.snapshot();
    let rps = rounds as f64 / wall.as_secs_f64();

    println!(
        "{verified}/{rounds} rounds verified in {:.1} ms -> {rps:.1} rounds/s \
         ({units_total} units)",
        wall.as_secs_f64() * 1e3,
    );
    println!(
        "round wall latency: p50 {}us p99 {}us max {}us",
        snap.quantile(0.50) / 1_000,
        snap.quantile(0.99) / 1_000,
        snap.max() / 1_000,
    );
    print!("{}", fleet.report());
    assert!(fleet.conserves_requests(), "fleet ledgers must conserve:\n{}", fleet.report());

    if let Some(path) = &args.json {
        let shards_json: Vec<String> = fleet
            .per_shard()
            .iter()
            .enumerate()
            .map(|(i, (_, l))| {
                format!(
                    "{{\"shard\":{i},\"kind\":\"{}\",\"submitted\":{},\"completed\":{},\
                     \"failed\":{},\"shed\":{},\"canceled\":{},\"healthy\":{},\
                     \"conserved\":{}}}",
                    l.kind,
                    l.submitted,
                    l.completed,
                    l.failed,
                    l.shed,
                    l.canceled,
                    l.healthy,
                    l.conserves_requests(),
                )
            })
            .collect();
        let doc = format!(
            "{{\"experiment\":\"EXP-FLEET\",\"shards\":{},\"rounds\":{rounds},\
             \"order\":{},\"wall_ms\":{:.3},\"rounds_per_s\":{rps:.1},\
             \"verified_rounds\":{verified},\"units_total\":{units_total},\
             \"round_ns\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}},\
             \"transport\":{{\"retries\":{},\"failovers\":{},\"hedges\":{},\
             \"reconnects\":{},\"conserved\":{}}},\
             \"per_shard\":[{}]}}\n",
            args.fleet.len(),
            args.order,
            wall.as_secs_f64() * 1e3,
            snap.quantile(0.5),
            snap.quantile(0.9),
            snap.quantile(0.99),
            snap.max(),
            fleet.retries(),
            fleet.failovers(),
            fleet.hedges(),
            fleet.reconnects(),
            fleet.conserves_requests(),
            shards_json.join(","),
        );
        std::fs::write(path, doc).expect("write --json output");
        println!("machine-readable results written to {path}");
    }
    println!("conservation verified across {} shard ledgers", fleet.shard_count());
}

/// One connection's worth of load: pipeline `share` Route frames with
/// at most `window` outstanding, tallying statuses and latencies.
fn drive_conn(
    addr: &str,
    tenant: u64,
    conn: usize,
    share: usize,
    window: usize,
    order: u32,
    latency: &Histogram,
    by_status: &[AtomicU64],
) {
    let mut client = Client::connect(addr).expect("connect to the server");
    client.set_read_timeout(Some(Duration::from_secs(30))).expect("set read timeout");
    let stream = mixed_workload(order, share, 0x5e12e + conn as u64);
    let mut sent = 0usize;
    let mut received = 0usize;
    while received < share {
        while sent < share && sent - received < window {
            let frame = Frame::Route {
                req_id: ((conn as u64) << 32) | sent as u64,
                tenant,
                deadline_ms: 0,
                destinations: stream[sent].destinations().to_vec(),
            };
            client.send(&frame).expect("send a route frame");
            sent += 1;
        }
        let reply = client.recv().expect("receive a reply");
        let Frame::RouteReply { status, latency_ns, .. } = reply else {
            panic!("unexpected reply frame {reply:?}");
        };
        by_status[status as usize].fetch_add(1, Ordering::Relaxed);
        latency.record(latency_ns);
        received += 1;
    }
}

/// A chaos connection: send half the share, give the server a moment
/// to ingest, then hard-close without reading any reply.
fn kill_conn(addr: &str, tenant: u64, conn: usize, share: usize, order: u32) {
    let mut client = Client::connect(addr).expect("connect a chaos conn");
    let stream = mixed_workload(order, share.div_ceil(2).max(1), 0xdead + conn as u64);
    let frames: Vec<Frame> = stream
        .iter()
        .enumerate()
        .map(|(i, perm)| Frame::Route {
            req_id: 0xc0_0000_0000 | ((conn as u64) << 16) | i as u64,
            tenant,
            deadline_ms: 0,
            destinations: perm.destinations().to_vec(),
        })
        .collect();
    client.send_all(&frames).expect("send the chaos burst");
    // Let the server read the burst before the RST discards it.
    std::thread::sleep(Duration::from_millis(200));
    client.kill();
}

/// One Stats exchange: the server's per-tenant ledgers as they stand.
fn fetch_rows(addr: &str) -> Vec<TenantRow> {
    let mut client = Client::connect(addr).expect("connect for stats");
    client.set_read_timeout(Some(Duration::from_secs(10))).expect("set read timeout");
    client.send(&Frame::Stats).expect("send stats");
    match client.recv().expect("receive stats") {
        Frame::StatsReply { rows } => rows,
        other => panic!("unexpected stats reply {other:?}"),
    }
}

/// Polls the Stats frame until every per-tenant ledger conserves (or
/// the deadline passes). Returns the settled rows.
fn await_conservation(addr: &str, deadline: Instant) -> Vec<TenantRow> {
    let mut client = Client::connect(addr).expect("connect for stats");
    client.set_read_timeout(Some(Duration::from_secs(10))).expect("set read timeout");
    loop {
        client.send(&Frame::Stats).expect("send stats");
        let reply = client.recv().expect("receive stats");
        let Frame::StatsReply { rows } = reply else {
            panic!("unexpected stats reply {reply:?}");
        };
        if rows.iter().all(TenantRow::conserves_requests) {
            return rows;
        }
        assert!(
            Instant::now() < deadline,
            "tenant ledgers did not conserve in time: {rows:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn main() {
    let args = parse_args();
    if !args.fleet.is_empty() {
        run_fleet(&args);
        return;
    }
    let steady_conns = args.conns - args.kill_conns;
    assert!(steady_conns >= 1, "at least one steady connection is required");
    // Chaos connections get their own tenant so the steady tenants'
    // ledgers stay exactly reconcilable against client-side counts.
    let chaos_tenant = args.tenants + 1;

    println!(
        "== EXP-SERVE: wire-service load ==\n\
         target {}; {} conns ({} chaos) x {} tenants, {} requests, window {}, order {}",
        args.addr,
        args.conns,
        args.kill_conns,
        args.tenants,
        args.requests,
        args.window,
        args.order
    );

    // Ledgers are cumulative over the server's lifetime; reconcile
    // this run's contribution as a delta against a pre-load snapshot,
    // so several load_gen runs can share one daemon.
    let baseline = fetch_rows(&args.addr);
    let baseline_completed = |tenant: u64| {
        baseline.iter().find(|r| r.tenant == tenant).map_or(0, |r| r.completed)
    };

    let latency = Arc::new(Histogram::new());
    let by_status: Arc<Vec<AtomicU64>> =
        Arc::new(Status::ALL.iter().map(|_| AtomicU64::new(0)).collect());

    let base = args.requests / steady_conns;
    let extra = args.requests % steady_conns;
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..steady_conns {
            let share = base + usize::from(c < extra);
            let tenant = c as u64 % args.tenants + 1;
            let (addr, latency, by_status) = (&args.addr, &latency, &by_status);
            let (window, order) = (args.window, args.order);
            s.spawn(move || {
                drive_conn(addr, tenant, c, share, window, order, latency, by_status);
            });
        }
        for k in 0..args.kill_conns {
            let (addr, order) = (&args.addr, args.order);
            let share = base.max(2);
            s.spawn(move || kill_conn(addr, chaos_tenant, steady_conns + k, share, order));
        }
    });
    let wall = start.elapsed();

    let replies: u64 = by_status.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    let rps = replies as f64 / wall.as_secs_f64();
    let snap = latency.snapshot();

    println!("\n{replies} replies in {:.1} ms -> {rps:.0} req/s", wall.as_secs_f64() * 1e3);
    for (i, counter) in by_status.iter().enumerate() {
        let count = counter.load(Ordering::Relaxed);
        if count > 0 {
            println!("  {:<14} {count}", Status::ALL[i].name());
        }
    }
    println!(
        "latency (engine-reported): p50 {}us p99 {}us p999 {}us max {}us",
        snap.quantile(0.50) / 1_000,
        snap.quantile(0.99) / 1_000,
        snap.quantile(0.999) / 1_000,
        snap.max() / 1_000,
    );

    // Conservation: every tenant ledger must balance, chaos included.
    let rows = await_conservation(&args.addr, Instant::now() + Duration::from_secs(10));
    let ok_total = by_status[Status::Ok as usize].load(Ordering::Relaxed);
    let steady_completed: u64 = rows
        .iter()
        .filter(|r| r.tenant != chaos_tenant)
        .map(|r| r.completed - baseline_completed(r.tenant))
        .sum();
    println!("\nper-tenant ledgers (server side):");
    for row in &rows {
        println!(
            "  tenant {:>3}{}: submitted {} = completed {} + failed {} + shed {} + \
             canceled {} (rejected {}) — conserved",
            row.tenant,
            if row.tenant == chaos_tenant { " (chaos)" } else { "" },
            row.submitted,
            row.completed,
            row.failed,
            row.shed,
            row.canceled,
            row.rejected,
        );
    }
    assert_eq!(
        steady_completed, ok_total,
        "steady tenants' server-side completions must equal client-side ok replies"
    );

    if let Some(path) = &args.json {
        let status_json: Vec<String> = Status::ALL
            .iter()
            .enumerate()
            .map(|(i, s)| {
                format!("\"{}\":{}", s.name(), by_status[i].load(Ordering::Relaxed))
            })
            .collect();
        let rows_json: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"tenant\":{},\"chaos\":{},\"submitted\":{},\"completed\":{},\
                     \"failed\":{},\"shed\":{},\"canceled\":{},\"rejected\":{},\
                     \"conserved\":true}}",
                    r.tenant,
                    r.tenant == chaos_tenant,
                    r.submitted,
                    r.completed,
                    r.failed,
                    r.shed,
                    r.canceled,
                    r.rejected,
                )
            })
            .collect();
        let doc = format!(
            "{{\"experiment\":\"EXP-SERVE\",\"conns\":{},\"kill_conns\":{},\
             \"tenants\":{},\"requests\":{},\"window\":{},\"order\":{},\
             \"wall_ms\":{:.3},\"req_per_s\":{:.1},\"replies\":{replies},\
             \"status\":{{{}}},\
             \"latency_ns\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\
             \"mean\":{},\"max\":{}}},\
             \"tenants_ledger\":[{}]}}\n",
            args.conns,
            args.kill_conns,
            args.tenants,
            args.requests,
            args.window,
            args.order,
            wall.as_secs_f64() * 1e3,
            rps,
            status_json.join(","),
            snap.quantile(0.5),
            snap.quantile(0.9),
            snap.quantile(0.99),
            snap.quantile(0.999),
            snap.mean(),
            snap.max(),
            rows_json.join(","),
        );
        std::fs::write(path, doc).expect("write --json output");
        println!("machine-readable results written to {path}");
    }

    if args.drain {
        let mut client = Client::connect(&args.addr).expect("connect for drain");
        client.send(&Frame::Drain).expect("send drain");
        match client.recv() {
            Ok(Frame::StatsReply { .. }) => println!("drain acknowledged, server stopping"),
            Ok(other) => panic!("drain refused: {other:?}"),
            Err(e) => panic!("drain failed: {e}"),
        }
    }
    println!("conservation verified across {} tenant ledgers", rows.len());
}
