//! Experiment FIG5: `D = (1, 3, 2, 0)` cannot self-route on `B(2)` (paper
//! Fig. 5), although it IS an omega permutation — so the omega-bit
//! extension routes it, and Waksman external set-up routes it too.

use benes_core::class_f::check_f;
use benes_core::render::render_trace;
use benes_core::trace::RouteTrace;
use benes_core::{waksman, Benes};
use benes_perm::omega::{is_inverse_omega, is_omega};
use benes_perm::Permutation;

fn main() {
    println!("== FIG5: D = (1, 3, 2, 0) on B(2) ==\n");
    let net = Benes::new(2);
    let d = Permutation::from_destinations(vec![1, 3, 2, 0]).expect("valid permutation");

    println!("-- plain self-routing (must FAIL, Fig. 5) --\n");
    let trace = RouteTrace::capture_self_route(&net, &d).expect("length matches");
    println!("{}", render_trace(&trace));
    assert!(!trace.is_success(), "FIG5 must reproduce: D is not in F(2)");

    let violation = check_f(&d).expect_err("Theorem 1 must reject D");
    println!("Theorem 1 witness: {violation}\n");

    println!("-- class membership --\n");
    println!("is_omega(D)         = {}", is_omega(&d));
    println!("is_inverse_omega(D) = {}", is_inverse_omega(&d));
    assert!(is_omega(&d) && !is_inverse_omega(&d));
    println!("(D ∈ Ω(2) ∖ F(2): the example §II uses to show Ω ⊄ F)\n");

    println!("-- omega-bit extension (must SUCCEED, §II after Theorem 3) --\n");
    let omega_trace = RouteTrace::capture_omega(&net, &d).expect("length matches");
    println!("{}", render_trace(&omega_trace));
    assert!(omega_trace.is_success());

    println!("-- Waksman external set-up (must SUCCEED, §I) --\n");
    let settings = waksman::setup(&d).expect("Waksman handles all permutations");
    let ext_trace =
        RouteTrace::capture_external(&net, &d, &settings).expect("length matches");
    println!("{}", render_trace(&ext_trace));
    assert!(ext_trace.is_success());
    println!("reproduced: self-routing fails, omega bit and external set-up succeed.");
}
