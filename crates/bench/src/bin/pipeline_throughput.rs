//! Experiment EXP-PIPE: pipelined operation (§IV).
//!
//! Streams `k` vectors (each with its own permutation, as the paper
//! allows) through a registered `B(n)` and reports fill latency and
//! steady-state throughput: the first vector emerges after `2·log N − 1`
//! clocks, every subsequent one after a single clock.

use benes_bench::{random_f_member, Table};
use benes_core::pipeline::Pipeline;
use benes_perm::Permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tagged(perm: &Permutation) -> Vec<(u32, u32)> {
    perm.destinations().iter().enumerate().map(|(i, &d)| (d, i as u32)).collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    println!("== EXP-PIPE: pipelined B(n) throughput (§IV) ==\n");

    let mut table = Table::new(vec![
        "n",
        "latency (2n-1 clocks)",
        "vectors streamed",
        "total clocks",
        "clocks/vector (steady state)",
    ]);

    for n in [3u32, 5, 8, 10] {
        let mut pipe: Pipeline<u32> = Pipeline::new(n);
        let k = 64u64;
        let perms: Vec<Permutation> =
            (0..k).map(|_| random_f_member(&mut rng, n)).collect();
        let mut emitted = 0u64;
        let mut clock = 0u64;
        let mut first_out_clock = None;
        while emitted < k {
            let input = perms.get(clock as usize).map(tagged);
            let out = pipe.clock(input);
            clock += 1;
            if let Some(wave) = out {
                // Every wavefront must arrive fully routed.
                assert!(
                    wave.iter().enumerate().all(|(o, r)| r.0 == o as u32),
                    "pipelined vector misrouted"
                );
                if first_out_clock.is_none() {
                    first_out_clock = Some(clock);
                }
                emitted += 1;
            }
        }
        let latency = first_out_clock.expect("at least one vector emerged");
        assert_eq!(latency, 2 * u64::from(n) - 1 + 1); // enters reg at clock 1
        assert_eq!(clock, k + latency - 1); // 1 vector/clock afterwards
        table.row(vec![
            n.to_string(),
            (2 * n - 1).to_string(),
            k.to_string(),
            clock.to_string(),
            format!("{:.3}", (clock - latency) as f64 / (k - 1) as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reproduced: \"the network will output the first permuted vector after \
         O(log N) delay, while each subsequent permuted vector will emerge after \
         unit delay\" — with a DIFFERENT permutation per vector (§IV)."
    );
}
