//! Experiment FIG1: the structure of the Benes network `B(n)` (paper
//! Fig. 1) and the switch-count / stage-count formulas of §I.
//!
//! Prints the recursive topology of `B(3)` and checks the closed forms
//! `stages = 2·log N − 1` and `switches = N·log N − N/2` for a sweep of
//! sizes.

use benes_bench::Table;
use benes_core::render::render_structure;
use benes_core::{topology, Benes};

fn main() {
    println!("== FIG1: Benes network structure (paper Fig. 1) ==\n");
    let net = Benes::new(3);
    println!("{}", render_structure(&net));

    println!("== §I size formulas across n ==\n");
    let mut table = Table::new(vec![
        "n",
        "N = 2^n",
        "stages (2n-1)",
        "switches/stage (N/2)",
        "total switches (N·n - N/2)",
        "formula check",
    ]);
    for n in 1..=12u32 {
        let nn = 1u64 << n;
        let stages = topology::stage_count(n) as u64;
        let per = topology::switches_per_stage(n) as u64;
        let total = topology::switch_count(n) as u64;
        let formula = nn * u64::from(n) - nn / 2;
        table.row(vec![
            n.to_string(),
            nn.to_string(),
            stages.to_string(),
            per.to_string(),
            total.to_string(),
            if total == formula { "ok".into() } else { format!("MISMATCH {formula}") },
        ]);
    }
    println!("{}", table.render());

    // Fig. 2/3 companion: the switch-state semantics and control rule.
    println!("== FIG2-3: switch semantics ==\n");
    println!("state 0 (straight '='): upper in -> upper out, lower in -> lower out");
    println!("state 1 (cross    'x'): upper in -> lower out, lower in -> upper out");
    println!("self-routing rule: a switch in stage b or stage 2n-2-b sets itself to");
    println!("bit b of the destination tag on its UPPER input (Fig. 3).");
}
