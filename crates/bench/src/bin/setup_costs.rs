//! Experiment EXP-SETUPCOST: the set-up bottleneck, in the paper's own
//! cost units.
//!
//! §I's framing: performing a permutation on a Benes network = set-up +
//! transit. The table compares, per network size,
//!
//! * **self-routing** (this paper): 0 set-up operations, `2·log N − 1`
//!   transit levels — for `F(n)` inputs;
//! * **parallel set-up** (\[7\]-class, pointer jumping on a CIC):
//!   measured `O(log² N)` parallel rounds, for arbitrary inputs;
//! * **sequential set-up** (Waksman \[10\]): `O(N log N)` serial
//!   operations (lower-bounded here by the switch count it must write);
//! * the **sorting network** alternative: `log N (log N + 1)/2` levels,
//!   no set-up, arbitrary inputs.

use benes_bench::{random_permutation, Table};
use benes_core::{parallel_setup, topology, waksman, Benes};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1980);
    println!("== EXP-SETUPCOST: set-up cost before the first datum moves ==\n");

    let mut table = Table::new(vec![
        "n",
        "N",
        "self-route set-up (F(n))",
        "parallel set-up rounds",
        "sequential set-up ops (≥ switches)",
        "transit levels (2n-1)",
        "sorter levels (n(n+1)/2)",
    ]);

    for n in [3u32, 6, 9, 12] {
        let d = random_permutation(&mut rng, 1usize << n);
        let (settings, cost) = parallel_setup::setup_parallel(&d).expect("valid");
        // Sanity: the parallel settings really realize d.
        let net = Benes::new(n);
        let data: Vec<u32> = (0..1u32 << n).collect();
        let out = net.route_with(&settings, &data).expect("routes");
        assert_eq!(out, d.apply(&data));
        // And the sequential set-up produces equally valid settings.
        let seq = waksman::setup(&d).expect("valid");
        let out_seq = net.route_with(&seq, &data).expect("routes");
        assert_eq!(out_seq, out);

        table.row(vec![
            n.to_string(),
            (1u64 << n).to_string(),
            "0".into(),
            cost.rounds.to_string(),
            topology::switch_count(n).to_string(),
            (2 * n - 1).to_string(),
            (n * (n + 1) / 2).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reproduced: for arbitrary permutations the set-up dominates (§I): even \
         the parallel algorithm needs Θ(log² N) rounds before the first datum \
         moves, and the serial one touches every switch. For F(n) traffic the \
         self-routing network starts moving data immediately — the entire \
         contribution of the paper in one column."
    );
}
