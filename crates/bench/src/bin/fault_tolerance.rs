//! Experiment EXP-FAULTS: fault-tolerant routing under stuck switches.
//!
//! Injects `k` random stuck-at switch faults into the engine's shared
//! fault registry and drives a reproducible mixed workload through the
//! detect → quarantine → re-plan-around-faults ladder. Reports the
//! reroute success rate against the planner-achievable ceiling (the
//! fraction of requests `setup_avoiding` can realize at all under the
//! fault set) and the latency cost of rerouting, as `k` grows.

use benes_bench::Table;
use benes_core::faults::{setup_avoiding, FaultSet};
use benes_engine::workload::mixed_workload;
use benes_engine::{Engine, EngineConfig, EngineError};

fn main() {
    println!("== EXP-FAULTS: reroute success and latency vs. stuck switches ==\n");

    let requests = 1000;
    let seeds = [1u64, 2, 3];

    let mut table = Table::new(vec![
        "n",
        "stuck k",
        "requests",
        "served %",
        "achievable %",
        "reroutes ok",
        "reroutes fail",
        "mean latency ms",
        "latency vs k=0",
    ]);

    for n in [3u32, 4] {
        let mut baseline_ns = 0u64;
        for k in [0usize, 1, 2, 3, 4] {
            // Aggregate over a few fault placements so one lucky (or
            // pathological) draw does not decide the row.
            let mut served = 0usize;
            let mut achievable = 0usize;
            let mut reroutes_ok = 0u64;
            let mut reroutes_fail = 0u64;
            let mut latency_ns = 0u64;

            for &seed in &seeds {
                let faults = FaultSet::random_stuck(n, k, seed);
                let stream = mixed_workload(n, requests, seed);
                achievable +=
                    stream.iter().filter(|d| setup_avoiding(d, &faults).is_ok()).count();

                let engine = Engine::new(EngineConfig::default());
                engine.set_faults(faults);
                let outcomes = engine.run_batch(stream);
                served += outcomes.iter().filter(|o| o.is_ok()).count();
                // Every failure must be the typed "no agreeing settings
                // exist" verdict — never a panic, hang, or misroute.
                assert!(
                    outcomes
                        .iter()
                        .all(|o| o.is_ok() || o.result == Err(EngineError::Unroutable)),
                    "unexpected failure mode at n={n} k={k} seed={seed}"
                );

                let stats = engine.stats();
                reroutes_ok += stats.reroutes_succeeded;
                reroutes_fail += stats.reroutes_failed;
                latency_ns += stats.latency_mean_ns();
            }

            let total = requests * seeds.len();
            // The headline claim: the engine serves every request the
            // planner can realize around the fault set, and nothing more
            // (single-pass execution under faults implies an agreeing
            // assignment exists).
            assert_eq!(
                served, achievable,
                "engine must serve exactly the planner-achievable fraction \
                 (n={n} k={k})"
            );
            let mean_ns = latency_ns / seeds.len() as u64;
            if k == 0 {
                baseline_ns = mean_ns.max(1);
            }
            table.row(vec![
                n.to_string(),
                k.to_string(),
                total.to_string(),
                format!("{:.1}", 100.0 * served as f64 / total as f64),
                format!("{:.1}", 100.0 * achievable as f64 / total as f64),
                reroutes_ok.to_string(),
                reroutes_fail.to_string(),
                format!("{:.3}", mean_ns as f64 / 1e6),
                format!("{:.2}x", mean_ns as f64 / baseline_ns as f64),
            ]);
        }
    }
    println!("{}", table.render());

    // One detailed degraded-mode report at the headline configuration.
    let faults = FaultSet::random_stuck(4, 2, seeds[0]);
    println!("fault set under report below: {faults}");
    let engine = Engine::new(EngineConfig::default());
    engine.set_faults(faults);
    let _ = engine.run_batch(mixed_workload(4, requests, seeds[0]));
    println!("\ndetailed stats at n = 4, k = 2:\n{}", engine.stats().report());
    println!(
        "observation: stuck-at faults on outer-stage switches are absorbed by\n\
         re-seeding the Waksman constraint loops, so the served fraction tracks\n\
         the planner-achievable ceiling exactly; the price is the reroute\n\
         search on first sight of each hard permutation, visible as the\n\
         latency multiplier growing with k."
    );
}
