//! Experiment EXP-ENGINE: batched routing-engine throughput.
//!
//! Drives the `benes-engine` worker pool with a reproducible mixed
//! workload (Table I BPC members, random `Ω(n)` members, repeated and
//! fresh hard permutations) and reports throughput as the worker count
//! scales, plus the tier mix, cache effectiveness and latency quantiles
//! that produced it.
//!
//! Usage: `engine_throughput [--requests N] [--json PATH]`
//!
//! `--json` additionally writes the machine-readable results as
//! `BENCH_ENGINE.json` with a stable schema (`experiment`, `requests`,
//! `seed`, `runs[]` with per-run throughput, overload counters —
//! `shed`, `rejected`, `deadline_exceeded`, all zero on this healthy,
//! unbounded-queue grid — and latency quantiles), so scripts can diff
//! benchmark runs without scraping the table.

use benes_bench::Table;
use benes_engine::workload::mixed_workload;
use benes_engine::{Engine, EngineConfig, EngineStats};
use std::time::Instant;

struct Run {
    n: u32,
    workers: usize,
    wall_ms: f64,
    req_per_s: f64,
    stats: EngineStats,
}

impl Run {
    /// One schema-stable JSON object for this run (hand-rolled: the
    /// vendored serde_json stub has no map type).
    fn to_json(&self) -> String {
        let lat = &self.stats.latency;
        format!(
            "{{\"n\":{},\"workers\":{},\"wall_ms\":{:.3},\"req_per_s\":{:.1},\
             \"zero_setup_pct\":{:.2},\"cache_hit_pct\":{:.2},\
             \"shed\":{},\"rejected\":{},\"deadline_exceeded\":{},\
             \"latency_ns\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\
             \"mean\":{},\"max\":{}}}}}",
            self.n,
            self.workers,
            self.wall_ms,
            self.req_per_s,
            self.stats.zero_setup_rate() * 100.0,
            self.stats.cache_hit_rate() * 100.0,
            self.stats.shed,
            self.stats.rejected,
            self.stats.deadline_exceeded,
            lat.quantile(0.5),
            lat.quantile(0.9),
            lat.quantile(0.99),
            lat.quantile(0.999),
            lat.mean(),
            lat.max(),
        )
    }
}

fn parse_args() -> (usize, Option<String>) {
    let mut requests = 4000usize;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => {
                let v = args.next().expect("--requests needs a value");
                requests = v.parse().expect("--requests must be a positive integer");
                assert!(requests > 0, "--requests must be a positive integer");
            }
            "--json" => json = Some(args.next().expect("--json needs a path")),
            other => panic!("unknown argument `{other}` (try --requests N / --json PATH)"),
        }
    }
    (requests, json)
}

fn main() {
    let (requests, json_path) = parse_args();
    println!("== EXP-ENGINE: batched routing-engine throughput ==\n");

    let seed = 0xbe25;

    let mut table = Table::new(vec![
        "n",
        "workers",
        "requests",
        "wall ms",
        "req/s",
        "zero-setup %",
        "cache hit %",
        "p50 lat ms",
        "p99 lat ms",
    ]);
    let mut runs: Vec<Run> = Vec::new();

    for n in [4u32, 6, 8] {
        let stream = mixed_workload(n, requests, seed);
        for workers in [1usize, 2, 4, 8] {
            let engine = Engine::new(EngineConfig { workers, ..EngineConfig::default() });
            let start = Instant::now();
            let outcomes = engine.run_batch(stream.iter().cloned());
            let wall = start.elapsed();
            assert!(outcomes.iter().all(benes_engine::RequestOutcome::is_ok));

            let stats = engine.stats();
            assert_eq!(stats.completed as usize, requests);
            table.row(vec![
                n.to_string(),
                workers.to_string(),
                requests.to_string(),
                format!("{:.2}", wall.as_secs_f64() * 1e3),
                format!("{:.0}", requests as f64 / wall.as_secs_f64()),
                format!("{:.1}", stats.zero_setup_rate() * 100.0),
                format!("{:.1}", stats.cache_hit_rate() * 100.0),
                // End-to-end latency: includes queue wait, since the
                // whole batch is submitted up front.
                format!("{:.2}", stats.latency.quantile(0.5) as f64 / 1e6),
                format!("{:.2}", stats.latency.quantile(0.99) as f64 / 1e6),
            ]);
            runs.push(Run {
                n,
                workers,
                wall_ms: wall.as_secs_f64() * 1e3,
                req_per_s: requests as f64 / wall.as_secs_f64(),
                stats,
            });
        }
    }
    println!("{}", table.render());

    if let Some(path) = json_path {
        let body: Vec<String> = runs.iter().map(Run::to_json).collect();
        let doc = format!(
            "{{\"experiment\":\"EXP-ENGINE\",\"requests\":{requests},\"seed\":{seed},\
             \"runs\":[{}]}}\n",
            body.join(",")
        );
        std::fs::write(&path, doc).expect("write --json output");
        println!("machine-readable results written to {path}\n");
    }

    // One detailed report at the headline configuration.
    let engine = Engine::new(EngineConfig { workers: 4, ..EngineConfig::default() });
    let outcomes = engine.run_batch(mixed_workload(6, requests, seed));
    assert!(outcomes.iter().all(benes_engine::RequestOutcome::is_ok));
    println!("detailed stats at n = 6, 4 workers:\n{}", engine.stats().report());
    println!(
        "observation: the zero-set-up tiers (self-route, omega-bit) and the plan\n\
         cache absorb the workload's repeats, so only first-seen hard permutations\n\
         pay the O(N log N) Waksman set-up — the paper's motivation for favouring\n\
         F(n) routing, measured end to end."
    );
}
