//! Experiment EXP-ENGINE: batched routing-engine throughput.
//!
//! Drives the `benes-engine` worker pool with a reproducible mixed
//! workload (Table I BPC members, random `Ω(n)` members, repeated and
//! fresh hard permutations) and reports throughput as the worker count
//! scales, plus the tier mix and cache effectiveness that produced it.

use benes_bench::Table;
use benes_engine::workload::mixed_workload;
use benes_engine::{Engine, EngineConfig};
use std::time::Instant;

fn main() {
    println!("== EXP-ENGINE: batched routing-engine throughput ==\n");

    let requests = 4000;
    let seed = 0xbe25;

    let mut table = Table::new(vec![
        "n",
        "workers",
        "requests",
        "wall ms",
        "req/s",
        "zero-setup %",
        "cache hit %",
        "mean latency ms",
    ]);

    for n in [4u32, 6, 8] {
        let stream = mixed_workload(n, requests, seed);
        for workers in [1usize, 2, 4, 8] {
            let engine = Engine::new(EngineConfig { workers, ..EngineConfig::default() });
            let start = Instant::now();
            let outcomes = engine.run_batch(stream.iter().cloned());
            let wall = start.elapsed();
            assert!(outcomes.iter().all(benes_engine::RequestOutcome::is_ok));

            let stats = engine.stats();
            assert_eq!(stats.completed as usize, requests);
            table.row(vec![
                n.to_string(),
                workers.to_string(),
                requests.to_string(),
                format!("{:.2}", wall.as_secs_f64() * 1e3),
                format!("{:.0}", requests as f64 / wall.as_secs_f64()),
                format!("{:.1}", stats.zero_setup_rate() * 100.0),
                format!("{:.1}", stats.cache_hit_rate() * 100.0),
                // End-to-end latency: includes queue wait, since the
                // whole batch is submitted up front.
                format!("{:.2}", stats.latency_mean_ns as f64 / 1e6),
            ]);
        }
    }
    println!("{}", table.render());

    // One detailed report at the headline configuration.
    let engine = Engine::new(EngineConfig { workers: 4, ..EngineConfig::default() });
    let outcomes = engine.run_batch(mixed_workload(6, requests, seed));
    assert!(outcomes.iter().all(benes_engine::RequestOutcome::is_ok));
    println!("detailed stats at n = 6, 4 workers:\n{}", engine.stats().report());
    println!(
        "observation: the zero-set-up tiers (self-route, omega-bit) and the plan\n\
         cache absorb the workload's repeats, so only first-seen hard permutations\n\
         pay the O(N log N) Waksman set-up — the paper's motivation for favouring\n\
         F(n) routing, measured end to end."
    );
}
