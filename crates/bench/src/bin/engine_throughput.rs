//! Experiment EXP-ENGINE: batched routing-engine throughput.
//!
//! Drives the `benes-engine` worker pool with a reproducible mixed
//! workload (Table I BPC members, random `Ω(n)` members, repeated and
//! fresh hard permutations) and reports throughput as the worker count
//! scales, plus the tier mix, cache effectiveness and latency quantiles
//! that produced it.
//!
//! Two load models run per grid cell:
//!
//! * **closed** — a bounded fleet of client threads each submit one
//!   request and wait for it before submitting the next, so the
//!   in-flight count never exceeds the fleet size. Latency under this
//!   model approximates service time; queue wait and service time are
//!   also reported separately (the engine decomposes them at the
//!   dequeue instant).
//! * **open** — arrivals are *paced*: at least two submitter threads
//!   offer requests on an absolute schedule at 70% of the cell's
//!   measured closed-loop throughput, independent of completions, and
//!   redeem their tickets afterwards. Latency under this model is the
//!   genuine end-to-end distribution of a served-but-not-saturated
//!   system. (The previous version submitted the whole batch up front
//!   from one thread, which made p50 queue wait identical to p50
//!   latency — it measured backlog depth, not behaviour under load.)
//!
//! Usage: `engine_throughput [--requests N] [--json PATH]
//!                           [--assert-scaling auto|FACTOR]`
//!
//! `--json` additionally writes the machine-readable results as
//! `BENCH_ENGINE.json` with a stable schema (`experiment`, `requests`,
//! `seed`, `runs[]` with per-run throughput, overload counters —
//! `shed`, `rejected`, `deadline_exceeded`, all zero on this healthy,
//! unbounded-queue grid — and latency quantiles). Existing fields keep
//! their names; each run also carries `mode`, the queue-wait /
//! service-time quantiles, and (additively) `offered_rps` — the open
//! model's target arrival rate, `0` for closed runs.
//!
//! `--assert-scaling` fails the process unless closed-loop throughput
//! at n = 8 with 8 workers beats 1 worker by the given factor (closed
//! mode measures capacity; paced open mode tracks its offered rate by
//! construction). `auto` derives the factor from the machine's
//! available parallelism (a single-core runner can only assert no
//! regression; an 8-core one demands real scaling).

use benes_bench::Table;
use benes_engine::workload::mixed_workload;
use benes_engine::{Engine, EngineConfig, EngineStats};
use benes_perm::Permutation;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Open,
    Closed,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Open => "open",
            Mode::Closed => "closed",
        }
    }
}

struct Run {
    n: u32,
    workers: usize,
    mode: Mode,
    wall_ms: f64,
    req_per_s: f64,
    offered_rps: f64,
    stats: EngineStats,
}

impl Run {
    /// One schema-stable JSON object for this run (hand-rolled: the
    /// vendored serde_json stub has no map type). The pre-existing
    /// fields keep their names and meaning; `mode`, `queue_wait_ns`
    /// and `service_ns` are additive.
    fn to_json(&self) -> String {
        let lat = &self.stats.latency;
        let wait = &self.stats.queue_wait;
        let svc = &self.stats.service;
        format!(
            "{{\"n\":{},\"workers\":{},\"mode\":\"{}\",\"wall_ms\":{:.3},\
             \"req_per_s\":{:.1},\"offered_rps\":{:.1},\
             \"zero_setup_pct\":{:.2},\"cache_hit_pct\":{:.2},\
             \"shed\":{},\"rejected\":{},\"deadline_exceeded\":{},\
             \"latency_ns\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\
             \"mean\":{},\"max\":{}}},\
             \"queue_wait_ns\":{{\"p50\":{},\"p99\":{}}},\
             \"service_ns\":{{\"p50\":{},\"p99\":{}}}}}",
            self.n,
            self.workers,
            self.mode.name(),
            self.wall_ms,
            self.req_per_s,
            self.offered_rps,
            self.stats.zero_setup_rate() * 100.0,
            self.stats.cache_hit_rate() * 100.0,
            self.stats.shed,
            self.stats.rejected,
            self.stats.deadline_exceeded,
            lat.quantile(0.5),
            lat.quantile(0.9),
            lat.quantile(0.99),
            lat.quantile(0.999),
            lat.mean(),
            lat.max(),
            wait.quantile(0.5),
            wait.quantile(0.99),
            svc.quantile(0.5),
            svc.quantile(0.99),
        )
    }
}

fn parse_args() -> (usize, Option<String>, Option<f64>) {
    let mut requests = 4000usize;
    let mut json = None;
    let mut scaling = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => {
                let v = args.next().expect("--requests needs a value");
                requests = v.parse().expect("--requests must be a positive integer");
                assert!(requests > 0, "--requests must be a positive integer");
            }
            "--json" => json = Some(args.next().expect("--json needs a path")),
            "--assert-scaling" => {
                let v = args.next().expect("--assert-scaling needs auto or a factor");
                scaling = Some(scaling_factor(&v));
            }
            other => panic!(
                "unknown argument `{other}` (try --requests N / --json PATH / \
                 --assert-scaling auto|FACTOR)"
            ),
        }
    }
    (requests, json, scaling)
}

/// The demanded 8-worker / 1-worker speed-up. `auto` keys it to the
/// cores actually available: with 8+ the pool must deliver ≥ 3×, with
/// fewer the bar drops, and a single-core box can only require that 8
/// workers are not substantially *slower* than 1 (coordination
/// overhead bounded, the failure mode the old single-lock queue had).
fn scaling_factor(spec: &str) -> f64 {
    match spec {
        "auto" => {
            match std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1) {
                p if p >= 8 => 3.0,
                p if p >= 4 => 1.8,
                p if p >= 2 => 1.2,
                _ => 0.5,
            }
        }
        s => {
            let f: f64 = s.parse().expect("--assert-scaling must be auto or a number");
            assert!(f > 0.0, "--assert-scaling factor must be positive");
            f
        }
    }
}

/// Closed-loop driver: `clients` threads round-robin over the shared
/// workload index, each submitting one request and waiting for its
/// outcome before taking the next, bounding in-flight requests at
/// `clients`.
fn run_closed(engine: &Engine, stream: &[Permutation], clients: usize) -> Duration {
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(perm) = stream.get(i) else { break };
                let outcome = engine.submit(perm.clone()).wait();
                assert!(
                    outcome.is_ok(),
                    "closed-loop request failed: {:?}",
                    outcome.result
                );
            });
        }
    });
    start.elapsed()
}

/// Paced open-loop driver: `submitters` threads offer requests on an
/// **absolute** arrival schedule at `rate` req/s in aggregate — thread
/// `t` owns arrivals `t, t + submitters, …`, sleeps until each one's
/// scheduled instant and submits without waiting for any outcome, so
/// arrivals are independent of completions (the defining property of
/// an open model). An oversleep self-corrects: later arrivals are
/// already due and go out back-to-back until the schedule catches up,
/// so the long-run offered rate equals `rate` regardless of timer
/// granularity. Tickets are redeemed after the thread's last arrival;
/// per-request latency is measured by the engine at submit time, so
/// redemption order does not distort it.
fn run_open_paced(
    engine: &Engine,
    stream: &[Permutation],
    submitters: usize,
    rate: f64,
) -> Duration {
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..submitters {
            s.spawn(move || {
                let mut tickets = Vec::new();
                for (idx, perm) in stream.iter().enumerate().skip(t).step_by(submitters) {
                    let due = start + Duration::from_secs_f64(idx as f64 / rate);
                    let wait = due.saturating_duration_since(Instant::now());
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                    tickets.push(engine.submit(perm.clone()));
                }
                for ticket in tickets {
                    let outcome = ticket.wait();
                    assert!(
                        outcome.is_ok(),
                        "open-loop request failed: {:?}",
                        outcome.result
                    );
                }
            });
        }
    });
    start.elapsed()
}

fn main() {
    let (requests, json_path, scaling) = parse_args();
    println!("== EXP-ENGINE: batched routing-engine throughput ==\n");

    let seed = 0xbe25;

    let mut table = Table::new(vec![
        "n",
        "workers",
        "mode",
        "requests",
        "wall ms",
        "req/s",
        "offered/s",
        "zero-setup %",
        "cache hit %",
        "p50 lat ms",
        "p99 lat ms",
        "p99 wait ms",
        "p99 svc ms",
    ]);
    let mut runs: Vec<Run> = Vec::new();

    for n in [4u32, 6, 8] {
        let stream = mixed_workload(n, requests, seed);
        for workers in [1usize, 2, 4, 8] {
            // Closed first: its throughput calibrates the open model's
            // offered rate for the same cell.
            let mut closed_rps = 0.0f64;
            for mode in [Mode::Closed, Mode::Open] {
                let engine =
                    Engine::new(EngineConfig { workers, ..EngineConfig::default() });
                let (wall, offered_rps) = match mode {
                    // In-flight bound: 2 requests per worker keeps the
                    // pool busy without building an open-loop backlog.
                    Mode::Closed => (run_closed(&engine, &stream, workers * 2), 0.0),
                    Mode::Open => {
                        // Offer 70% of the measured closed-loop
                        // capacity from at least two pacing threads:
                        // loaded, not saturated, and never a
                        // single-thread submit burst.
                        let rate = (closed_rps * 0.7).max(1.0);
                        let submitters = workers.clamp(2, 4);
                        (run_open_paced(&engine, &stream, submitters, rate), rate)
                    }
                };
                if mode == Mode::Closed {
                    closed_rps = requests as f64 / wall.as_secs_f64();
                }

                let stats = engine.stats();
                assert_eq!(stats.completed as usize, requests);
                table.row(vec![
                    n.to_string(),
                    workers.to_string(),
                    mode.name().to_string(),
                    requests.to_string(),
                    format!("{:.2}", wall.as_secs_f64() * 1e3),
                    format!("{:.0}", requests as f64 / wall.as_secs_f64()),
                    format!("{:.0}", offered_rps),
                    format!("{:.1}", stats.zero_setup_rate() * 100.0),
                    format!("{:.1}", stats.cache_hit_rate() * 100.0),
                    // Closed mode: latency ≈ service time. Open mode:
                    // genuine end-to-end latency at the offered rate.
                    // The wait/svc columns make the decomposition
                    // explicit either way.
                    format!("{:.2}", stats.latency.quantile(0.5) as f64 / 1e6),
                    format!("{:.2}", stats.latency.quantile(0.99) as f64 / 1e6),
                    format!("{:.2}", stats.queue_wait.quantile(0.99) as f64 / 1e6),
                    format!("{:.2}", stats.service.quantile(0.99) as f64 / 1e6),
                ]);
                runs.push(Run {
                    n,
                    workers,
                    mode,
                    wall_ms: wall.as_secs_f64() * 1e3,
                    req_per_s: requests as f64 / wall.as_secs_f64(),
                    offered_rps,
                    stats,
                });
            }
        }
    }
    println!("{}", table.render());

    if let Some(path) = json_path {
        let body: Vec<String> = runs.iter().map(Run::to_json).collect();
        let doc = format!(
            "{{\"experiment\":\"EXP-ENGINE\",\"requests\":{requests},\"seed\":{seed},\
             \"runs\":[{}]}}\n",
            body.join(",")
        );
        std::fs::write(&path, doc).expect("write --json output");
        println!("machine-readable results written to {path}\n");
    }

    if let Some(factor) = scaling {
        let rps = |workers: usize| {
            runs.iter()
                .find(|r| r.n == 8 && r.workers == workers && r.mode == Mode::Closed)
                .expect("grid covers n=8")
                .req_per_s
        };
        let (one, eight) = (rps(1), rps(8));
        let ratio = eight / one;
        println!(
            "scaling check (closed loop, n = 8): 8 workers {eight:.0} req/s vs \
             1 worker {one:.0} req/s -> {ratio:.2}x (required >= {factor:.2}x)"
        );
        assert!(
            ratio >= factor,
            "worker scaling regressed: {ratio:.2}x < required {factor:.2}x \
             (8 workers {eight:.0} req/s, 1 worker {one:.0} req/s at n = 8)"
        );
    }

    // One detailed report at the headline configuration.
    let engine = Engine::new(EngineConfig { workers: 4, ..EngineConfig::default() });
    let outcomes = engine.run_batch(mixed_workload(6, requests, seed));
    assert!(outcomes.iter().all(benes_engine::RequestOutcome::is_ok));
    println!("detailed stats at n = 6, 4 workers:\n{}", engine.stats().report());
    println!(
        "observation: the zero-set-up tiers (self-route, omega-bit) and the plan\n\
         cache absorb the workload's repeats, so only first-seen hard permutations\n\
         pay the O(N log N) Waksman set-up — the paper's motivation for favouring\n\
         F(n) routing, measured end to end."
    );
}
