//! Experiment EXP-THM456: the composition theorems of §II, verified on
//! the network.
//!
//! * Theorem 4: within-block permutations over a J-partition stay in `F`;
//!   includes the Cannon / Dekel–Nassimi–Sahni array mappings the paper
//!   lists;
//! * Theorem 5: block-to-block mappings with an `F` block permutation;
//! * Theorem 6: the hierarchical 3-D array example
//!   `A(i, j, k) → A'((i+j+k) mod 2^r, (p·j + c) mod 2^s, j ⊕ k)`.

use benes_bench::{random_f_member, Table};
use benes_core::class_f::is_in_f;
use benes_core::Benes;
use benes_perm::bpc::Bpc;
use benes_perm::omega::cyclic_shift;
use benes_perm::partition::{
    between_blocks, hierarchical_composite, within_blocks, JPartition,
};
use benes_perm::Permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);

    println!("== EXP-THM456: composition theorems on the network ==\n");

    println!("-- Theorem 4: array mappings (4×4 matrix, n = 4) --\n");
    let mut t4 = Table::new(vec!["mapping", "in F", "self-routes on B(4)"]);
    let net4 = Benes::new(4);
    let rows = JPartition::new(4, [2, 3]).expect("row bits");
    let cols = JPartition::new(4, [0, 1]).expect("column bits");

    let cases: Vec<(&str, Permutation)> = vec![
        (
            "A(i,j) -> A(i, (i+j) mod 4)   [Cannon row skew]",
            within_blocks(&rows, |r| cyclic_shift(2, r as i64)).expect("valid"),
        ),
        (
            "A(i,j) -> A((i+j) mod 4, j)   [Cannon column skew]",
            within_blocks(&cols, |c| cyclic_shift(2, c as i64)).expect("valid"),
        ),
        (
            "A(i,j) -> A(i, j XOR i)       [conditional column flip]",
            within_blocks(&rows, |r| {
                Permutation::from_fn(4, move |j| (u64::from(j) ^ r) as u32).expect("valid")
            })
            .expect("valid"),
        ),
        (
            "A(i,j) -> A(i^R, j)           [row bit reversal, Thm 5]",
            between_blocks(&rows, &Bpc::bit_reversal(2).to_permutation(), |_| {
                Permutation::identity(4)
            })
            .expect("valid"),
        ),
        (
            "A(i,j) -> A((i+1) mod 4, (j+i) mod 4)  [Thm 5 combined]",
            between_blocks(&rows, &cyclic_shift(2, 1), |r| cyclic_shift(2, r as i64))
                .expect("valid"),
        ),
    ];
    for (name, perm) in cases {
        let in_f = is_in_f(&perm);
        let routes = net4.self_route(&perm).is_success();
        t4.row(vec![name.into(), in_f.to_string(), routes.to_string()]);
        assert!(in_f && routes, "{name} must be in F by Theorems 4/5");
    }
    println!("{}", t4.render());

    println!("-- Theorem 4/5 randomized sweep (n = 6, random F members per block) --\n");
    let net6 = Benes::new(6);
    let mut checked = 0;
    for _ in 0..20 {
        let j = JPartition::new(6, [1, 4]).expect("valid J");
        let inner: Vec<Permutation> =
            (0..j.block_count()).map(|_| random_f_member(&mut rng, 4)).collect();
        let block_map = random_f_member(&mut rng, 2);
        let g = between_blocks(&j, &block_map, |b| inner[b as usize].clone())
            .expect("valid composite");
        assert!(is_in_f(&g), "Theorem 5 violated");
        assert!(net6.self_route(&g).is_success());
        checked += 1;
    }
    println!("verified {checked} random Theorem-5 composites in F(6)\n");

    println!("-- Theorem 6: 3-D array example (r = s = t = 2, n = 6) --\n");
    // Levels: j (bits 5..4), k (bits 3..2), i (bits 1..0); the paper's
    // mapping i' = (i+j+k) mod 2^r, j' = (3j + 1) mod 2^s, k' = j XOR k.
    let g =
        hierarchical_composite(6, &[0b110000, 0b001100, 0b000011], |t, parents| match t {
            0 => benes_perm::omega::p_ordering_shift(2, 3, 1),
            1 => {
                let j = parents[0];
                Permutation::from_fn(4, move |k| (u64::from(k) ^ j) as u32).expect("valid")
            }
            _ => cyclic_shift(2, (parents[0] + parents[1]) as i64),
        })
        .expect("valid hierarchical composite");
    let in_f = is_in_f(&g);
    let routes = net6.self_route(&g).is_success();
    println!("A(i,j,k) -> A'((i+j+k) mod 4, (3j+1) mod 4, j XOR k)");
    println!("in F(6): {in_f}; self-routes on B(6): {routes}");
    assert!(in_f && routes, "Theorem 6 example must be in F");

    println!("\n-- Theorem 6: deeper hierarchies (4 levels, n = 8) --\n");
    let net8 = Benes::new(8);
    for trial in 0..10 {
        let masks = [0b1100_0000u64, 0b0011_0000, 0b0000_1100, 0b0000_0011];
        let seeds: Vec<u64> = (0..4).map(|k| 97 * (trial + 1) + k).collect();
        let g = hierarchical_composite(8, &masks, |t, parents| {
            let salt: u64 = seeds[t] + parents.iter().sum::<u64>();
            cyclic_shift(2, (salt % 4) as i64)
        })
        .expect("valid");
        assert!(is_in_f(&g), "deep Theorem 6 composite escaped F");
        assert!(net8.self_route(&g).is_success());
    }
    println!("verified 10 four-level hierarchical composites in F(8)");
    println!("\nreproduced: Theorems 4, 5 and 6 hold on the live network.");
}
