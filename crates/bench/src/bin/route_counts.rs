//! Experiment EXP-ROUTES: the §III route-count claims, measured.
//!
//! * CCC: `2·log N − 1` masked interchanges (`4·log N − 2` unit-routes
//!   two-word);
//! * PSC: `4·log N − 3` unit-routes (`2·log N` with the Ω shortcut);
//! * MCC: `7·√N − 8` unit-routes;
//! * baseline: bitonic sort route — `n(n+1)` on the cube,
//!   `(measured)` on the mesh;
//! * BPC skip ablation: steps saved for each Table I permutation.

use benes_bench::{random_f_member, Table};
use benes_perm::bpc::Bpc;
use benes_simd::ccc::Ccc;
use benes_simd::machine::{records_for, verify_routed};
use benes_simd::mcc::Mcc;
use benes_simd::psc::Psc;
use benes_simd::sort_route;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    println!("== EXP-ROUTES: §III measured route counts ==\n");
    let mut table = Table::new(vec![
        "n",
        "N",
        "CCC steps (2n-1)",
        "CCC 2-word routes (4n-2)",
        "PSC routes (4n-3)",
        "MCC routes (7√N-8)",
        "CCC sort routes (n(n+1))",
        "MCC sort routes",
    ]);
    for n in [2u32, 4, 6, 8, 10, 12] {
        let perm = random_f_member(&mut rng, n);
        let (ccc_out, ccc_stats) = Ccc::new(n).route_f(records_for(&perm));
        let (psc_out, psc_stats) = Psc::new(n).route_f(records_for(&perm));
        let (mcc_out, mcc_stats) = Mcc::new(n).route_f(records_for(&perm));
        assert!(verify_routed(&perm, &ccc_out), "random F member must route (CCC)");
        assert!(verify_routed(&perm, &psc_out), "random F member must route (PSC)");
        assert!(verify_routed(&perm, &mcc_out), "random F member must route (MCC)");

        let side = 1u64 << (n / 2);
        assert_eq!(ccc_stats.steps, 2 * u64::from(n) - 1);
        assert_eq!(psc_stats.unit_routes, 4 * u64::from(n) - 3);
        assert_eq!(mcc_stats.unit_routes, 7 * side - 8);

        table.row(vec![
            n.to_string(),
            (1u64 << n).to_string(),
            ccc_stats.steps.to_string(),
            ccc_stats.unit_routes_two_word().to_string(),
            psc_stats.unit_routes.to_string(),
            mcc_stats.unit_routes.to_string(),
            sort_route::ccc_sort_unit_routes(n).to_string(),
            sort_route::mcc_sort_unit_routes(n).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reproduced: F(n) routing is O(log N) on CCC/PSC and 7·√N−8 on the MCC, \
         versus O(log² N) / larger-constant O(√N) for the sorting baseline.\n"
    );

    println!("== shortcut and ablation measurements ==\n");
    let mut shortcuts = Table::new(vec![
        "n",
        "full CCC steps",
        "Ω shortcut",
        "Ω⁻¹ shortcut",
        "PSC full",
        "PSC Ω",
    ]);
    for n in [4u32, 8, 12] {
        let ccc = Ccc::new(n);
        let psc = Psc::new(n);
        let affine = benes_perm::omega::p_ordering_shift(n, 5, 3);
        let (_, full) = ccc.route_f(records_for(&affine));
        let (o_out, o_stats) = ccc.route_omega(records_for(&affine));
        let (i_out, i_stats) = ccc.route_inverse_omega(records_for(&affine));
        assert!(verify_routed(&affine, &o_out) && verify_routed(&affine, &i_out));
        let (_, psc_full) = psc.route_f(records_for(&affine));
        let (po_out, po_stats) = psc.route_omega(records_for(&affine));
        assert!(verify_routed(&affine, &po_out));
        shortcuts.row(vec![
            n.to_string(),
            full.steps.to_string(),
            o_stats.steps.to_string(),
            i_stats.steps.to_string(),
            psc_full.unit_routes.to_string(),
            po_stats.unit_routes.to_string(),
        ]);
    }
    println!("{}", shortcuts.render());

    println!("== BPC skip ablation (iterations with A_b = +b skipped) ==\n");
    let n = 8;
    let ccc = Ccc::new(n);
    let mut ablation =
        Table::new(vec!["Table I permutation", "steps (full = 2n-1 = 15)", "skipped"]);
    let cases: Vec<(&str, Bpc)> = vec![
        ("Identity", Bpc::identity(n)),
        ("Matrix Transpose", Bpc::matrix_transpose(n)),
        ("Bit Reversal", Bpc::bit_reversal(n)),
        ("Vector Reversal", Bpc::vector_reversal(n)),
        ("Perfect Shuffle", Bpc::perfect_shuffle(n)),
        ("Unshuffle", Bpc::unshuffle(n)),
        ("Shuffled Row Major", Bpc::shuffled_row_major(n)),
        ("Bit Shuffle", Bpc::bit_shuffle(n)),
    ];
    for (name, b) in cases {
        let payloads: Vec<u32> = (0..1u32 << n).collect();
        let (out, stats) = ccc.route_bpc(&b, payloads);
        assert!(verify_routed(&b.to_permutation(), &out), "{name}");
        let full = 2 * u64::from(n) - 1;
        ablation.row(vec![
            name.to_string(),
            stats.steps.to_string(),
            (full - stats.steps).to_string(),
        ]);
    }
    println!("{}", ablation.render());
    println!(
        "reproduced: \"for a BPC permutation ... if A_j = j then the iteration(s) \
         b = j may be skipped\" (§III). At even n the rotations and reversals fix \
         no bit position (0 skipped), while the interleaving permutations fix \
         some — the measured savings above."
    );
}
