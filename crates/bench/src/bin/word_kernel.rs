//! Experiment EXP-WORD: scalar vs word-parallel routing kernels.
//!
//! Routes the same seeded stream of `F(n)` members through both forms
//! of the self-routing kernel — the scalar per-tag oracle
//! (`Benes::self_route`) and the bitmask-word kernel
//! (`Benes::self_route_fast`), which advances whole switch columns as
//! `u64` masks — and reports single-thread routes/s and the speed-up.
//! The omega-bit kernel pair is measured the same way. Every word
//! outcome is checked against the scalar oracle's success verdict, so
//! the numbers can't come from a kernel that routes wrong.
//!
//! Usage: `word_kernel [--perms N] [--assert-speedup FACTOR]`
//!
//! `--assert-speedup` fails the process unless the word kernel beats
//! the scalar kernel by the given factor at `n = 8` (the engine
//! benchmark's largest order).

use benes_bench::{random_f_member, Table};
use benes_core::Benes;
use benes_perm::Permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn parse_args() -> (usize, Option<f64>) {
    let mut perms = 2000usize;
    let mut assert_speedup = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--perms" => {
                let v = args.next().expect("--perms needs a value");
                perms = v.parse().expect("--perms must be a positive integer");
                assert!(perms > 0, "--perms must be a positive integer");
            }
            "--assert-speedup" => {
                let v = args.next().expect("--assert-speedup needs a factor");
                let f: f64 = v.parse().expect("--assert-speedup must be a number");
                assert!(f > 0.0, "--assert-speedup factor must be positive");
                assert_speedup = Some(f);
            }
            other => {
                panic!("unknown argument `{other}` (try --perms N / --assert-speedup F)")
            }
        }
    }
    (perms, assert_speedup)
}

/// Times `route` over the whole stream, returning (seconds, successes).
fn time_over(
    stream: &[Permutation],
    mut route: impl FnMut(&Permutation) -> bool,
) -> (f64, usize) {
    let start = Instant::now();
    let ok = stream.iter().filter(|d| route(d)).count();
    (start.elapsed().as_secs_f64(), ok)
}

fn main() {
    let (perms, assert_speedup) = parse_args();
    println!("== EXP-WORD: scalar vs word-parallel kernel throughput ==\n");

    let mut rng = StdRng::seed_from_u64(0x30bd);
    let mut table = Table::new(vec![
        "n",
        "N",
        "perms",
        "scalar routes/s",
        "word routes/s",
        "speed-up",
        "omega scalar/s",
        "omega word/s",
        "omega speed-up",
    ]);

    let grid = [4u32, 6, 8, 10];
    let mut speedup_at_8 = 0.0f64;
    for n in grid {
        let net = Benes::new(n);
        let stream: Vec<Permutation> =
            (0..perms).map(|_| random_f_member(&mut rng, n)).collect();

        // Cross-check first (untimed): the word kernel must agree with
        // the scalar oracle on every permutation in the stream.
        for d in &stream {
            assert_eq!(
                net.self_route_fast(d).unwrap().is_success(),
                net.self_route(d).is_success(),
                "word/scalar disagreement at n = {n}"
            );
        }

        let (scalar_s, scalar_ok) = time_over(&stream, |d| net.self_route(d).is_success());
        let (word_s, word_ok) =
            time_over(&stream, |d| net.self_route_fast(d).unwrap().is_success());
        assert_eq!(scalar_ok, word_ok);
        let (oscalar_s, _) = time_over(&stream, |d| net.self_route_omega(d).is_success());
        let (oword_s, _) =
            time_over(&stream, |d| net.self_route_omega_fast(d).unwrap().is_success());

        let speedup = scalar_s / word_s;
        if n == 8 {
            speedup_at_8 = speedup;
        }
        table.row(vec![
            n.to_string(),
            (1u64 << n).to_string(),
            perms.to_string(),
            format!("{:.0}", perms as f64 / scalar_s),
            format!("{:.0}", perms as f64 / word_s),
            format!("{speedup:.1}x"),
            format!("{:.0}", perms as f64 / oscalar_s),
            format!("{:.0}", perms as f64 / oword_s),
            format!("{:.1}x", oscalar_s / oword_s),
        ]);
    }
    println!("{}", table.render());
    println!(
        "observation: the word kernel advances a whole switch column per mask\n\
         operation (delta-swaps below word width, word-pair swaps above), so its\n\
         advantage grows with N — the scalar kernel touches every tag at every\n\
         stage, the word kernel touches N/64 words per bit-plane."
    );

    if let Some(factor) = assert_speedup {
        assert!(
            speedup_at_8 >= factor,
            "word-kernel speed-up regressed at n = 8: {speedup_at_8:.1}x < \
             required {factor:.1}x"
        );
        println!(
            "\nspeed-up check: {speedup_at_8:.1}x at n = 8 (required >= {factor:.1}x)"
        );
    }
}
