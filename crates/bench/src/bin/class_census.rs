//! Experiment EXP-CENSUS + EXP-CLOSURE: the §II class-richness picture,
//! measured exhaustively at n = 2 and n = 3.
//!
//! * cardinalities of `F`, `BPC`, `Ω`, `Ω⁻¹` versus `N!`;
//! * containments `BPC ⊆ F` (Theorem 2) and `Ω⁻¹ ⊆ F` (Theorem 3);
//! * non-containments: `Ω ⊄ F` (Fig. 5's witness), `BPC ⊄ Ω ∪ Ω⁻¹`,
//!   cyclic shift ∉ BPC;
//! * Lenfant FUB families land inside `F`;
//! * closure failure: `A = (3,0,1,2)`, `B = (0,1,3,2)`, `A∘B ∉ F(2)`,
//!   plus an exhaustive count of how often `F(2)` composition escapes.

use benes_bench::{all_permutations, Table};
use benes_core::class_f::is_in_f;
use benes_perm::bpc::Bpc;
use benes_perm::omega::{cyclic_shift, is_inverse_omega, is_omega};
use benes_perm::Permutation;

fn main() {
    println!("== EXP-CENSUS: exhaustive class census (§II) ==\n");
    let mut table = Table::new(vec![
        "n",
        "N!",
        "|F(n)|",
        "|BPC(n)| (2^n n!)",
        "|Ω(n)| (2^(nN/2))",
        "|Ω⁻¹(n)|",
        "BPC⊆F",
        "Ω⁻¹⊆F",
        "Ω⊆F?",
    ]);

    for n in [2u32, 3] {
        let perms = all_permutations(1 << n);
        let mut f = 0u64;
        let mut bpc = 0u64;
        let mut om = 0u64;
        let mut inv = 0u64;
        let mut bpc_in_f = true;
        let mut inv_in_f = true;
        let mut omega_in_f = true;
        for d in &perms {
            let in_f = is_in_f(d);
            let in_bpc = Bpc::from_permutation(d).is_some();
            let in_om = is_omega(d);
            let in_inv = is_inverse_omega(d);
            f += u64::from(in_f);
            bpc += u64::from(in_bpc);
            om += u64::from(in_om);
            inv += u64::from(in_inv);
            if in_bpc && !in_f {
                bpc_in_f = false;
            }
            if in_inv && !in_f {
                inv_in_f = false;
            }
            if in_om && !in_f {
                omega_in_f = false;
            }
        }
        assert!(bpc_in_f, "Theorem 2 violated at n = {n}");
        assert!(inv_in_f, "Theorem 3 violated at n = {n}");
        assert!(!omega_in_f, "Ω must escape F (Fig. 5)");
        assert_eq!(bpc, (1u64 << n) * (1..=u64::from(n)).product::<u64>());
        assert_eq!(om, 1u64 << (u64::from(n) * (1 << n) / 2));

        table.row(vec![
            n.to_string(),
            perms.len().to_string(),
            f.to_string(),
            bpc.to_string(),
            om.to_string(),
            inv.to_string(),
            "yes".into(),
            "yes".into(),
            "NO".into(),
        ]);
    }
    println!("{}", table.render());

    println!("-- named witnesses --\n");
    let fig5 = Permutation::from_destinations(vec![1, 3, 2, 0]).expect("valid");
    println!(
        "Fig. 5 witness (1,3,2,0): omega = {}, in F = {}  (Ω ⊄ F)",
        is_omega(&fig5),
        is_in_f(&fig5)
    );
    assert!(is_omega(&fig5) && !is_in_f(&fig5));

    let shift = cyclic_shift(3, 1);
    println!(
        "cyclic shift by 1 (n=3): BPC = {:?}, Ω⁻¹ = {}, in F = {}  (Ω⁻¹ ⊄ BPC)",
        Bpc::from_permutation(&shift).map(|b| b.to_string()),
        is_inverse_omega(&shift),
        is_in_f(&shift)
    );
    assert!(Bpc::from_permutation(&shift).is_none());

    let rev = Bpc::bit_reversal(3).to_permutation();
    println!(
        "bit reversal (n=3): BPC = yes, Ω = {}, Ω⁻¹ = {}  (BPC ⊄ Ω ∪ Ω⁻¹)\n",
        is_omega(&rev),
        is_inverse_omega(&rev)
    );
    assert!(!is_omega(&rev) && !is_inverse_omega(&rev));

    println!("-- Lenfant FUB families inside F (§II) --\n");
    for n in [3u32, 4, 5] {
        let lambda = benes_perm::fub::lambda(n, 3, 2);
        let delta = benes_perm::fub::delta(n, n - 1, 1);
        let eta = benes_perm::fub::eta(n, 1);
        assert!(is_in_f(&lambda) && is_in_f(&delta) && is_in_f(&eta));
        println!("n = {n}: λ, δ, η ∈ F({n})  (α, β, γ ⊂ BPC({n}) ⊆ F, Theorem 2)");
    }

    println!("\n== EXP-CLOSURE: F is not closed under composition (§II) ==\n");
    let a = Permutation::from_destinations(vec![3, 0, 1, 2]).expect("valid");
    let b = Permutation::from_destinations(vec![0, 1, 3, 2]).expect("valid");
    let ab = a.then(&b);
    println!("A = {a} ∈ F(2): {}", is_in_f(&a));
    println!("B = {b} ∈ F(2): {}", is_in_f(&b));
    println!("A∘B = {ab} ∈ F(2): {}", is_in_f(&ab));
    assert!(is_in_f(&a) && is_in_f(&b) && !is_in_f(&ab));
    assert_eq!(ab.destinations(), &[2, 0, 1, 3]);

    // Exhaustive closure census at n = 2.
    let f2: Vec<Permutation> = all_permutations(4).into_iter().filter(is_in_f).collect();
    let mut escaped = 0u64;
    for x in &f2 {
        for y in &f2 {
            if !is_in_f(&x.then(y)) {
                escaped += 1;
            }
        }
    }
    println!(
        "\nexhaustive: of {}² = {} compositions of F(2) members, {} leave F(2).",
        f2.len(),
        f2.len() * f2.len(),
        escaped
    );
    assert!(escaped > 0);
    println!("reproduced: the paper's counterexample and the census agree.\n");

    census_extension();
}

/// Beyond the paper: exact |F(n)| from the transfer-matrix product
/// formula (benes_core::census), cross-checked against the brute force
/// above, plus a Monte-Carlo estimate for n = 4. Pass `--exact4` to also
/// compute |F(4)| exactly (~10⁸ pair weights; release build recommended).
fn census_extension() {
    use benes_core::census;

    println!("== |F(n)| exactly (transfer-matrix formula over Theorem 1) ==\n");
    let mut table = Table::new(vec!["n", "N!", "|F(n)| exact", "fraction of N!"]);
    let factorials = [2.0, 24.0, 40320.0];
    for n in 1..=3u32 {
        let exact = census::count_f(n);
        table.row(vec![
            n.to_string(),
            format!("{}", factorials[n as usize - 1]),
            exact.to_string(),
            format!("{:.4}", exact as f64 / factorials[n as usize - 1]),
        ]);
    }
    println!("{}", table.render());

    // Deterministic LCG for the estimator (no RNG dependency needed).
    let mut state = 0x2545F4914F6CDD1Du64;
    let (est, se) = census::estimate_count_f(4, 20_000, |len| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % len
    });
    let fact16 = 20_922_789_888_000.0f64; // 16!
    println!(
        "|F(4)| ≈ {est:.3e} ± {se:.1e} (Monte-Carlo over exact F(3) pairs); \
         fraction of 16! ≈ {:.2e}",
        est / fact16
    );

    if std::env::args().any(|a| a == "--exact4") {
        println!("computing |F(4)| exactly (this enumerates |F(3)|² pairs)…");
        let exact = census::count_f(4);
        println!("|F(4)| = {exact} (fraction of 16! = {:.3e})", exact as f64 / fact16);
    }
    println!(
        "\nthe self-routing class is vastly larger than BPC ∪ Ω ∪ Ω⁻¹ combined, \
         yet a vanishing fraction of all N! — exactly the trade the paper \
         monetizes with the omega bit and the external-set-up escape hatches."
    );
}
