//! Experiment FIG4: bit reversal self-routes on `B(3)` (paper Fig. 4).
//!
//! Reproduces the figure exactly: destination tags in binary on every
//! switch input at every stage, the state each switch sets itself to, and
//! the sorted output tags.

use benes_core::render::render_trace;
use benes_core::trace::RouteTrace;
use benes_core::Benes;
use benes_perm::bpc::Bpc;

fn main() {
    println!("== FIG4: bit reversal on B(3) under self-routing ==\n");
    let net = Benes::new(3);
    let bpc = Bpc::bit_reversal(3);
    let perm = bpc.to_permutation();
    println!("permutation: bit reversal, BPC A-vector {bpc} (Table I)");
    println!("destination tags D = {perm}\n");

    let trace = RouteTrace::capture_self_route(&net, &perm)
        .expect("permutation length matches B(3)");
    println!("{}", render_trace(&trace));

    assert!(trace.is_success(), "FIG4 must reproduce: bit reversal is in F(3)");
    println!("reproduced: input i reaches output reverse(i) with zero set-up steps;");
    println!("total delay = {} switch stages (2·log N − 1).", net.transit_delay());
}
