//! Experiment EXP-CHAOS: the deterministic chaos soak as a standalone
//! gate.
//!
//! Runs the seeded overload schedule from `benes_engine::chaos` —
//! normal traffic, a forced-failure burst that trips the per-fabric
//! circuit breaker, a recovery window, a real stuck-switch burst, a
//! heal, and a final drain — then prints the soak report and exits
//! nonzero if any invariant is violated:
//!
//! * conservation: `completed + failed + shed + canceled == submitted`;
//! * zero hung waiters (every outstanding `Ticket` resolved);
//! * the breaker opened under the burst, shed instead of retrying, and
//!   re-closed once the burst cleared.
//!
//! Usage: `chaos_soak [--seed N] [--requests N]`
//!
//! `scripts/chaos.sh` runs this with the tier-1 seed (3962), the same
//! seed the engine's `tests/chaos.rs` pins, so CI and the integration
//! tests exercise the identical schedule.

use benes_engine::{run_soak, SoakConfig};

fn parse_args() -> (u64, usize) {
    let mut seed = 3962u64;
    let mut requests = 200usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                seed = v.parse().expect("--seed must be an integer");
            }
            "--requests" => {
                let v = args.next().expect("--requests needs a value");
                requests = v.parse().expect("--requests must be a positive integer");
                assert!(requests > 0, "--requests must be a positive integer");
            }
            other => panic!("unknown argument `{other}` (try --seed N / --requests N)"),
        }
    }
    (seed, requests)
}

fn main() {
    let (seed, requests) = parse_args();
    println!("== EXP-CHAOS: deterministic chaos soak ==\n");
    println!("seed {seed}, base traffic {requests} requests per phase\n");

    let report = run_soak(&SoakConfig::new(seed, requests));
    println!("{}", report.render());

    if !report.healthy() {
        eprintln!("chaos soak FAILED: invariant violated (see report above)");
        std::process::exit(1);
    }
    println!("chaos soak passed: every admitted request reached exactly one terminal");
    println!("state, no waiter hung, and the breaker opened and re-closed on schedule.");
}
