//! Experiment TAB1: the example BPC permutations of the paper's Table I.
//!
//! For each named permutation: its `A`-vector (in the paper's high-to-low
//! notation), the expanded destination tags at `n = 3` (or `n = 4` for
//! the even-`n`-only entries), membership in `F(n)` for a sweep of sizes
//! (Theorem 2 says all must be members), and a live self-route on `B(n)`.

use benes_bench::Table;
use benes_core::class_f::is_in_f;
use benes_core::Benes;
use benes_perm::bpc::Bpc;

fn main() {
    println!("== TAB1: example permutations in BPC(n) (paper Table I) ==\n");

    // (name, paper A-vector, constructor, even-n-only)
    type Entry = (&'static str, &'static str, fn(u32) -> Bpc, bool);
    let entries: Vec<Entry> = vec![
        ("Matrix Transpose", "(n/2-1, ..., 0, n-1, ..., n/2)", Bpc::matrix_transpose, true),
        ("Bit Reversal", "(0, 1, ..., n-1)", Bpc::bit_reversal, false),
        ("Vector Reversal", "(-(n-1), ..., -1, -0)", Bpc::vector_reversal, false),
        ("Perfect Shuffle", "(0, n-1, n-2, ..., 1)", Bpc::perfect_shuffle, false),
        ("Unshuffle", "(n-2, ..., 0, n-1)", Bpc::unshuffle, false),
        ("Shuffled Row Major", "interleave halves", Bpc::shuffled_row_major, true),
        ("Bit Shuffle", "deinterleave", Bpc::bit_shuffle, true),
    ];

    let mut table = Table::new(vec![
        "permutation",
        "paper A-vector",
        "A (n=4)",
        "D (n=3 or 4)",
        "in F, n=1..10",
        "self-routes on B(n)",
    ]);

    for (name, paper_vec, ctor, even_only) in &entries {
        let show_n = if *even_only { 4 } else { 3 };
        let bpc = ctor(show_n);
        let perm = bpc.to_permutation();

        // Theorem 2 sweep: in F for every applicable n.
        let mut all_in_f = true;
        for n in 1..=10u32 {
            if *even_only && n % 2 == 1 {
                continue;
            }
            if n == 1 && *even_only {
                continue;
            }
            let p = ctor(n).to_permutation();
            if !is_in_f(&p) {
                all_in_f = false;
            }
        }

        // Live hardware check at the display size.
        let net = Benes::new(show_n);
        let routed = net.self_route(&perm).is_success();

        table.row(vec![
            (*name).to_string(),
            (*paper_vec).to_string(),
            ctor(4).to_string(),
            format!("{perm}"),
            if all_in_f { "yes (Thm 2)".into() } else { "VIOLATION".into() },
            if routed { "yes".into() } else { "NO".into() },
        ]);
        assert!(all_in_f && routed, "Table I entry {name} must be in F");
    }

    println!("{}", table.render());
    println!(
        "reproduced: all {} Table I permutations are in BPC(n) ⊆ F(n) and \
         self-route with zero set-up (Theorem 2).",
        entries.len()
    );
    println!("\n|BPC(n)| = 2^n · n!  — e.g. n=3: 48 of 40320 permutations (0.12%),");
    println!("yet BPC covers most data manipulations used by parallel algorithms.");
}
