//! Experiment FIG6: the CCC permutation algorithm performing bit reversal
//! on an 8-PE cube (paper Fig. 6).
//!
//! Prints the `D(i)^k` column after each of the `2n − 1 = 5` masked
//! interchanges, matching the figure's table.

use benes_bench::Table;
use benes_perm::bpc::Bpc;
use benes_simd::ccc::Ccc;
use benes_simd::machine::{records_for, verify_routed};

fn main() {
    println!("== FIG6: CCC algorithm, bit reversal, N = 8 ==\n");
    let ccc = Ccc::new(3);
    let perm = Bpc::bit_reversal(3).to_permutation();
    println!("destination tags D(i) = {perm}");
    println!("iteration sequence b = {:?}\n", ccc.iteration_bits());

    let (out, stats, snaps) = ccc.route_f_traced(records_for(&perm));

    let mut headers = vec!["i".to_string(), "D(i)".to_string()];
    for (k, &b) in ccc.iteration_bits().iter().enumerate() {
        headers.push(format!("D(i)^{} (b={})", k + 1, b));
    }
    let mut table = Table::new(headers.iter().map(String::as_str).collect());
    for i in 0..8usize {
        let mut row = vec![i.to_string()];
        for snap in &snaps {
            row.push(snap[i].to_string());
        }
        table.row(row);
    }
    println!("{}", table.render());

    assert!(verify_routed(&perm, &out), "FIG6 must reproduce");
    println!(
        "reproduced: routed in {} masked interchanges (2·log N − 1); {} actual \
         pair exchanges; {} unit-routes one-word / {} two-word.",
        stats.steps,
        stats.exchanges,
        stats.unit_routes,
        stats.unit_routes_two_word()
    );
    println!("\npaper's narrative checks:");
    println!(
        "  b=0: PE(6)/PE(7) exchange because D(6)_0 = 1 -> after-iteration D(6) = {}",
        snaps[1][6]
    );
    println!(
        "  b=2: PE(0)/PE(4) do NOT exchange (D(0)_2 = 0); PE(1)/PE(5) do (D(1)_2 = 1)"
    );
    assert_eq!(snaps[1][6], 7);
    assert_eq!(snaps[3][0], 0);
    assert_eq!(snaps[3][1], 1);
}
