//! Experiment EXP-SHARD: block-decomposition coordinator throughput.
//!
//! Routes random giant permutations (`N = 2^n`, default n = 14..18)
//! through `benes-shard`: three-stage decomposition, scatter of the
//! `2B + S` sub-permutations across a fleet of engine shards, gather,
//! and bitwise recombination verification. Reports wall time split into
//! decompose vs. route+verify, element throughput, and the fleet's
//! merged latency quantiles as the shard count scales.
//!
//! Usage: `shard_throughput [--max-n N] [--json PATH]`
//!
//! `--json` writes `BENCH_SHARD.json` with a stable schema
//! (`experiment`, `seed`, `max_n`, `runs[]` with per-run `n`, `shards`,
//! `units`, phase walls, throughput, and per-unit latency quantiles).

use std::time::Instant;

use benes_engine::workload::{random_permutation, Rng64};
use benes_engine::EngineConfig;
use benes_shard::{ShardConfig, ShardCoordinator};

use benes_bench::Table;

struct Run {
    n: u32,
    shards: usize,
    units: usize,
    decompose_ms: f64,
    route_ms: f64,
    elems_per_s: f64,
    p50_ns: u64,
    p99_ns: u64,
}

impl Run {
    /// One schema-stable JSON object (hand-rolled: the vendored
    /// serde_json stub has no map type).
    fn to_json(&self) -> String {
        format!(
            "{{\"n\":{},\"shards\":{},\"units\":{},\"decompose_ms\":{:.3},\
             \"route_ms\":{:.3},\"elems_per_s\":{:.0},\
             \"unit_latency_ns\":{{\"p50\":{},\"p99\":{}}}}}",
            self.n,
            self.shards,
            self.units,
            self.decompose_ms,
            self.route_ms,
            self.elems_per_s,
            self.p50_ns,
            self.p99_ns,
        )
    }
}

fn parse_args() -> (u32, Option<String>) {
    let mut max_n = 18u32;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-n" => {
                let v = args.next().expect("--max-n needs a value");
                max_n = v.parse().expect("--max-n must be an integer");
                assert!((14..=22).contains(&max_n), "--max-n must be in 14..=22");
            }
            "--json" => json = Some(args.next().expect("--json needs a path")),
            other => panic!("unknown argument `{other}` (try --max-n N / --json PATH)"),
        }
    }
    (max_n, json)
}

fn main() {
    let (max_n, json_path) = parse_args();
    println!("== EXP-SHARD: block-decomposition coordinator throughput ==\n");

    let seed = 0x5a4d;

    let mut table = Table::new(vec![
        "n",
        "elements",
        "shards",
        "units",
        "decompose ms",
        "route+verify ms",
        "elems/s",
        "unit p50 ms",
        "unit p99 ms",
    ]);
    let mut runs: Vec<Run> = Vec::new();

    for n in (14..=max_n).step_by(2) {
        let pi = random_permutation(&mut Rng64::new(seed ^ u64::from(n)), 1usize << n);
        for shards in [1usize, 2, 4, 8] {
            let coord = ShardCoordinator::new(ShardConfig {
                shards,
                engine: EngineConfig { workers: 2, ..EngineConfig::default() },
                ..ShardConfig::default()
            });
            // Time the two phases separately: decompose is the serial
            // O(N log N) coordinator cost; scatter/gather/verify is
            // where the fleet parallelism shows.
            let start = Instant::now();
            let d = coord.decompose_for(&pi).expect("power-of-two perm decomposes");
            let decompose_wall = start.elapsed();
            let units = d.unit_count();
            drop(d);
            let start = Instant::now();
            let outcome = coord.route(&pi).expect("power-of-two perm routes");
            let route_wall = start.elapsed();
            assert!(outcome.verified, "recombination must verify: {}", outcome.summary());

            let total = decompose_wall + route_wall;
            let stats = coord.stats();
            let lat = stats.latency();
            table.row(vec![
                n.to_string(),
                (1u64 << n).to_string(),
                shards.to_string(),
                units.to_string(),
                format!("{:.2}", decompose_wall.as_secs_f64() * 1e3),
                format!("{:.2}", route_wall.as_secs_f64() * 1e3),
                format!("{:.0}", (1u64 << n) as f64 / total.as_secs_f64()),
                format!("{:.2}", lat.quantile(0.5) as f64 / 1e6),
                format!("{:.2}", lat.quantile(0.99) as f64 / 1e6),
            ]);
            runs.push(Run {
                n,
                shards,
                units,
                decompose_ms: decompose_wall.as_secs_f64() * 1e3,
                route_ms: route_wall.as_secs_f64() * 1e3,
                elems_per_s: (1u64 << n) as f64 / total.as_secs_f64(),
                p50_ns: lat.quantile(0.5),
                p99_ns: lat.quantile(0.99),
            });
        }
    }
    println!("{}", table.render());

    if let Some(path) = json_path {
        let body: Vec<String> = runs.iter().map(Run::to_json).collect();
        let doc = format!(
            "{{\"experiment\":\"EXP-SHARD\",\"seed\":{seed},\"max_n\":{max_n},\
             \"runs\":[{}]}}\n",
            body.join(",")
        );
        std::fs::write(&path, doc).expect("write --json output");
        println!("machine-readable results written to {path}\n");
    }

    println!(
        "observation: decompose is a serial O(N log N) pass (one Waksman-sized\n\
         coloring), while the 2B + S scattered units ride the fleet — so shard\n\
         scaling attacks exactly the part the paper's Theorems 4-6 make\n\
         parallel, and the recombination check keeps the speedup honest."
    );
}
