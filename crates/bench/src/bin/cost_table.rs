//! Experiment EXP-COST: the §I network comparison — switches, delay and
//! set-up model for the crossbar, omega network, bitonic sorter, and the
//! Benes network with and without self-routing.
//!
//! Every figure is measured from the constructed network object, not just
//! quoted from the formula.

use benes_bench::Table;
use benes_networks::cost;

fn main() {
    println!("== EXP-COST: §I network comparison ==\n");

    for n in [3u32, 6, 8, 10, 12] {
        let nn = 1u64 << n;
        println!("-- N = {nn} (n = {n}) --\n");
        let mut table = Table::new(vec![
            "network",
            "switches",
            "delay (levels)",
            "set-up",
            "realizes without external set-up",
        ]);
        for row in cost::comparison(n) {
            table.row(vec![
                row.name.to_string(),
                row.switches.to_string(),
                row.delay.to_string(),
                row.setup.to_string(),
                row.realizes.to_string(),
            ]);
        }
        println!("{}", table.render());
    }

    println!("-- §I headline ratios (Benes vs omega) --\n");
    let mut ratios = Table::new(vec!["n", "switch ratio", "delay ratio", "(2n-1)/n"]);
    for n in [4u32, 8, 12, 16, 20] {
        let b = cost::benes_self_routing(n);
        let o = cost::omega(n);
        let expected = (2.0 * f64::from(n) - 1.0) / f64::from(n);
        ratios.row(vec![
            n.to_string(),
            format!("{:.3}", b.switches as f64 / o.switches as f64),
            format!("{:.3}", b.delay as f64 / o.delay as f64),
            format!("{expected:.3}"),
        ]);
    }
    println!("{}", ratios.render());
    println!(
        "reproduced: the self-routing Benes network costs ~2x the omega network \
         in both switches and delay (§I), in exchange for the strictly larger \
         class F(n) ⊋ Ω⁻¹(n) plus Ω(n) via the omega bit, and all N! with \
         external set-up."
    );
}
