//! Experiment EXP-GATES: the "simple logic" claim at gate level.
//!
//! Synthesizes `B(n)` down to AND/OR/NOT gates (self-setting control
//! tapped from the upper tag, omega gating on the first `n−1` stages) and
//! measures:
//!
//! * logic gates per switch — constant in `N` for fixed word width;
//! * total gates versus the behavioral switch count;
//! * the critical path in gate levels — `7·log N − 3`, i.e. the paper's
//!   `O(log N)` **total** (set-up + transit) delay, with no set-up phase
//!   anywhere in the netlist;
//! * bit-level equivalence with the behavioral model on live routes.

use benes_bench::Table;
use benes_core::Benes;
use benes_gates::network::TaperedGateBenes;
use benes_gates::GateBenes;
use benes_perm::bpc::Bpc;

fn main() {
    println!("== EXP-GATES: gate-level synthesis of the self-routing B(n) ==\n");
    let data_width = 8;
    println!("payload width: {data_width} bits; tag width: n bits\n");

    let mut table = Table::new(vec![
        "n",
        "N",
        "switches",
        "gates total",
        "gates (tapered)",
        "gates/switch",
        "critical path (levels)",
        "7n-3",
        "routes bit reversal",
    ]);

    for n in [2u32, 3, 4, 5, 6, 7] {
        let hw = GateBenes::build(n, data_width);
        let lean = TaperedGateBenes::build(n, data_width);
        let counts = hw.gate_counts();
        let switches = benes_core::topology::switch_count(n);
        let perm = Bpc::bit_reversal(n).to_permutation();
        let data: Vec<u64> = (0..1u64 << n).map(|i| i ^ 0x55 & 0xff).collect();
        let out = hw.route(&perm, &data);
        assert!(out.is_success());
        assert_eq!(out.data().to_vec(), perm.apply(&data));
        assert_eq!(lean.route(&perm, &data), perm.apply(&data));

        // Cross-check against the behavioral model.
        let sw = Benes::new(n).self_route(&perm);
        assert_eq!(out.tags(), sw.outputs());

        table.row(vec![
            n.to_string(),
            (1u64 << n).to_string(),
            switches.to_string(),
            counts.total().to_string(),
            lean.gate_counts().total().to_string(),
            format!("{:.1}", counts.total() as f64 / switches as f64),
            hw.critical_path().to_string(),
            (7 * n - 3).to_string(),
            "yes".into(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(tapered = tag wires dropped after their final use in the second half; \
         outputs carry payloads only)\n"
    );

    println!("per-switch breakdown (n = 6, w = {data_width}):");
    println!("  control: tap of upper tag bit b (0 gates) [+1 AND on omega-gated stages]");
    println!("  datapath: 1 shared inverter + 6 gates per bus wire (two 2:1 muxes)");
    println!(
        "  = {} gates/switch plain, {} omega-gated — constant in N (the paper's",
        benes_gates::switch::gates_per_switch(6, data_width, false),
        benes_gates::switch::gates_per_switch(6, data_width, true),
    );
    println!("  \"some simple logic added to each switch\").\n");
    println!(
        "reproduced: total set-up + transit = one combinational pass of \
         7·log N − 3 gate levels; there is no set-up computation anywhere."
    );
}
