//! Workload generators and table formatting for the experiment harness.
//!
//! The binaries in `src/bin/` regenerate every figure and table of the
//! paper (see `DESIGN.md` §3 for the experiment index); the Criterion
//! benches in `benches/` time the software implementations. Both draw
//! their inputs from here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use benes_perm::bpc::{Bpc, SignedBit};
use benes_perm::Permutation;
use rand::Rng;

/// A uniformly random permutation of `0..len` (Fisher–Yates).
///
/// # Panics
///
/// Panics if `len == 0`.
#[must_use]
pub fn random_permutation(rng: &mut impl Rng, len: usize) -> Permutation {
    assert!(len > 0, "permutation must have at least one element");
    let mut dest: Vec<u32> = (0..len as u32).collect();
    for i in (1..len).rev() {
        let j = rng.random_range(0..=i);
        dest.swap(i, j);
    }
    Permutation::from_destinations(dest).expect("shuffle of identity is a bijection")
}

/// A uniformly random `BPC(n)` permutation: random bit permutation,
/// random complement signs.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn random_bpc(rng: &mut impl Rng, n: u32) -> Bpc {
    assert!(n > 0, "BPC requires n >= 1");
    let positions = random_permutation(rng, n as usize);
    let entries =
        positions
            .destinations()
            .iter()
            .map(|&p| {
                if rng.random::<bool>() {
                    SignedBit::minus(p)
                } else {
                    SignedBit::plus(p)
                }
            })
            .collect();
    Bpc::from_entries(entries).expect("positions form a permutation")
}

/// A random member of the self-routing class `F(n)`, built by inverting
/// the Theorem 1 recursion.
///
/// Construction: draw `U, L ∈ F(n−1)` recursively; for each half-range
/// value `h`, choose which of `{2h, 2h+1}` travels through the upper
/// subnetwork (the choice bit `c_h`), subject to the realizability
/// constraint of the stage-0 switch rule (`c_{U_i}` and `c_{L_i}` may not
/// both be 1 at a switch); where both input orders realize the switch,
/// pick one at random. Every output is in `F(n)` (tested), and every
/// member of `F(n)` has positive probability.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 24`.
#[must_use]
pub fn random_f_member(rng: &mut impl Rng, n: u32) -> Permutation {
    assert!((1..=24).contains(&n), "random_f_member requires 1 <= n <= 24");
    let tags = random_f_tags(rng, n);
    Permutation::from_destinations(tags.into_iter().map(|t| t as u32).collect())
        .expect("construction yields a bijection")
}

/// The recursive tag-vector sampler behind [`random_f_member`].
fn random_f_tags(rng: &mut impl Rng, m: u32) -> Vec<u64> {
    if m == 1 {
        return if rng.random::<bool>() { vec![0, 1] } else { vec![1, 0] };
    }
    let half = 1usize << (m - 1);
    let u = random_f_tags(rng, m - 1);
    let l = random_f_tags(rng, m - 1);

    // c[h] = 1 means value 2h+1 goes up (at the switch where U = h) and
    // 2h goes down. Constraint per switch i: !(c[U_i] && c[L_i]).
    // Sample by random proposal, then repair violations by clearing one
    // endpoint (keeps the distribution broad without a constraint solver).
    let mut c = vec![false; half];
    for slot in c.iter_mut() {
        *slot = rng.random::<bool>();
    }
    for i in 0..half {
        let (ui, li) = (u[i] as usize, l[i] as usize);
        if c[ui] && c[li] {
            if rng.random::<bool>() {
                c[ui] = false;
            } else {
                c[li] = false;
            }
        }
    }

    let mut tags = vec![0u64; 2 * half];
    for i in 0..half {
        let (ui, li) = (u[i] as usize, l[i] as usize);
        let a = 2 * u[i] + u64::from(c[ui]); // travels up
        let b = 2 * l[i] + u64::from(!c[li]); // travels down
                                              // Valid orders: a first iff bit0(a) = 0; b first iff bit0(b) = 1.
        let a_first_ok = a & 1 == 0;
        let b_first_ok = b & 1 == 1;
        debug_assert!(a_first_ok || b_first_ok, "repair step guarantees a valid order");
        let a_first =
            if a_first_ok && b_first_ok { rng.random::<bool>() } else { a_first_ok };
        if a_first {
            tags[2 * i] = a;
            tags[2 * i + 1] = b;
        } else {
            tags[2 * i] = b;
            tags[2 * i + 1] = a;
        }
    }
    tags
}

/// Minimal fixed-width table printer for the experiment binaries.
///
/// # Examples
///
/// ```
/// use benes_bench::Table;
/// let mut t = Table::new(vec!["N", "routes"]);
/// t.row(vec!["8".into(), "5".into()]);
/// let s = t.render();
/// assert!(s.contains("N"));
/// assert!(s.contains("8"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<&str>) -> Self {
        Self { headers: headers.into_iter().map(String::from).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", cells[c], w = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Enumerates all permutations of `0..len` — used by the census binaries
/// (exhaustive experiments at `n = 2, 3`).
///
/// # Panics
///
/// Panics if `len > 8` (the factorial blow-up).
#[must_use]
pub fn all_permutations(len: u32) -> Vec<Permutation> {
    assert!(len <= 8, "exhaustive enumeration limited to len <= 8");
    fn rec(rem: &mut Vec<u32>, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if rem.is_empty() {
            out.push(cur.clone());
            return;
        }
        for idx in 0..rem.len() {
            let v = rem.remove(idx);
            cur.push(v);
            rec(rem, cur, out);
            cur.pop();
            rem.insert(idx, v);
        }
    }
    let mut out = Vec::new();
    rec(&mut (0..len).collect(), &mut Vec::new(), &mut out);
    out.into_iter()
        .map(|d| Permutation::from_destinations(d).expect("valid permutation"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use benes_core::class_f::is_in_f;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn random_permutation_is_valid() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let p = random_permutation(&mut rng, 64);
            assert_eq!(p.len(), 64);
        }
    }

    #[test]
    fn random_bpc_is_valid_and_in_f() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let b = random_bpc(&mut rng, 5);
            assert!(is_in_f(&b.to_permutation()));
        }
    }

    #[test]
    fn random_f_member_is_always_in_f() {
        let mut rng = StdRng::seed_from_u64(13);
        for n in 1..8u32 {
            for _ in 0..40 {
                let p = random_f_member(&mut rng, n);
                assert!(is_in_f(&p), "sampler left F at n = {n}: {p}");
            }
        }
    }

    #[test]
    fn random_f_member_covers_all_of_f2() {
        // |F(2)| = 20; the sampler gives every member positive
        // probability, so a few thousand draws must hit all of them.
        let mut rng = StdRng::seed_from_u64(17);
        let mut seen: HashSet<Vec<u32>> = HashSet::new();
        for _ in 0..5000 {
            let p = random_f_member(&mut rng, 2);
            seen.insert(p.destinations().to_vec());
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn random_f_member_is_not_only_bpc() {
        // The sampler must reach beyond BPC (|BPC| << |F|).
        let mut rng = StdRng::seed_from_u64(19);
        let mut non_bpc = 0;
        for _ in 0..100 {
            let p = random_f_member(&mut rng, 4);
            if benes_perm::bpc::Bpc::from_permutation(&p).is_none() {
                non_bpc += 1;
            }
        }
        assert!(non_bpc > 50, "only {non_bpc} of 100 samples were outside BPC");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("x"));
    }

    #[test]
    fn all_permutations_counts() {
        assert_eq!(all_permutations(1).len(), 1);
        assert_eq!(all_permutations(3).len(), 6);
        assert_eq!(all_permutations(4).len(), 24);
    }
}
