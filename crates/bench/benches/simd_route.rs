//! BENCH-SIMD: the §III machine algorithms — F(n) routing on CCC, PSC and
//! MCC versus the bitonic-sort baseline on the same machines.
//!
//! The shape to reproduce: the F(n) algorithm's advantage grows with N on
//! the cube/shuffle machines (O(log N) vs O(log² N) data movement), and
//! holds with a constant factor on the mesh.

use std::time::Duration;

use benes_bench::random_f_member;
use benes_simd::ccc::Ccc;
use benes_simd::machine::records_for;
use benes_simd::mcc::Mcc;
use benes_simd::psc::Psc;
use benes_simd::sort_route;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_machines(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("simd_route_f");
    for n in [6u32, 10, 14] {
        let perm = random_f_member(&mut rng, n);
        let ccc = Ccc::new(n);
        let psc = Psc::new(n);
        let mcc = Mcc::new(n);
        group.bench_with_input(BenchmarkId::new("ccc_route_f", 1u64 << n), &n, |b, _| {
            b.iter(|| ccc.route_f(records_for(std::hint::black_box(&perm))));
        });
        group.bench_with_input(BenchmarkId::new("psc_route_f", 1u64 << n), &n, |b, _| {
            b.iter(|| psc.route_f(records_for(std::hint::black_box(&perm))));
        });
        group.bench_with_input(BenchmarkId::new("mcc_route_f", 1u64 << n), &n, |b, _| {
            b.iter(|| mcc.route_f(records_for(std::hint::black_box(&perm))));
        });
        group.bench_with_input(
            BenchmarkId::new("ccc_bitonic_sort_route", 1u64 << n),
            &n,
            |b, _| {
                b.iter(|| {
                    sort_route::bitonic_route_ccc(records_for(std::hint::black_box(&perm)))
                });
            },
        );
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_machines
}
criterion_main!(benches);
