//! EXP-PIPE (timing side): pipelined streaming versus one-vector-at-a-time
//! routing for a batch of k permutation vectors (§IV).

use std::time::Duration;

use benes_bench::random_f_member;
use benes_core::pipeline::Pipeline;
use benes_core::Benes;
use benes_perm::Permutation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tagged(perm: &Permutation) -> Vec<(u32, u32)> {
    perm.destinations().iter().enumerate().map(|(i, &d)| (d, i as u32)).collect()
}

fn bench_streaming(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let mut group = c.benchmark_group("pipeline_stream_32_vectors");
    for n in [6u32, 10] {
        let perms: Vec<Permutation> =
            (0..32).map(|_| random_f_member(&mut rng, n)).collect();
        group.bench_with_input(BenchmarkId::new("pipelined", 1u64 << n), &n, |b, _| {
            b.iter(|| {
                let mut pipe: Pipeline<u32> = Pipeline::new(n);
                let mut emitted = 0;
                let mut clock = 0usize;
                while emitted < perms.len() {
                    let input = perms.get(clock).map(tagged);
                    if pipe.clock(input).is_some() {
                        emitted += 1;
                    }
                    clock += 1;
                }
                emitted
            });
        });
        group.bench_with_input(BenchmarkId::new("unpipelined", 1u64 << n), &n, |b, _| {
            let net = Benes::new(n);
            b.iter(|| {
                perms
                    .iter()
                    .map(|p| net.self_route_records(tagged(p)).unwrap().0.len())
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_streaming
}
criterion_main!(benches);
