//! BENCH-SR: software timing of the self-routing network transit
//! (`Benes::self_route`) and the two class-F membership deciders across
//! network sizes.
//!
//! The paper's claim is about *hardware* delay (2·log N − 1 gate levels,
//! reported by the EXP-COST binary); these benches time the software
//! simulation, whose cost is Θ(N log N) work with a small constant.

use std::time::Duration;

use benes_bench::{random_bpc, random_f_member};
use benes_core::class_f::{is_in_f, is_in_f_by_simulation};
use benes_core::Benes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_self_route(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("self_route_transit");
    for n in [4u32, 6, 8, 10, 12, 14, 16] {
        let net = Benes::new(n);
        let perm = random_f_member(&mut rng, n);
        group.throughput(Throughput::Elements(1u64 << n));
        group.bench_with_input(BenchmarkId::from_parameter(1u64 << n), &n, |b, _| {
            b.iter(|| {
                let outcome = net.self_route(std::hint::black_box(&perm));
                assert!(outcome.is_success());
                outcome
            });
        });
    }
    group.finish();
}

fn bench_membership(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("class_f_membership");
    for n in [6u32, 10, 14] {
        let perm = random_bpc(&mut rng, n).to_permutation();
        group.bench_with_input(
            BenchmarkId::new("theorem1_recursion", 1u64 << n),
            &n,
            |b, _| {
                b.iter(|| is_in_f(std::hint::black_box(&perm)));
            },
        );
        group.bench_with_input(BenchmarkId::new("simulation", 1u64 << n), &n, |b, _| {
            b.iter(|| is_in_f_by_simulation(std::hint::black_box(&perm)));
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_self_route, bench_membership
}
criterion_main!(benches);
