//! EXP-SETUP: the paper's motivating gap — time to perform a permutation
//! with set-up included.
//!
//! Three ways to realize a permutation on the Benes substrate:
//!
//! 1. **self-route** (F(n) inputs only): no set-up at all;
//! 2. **Waksman set-up + route** (any input): the `O(N log N)` serial
//!    set-up the paper's §I quotes as the best known;
//! 3. **bitonic-sort route** (any input): the self-routing-but-deeper
//!    alternative.
//!
//! The shape to reproduce: (1) beats (2) and (3) for F(n) permutations at
//! every size, because (2) pays the set-up and (3) pays Θ(log² N) depth.

use std::time::Duration;

use benes_bench::{random_f_member, random_permutation};
use benes_core::{waksman, Benes};
use benes_networks::BitonicSorter;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_f_permutations(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("route_f_permutation");
    for n in [6u32, 10, 14] {
        let net = Benes::new(n);
        let sorter = BitonicSorter::new(n);
        let perm = random_f_member(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("self_route", 1u64 << n), &n, |b, _| {
            b.iter(|| net.self_route(std::hint::black_box(&perm)));
        });
        group.bench_with_input(
            BenchmarkId::new("waksman_setup_plus_route", 1u64 << n),
            &n,
            |b, _| {
                b.iter(|| {
                    let settings = waksman::setup(std::hint::black_box(&perm)).unwrap();
                    net.route_with(&settings, perm.destinations()).unwrap()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("bitonic_route", 1u64 << n), &n, |b, _| {
            b.iter(|| sorter.route(std::hint::black_box(&perm)));
        });
    }
    group.finish();
}

fn bench_arbitrary_permutations(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("route_arbitrary_permutation");
    for n in [6u32, 10, 14] {
        let net = Benes::new(n);
        let sorter = BitonicSorter::new(n);
        let perm = random_permutation(&mut rng, 1usize << n);
        group.bench_with_input(
            BenchmarkId::new("waksman_setup_plus_route", 1u64 << n),
            &n,
            |b, _| {
                b.iter(|| {
                    let settings = waksman::setup(std::hint::black_box(&perm)).unwrap();
                    net.route_with(&settings, perm.destinations()).unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("waksman_setup_only", 1u64 << n),
            &n,
            |b, _| {
                b.iter(|| waksman::setup(std::hint::black_box(&perm)).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel_setup_only", 1u64 << n),
            &n,
            |b, _| {
                b.iter(|| {
                    benes_core::parallel_setup::setup_parallel(std::hint::black_box(&perm))
                        .unwrap()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("bitonic_route", 1u64 << n), &n, |b, _| {
            b.iter(|| sorter.route(std::hint::black_box(&perm)));
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_f_permutations, bench_arbitrary_permutations
}
criterion_main!(benches);
