//! EXP-GATES (timing side): netlist synthesis and evaluation cost of the
//! gate-level B(n), versus the behavioral model — quantifying what the
//! circuit-accuracy of `benes-gates` costs in simulation time.

use std::time::Duration;

use benes_bench::random_bpc;
use benes_core::Benes;
use benes_gates::GateBenes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gate_eval(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("gate_level_vs_behavioral");
    for n in [3u32, 5, 7] {
        let perm = random_bpc(&mut rng, n).to_permutation();
        let data: Vec<u64> = (0..1u64 << n).collect();
        let hw = GateBenes::build(n, 8);
        let sw = Benes::new(n);
        group.bench_with_input(BenchmarkId::new("gate_eval", 1u64 << n), &n, |b, _| {
            b.iter(|| hw.route(std::hint::black_box(&perm), &data));
        });
        group.bench_with_input(BenchmarkId::new("behavioral", 1u64 << n), &n, |b, _| {
            b.iter(|| sw.self_route(std::hint::black_box(&perm)));
        });
    }
    group.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_synthesis");
    for n in [3u32, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(1u64 << n), &n, |b, &n| {
            b.iter(|| GateBenes::build(n, 8));
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_gate_eval, bench_synthesis
}
criterion_main!(benches);
