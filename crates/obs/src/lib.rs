//! **benes-obs** — the observability substrate for the Benes routing
//! stack.
//!
//! The engine's original stats layer answered "how many" (per-tier
//! counters) and "roughly how fast" (a min/mean/max latency sketch).
//! It could not answer the two questions a serving system actually
//! gets asked:
//!
//! * **"What does the tail look like?"** The paper's set-up-cost
//!   ladder (Theorems 1–3) makes latency *bimodal by design*: `F(n)`
//!   members route with zero set-up while everything else pays
//!   `O(N log N)` — means are exactly the wrong summary. The
//!   [`hist`] module provides lock-free log-bucketed histograms with
//!   bracketed p50/p90/p99/p999 quantiles, cheap enough to keep one
//!   per tier and per fallback path.
//! * **"What happened to the job that failed?"** The [`flight`]
//!   module is a non-blocking ring buffer that keeps the last `K`
//!   records of anything — the engine stores one full route attempt
//!   per request (fingerprint, tier, fault-ladder steps, per-phase
//!   timing, and the complete per-stage `RouteTrace` for failures).
//!
//! The [`expo`] module turns any of it into Prometheus text or JSON,
//! with parsers so the exposition round-trips in tests.
//!
//! This crate is deliberately dependency-free and domain-agnostic: it
//! knows nothing about permutations, so every later crate (engine,
//! cli, bench, services) can read from the same instrumentation
//! substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod flight;
pub mod hist;

pub use expo::{parse_json, parse_prometheus, Exposition, MetricKind, ParseError, Sample};
pub use flight::FlightRecorder;
pub use hist::{bucket_bounds, Histogram, HistogramSnapshot};
