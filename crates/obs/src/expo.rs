//! Metrics exposition: Prometheus text format and JSON, with parsers.
//!
//! An [`Exposition`] is an ordered list of [`Sample`]s (name, labels,
//! value) plus optional per-metric metadata (`# HELP` / `# TYPE`
//! lines). Both output formats are paired with a parser so a scrape
//! round-trips in tests — the exposition a service emits is provably
//! machine-readable, not just eyeballed.
//!
//! The build environment is fully offline, so both encoders and both
//! parsers are self-contained here (the vendored `serde_json` stub has
//! no map type in its data model; JSON objects are hand-rolled).

/// One exposed metric sample: a name, zero or more `key="value"`
/// labels, and a numeric value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The metric name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Label pairs, in exposition order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// A sample with no labels.
    #[must_use]
    pub fn new(name: impl Into<String>, value: f64) -> Self {
        Self { name: name.into(), labels: Vec::new(), value }
    }

    /// Adds one label pair (builder style).
    #[must_use]
    pub fn label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }
}

/// The Prometheus metric kind announced on a `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Pre-computed quantiles plus `_sum` / `_count`.
    Summary,
}

impl MetricKind {
    fn name(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Summary => "summary",
        }
    }
}

/// Per-metric metadata: kind and help text.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Meta {
    name: String,
    kind: MetricKind,
    help: String,
}

/// An ordered collection of samples plus metadata, renderable as
/// Prometheus text or JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    samples: Vec<Sample>,
    meta: Vec<Meta>,
}

impl Exposition {
    /// An empty exposition.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares metadata for `name` (emitted as `# HELP` / `# TYPE`
    /// ahead of its first sample).
    pub fn describe(
        &mut self,
        name: impl Into<String>,
        kind: MetricKind,
        help: impl Into<String>,
    ) {
        self.meta.push(Meta { name: name.into(), kind, help: help.into() });
    }

    /// Appends one sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Merges another exposition into this one: its metadata and
    /// samples are appended in order, so one scrape endpoint can serve
    /// metrics collected by several subsystems (e.g. the engine ledger
    /// plus a wire server's connection counters).
    pub fn extend(&mut self, other: Self) {
        self.meta.extend(other.meta);
        self.samples.extend(other.samples);
    }

    /// The samples, in exposition order.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Renders the Prometheus text exposition format (version 0.0.4).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut announced: Vec<&str> = Vec::new();
        for sample in &self.samples {
            if !announced.contains(&sample.name.as_str()) {
                announced.push(&sample.name);
                if let Some(meta) = self.meta.iter().find(|m| sample.name == m.name) {
                    out.push_str(&format!("# HELP {} {}\n", meta.name, meta.help));
                    out.push_str(&format!("# TYPE {} {}\n", meta.name, meta.kind.name()));
                }
            }
            out.push_str(&sample.name);
            if !sample.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in sample.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{k}=\"{}\"", escape(v)));
                }
                out.push('}');
            }
            out.push_str(&format!(" {}\n", format_value(sample.value)));
        }
        out
    }

    /// Renders a JSON array of `{"name", "labels", "value"}` objects.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, sample) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":\"{}\",\"labels\":{{", escape(&sample.name)));
            for (j, (k, v)) in sample.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
            }
            out.push_str(&format!("}},\"value\":{}}}", format_value(sample.value)));
        }
        out.push(']');
        out
    }
}

/// Renders integers without a trailing `.0` so counters stay integral
/// through a round trip; everything else uses the shortest `f64` form.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64) // analyze:allow(truncating-cast): integral and within i64 range
    } else {
        format!("{v}")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Error produced by [`parse_prometheus`] or [`parse_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong, with enough context to find the offending text.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exposition parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(message: impl Into<String>) -> ParseError {
    ParseError { message: message.into() }
}

/// Parses Prometheus text exposition back into samples (comment and
/// metadata lines are skipped; label order is preserved).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<Sample>, ParseError> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_prometheus_line(line)?);
    }
    Ok(samples)
}

fn parse_prometheus_line(line: &str) -> Result<Sample, ParseError> {
    // Split name+labels from the value at the *last* `}`: label values
    // may legally contain unescaped braces.
    let (name_and_labels, value_str) = match line.rfind('}') {
        Some(close) => {
            let (head, tail) = line.split_at(close + 1);
            (head, tail.trim())
        }
        None => {
            line.split_once(' ').ok_or_else(|| err(format!("no value on line `{line}`")))?
        }
    };
    let value: f64 = value_str
        .trim()
        .parse()
        .map_err(|_| err(format!("bad value `{value_str}` on line `{line}`")))?;
    let (name, labels) = match name_and_labels.split_once('{') {
        None => (name_and_labels.trim().to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| err(format!("unterminated labels on line `{line}`")))?;
            (name.trim().to_string(), parse_label_body(body, line)?)
        }
    };
    if name.is_empty() {
        return Err(err(format!("empty metric name on line `{line}`")));
    }
    Ok(Sample { name, labels, value })
}

fn parse_label_body(body: &str, line: &str) -> Result<Vec<(String, String)>, ParseError> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Skip separators and detect the end.
        while matches!(chars.peek(), Some(&',') | Some(&' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(err(format!("label `{key}` missing opening quote on `{line}`")));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => {
                        return Err(err(format!("bad escape `\\{other:?}` on `{line}`")))
                    }
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(err(format!("unterminated label value on `{line}`"))),
            }
        }
        labels.push((key.trim().to_string(), value));
    }
}

/// Parses the JSON array produced by [`Exposition::to_json`] back into
/// samples.
///
/// # Errors
///
/// Returns a [`ParseError`] on any malformed JSON.
pub fn parse_json(text: &str) -> Result<Vec<Sample>, ParseError> {
    let mut p = JsonParser { chars: text.char_indices().peekable(), text };
    p.skip_ws();
    p.expect('[')?;
    let mut samples = Vec::new();
    p.skip_ws();
    if p.peek() == Some(']') {
        p.next();
        return Ok(samples);
    }
    loop {
        samples.push(p.object_sample()?);
        p.skip_ws();
        match p.next() {
            Some(',') => continue,
            Some(']') => break,
            other => return Err(err(format!("expected `,` or `]`, got {other:?}"))),
        }
    }
    Ok(samples)
}

struct JsonParser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl JsonParser<'_> {
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn next(&mut self) -> Option<char> {
        self.chars.next().map(|(_, c)| c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), ParseError> {
        self.skip_ws();
        match self.next() {
            Some(c) if c == want => Ok(()),
            other => Err(err(format!("expected `{want}`, got {other:?}"))),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some('n') => out.push('\n'),
                    other => return Err(err(format!("bad string escape {other:?}"))),
                },
                Some(c) => out.push(c),
                None => return Err(err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let start = match self.chars.peek() {
            Some(&(i, _)) => i,
            None => return Err(err("expected a number, got end of input")),
        };
        let mut end = start;
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
        ) {
            end = self.chars.next().map(|(i, c)| i + c.len_utf8()).unwrap_or(end);
        }
        self.text[start..end]
            .parse()
            .map_err(|_| err(format!("bad number `{}`", &self.text[start..end])))
    }

    /// One `{"name": …, "labels": {…}, "value": …}` object.
    fn object_sample(&mut self) -> Result<Sample, ParseError> {
        self.expect('{')?;
        let mut name = None;
        let mut labels = Vec::new();
        let mut value = None;
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            match key.as_str() {
                "name" => name = Some(self.string()?),
                "value" => value = Some(self.number()?),
                "labels" => {
                    self.expect('{')?;
                    self.skip_ws();
                    if self.peek() == Some('}') {
                        self.next();
                    } else {
                        loop {
                            self.skip_ws();
                            let k = self.string()?;
                            self.expect(':')?;
                            self.skip_ws();
                            let v = self.string()?;
                            labels.push((k, v));
                            self.skip_ws();
                            match self.next() {
                                Some(',') => continue,
                                Some('}') => break,
                                other => {
                                    return Err(err(format!(
                                        "expected `,` or `}}` in labels, got {other:?}"
                                    )))
                                }
                            }
                        }
                    }
                }
                other => return Err(err(format!("unknown sample key `{other}`"))),
            }
            self.skip_ws();
            match self.next() {
                Some(',') => continue,
                Some('}') => break,
                other => return Err(err(format!("expected `,` or `}}`, got {other:?}"))),
            }
        }
        Ok(Sample {
            name: name.ok_or_else(|| err("sample missing `name`"))?,
            labels,
            value: value.ok_or_else(|| err("sample missing `value`"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exposition() -> Exposition {
        let mut e = Exposition::new();
        e.describe("benes_requests_total", MetricKind::Counter, "Requests by state.");
        e.describe("benes_latency_ns", MetricKind::Summary, "Latency quantiles.");
        e.push(Sample::new("benes_requests_total", 128.0).label("state", "completed"));
        e.push(Sample::new("benes_requests_total", 2.0).label("state", "failed"));
        e.push(
            Sample::new("benes_latency_ns", 1523.0)
                .label("tier", "waksman")
                .label("quantile", "0.99"),
        );
        e.push(Sample::new("benes_queue_high_water", 17.0));
        e.push(Sample::new("benes_cache_hit_rate", 0.75));
        e
    }

    #[test]
    fn prometheus_text_round_trips() {
        let e = exposition();
        let text = e.to_prometheus();
        assert!(text.contains("# TYPE benes_requests_total counter"));
        assert!(text.contains("# HELP benes_latency_ns Latency quantiles."));
        assert!(text.contains("benes_requests_total{state=\"completed\"} 128"));
        assert!(text.contains("benes_latency_ns{tier=\"waksman\",quantile=\"0.99\"} 1523"));
        let parsed = parse_prometheus(&text).expect("own output must parse");
        assert_eq!(parsed, e.samples());
    }

    #[test]
    fn json_round_trips() {
        let e = exposition();
        let json = e.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        let parsed = parse_json(&json).expect("own output must parse");
        assert_eq!(parsed, e.samples());
    }

    #[test]
    fn extend_merges_metadata_and_samples_in_order() {
        let mut e = exposition();
        let mut server = Exposition::new();
        server.describe("benes_serve_conns_total", MetricKind::Counter, "Connections.");
        server.push(Sample::new("benes_serve_conns_total", 4.0).label("state", "accepted"));
        e.extend(server);
        let text = e.to_prometheus();
        assert!(text.contains("# TYPE benes_serve_conns_total counter"));
        assert!(text.contains("benes_serve_conns_total{state=\"accepted\"} 4"));
        // Engine samples keep their original order, server samples follow.
        let names: Vec<&str> = e.samples().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.first(), Some(&"benes_requests_total"));
        assert_eq!(names.last(), Some(&"benes_serve_conns_total"));
        let parsed = parse_prometheus(&text).expect("merged output must parse");
        assert_eq!(parsed, e.samples());
    }

    #[test]
    fn empty_exposition_round_trips() {
        let e = Exposition::new();
        assert_eq!(parse_prometheus(&e.to_prometheus()).unwrap(), Vec::<Sample>::new());
        assert_eq!(parse_json(&e.to_json()).unwrap(), Vec::<Sample>::new());
    }

    #[test]
    fn label_values_with_quotes_and_newlines_survive() {
        let mut e = Exposition::new();
        e.push(Sample::new("m", 1.0).label("detail", "he said \"no\"\nthen left \\ twice"));
        for parsed in [
            parse_prometheus(&e.to_prometheus()).unwrap(),
            parse_json(&e.to_json()).unwrap(),
        ] {
            assert_eq!(parsed, e.samples());
        }
    }

    #[test]
    fn fractional_values_survive_both_formats() {
        let mut e = Exposition::new();
        e.push(Sample::new("rate", 0.123_456_789));
        e.push(Sample::new("negative", -42.5));
        e.push(Sample::new("big", 1.0e18));
        for parsed in [
            parse_prometheus(&e.to_prometheus()).unwrap(),
            parse_json(&e.to_json()).unwrap(),
        ] {
            assert_eq!(parsed, e.samples());
        }
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        assert!(parse_prometheus("metric_without_value").is_err());
        assert!(parse_prometheus("m{unterminated=\"x} 1").is_err());
        assert!(parse_prometheus("m nonnumeric").is_err());
        assert!(parse_json("not json").is_err());
        assert!(parse_json("[{\"name\":\"m\"}]").is_err(), "value is required");
        assert!(parse_json("[{\"name\":\"m\",\"value\":}]").is_err());
    }

    #[test]
    fn foreign_prometheus_text_parses() {
        // Not our own output: extra whitespace, no metadata, scientific
        // notation, label-less and labelled lines mixed.
        let text = "\n# scraped elsewhere\nup 1\nhttp_requests_total{code=\"200\",method=\"get\"}  1.5e3\n";
        let parsed = parse_prometheus(text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], Sample::new("up", 1.0));
        assert_eq!(
            parsed[1],
            Sample::new("http_requests_total", 1500.0)
                .label("code", "200")
                .label("method", "get")
        );
    }
}
