//! The flight recorder: a fixed-capacity ring buffer that keeps the
//! last `K` records of anything worth a post-mortem.
//!
//! The write path never blocks: a relaxed `fetch_add` claims a sequence
//! number, the slot it maps to is taken with `try_lock`, and a
//! contended slot simply drops the record (counted in
//! [`FlightRecorder::dropped`]) rather than stalling the hot path —
//! a routing worker must never wait on an observer. Readers lock slots
//! one at a time, so a dump in progress delays at most one writer by
//! one slot.
//!
//! The engine stores one record per route attempt; `benes-cli obs
//! flightrec` dumps them to answer "what happened to the job that
//! failed" with the full ladder of decisions, not a counter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

struct Slot<T> {
    /// `Some((sequence, record))` once written; the sequence number
    /// resolves which generation of the ring the record belongs to.
    data: Mutex<Option<(u64, T)>>,
}

/// A bounded, non-blocking, multi-producer ring of the most recent
/// records.
#[derive(Debug)]
pub struct FlightRecorder<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    cursor: AtomicU64,
    dropped: AtomicU64,
}

impl<T> std::fmt::Debug for Slot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot").finish_non_exhaustive()
    }
}

impl<T> FlightRecorder<T> {
    /// A recorder keeping (at least) the last `capacity` records;
    /// capacity is rounded up to a power of two, minimum 1.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        let slots: Vec<Slot<T>> =
            (0..cap).map(|_| Slot { data: Mutex::new(None) }).collect();
        Self {
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The ring capacity (a power of two).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// How many records were ever submitted (including dropped ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// How many records were dropped because their slot was contended
    /// at write time (the price of never blocking a worker).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Stores `record`, overwriting the oldest entry in its slot, and
    /// returns the record's sequence number. Never blocks: a slot held
    /// by a concurrent reader or writer drops the record instead.
    pub fn record(&self, record: T) -> u64 {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq as usize) & self.mask]; // analyze:allow(truncating-cast): masked ring index
        match slot.data.try_lock() {
            Ok(mut guard) => {
                // A racing writer that claimed a *later* generation of
                // this slot may have already written; keep the newest.
                if guard.as_ref().is_none_or(|&(s, _)| s < seq) {
                    *guard = Some((seq, record));
                }
            }
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                // A reader panicked mid-clone; the slot data is still a
                // plain Option, safe to overwrite.
                let mut guard = poisoned.into_inner();
                if guard.as_ref().is_none_or(|&(s, _)| s < seq) {
                    *guard = Some((seq, record));
                }
            }
            Err(std::sync::TryLockError::WouldBlock) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        seq
    }
}

impl<T: Clone> FlightRecorder<T> {
    /// The most recent records, newest first, at most `k`.
    #[must_use]
    pub fn recent(&self, k: usize) -> Vec<T> {
        let mut found: Vec<(u64, T)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let guard = slot.data.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some((seq, record)) = guard.as_ref() {
                found.push((*seq, record.clone()));
            }
        }
        found.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
        found.truncate(k);
        found.into_iter().map(|(_, r)| r).collect()
    }

    /// The most recent record matching `pred`, if any survives in the
    /// ring.
    #[must_use]
    pub fn find(&self, pred: impl Fn(&T) -> bool) -> Option<T> {
        self.recent(self.capacity()).into_iter().find(|r| pred(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(FlightRecorder::<u32>::new(0).capacity(), 1);
        assert_eq!(FlightRecorder::<u32>::new(1).capacity(), 1);
        assert_eq!(FlightRecorder::<u32>::new(3).capacity(), 4);
        assert_eq!(FlightRecorder::<u32>::new(256).capacity(), 256);
    }

    #[test]
    fn keeps_the_last_k_newest_first() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u32 {
            rec.record(i);
        }
        assert_eq!(rec.recent(4), vec![9, 8, 7, 6]);
        assert_eq!(rec.recent(2), vec![9, 8]);
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn find_locates_a_surviving_record() {
        let rec = FlightRecorder::new(8);
        for i in 0..8u32 {
            rec.record(i);
        }
        assert_eq!(rec.find(|&r| r % 3 == 0), Some(6), "newest match wins");
        assert_eq!(rec.find(|&r| r > 100), None);
    }

    #[test]
    fn concurrent_writers_lose_nothing_to_each_other() {
        use std::sync::Arc;

        let rec = Arc::new(FlightRecorder::new(1024));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        rec.record(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("writer panicked");
        }
        // 1000 records into 1024 slots: everything submitted is either
        // present or counted as dropped, and with distinct slots per
        // sequence number nothing can actually contend.
        assert_eq!(rec.recorded(), 1_000);
        assert_eq!(rec.dropped(), 0);
        let all = rec.recent(1024);
        assert_eq!(all.len(), 1_000);
        // Newest-first really is sequence order within each writer.
        let of_writer0: Vec<u64> = all.iter().copied().filter(|&v| v < 1_000).collect();
        let mut sorted = of_writer0.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(of_writer0, sorted);
    }

    #[test]
    fn lapped_generations_keep_the_newest_record() {
        let rec = FlightRecorder::new(2);
        rec.record("old-a");
        rec.record("old-b");
        rec.record("new-a"); // laps slot 0
        assert_eq!(rec.recent(2), vec!["new-a", "old-b"]);
    }
}
