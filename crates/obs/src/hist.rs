//! Log-bucketed latency histograms with lock-free recording.
//!
//! The engine's original stats layer kept a min/mean/max sketch, which
//! cannot answer tail questions ("what does p99 look like per tier?")
//! — exactly what the paper's set-up-cost ladder makes bimodal: `F(n)`
//! members route in nanoseconds while Waksman set-ups pay `O(N log N)`.
//! A [`Histogram`] is a fixed array of atomic buckets whose boundaries
//! grow geometrically (16 sub-buckets per power of two, ≤ 6.25%
//! relative width), so recording is a couple of shifts plus one
//! `fetch_add` — no locks on the hot path — and a [`HistogramSnapshot`]
//! answers p50/p90/p99/p999 with guaranteed bracketing: the true
//! empirical quantile always lies inside the reported bucket.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave: values within one power of two are split
/// into this many equal-width buckets.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: `SUB` exact buckets for values `< SUB`, then
/// `SUB` buckets for each of the remaining `64 - SUB_BITS` octaves.
const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// The bucket index recording `value` increments.
#[must_use]
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize; // analyze:allow(truncating-cast): value < 16
    }
    let msb = 63 - value.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = ((value >> (msb - SUB_BITS)) - SUB) as usize; // analyze:allow(truncating-cast): sub < 16
    octave * SUB as usize + sub
}

/// The inclusive `[lower, upper]` value range of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= Histogram::BUCKET_COUNT`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    let sub = (index as u64) % SUB;
    let octave = (index as u64) / SUB;
    if octave == 0 {
        return (sub, sub);
    }
    let shift = (octave - 1) as u32; // analyze:allow(truncating-cast): octave ≤ 61
    let lower = (SUB + sub) << shift;
    let width = 1u64 << shift;
    (lower, lower + (width - 1))
}

/// A lock-free log-bucketed histogram of `u64` samples (nanoseconds,
/// by convention). All recording operations are relaxed atomics; a
/// consistent view is produced by [`Histogram::snapshot`], which
/// reconciles the racy loads so the snapshot's invariants always hold.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// The number of buckets every histogram carries.
    pub const BUCKET_COUNT: usize = BUCKETS;

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: two shifts and four relaxed
    /// atomic RMWs, safe to call from any number of threads.
    pub fn record(&self, value: u64) {
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        // The bucket increment is last: a snapshot that observes the
        // bucket without the min/max/sum updates would otherwise report
        // a sample with no extreme recorded. Relaxed ordering means the
        // stores can still be observed out of order — `snapshot()`
        // reconciles regardless — but this order makes the common
        // interleavings consistent for free.
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A reconciled point-in-time copy. The snapshot's `count` is
    /// derived from the bucket counts (so buckets always sum to it),
    /// and `min ≤ mean ≤ max` holds even when the loads race with
    /// concurrent [`Histogram::record`] calls: the `u64::MAX` min
    /// sentinel is clamped away whenever any bucket is non-empty, never
    /// trusted against a separately-loaded count.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i, c));
                count += c;
            }
        }
        if count == 0 {
            return HistogramSnapshot::default();
        }
        let sum = self.sum.load(Ordering::Relaxed);
        let mut min = self.min.load(Ordering::Relaxed);
        let mut max = self.max.load(Ordering::Relaxed);
        // Reconcile racy loads: a record() between our bucket loads and
        // the extreme loads can leave min at the sentinel or min > max.
        // Bucket bounds are always safe stand-ins.
        let first = buckets.first().map_or(0, |&(i, _)| bucket_bounds(i).0);
        let last = buckets.last().map_or(0, |&(i, _)| bucket_bounds(i).1);
        if min == u64::MAX || min < first {
            min = first;
        }
        if max < min {
            max = last.max(min);
        }
        let mean = (sum / count).clamp(min, max);
        HistogramSnapshot { buckets, count, sum, min, max, mean }
    }
}

/// A consistent, plain-data view of a [`Histogram`].
///
/// Invariants (enforced by [`Histogram::snapshot`] and preserved by
/// [`HistogramSnapshot::merge`]):
/// * the bucket counts sum to `count()`;
/// * `min() ≤ mean() ≤ max()` whenever `count() > 0`;
/// * every quantile estimate lies in `[min(), max()]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Sparse `(bucket index, count)` pairs, ascending by index.
    buckets: Vec<(usize, u64)>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    mean: u64,
}

impl HistogramSnapshot {
    /// The number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// The largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The mean sample, clamped into `[min, max]` (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.mean
    }

    /// Whether no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The non-empty buckets as `(lower, upper, count)` triples,
    /// ascending by bound.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().map(|&(i, c)| {
            let (lo, hi) = bucket_bounds(i);
            (lo, hi, c)
        })
    }

    /// The `[lower, upper]` bucket bracketing the `q`-quantile
    /// (`0 ≤ q ≤ 1`) of the recorded samples: the true empirical
    /// quantile (the sample of rank `⌈q · count⌉`, 1-based) is
    /// guaranteed to lie inside. Returns `(0, 0)` when empty.
    #[must_use]
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the quantile sample; q = 0 means rank 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                // The exact extremes tighten the bracket: rank-1 and
                // rank-count quantiles are the recorded min and max.
                return (lo.max(self.min).min(self.max), hi.min(self.max).max(self.min));
            }
        }
        (self.min, self.max)
    }

    /// A point estimate of the `q`-quantile: the upper bound of the
    /// bracketing bucket (≤ 6.25% above the true value). Returns 0 when
    /// empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }

    /// Merges `other` into `self`, preserving all invariants — the
    /// merged snapshot reports exactly the union of both sample sets
    /// (up to bucket resolution).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut merged: Vec<(usize, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) =
            (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        while a.peek().is_some() || b.peek().is_some() {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) if ia == ib => {
                    merged.push((ia, ca + cb));
                    a.next();
                    b.next();
                }
                (Some(&&(ia, ca)), Some(&&(ib, _))) if ia < ib => {
                    merged.push((ia, ca));
                    a.next();
                }
                (Some(_), Some(&&(ib, cb))) => {
                    merged.push((ib, cb));
                    b.next();
                }
                (Some(&&(ia, ca)), None) => {
                    merged.push((ia, ca));
                    a.next();
                }
                (None, Some(&&(ib, cb))) => {
                    merged.push((ib, cb));
                    b.next();
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.mean = (self.sum / self.count).clamp(self.min, self.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn every_value_lies_inside_its_bucket_bounds() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            100,
            1_000,
            1_000_000,
            u64::from(u32::MAX),
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "value {v} outside bucket {i} = [{lo}, {hi}]");
        }
    }

    #[test]
    fn bucket_bounds_tile_the_line() {
        let mut expected_lower = 0u64;
        for i in 0..Histogram::BUCKET_COUNT {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lower, "bucket {i} leaves a gap");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(i, Histogram::BUCKET_COUNT - 1);
                return;
            }
            expected_lower = hi + 1;
        }
        panic!("buckets never reached u64::MAX");
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!((s.count(), s.sum(), s.min(), s.max(), s.mean()), (0, 0, 0, 0, 0));
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile_bounds(0.99), (0, 0));
    }

    #[test]
    fn snapshot_reports_exact_extremes_and_mean() {
        let h = Histogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 600);
        assert_eq!(s.min(), 100);
        assert_eq!(s.max(), 300);
        assert_eq!(s.mean(), 200);
    }

    #[test]
    fn quantiles_bracket_a_known_stream() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (q, truth) in [(0.5, 500u64), (0.9, 900), (0.99, 990), (0.999, 999)] {
            let (lo, hi) = s.quantile_bounds(q);
            assert!(lo <= truth && truth <= hi, "q{q}: true {truth} outside [{lo}, {hi}]");
            // The point estimate is the bracket's upper bound.
            assert_eq!(s.quantile(q), hi);
        }
        assert_eq!(s.quantile_bounds(0.0).0, 1, "q0 is the min");
        assert_eq!(s.quantile_bounds(1.0).1, 1000, "q1 is the max");
    }

    #[test]
    fn torn_recording_cannot_leak_the_min_sentinel() {
        // Regression for the engine's latency_min_ns race: a snapshot
        // interleaving with record() used to observe a counted sample
        // whose min store was not yet visible, reporting u64::MAX as
        // the minimum. Simulate the torn state directly: bucket counted,
        // min/max/sum never stored.
        let h = Histogram::new();
        h.buckets[bucket_index(100)].fetch_add(1, Ordering::Relaxed);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert!(s.min() != u64::MAX, "sentinel leaked: {}", s.min());
        assert!(s.min() <= s.mean() && s.mean() <= s.max());
        // The clamped extremes still bracket the real sample's bucket.
        let (lo, hi) = bucket_bounds(bucket_index(100));
        assert!(s.min() >= lo && s.max() <= hi);
    }

    #[test]
    fn merge_is_the_union_of_sample_sets() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [5u64, 50, 500] {
            a.record(v);
        }
        for v in [1u64, 5_000] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 5);
        assert_eq!(m.sum(), 5556);
        assert_eq!(m.min(), 1);
        assert_eq!(m.max(), 5_000);
        let bucket_total: u64 = m.buckets().map(|(_, _, c)| c).sum();
        assert_eq!(bucket_total, m.count());
        // Merging an empty snapshot is a no-op in both directions.
        let before = m.clone();
        m.merge(&HistogramSnapshot::default());
        assert_eq!(m, before);
        let mut empty = HistogramSnapshot::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn concurrent_recording_keeps_snapshots_consistent() {
        use std::sync::Arc;

        let h = Arc::new(Histogram::new());
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        h.record(t * 1_000 + i);
                    }
                })
            })
            .collect();
        // Snapshot while the writers hammer: every interleaving must
        // satisfy the snapshot invariants.
        for _ in 0..200 {
            let s = h.snapshot();
            let bucket_total: u64 = s.buckets().map(|(_, _, c)| c).sum();
            assert_eq!(bucket_total, s.count());
            if !s.is_empty() {
                assert!(s.min() <= s.mean() && s.mean() <= s.max());
                assert!(s.min() != u64::MAX);
                let p99 = s.quantile(0.99);
                assert!(s.min() <= p99 && p99 <= s.max());
            }
        }
        for w in writers {
            w.join().expect("writer panicked");
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 8_000);
    }
}
