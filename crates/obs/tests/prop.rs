//! Property tests for the histogram (the PR's satellite coverage task):
//!
//! 1. bucket counts always sum to the recorded count, on any stream;
//! 2. every quantile estimate *brackets* the true empirical quantile
//!    of the stream (the bucket `[lower, upper]` contains the sample
//!    of rank `⌈q·count⌉`);
//! 3. merging snapshots behaves like recording the concatenated
//!    stream.

use benes_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// A latency stream of random length spanning the interesting orders
/// of magnitude (sub-bucket-exact small values through multi-second
/// outliers): each sample draws a decade `10^0 .. 10^10` first, so
/// small and huge values are equally represented.
fn arb_stream() -> impl Strategy<Value = Vec<u64>> {
    Just(()).prop_perturb(|(), mut rng| {
        let len = (rng.random::<u64>() % 400) as usize + 1;
        (0..len)
            .map(|_| {
                let decade = (rng.random::<u64>() % 11) as u32; // analyze:allow(truncating-cast): < 11
                rng.random::<u64>() % 10u64.pow(decade).max(1)
            })
            .collect()
    })
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// The true empirical `q`-quantile: the sample of 1-based rank
/// `⌈q·count⌉` (clamped to `[1, count]`) in the sorted stream.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// Satellite property: bucket counts always sum to the count.
    #[test]
    fn buckets_sum_to_count(stream in arb_stream()) {
        let s = record_all(&stream);
        prop_assert_eq!(s.count(), stream.len() as u64);
        let bucket_total: u64 = s.buckets().map(|(_, _, c)| c).sum();
        prop_assert_eq!(bucket_total, s.count());
        let value_total: u64 = stream.iter().sum();
        prop_assert_eq!(s.sum(), value_total);
    }

    /// Satellite property: quantile estimates bracket the true
    /// empirical quantile on random latency streams.
    #[test]
    fn quantiles_bracket_the_truth(stream in arb_stream()) {
        let s = record_all(&stream);
        let mut sorted = stream.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let truth = true_quantile(&sorted, q);
            let (lo, hi) = s.quantile_bounds(q);
            prop_assert!(
                lo <= truth && truth <= hi,
                "q{}: true {} outside [{}, {}]", q, truth, lo, hi
            );
            prop_assert_eq!(s.quantile(q), hi);
        }
    }

    /// Exact extremes and a mean inside them, always.
    #[test]
    fn extremes_are_exact_and_mean_bracketed(stream in arb_stream()) {
        let s = record_all(&stream);
        prop_assert_eq!(s.min(), *stream.iter().min().expect("non-empty"));
        prop_assert_eq!(s.max(), *stream.iter().max().expect("non-empty"));
        prop_assert!(s.min() <= s.mean() && s.mean() <= s.max());
    }

    /// Merging two snapshots equals recording the concatenation.
    #[test]
    fn merge_equals_concatenation(a in arb_stream(), b in arb_stream()) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged, record_all(&both));
    }
}
