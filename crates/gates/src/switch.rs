//! The self-setting binary switch as a gate-level cell (Figs. 2 and 3 of
//! the paper, made of actual gates).
//!
//! A switch in stage `b` (or `2n−2−b`) carries two records, each a bus of
//! `n` tag bits followed by `w` payload bits. Its "simple logic" is:
//!
//! * **control**: tap bit `b` of the *upper* input's tag — zero gates —
//!   optionally gated by the global omega-forcing input
//!   (`ctl = tag_u[b] ∧ ¬force_straight`, 2 extra gates shared by the
//!   whole switch);
//! * **datapath**: for each of the `n + w` bus wires, two 2:1 muxes
//!   (upper-out and lower-out), sharing one inverted control per switch.
//!
//! Cost per switch: `1` NOT + `6·(n + w)` gates (+2 when omega gating is
//! present) — constant in `N` for a fixed word, which is exactly what
//! "some simple logic added to each switch" has to mean for the paper's
//! `O(log N)` claim to stand.

use crate::netlist::{Net, Netlist};

/// The wires of one record travelling through the network: `tag` is
/// little-endian (`tag[0]` is destination bit 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus {
    /// Destination-tag wires, little-endian.
    pub tag: Vec<Net>,
    /// Payload wires, little-endian.
    pub data: Vec<Net>,
}

impl Bus {
    /// All wires, tag first.
    #[must_use]
    pub fn wires(&self) -> Vec<Net> {
        self.tag.iter().chain(self.data.iter()).copied().collect()
    }

    /// The bus width `n + w`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.tag.len() + self.data.len()
    }
}

/// Synthesizes one self-setting switch.
///
/// `control_bit` is the stage's tag bit `b`. `self_set_enable`, when
/// provided, gates the self-setting: the switch is forced straight while
/// the enable wire is 0. It is the *inverted* omega input — invert the
/// omega signal **once** per network and share the wire, so the omega
/// mechanism costs a single AND gate per early-stage switch and adds only
/// one gate level to those stages.
///
/// Returns `(upper_out, lower_out)`.
///
/// # Panics
///
/// Panics if the two input buses have different shapes or `control_bit`
/// is out of range.
#[must_use]
pub fn build_switch(
    nl: &mut Netlist,
    upper: &Bus,
    lower: &Bus,
    control_bit: u32,
    self_set_enable: Option<Net>,
) -> (Bus, Bus) {
    let (u, l, _) =
        build_switch_with_select(nl, upper, lower, control_bit, self_set_enable);
    (u, l)
}

/// [`build_switch`], additionally returning the switch's **select wire**
/// (the effective state signal) — the hook fault-simulation and
/// instrumentation need.
///
/// # Panics
///
/// Same conditions as [`build_switch`].
#[must_use]
pub fn build_switch_with_select(
    nl: &mut Netlist,
    upper: &Bus,
    lower: &Bus,
    control_bit: u32,
    self_set_enable: Option<Net>,
) -> (Bus, Bus, Net) {
    assert_eq!(upper.tag.len(), lower.tag.len(), "tag widths must match");
    assert_eq!(upper.data.len(), lower.data.len(), "data widths must match");
    assert!(
        (control_bit as usize) < upper.tag.len(),
        "control bit {control_bit} outside tag width {}",
        upper.tag.len()
    );

    // Fig. 3: the state is bit b of the UPPER input's tag…
    let tap = upper.tag[control_bit as usize];
    // …unless the (inverted) omega input forces the stage straight. The
    // alias gives the switch a dedicated control wire (zero gates, zero
    // delay) so fault simulation can stick THIS switch without touching
    // the shared tag wire.
    let raw_sel = match self_set_enable {
        Some(enable) => nl.and(tap, enable),
        None => tap,
    };
    let sel = nl.alias(raw_sel);
    let nsel = nl.not(sel);

    let mux_bus = |nl: &mut Netlist, a: &[Net], b: &[Net]| -> Vec<Net> {
        a.iter().zip(b).map(|(&x, &y)| nl.mux_shared(sel, nsel, x, y)).collect()
    };

    // State 0 (sel = 0): straight — upper out = upper in.
    // State 1 (sel = 1): cross — upper out = lower in.
    let up_out = Bus {
        tag: mux_bus(nl, &upper.tag, &lower.tag),
        data: mux_bus(nl, &upper.data, &lower.data),
    };
    let low_out = Bus {
        tag: mux_bus(nl, &lower.tag, &upper.tag),
        data: mux_bus(nl, &lower.data, &upper.data),
    };
    (up_out, low_out, sel)
}

/// The gate cost of one switch with bus width `n + w`:
/// `1 + 6·(n + w)` without omega gating, one more AND with it (the omega
/// inverter is shared network-wide and not counted here).
#[must_use]
pub fn gates_per_switch(tag_width: u32, data_width: u32, omega_gated: bool) -> u64 {
    let bus = u64::from(tag_width + data_width);
    let base = 1 + 6 * bus;
    if omega_gated {
        base + 1
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input_bus(nl: &mut Netlist, tag_w: usize, data_w: usize) -> Bus {
        Bus {
            tag: (0..tag_w).map(|_| nl.input()).collect(),
            data: (0..data_w).map(|_| nl.input()).collect(),
        }
    }

    /// Evaluate one switch for given tag/data words.
    fn run_switch(
        control_bit: u32,
        u_tag: u64,
        u_data: u64,
        l_tag: u64,
        l_data: u64,
        force: Option<bool>,
    ) -> ((u64, u64), (u64, u64)) {
        let (tag_w, data_w) = (3usize, 4usize);
        let mut nl = Netlist::new();
        // The caller-level omega mechanism: the switch receives the
        // INVERTED omega signal as its self-set enable.
        let enable_net = force.map(|_| nl.input());
        let upper = input_bus(&mut nl, tag_w, data_w);
        let lower = input_bus(&mut nl, tag_w, data_w);
        let (uo, lo) = build_switch(&mut nl, &upper, &lower, control_bit, enable_net);
        for w in uo.wires().into_iter().chain(lo.wires()) {
            nl.mark_output(w);
        }
        let mut inputs = Vec::new();
        if let Some(f) = force {
            inputs.push(!f); // enable = NOT(force)
        }
        for (word, width) in
            [(u_tag, tag_w), (u_data, data_w), (l_tag, tag_w), (l_data, data_w)]
        {
            for b in 0..width {
                inputs.push((word >> b) & 1 == 1);
            }
        }
        let out = nl.eval(&inputs);
        let decode = |bits: &[bool]| -> u64 {
            bits.iter().enumerate().map(|(i, &v)| u64::from(v) << i).sum()
        };
        let (ut, rest) = out.split_at(tag_w);
        let (ud, rest) = rest.split_at(data_w);
        let (lt, ld) = rest.split_at(tag_w);
        ((decode(ut), decode(ud)), (decode(lt), decode(ld)))
    }

    #[test]
    fn straight_when_control_bit_zero() {
        // control bit 1 of upper tag 0b101 is 0 → straight.
        let ((ut, ud), (lt, ld)) = run_switch(1, 0b101, 7, 0b011, 9, None);
        assert_eq!((ut, ud), (0b101, 7));
        assert_eq!((lt, ld), (0b011, 9));
    }

    #[test]
    fn cross_when_control_bit_one() {
        // control bit 2 of upper tag 0b100 is 1 → cross.
        let ((ut, ud), (lt, ld)) = run_switch(2, 0b100, 7, 0b011, 9, None);
        assert_eq!((ut, ud), (0b011, 9));
        assert_eq!((lt, ld), (0b100, 7));
    }

    #[test]
    fn lower_tag_never_controls() {
        // Fig. 3: only the UPPER input's tag matters.
        let a = run_switch(0, 0b110, 1, 0b111, 2, None);
        let b = run_switch(0, 0b110, 1, 0b000, 2, None);
        // Upper tag bit 0 = 0 in both → straight in both.
        assert_eq!(a.0, (0b110, 1));
        assert_eq!(b.0, (0b110, 1));
    }

    #[test]
    fn force_straight_overrides() {
        // Control bit says cross, but the omega input forces straight.
        let ((ut, _), (lt, _)) = run_switch(0, 0b001, 1, 0b010, 2, Some(true));
        assert_eq!(ut, 0b001);
        assert_eq!(lt, 0b010);
        // With the force input at 0, the self-setting applies again.
        let ((ut, _), (lt, _)) = run_switch(0, 0b001, 1, 0b010, 2, Some(false));
        assert_eq!(ut, 0b010);
        assert_eq!(lt, 0b001);
    }

    #[test]
    fn gate_cost_formula_matches_structure() {
        let mut nl = Netlist::new();
        let upper = input_bus(&mut nl, 5, 11);
        let lower = input_bus(&mut nl, 5, 11);
        let before = nl.gate_counts().total();
        let _ = build_switch(&mut nl, &upper, &lower, 0, None);
        let used = nl.gate_counts().total() - before;
        assert_eq!(used, gates_per_switch(5, 11, false));

        let mut nl = Netlist::new();
        let enable = nl.input();
        let upper = input_bus(&mut nl, 5, 11);
        let lower = input_bus(&mut nl, 5, 11);
        let before = nl.gate_counts().total();
        let _ = build_switch(&mut nl, &upper, &lower, 0, Some(enable));
        let used = nl.gate_counts().total() - before;
        assert_eq!(used, gates_per_switch(5, 11, true));
    }

    #[test]
    fn cost_is_constant_in_network_size() {
        // The paper's "simple logic": per-switch gates depend only on the
        // word width, never on N.
        assert_eq!(gates_per_switch(3, 8, false), gates_per_switch(3, 8, false));
        let g10 = gates_per_switch(10, 8, false);
        let g20 = gates_per_switch(20, 8, false);
        // Grows only because the tag itself is log N bits wide.
        assert_eq!(g20 - g10, 6 * 10);
    }
}
