//! The §IV pipelined mode at gate level: registers between the stages of
//! the synthesized network.
//!
//! "By providing registers between the stages of `B(n)`, the network may
//! operate in pipelined mode." [`PipelinedGateBenes`] synthesizes each of
//! the `2n − 1` stage columns as its own small combinational netlist and
//! places a register bank between consecutive columns. One [`clock`]
//! latches a new input wavefront (optional), evaluates every column on
//! its register contents, and shifts the results forward — exactly the
//! timing a registered hardware implementation would have: the clock
//! period is bounded by **one column's** critical path (3–4 gate levels,
//! constant in `N`), not the whole network's.
//!
//! Cross-checked against the behavioral `benes_core::pipeline::Pipeline`.
//!
//! [`clock`]: PipelinedGateBenes::clock

use benes_core::topology;
use benes_perm::Permutation;

use crate::netlist::Netlist;
use crate::switch::{build_switch, Bus};

/// One stage column as a standalone netlist: inputs are the `N` port
/// buses (+ the omega wire), outputs are the buses after the switch
/// column and the outgoing link wiring.
#[derive(Debug, Clone)]
struct StageColumn {
    netlist: Netlist,
}

/// A register-pipelined gate-level `B(n)` carrying `(tag, payload)`
/// wavefronts of plain `u64` words.
///
/// # Examples
///
/// ```
/// use benes_gates::pipeline::PipelinedGateBenes;
/// use benes_perm::bpc::Bpc;
///
/// let mut hw = PipelinedGateBenes::build(3, 8);
/// let perm = Bpc::bit_reversal(3).to_permutation();
/// let data: Vec<u64> = (0..8).collect();
/// assert!(hw.clock(Some((&perm, &data))).is_none());
/// for _ in 0..4 {
///     assert!(hw.clock(None).is_none());
/// }
/// let wave = hw.clock(None).expect("latency = 2n − 1 clocks");
/// assert_eq!(wave.1, perm.apply(&data));
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedGateBenes {
    n: u32,
    data_width: u32,
    columns: Vec<StageColumn>,
    /// `regs[s]` holds the bit image waiting at the input of column `s`.
    regs: Vec<Option<Vec<bool>>>,
    clock_count: u64,
}

impl PipelinedGateBenes {
    /// Synthesizes the pipelined network.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range or `data_width > 63`.
    #[must_use]
    pub fn build(n: u32, data_width: u32) -> Self {
        assert!(data_width <= 63, "payload width limited to 63 bits");
        let terminals = topology::terminal_count(n); // validates n

        let links = topology::build_links(n);
        let stages = topology::stage_count(n);
        let columns = (0..stages)
            .map(|s| {
                let mut nl = Netlist::new();
                let buses: Vec<Bus> = (0..terminals)
                    .map(|_| Bus {
                        tag: (0..n).map(|_| nl.input()).collect(),
                        data: (0..data_width).map(|_| nl.input()).collect(),
                    })
                    .collect();
                let bit = topology::control_bit(n, s);
                let mut outs: Vec<Option<Bus>> = vec![None; terminals];
                for i in 0..terminals / 2 {
                    let (uo, lo) =
                        build_switch(&mut nl, &buses[2 * i], &buses[2 * i + 1], bit, None);
                    outs[2 * i] = Some(uo);
                    outs[2 * i + 1] = Some(lo);
                }
                let mut outs: Vec<Bus> =
                    outs.into_iter().map(|b| b.expect("filled")).collect();
                if s < stages - 1 {
                    // Apply the link wiring by reordering output buses.
                    let mut wired: Vec<Option<Bus>> = vec![None; terminals];
                    for (p, bus) in outs.drain(..).enumerate() {
                        wired[links[s][p] as usize] = Some(bus);
                    }
                    outs = wired.into_iter().map(|b| b.expect("filled")).collect();
                }
                for bus in &outs {
                    for w in bus.wires() {
                        nl.mark_output(w);
                    }
                }
                StageColumn { netlist: nl }
            })
            .collect();
        Self {
            n,
            data_width,
            columns,
            regs: (0..stages).map(|_| None).collect(),
            clock_count: 0,
        }
    }

    /// The fill latency in clocks (`2n − 1`).
    #[must_use]
    pub fn latency(&self) -> usize {
        self.columns.len()
    }

    /// The clock-period bound: the deepest single column's critical path
    /// in gate levels — **constant in `N`** (this is what pipelining
    /// buys).
    #[must_use]
    pub fn clock_period_levels(&self) -> usize {
        self.columns.iter().map(|c| c.netlist.depth()).max().unwrap_or(0)
    }

    /// Clocks executed so far.
    #[must_use]
    pub fn clock_count(&self) -> u64 {
        self.clock_count
    }

    /// The synthesized netlist of one stage column — e.g. for Verilog
    /// export of the combinational block between register banks
    /// ([`crate::verilog::export_verilog`]).
    ///
    /// # Panics
    ///
    /// Panics if `stage >= latency()`.
    #[must_use]
    pub fn column_netlist(&self, stage: usize) -> &Netlist {
        &self.columns[stage].netlist
    }

    /// Whether any wavefront is in flight.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.regs.iter().any(Option::is_some)
    }

    fn encode(&self, perm: &Permutation, data: &[u64]) -> Vec<bool> {
        let terminals = 1usize << self.n;
        assert_eq!(perm.len(), terminals, "permutation length must be N");
        assert_eq!(data.len(), terminals, "payload count must be N");
        let mut bits = Vec::new();
        for i in 0..terminals {
            let tag = u64::from(perm.destination(i));
            for b in 0..self.n {
                bits.push((tag >> b) & 1 == 1);
            }
            assert!(
                benes_bits::fits(data[i], self.data_width),
                "payload {:#x} exceeds {} bits",
                data[i],
                self.data_width
            );
            for b in 0..self.data_width {
                bits.push((data[i] >> b) & 1 == 1);
            }
        }
        bits
    }

    fn decode(&self, bits: &[bool]) -> (Vec<u32>, Vec<u64>) {
        let terminals = 1usize << self.n;
        let per = (self.n + self.data_width) as usize;
        let mut tags = Vec::with_capacity(terminals);
        let mut data = Vec::with_capacity(terminals);
        for o in 0..terminals {
            let chunk = &bits[o * per..(o + 1) * per];
            tags.push(
                chunk[..self.n as usize]
                    .iter()
                    .enumerate()
                    .map(|(b, &v)| u32::from(v) << b)
                    .sum(),
            );
            data.push(
                chunk[self.n as usize..]
                    .iter()
                    .enumerate()
                    .map(|(b, &v)| u64::from(v) << b)
                    .sum(),
            );
        }
        (tags, data)
    }

    /// One clock period: latch an optional new wavefront, evaluate every
    /// column, shift forward. Returns the `(tags, payloads)` wavefront
    /// leaving the last column, if any.
    ///
    /// # Panics
    ///
    /// Panics if the input wavefront's lengths mismatch `N`.
    pub fn clock(
        &mut self,
        input: Option<(&Permutation, &[u64])>,
    ) -> Option<(Vec<u32>, Vec<u64>)> {
        self.clock_count += 1;
        let stages = self.columns.len();
        let emitted = self.regs[stages - 1]
            .take()
            .map(|bits| self.columns[stages - 1].netlist.eval(&bits));
        for s in (0..stages - 1).rev() {
            if let Some(bits) = self.regs[s].take() {
                self.regs[s + 1] = Some(self.columns[s].netlist.eval(&bits));
            }
        }
        self.regs[0] = input.map(|(perm, data)| self.encode(perm, data));
        emitted.map(|bits| self.decode(&bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benes_core::pipeline::Pipeline;
    use benes_perm::bpc::Bpc;
    use benes_perm::omega::cyclic_shift;

    #[test]
    fn single_wavefront_matches_behavioral_pipeline() {
        let n = 3;
        let mut hw = PipelinedGateBenes::build(n, 8);
        let mut sw: Pipeline<u64> = Pipeline::new(n);
        let perm = Bpc::bit_reversal(n).to_permutation();
        let data: Vec<u64> = (0..8).map(|i| 0x40 + i).collect();
        let records: Vec<(u32, u64)> =
            perm.destinations().iter().zip(&data).map(|(&d, &v)| (d, v)).collect();

        let mut hw_out = None;
        let mut sw_out = None;
        let mut fed = false;
        while hw_out.is_none() || sw_out.is_none() {
            let hw_in = if fed { None } else { Some((&perm, data.as_slice())) };
            let sw_in = if fed { None } else { Some(records.clone()) };
            fed = true;
            if let Some(w) = hw.clock(hw_in) {
                hw_out = Some(w);
            }
            if let Some(w) = sw.clock(sw_in) {
                sw_out = Some(w);
            }
        }
        let (hw_tags, hw_data) = hw_out.unwrap();
        let sw_wave = sw_out.unwrap();
        assert_eq!(hw_tags, sw_wave.iter().map(|r| r.0).collect::<Vec<_>>());
        assert_eq!(hw_data, sw_wave.iter().map(|r| r.1).collect::<Vec<_>>());
        assert_eq!(hw.clock_count(), sw.clock_count());
    }

    #[test]
    fn streaming_mixed_permutations() {
        let n = 3;
        let mut hw = PipelinedGateBenes::build(n, 6);
        let perms = [
            Bpc::bit_reversal(n).to_permutation(),
            cyclic_shift(n, 3),
            Bpc::perfect_shuffle(n).to_permutation(),
            Bpc::vector_reversal(n).to_permutation(),
        ];
        let data: Vec<u64> = (0..8).collect();
        let mut emitted = Vec::new();
        let mut clock = 0usize;
        while emitted.len() < perms.len() {
            let input = perms.get(clock).map(|p| (p, data.as_slice()));
            if let Some(w) = hw.clock(input) {
                emitted.push(w);
            }
            clock += 1;
        }
        assert_eq!(clock, perms.len() + hw.latency() - 1 + 1);
        for (k, (tags, payloads)) in emitted.iter().enumerate() {
            assert!(tags.iter().enumerate().all(|(o, &t)| t == o as u32));
            assert_eq!(payloads, &perms[k].apply(&data), "vector {k}");
        }
    }

    #[test]
    fn clock_period_is_constant_in_network_size() {
        // The point of pipelining: the clock period is one column's
        // depth (3 mux levels), regardless of N.
        for n in 1..6u32 {
            let hw = PipelinedGateBenes::build(n, 4);
            assert_eq!(hw.clock_period_levels(), 3, "n = {n}");
        }
    }

    #[test]
    fn latency_is_stage_count() {
        for n in [2u32, 4] {
            let hw = PipelinedGateBenes::build(n, 2);
            assert_eq!(hw.latency(), 2 * n as usize - 1);
        }
    }

    #[test]
    fn columns_export_to_verilog() {
        let hw = PipelinedGateBenes::build(2, 2);
        for s in 0..hw.latency() {
            let v = crate::verilog::export_verilog(
                hw.column_netlist(s),
                &format!("benes_b2_stage{s}"),
            );
            assert!(v.contains(&format!("module benes_b2_stage{s} (")));
            // 4 terminals × (2 tag + 2 data) in and out.
            assert_eq!(v.matches("input  wire").count(), 16);
            assert_eq!(v.matches("output wire").count(), 16);
        }
    }

    #[test]
    fn bubbles_propagate() {
        let n = 2;
        let mut hw = PipelinedGateBenes::build(n, 2);
        let p = cyclic_shift(n, 1);
        let data = vec![0u64, 1, 2, 3];
        assert!(hw.clock(Some((&p, &data))).is_none());
        assert!(hw.clock(None).is_none());
        // Bubble, then another vector.
        assert!(hw.clock(Some((&p, &data))).is_none());
        let first = hw.clock(None);
        assert!(first.is_some(), "first vector emerges at clock 4 on B(2)");
        let gap = hw.clock(None);
        assert!(gap.is_none(), "the bubble surfaces as a gap");
        let second = hw.clock(None);
        assert!(second.is_some());
        assert!(!hw.is_busy());
    }
}
