//! Gate-level model of the self-routing Benes network.
//!
//! The paper's claim is a *hardware* claim: "by providing a destination
//! tag with each signal and by adding some **simple logic** to each switch
//! … it is possible for each switch to determine its own setting
//! dynamically", giving a total switch-setting-plus-transit time of
//! `O(log N)` gate delays. The behavioral model in `benes-core` assumes
//! that logic exists; this crate **builds it**:
//!
//! * [`netlist`] — a tiny combinational netlist IR (AND/OR/NOT/XOR over
//!   wires) with an evaluator, gate counting and critical-path depth;
//! * [`switch`] — the self-setting switch cell: the control bit is tapped
//!   straight off the upper input's tag (bit `b` for a stage-`b` switch),
//!   optionally gated by the omega-bit input, and drives a column of
//!   2:1 muxes over the `tag + data` bus;
//! * [`pipeline`] — the §IV registered mode at gate level: one netlist
//!   per stage column with register banks between, clock period bounded
//!   by a single column's (constant) depth;
//! * [`verilog`] — structural Verilog export, so the synthesized logic
//!   can enter real FPGA/ASIC flows;
//! * [`network`] — the full `B(n)` synthesized as one netlist:
//!   [`network::GateBenes`] routes real bit-vectors through
//!   real gates, and reports measured gate counts and critical-path
//!   depth.
//!
//! The headline measurements (experiment `EXP-GATES`):
//!
//! * logic per switch is **constant** for fixed word width — `1` inverter
//!   plus `6` gates per bus wire (two 2:1 muxes), independent of `N`;
//! * the critical path is `3·(2·log N − 1) + O(1)` gate levels — the
//!   `O(log N)` total set-up + transit delay of the abstract claim, now
//!   measured on synthesized gates;
//! * outputs agree bit-for-bit with the behavioral `benes-core` model on
//!   every tested permutation.
//!
//! # Examples
//!
//! ```
//! use benes_gates::network::GateBenes;
//! use benes_perm::bpc::Bpc;
//!
//! // Synthesize B(3) with an 8-bit payload bus.
//! let hw = GateBenes::build(3, 8);
//! let perm = Bpc::bit_reversal(3).to_permutation();
//! let data: Vec<u64> = (0..8).map(|i| 0x10 + i).collect();
//! let out = hw.route(&perm, &data);
//! assert!(out.is_success());
//! assert_eq!(out.data()[4], 0x11); // input 1 arrived at output reverse(001) = 100
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod netlist;
pub mod network;
pub mod pipeline;
pub mod switch;
pub mod verilog;

pub use netlist::{Net, Netlist, NodeView};
pub use network::GateBenes;
