//! The complete `B(n)` synthesized as a combinational netlist.
//!
//! [`GateBenes::build`] lays down `2n − 1` columns of gate-level switch
//! cells wired by the same recursive link tables as the behavioral model
//! (`benes_core::topology::build_links`) — so a routing disagreement
//! between the two models would expose a bug in either. The netlist has
//! one primary-input bus per terminal (tag + payload), a global
//! `omega` input that forces stages `0..n−1` straight when asserted, and
//! one output bus per terminal.

use benes_core::topology;
use benes_perm::Permutation;

use crate::netlist::{GateCounts, Net, Netlist};
use crate::switch::{build_switch, build_switch_with_select, Bus};

/// The result of routing one vector through the synthesized network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateRouteOutcome {
    tags: Vec<u32>,
    data: Vec<u64>,
}

impl GateRouteOutcome {
    /// The destination tag that arrived at each output terminal.
    #[must_use]
    pub fn tags(&self) -> &[u32] {
        &self.tags
    }

    /// The payload word that arrived at each output terminal.
    #[must_use]
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Whether every tag reached the output it names.
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.tags.iter().enumerate().all(|(o, &t)| o as u32 == t)
    }
}

/// A gate-level `B(n)` with a `data_width`-bit payload bus per terminal.
///
/// # Examples
///
/// ```
/// use benes_gates::GateBenes;
/// use benes_perm::omega::cyclic_shift;
///
/// let hw = GateBenes::build(2, 4);
/// assert_eq!(hw.critical_path(), 11); // 7n − 3 gate levels
/// let out = hw.route(&cyclic_shift(2, 1), &[0xA, 0xB, 0xC, 0xD]);
/// assert!(out.is_success());
/// assert_eq!(out.data(), &[0xD, 0xA, 0xB, 0xC]);
/// ```
#[derive(Debug, Clone)]
pub struct GateBenes {
    n: u32,
    data_width: u32,
    netlist: Netlist,
    /// `selects[stage][switch]`: the effective state wire of each switch
    /// (for fault injection and instrumentation).
    selects: Vec<Vec<Net>>,
}

impl GateBenes {
    /// Synthesizes `B(n)` with `data_width` payload bits per record.
    ///
    /// Input ordering: the `omega` control first, then per terminal `i`
    /// (ascending) its tag bits (little-endian) followed by its payload
    /// bits. Outputs mirror the per-terminal layout.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for [`topology`] or
    /// `data_width > 63`.
    #[must_use]
    pub fn build(n: u32, data_width: u32) -> Self {
        assert!(data_width <= 63, "payload width limited to 63 bits");
        let mut nl = Netlist::new();
        let omega = nl.input();
        // One shared inverter: the early-stage switches take the inverted
        // omega as their self-set enable. B(1) has no gated stage, so the
        // inverter would be dead logic (the analyze netlist lint flags
        // unread gates) — skip it there; the omega input stays for a
        // stable input layout.
        let self_set_enable = if n > 1 { Some(nl.not(omega)) } else { None };

        let terminals = topology::terminal_count(n);
        let mut buses: Vec<Bus> = (0..terminals)
            .map(|_| Bus {
                tag: (0..n).map(|_| nl.input()).collect(),
                data: (0..data_width).map(|_| nl.input()).collect(),
            })
            .collect();

        let links = topology::build_links(n);
        let stages = topology::stage_count(n);
        let omega_forced = n as usize - 1;
        let mut selects: Vec<Vec<Net>> = Vec::with_capacity(stages);
        for s in 0..stages {
            let bit = topology::control_bit(n, s);
            let force = if s < omega_forced { self_set_enable } else { None };
            let mut outputs: Vec<Option<Bus>> = vec![None; terminals];
            let mut stage_selects = Vec::with_capacity(terminals / 2);
            for i in 0..terminals / 2 {
                let (uo, lo, sel) = build_switch_with_select(
                    &mut nl,
                    &buses[2 * i],
                    &buses[2 * i + 1],
                    bit,
                    force,
                );
                outputs[2 * i] = Some(uo);
                outputs[2 * i + 1] = Some(lo);
                stage_selects.push(sel);
            }
            selects.push(stage_selects);
            let stage_out: Vec<Bus> =
                outputs.into_iter().map(|b| b.expect("filled")).collect();
            if s < stages - 1 {
                let mut next: Vec<Option<Bus>> = vec![None; terminals];
                for (p, bus) in stage_out.into_iter().enumerate() {
                    next[links[s][p] as usize] = Some(bus);
                }
                buses = next.into_iter().map(|b| b.expect("filled")).collect();
            } else {
                buses = stage_out;
            }
        }
        for bus in &buses {
            for w in bus.wires() {
                nl.mark_output(w);
            }
        }
        Self { n, data_width, netlist: nl, selects }
    }

    /// The network order `n`.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Routes with one switch's select wire forced (stuck-at fault at the
    /// gate level): `state` true forces cross, false forces straight.
    /// The gate-level twin of
    /// `benes_core::diagnose::self_route_with_fault`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or an out-of-range fault location.
    #[must_use]
    pub fn route_with_stuck_switch(
        &self,
        perm: &Permutation,
        data: &[u64],
        stage: usize,
        switch: usize,
        stuck_cross: bool,
    ) -> GateRouteOutcome {
        let sel = self.selects[stage][switch];
        let inputs = self.encode_inputs(perm, data, false);
        let raw = self.netlist.eval_with_faults(&inputs, &[(sel, stuck_cross)]);
        self.decode_outputs(&raw)
    }

    /// The payload width in bits.
    #[must_use]
    pub fn data_width(&self) -> u32 {
        self.data_width
    }

    /// The number of terminals `N = 2^n`.
    #[must_use]
    pub fn terminal_count(&self) -> usize {
        1usize << self.n
    }

    /// The synthesized netlist's structural gate counts.
    #[must_use]
    pub fn gate_counts(&self) -> GateCounts {
        self.netlist.gate_counts()
    }

    /// The measured critical-path depth in gate levels — the hardware
    /// realization of the paper's `O(log N)` total set-up + transit
    /// delay.
    #[must_use]
    pub fn critical_path(&self) -> usize {
        self.netlist.depth()
    }

    /// Access to the underlying netlist (for inspection or export).
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Routes `data` under permutation `perm` through the gates
    /// (self-routing mode: omega input low).
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or a payload exceeds the data width.
    #[must_use]
    pub fn route(&self, perm: &Permutation, data: &[u64]) -> GateRouteOutcome {
        self.route_mode(perm, data, false)
    }

    /// Routes with the omega bit asserted (stages `0..n−1` forced
    /// straight): succeeds exactly on `Ω(n)` permutations.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or a payload exceeds the data width.
    #[must_use]
    pub fn route_omega(&self, perm: &Permutation, data: &[u64]) -> GateRouteOutcome {
        self.route_mode(perm, data, true)
    }

    fn route_mode(
        &self,
        perm: &Permutation,
        data: &[u64],
        omega: bool,
    ) -> GateRouteOutcome {
        let inputs = self.encode_inputs(perm, data, omega);
        let raw = self.netlist.eval(&inputs);
        self.decode_outputs(&raw)
    }

    fn encode_inputs(&self, perm: &Permutation, data: &[u64], omega: bool) -> Vec<bool> {
        let terminals = self.terminal_count();
        assert_eq!(perm.len(), terminals, "permutation length must be N");
        assert_eq!(data.len(), terminals, "payload count must be N");
        let mut inputs = Vec::with_capacity(self.netlist.input_count());
        inputs.push(omega);
        for i in 0..terminals {
            let tag = u64::from(perm.destination(i));
            for b in 0..self.n {
                inputs.push((tag >> b) & 1 == 1);
            }
            assert!(
                benes_bits::fits(data[i], self.data_width),
                "payload {:#x} exceeds {} bits",
                data[i],
                self.data_width
            );
            for b in 0..self.data_width {
                inputs.push((data[i] >> b) & 1 == 1);
            }
        }
        inputs
    }

    fn decode_outputs(&self, raw: &[bool]) -> GateRouteOutcome {
        let terminals = self.terminal_count();
        let per = (self.n + self.data_width) as usize;
        let mut tags = Vec::with_capacity(terminals);
        let mut payloads = Vec::with_capacity(terminals);
        for o in 0..terminals {
            let bits = &raw[o * per..(o + 1) * per];
            let tag: u32 = bits[..self.n as usize]
                .iter()
                .enumerate()
                .map(|(b, &v)| u32::from(v) << b)
                .sum();
            let word: u64 = bits[self.n as usize..]
                .iter()
                .enumerate()
                .map(|(b, &v)| u64::from(v) << b)
                .sum();
            tags.push(tag);
            payloads.push(word);
        }
        GateRouteOutcome { tags, data: payloads }
    }
}

/// A gate-level `B(n)` with **tapered tag buses**: destination-tag bit
/// `b` is consumed for the last time at stage `2n−2−b`, so its wires are
/// dropped from the bus immediately after — the second half of the
/// network carries progressively narrower records, saving
/// `6·(N/2)·n(n−1)/2` mux gates over [`GateBenes`].
///
/// The price: output terminals deliver **payloads only** (all tag wires
/// are gone by the last stage), which is exactly what a hardware
/// implementation wants — the tag has done its job.
///
/// # Examples
///
/// ```
/// use benes_gates::network::{GateBenes, TaperedGateBenes};
/// use benes_perm::bpc::Bpc;
///
/// let full = GateBenes::build(3, 8);
/// let lean = TaperedGateBenes::build(3, 8);
/// assert!(lean.gate_counts().total() < full.gate_counts().total());
///
/// let perm = Bpc::bit_reversal(3).to_permutation();
/// let data: Vec<u64> = (0..8).collect();
/// assert_eq!(lean.route(&perm, &data), perm.apply(&data));
/// ```
#[derive(Debug, Clone)]
pub struct TaperedGateBenes {
    n: u32,
    data_width: u32,
    netlist: Netlist,
}

impl TaperedGateBenes {
    /// Synthesizes the tapered network (no omega input: the omega
    /// mechanism needs the early stages, which are untapered anyway, but
    /// we keep this variant minimal).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range or `data_width > 63`.
    #[must_use]
    pub fn build(n: u32, data_width: u32) -> Self {
        assert!(data_width <= 63, "payload width limited to 63 bits");
        let mut nl = Netlist::new();
        let terminals = topology::terminal_count(n);
        // bus_bits[k] = original tag-bit index of tag position k.
        let mut bus_bits: Vec<u32> = (0..n).collect();
        let mut buses: Vec<Bus> = (0..terminals)
            .map(|_| Bus {
                tag: (0..n).map(|_| nl.input()).collect(),
                data: (0..data_width).map(|_| nl.input()).collect(),
            })
            .collect();
        let links = topology::build_links(n);
        let stages = topology::stage_count(n);
        for s in 0..stages {
            let bit = topology::control_bit(n, s);
            let position = bus_bits
                .iter()
                .position(|&b| b == bit)
                .expect("control bit still on the bus") as u32;
            let mut outs: Vec<Option<Bus>> = vec![None; terminals];
            for i in 0..terminals / 2 {
                let (uo, lo) =
                    build_switch(&mut nl, &buses[2 * i], &buses[2 * i + 1], position, None);
                outs[2 * i] = Some(uo);
                outs[2 * i + 1] = Some(lo);
            }
            let mut stage_out: Vec<Bus> =
                outs.into_iter().map(|b| b.expect("filled")).collect();
            // Taper: from the middle stage on, this stage was the bit's
            // final use — drop its wires.
            if s >= (n as usize) - 1 {
                let drop_pos = position as usize;
                bus_bits.remove(drop_pos);
                for bus in &mut stage_out {
                    bus.tag.remove(drop_pos);
                }
            }
            if s < stages - 1 {
                let mut next: Vec<Option<Bus>> = vec![None; terminals];
                for (p, bus) in stage_out.into_iter().enumerate() {
                    next[links[s][p] as usize] = Some(bus);
                }
                buses = next.into_iter().map(|b| b.expect("filled")).collect();
            } else {
                buses = stage_out;
            }
        }
        debug_assert!(bus_bits.is_empty(), "all tag bits dropped by the last stage");
        for bus in &buses {
            debug_assert!(bus.tag.is_empty());
            for w in bus.wires() {
                nl.mark_output(w);
            }
        }
        Self { n, data_width, netlist: nl }
    }

    /// The network order `n`.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Structural gate counts.
    #[must_use]
    pub fn gate_counts(&self) -> GateCounts {
        self.netlist.gate_counts()
    }

    /// Critical-path depth in gate levels.
    #[must_use]
    pub fn critical_path(&self) -> usize {
        self.netlist.depth()
    }

    /// Routes `data` under `perm`; returns the payload word arriving at
    /// each output terminal.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or a payload exceeds the data width.
    #[must_use]
    pub fn route(&self, perm: &Permutation, data: &[u64]) -> Vec<u64> {
        let terminals = 1usize << self.n;
        assert_eq!(perm.len(), terminals, "permutation length must be N");
        assert_eq!(data.len(), terminals, "payload count must be N");
        let mut inputs = Vec::with_capacity(self.netlist.input_count());
        for i in 0..terminals {
            let tag = u64::from(perm.destination(i));
            for b in 0..self.n {
                inputs.push((tag >> b) & 1 == 1);
            }
            assert!(
                benes_bits::fits(data[i], self.data_width),
                "payload exceeds data width"
            );
            for b in 0..self.data_width {
                inputs.push((data[i] >> b) & 1 == 1);
            }
        }
        let raw = self.netlist.eval(&inputs);
        let per = self.data_width as usize;
        (0..terminals)
            .map(|o| {
                raw[o * per..(o + 1) * per]
                    .iter()
                    .enumerate()
                    .map(|(b, &v)| u64::from(v) << b)
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::gates_per_switch;
    use benes_core::Benes;
    use benes_perm::bpc::Bpc;
    use benes_perm::omega::cyclic_shift;

    #[test]
    fn gate_model_agrees_with_behavioral_model_exhaustively_n2() {
        let hw = GateBenes::build(2, 3);
        let sw = Benes::new(2);
        let data: Vec<u64> = vec![1, 2, 3, 4];
        for d in all_perms(4) {
            let hw_out = hw.route(&d, &data);
            let sw_out = sw.self_route(&d);
            assert_eq!(hw_out.tags(), sw_out.outputs(), "tag mismatch on {d}");
            assert_eq!(hw_out.is_success(), sw_out.is_success());
        }
    }

    #[test]
    fn gate_model_routes_table1_n3() {
        let hw = GateBenes::build(3, 8);
        let data: Vec<u64> = (0..8).map(|i| 0xA0 + i).collect();
        for b in [
            Bpc::bit_reversal(3),
            Bpc::vector_reversal(3),
            Bpc::perfect_shuffle(3),
            Bpc::unshuffle(3),
        ] {
            let perm = b.to_permutation();
            let out = hw.route(&perm, &data);
            assert!(out.is_success(), "{b} failed in gates");
            assert_eq!(out.data().to_vec(), perm.apply(&data), "{b} payload mismatch");
        }
    }

    #[test]
    fn omega_input_reproduces_fig5_rescue() {
        let hw = GateBenes::build(2, 2);
        let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
        let data = vec![0, 1, 2, 3];
        assert!(!hw.route(&d, &data).is_success());
        let rescued = hw.route_omega(&d, &data);
        assert!(rescued.is_success());
        assert_eq!(rescued.data().to_vec(), d.apply(&data));
    }

    #[test]
    fn omega_input_matches_behavioral_omega_exhaustively() {
        let hw = GateBenes::build(2, 1);
        let sw = Benes::new(2);
        for d in all_perms(4) {
            assert_eq!(
                hw.route_omega(&d, &[0, 0, 0, 0]).is_success(),
                sw.self_route_omega(&d).is_success(),
                "omega mismatch on {d}"
            );
        }
    }

    /// The exact critical path: an ungated stage is NOT→AND→OR = 3
    /// levels; each omega-gated stage adds one AND on the select path
    /// (+1), and the first stage pays one more because the shared omega
    /// inverter sits at level 1 while the primary inputs are level 0.
    /// Total: `3(2n−1) + (n−1) + 1 = 7n − 3` for `n ≥ 2`; `B(1)` has no
    /// gated stage, so just 3.
    fn expected_depth(n: u32) -> usize {
        if n == 1 {
            3
        } else {
            7 * n as usize - 3
        }
    }

    #[test]
    fn critical_path_matches_closed_form() {
        for n in 1..6u32 {
            let hw = GateBenes::build(n, 4);
            assert_eq!(hw.critical_path(), expected_depth(n), "n = {n}");
        }
    }

    #[test]
    fn depth_grows_logarithmically_in_terminals() {
        // Doubling N adds a constant number of gate levels (7) — the
        // O(log N) claim in its measurable form.
        let depths: Vec<usize> =
            (2..8).map(|n| GateBenes::build(n, 2).critical_path()).collect();
        for w in depths.windows(2) {
            assert_eq!(w[1] - w[0], 7, "each extra n adds 7 gate levels");
        }
    }

    #[test]
    fn gate_count_matches_per_switch_formula() {
        for n in 2..6u32 {
            let w = 5;
            let hw = GateBenes::build(n, w);
            let switches = benes_core::topology::switch_count(n) as u64;
            let per_stage = benes_core::topology::switches_per_stage(n) as u64;
            let omega_switches = (n as u64 - 1) * per_stage;
            let plain_switches = switches - omega_switches;
            // +1 for the single shared omega inverter.
            let expected = omega_switches * gates_per_switch(n, w, true)
                + plain_switches * gates_per_switch(n, w, false)
                + 1;
            assert_eq!(hw.gate_counts().total(), expected, "n = {n}");
        }
    }

    #[test]
    fn gate_level_stuck_switch_equals_behavioral_fault() {
        // The same fault, injected at two abstraction levels, produces
        // the same misrouting fingerprint.
        use benes_core::diagnose::{self_route_with_fault, StuckSwitch};
        use benes_core::SwitchState;
        let n = 3;
        let hw = GateBenes::build(n, 1);
        let sw = Benes::new(n);
        let perm = Bpc::bit_reversal(n).to_permutation();
        let data = vec![0u64; 8];
        for stage in 0..sw.stage_count() {
            for switch in 0..sw.switches_per_stage() {
                for stuck_cross in [false, true] {
                    let behavioral = self_route_with_fault(
                        &sw,
                        &perm,
                        StuckSwitch {
                            stage,
                            switch,
                            stuck_at: if stuck_cross {
                                SwitchState::Cross
                            } else {
                                SwitchState::Straight
                            },
                        },
                    );
                    let gate = hw.route_with_stuck_switch(
                        &perm,
                        &data,
                        stage,
                        switch,
                        stuck_cross,
                    );
                    assert_eq!(
                        gate.tags(),
                        &behavioral[..],
                        "fault ({stage},{switch},{stuck_cross}) diverges"
                    );
                }
            }
        }
    }

    #[test]
    fn tapered_routes_like_full_network() {
        for n in [2u32, 3, 4] {
            let lean = TaperedGateBenes::build(n, 5);
            let full = GateBenes::build(n, 5);
            let data: Vec<u64> = (0..1u64 << n).map(|i| i + 3).collect();
            for d in [
                Bpc::bit_reversal(n).to_permutation(),
                cyclic_shift(n, 1),
                Permutation::identity(1 << n),
            ] {
                assert_eq!(
                    lean.route(&d, &data),
                    full.route(&d, &data).data().to_vec(),
                    "n = {n}, D = {d}"
                );
            }
        }
    }

    #[test]
    fn tapering_saves_the_predicted_gates() {
        for n in [2u32, 4, 6] {
            let w = 7;
            let lean = TaperedGateBenes::build(n, w);
            let full_untapered_equiv = {
                // The tapered network has no omega gating; compare against
                // the same structure at full width: switches × base cost.
                benes_core::topology::switch_count(n) as u64 * gates_per_switch(n, w, false)
            };
            // Savings: at stage n−1+k (k = 1..n−1) each of N/2 switches
            // muxes k fewer tag wires → 6·k gates saved per switch.
            let nn = 1u64 << n;
            let saved: u64 = (1..u64::from(n)).map(|k| nn / 2 * 6 * k).sum();
            assert_eq!(lean.gate_counts().total(), full_untapered_equiv - saved, "n = {n}");
        }
    }

    #[test]
    fn tapered_critical_path_is_3_levels_per_stage() {
        // No omega gating: every stage is exactly 3 levels.
        for n in 1..6u32 {
            let lean = TaperedGateBenes::build(n, 4);
            assert_eq!(lean.critical_path(), 3 * (2 * n as usize - 1));
        }
    }

    #[test]
    fn payloads_follow_tags_bit_exactly() {
        let hw = GateBenes::build(3, 16);
        let d = cyclic_shift(3, 5);
        let data: Vec<u64> = (0..8).map(|i| 0xBEE0 + i).collect();
        let out = hw.route(&d, &data);
        assert!(out.is_success());
        assert_eq!(out.data().to_vec(), d.apply(&data));
    }

    use benes_perm::Permutation;

    fn all_perms(len: u32) -> Vec<Permutation> {
        fn rec(rem: &mut Vec<u32>, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if rem.is_empty() {
                out.push(cur.clone());
                return;
            }
            for idx in 0..rem.len() {
                let v = rem.remove(idx);
                cur.push(v);
                rec(rem, cur, out);
                cur.pop();
                rem.insert(idx, v);
            }
        }
        let mut out = Vec::new();
        rec(&mut (0..len).collect(), &mut Vec::new(), &mut out);
        out.into_iter().map(|d| Permutation::from_destinations(d).unwrap()).collect()
    }
}
