//! A minimal combinational netlist: wires, two-input gates, an evaluator,
//! and structural metrics (gate count, critical-path depth).
//!
//! Gates are stored in construction order, which is topological by
//! construction (a gate can only reference already-created wires), so
//! evaluation and depth computation are single forward passes.

use std::fmt;

/// A wire (signal) in a [`Netlist`], identified by creation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Net(u32);

impl Net {
    fn index(self) -> usize {
        self.0 as usize
    }

    /// The wire's creation index: its position in node order, usable
    /// with [`Netlist::node`]. Stable for the life of the netlist.
    #[must_use]
    pub fn id(self) -> usize {
        self.index()
    }
}

/// One node of the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    /// A primary input; its position among inputs is stored for reporting.
    Input,
    /// A constant driver.
    Const(bool),
    /// Inverter.
    Not(Net),
    /// Zero-delay wire alias (a named tap, e.g. a switch's control
    /// signal): electrically the same wire, but individually forceable in
    /// fault simulation. Not counted as a gate; adds no depth.
    Alias(Net),
    /// 2-input AND.
    And(Net, Net),
    /// 2-input OR.
    Or(Net, Net),
    /// 2-input XOR.
    Xor(Net, Net),
}

/// A read-only view of one netlist node, exposed for external analyzers
/// (the `benes-analyze` netlist lints): the node kind plus the operand
/// wires it reads. Mirrors the private storage exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeView {
    /// A primary input.
    Input,
    /// A constant driver.
    Const(bool),
    /// Inverter.
    Not(Net),
    /// Zero-delay wire alias (not a gate; adds no depth).
    Alias(Net),
    /// 2-input AND.
    And(Net, Net),
    /// 2-input OR.
    Or(Net, Net),
    /// 2-input XOR.
    Xor(Net, Net),
}

impl NodeView {
    /// The operand wires this node reads (empty for inputs/constants).
    #[must_use]
    pub fn operands(self) -> Vec<Net> {
        match self {
            Self::Input | Self::Const(_) => Vec::new(),
            Self::Not(a) | Self::Alias(a) => vec![a],
            Self::And(a, b) | Self::Or(a, b) | Self::Xor(a, b) => vec![a, b],
        }
    }

    /// Whether the node is a logic gate (counted in [`GateCounts`]).
    #[must_use]
    pub fn is_gate(self) -> bool {
        matches!(self, Self::Not(_) | Self::And(..) | Self::Or(..) | Self::Xor(..))
    }
}

/// Structural gate counts of a netlist (primary inputs and constants are
/// not gates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCounts {
    /// Inverters.
    pub not: u64,
    /// 2-input ANDs.
    pub and: u64,
    /// 2-input ORs.
    pub or: u64,
    /// 2-input XORs.
    pub xor: u64,
}

impl GateCounts {
    /// Total logic gates.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.not + self.and + self.or + self.xor
    }
}

impl fmt::Display for GateCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates ({} NOT, {} AND, {} OR, {} XOR)",
            self.total(),
            self.not,
            self.and,
            self.or,
            self.xor
        )
    }
}

/// A combinational netlist under construction / evaluation.
///
/// # Examples
///
/// ```
/// use benes_gates::Netlist;
///
/// let mut nl = Netlist::new();
/// let a = nl.input();
/// let b = nl.input();
/// let sum = nl.xor(a, b);
/// let carry = nl.and(a, b);
/// nl.mark_output(sum);
/// nl.mark_output(carry);
/// assert_eq!(nl.eval(&[true, true]), vec![false, true]);
/// assert_eq!(nl.depth(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    nodes: Vec<Node>,
    input_count: usize,
    outputs: Vec<Net>,
}

impl Netlist {
    /// An empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, node: Node) -> Net {
        assert!(self.nodes.len() < u32::MAX as usize, "netlist exceeds 2^32 - 1 wires");
        self.nodes.push(node);
        Net((self.nodes.len() - 1) as u32)
    }

    /// Creates a primary input wire. Inputs are numbered in creation
    /// order; [`Netlist::eval`] consumes values in that order.
    pub fn input(&mut self) -> Net {
        self.input_count += 1;
        self.push(Node::Input)
    }

    /// Creates a constant driver.
    pub fn constant(&mut self, value: bool) -> Net {
        self.push(Node::Const(value))
    }

    /// Creates an inverter.
    pub fn not(&mut self, a: Net) -> Net {
        self.push(Node::Not(a))
    }

    /// Creates a zero-delay alias of a wire: electrically the same
    /// signal (free, depth-neutral, not counted as a gate), but
    /// forceable on its own in [`Netlist::eval_with_faults`] — used to
    /// give each switch a dedicated control wire for fault simulation.
    pub fn alias(&mut self, a: Net) -> Net {
        self.push(Node::Alias(a))
    }

    /// Creates a 2-input AND gate.
    pub fn and(&mut self, a: Net, b: Net) -> Net {
        self.push(Node::And(a, b))
    }

    /// Creates a 2-input OR gate.
    pub fn or(&mut self, a: Net, b: Net) -> Net {
        self.push(Node::Or(a, b))
    }

    /// Creates a 2-input XOR gate.
    pub fn xor(&mut self, a: Net, b: Net) -> Net {
        self.push(Node::Xor(a, b))
    }

    /// A 2:1 multiplexer `sel ? b : a`, built from primitive gates
    /// (`(¬sel ∧ a) ∨ (sel ∧ b)` — 1 NOT, 2 AND, 1 OR; callers wanting to
    /// share the inverter across a mux column should build it themselves
    /// with [`Netlist::mux_shared`]).
    pub fn mux(&mut self, sel: Net, a: Net, b: Net) -> Net {
        let nsel = self.not(sel);
        self.mux_shared(sel, nsel, a, b)
    }

    /// A 2:1 multiplexer with a caller-provided inverted select, so one
    /// inverter can serve a whole bus.
    pub fn mux_shared(&mut self, sel: Net, not_sel: Net, a: Net, b: Net) -> Net {
        let take_a = self.and(not_sel, a);
        let take_b = self.and(sel, b);
        self.or(take_a, take_b)
    }

    /// Registers a wire as a primary output. Outputs are reported by
    /// [`Netlist::eval`] in registration order.
    pub fn mark_output(&mut self, net: Net) {
        self.outputs.push(net);
    }

    /// The number of primary inputs.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// The number of primary outputs.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The number of wires (inputs + constants + gates).
    #[must_use]
    pub fn wire_count(&self) -> usize {
        self.nodes.len()
    }

    /// A read-only view of node `index`, for external analyzers.
    ///
    /// # Panics
    ///
    /// Panics if `index >= wire_count()`.
    #[must_use]
    pub fn node(&self, index: usize) -> NodeView {
        match self.nodes[index] {
            Node::Input => NodeView::Input,
            Node::Const(v) => NodeView::Const(v),
            Node::Not(a) => NodeView::Not(a),
            Node::Alias(a) => NodeView::Alias(a),
            Node::And(a, b) => NodeView::And(a, b),
            Node::Or(a, b) => NodeView::Or(a, b),
            Node::Xor(a, b) => NodeView::Xor(a, b),
        }
    }

    /// Iterates node views in creation (hence topological) order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = NodeView> + '_ {
        (0..self.nodes.len()).map(|i| self.node(i))
    }

    /// The marked primary-output wires, in registration order.
    #[must_use]
    pub fn output_nets(&self) -> &[Net] {
        &self.outputs
    }

    /// Structural gate counts.
    #[must_use]
    pub fn gate_counts(&self) -> GateCounts {
        let mut c = GateCounts::default();
        for node in &self.nodes {
            match node {
                Node::Input | Node::Const(_) | Node::Alias(_) => {}
                Node::Not(_) => c.not += 1,
                Node::And(..) => c.and += 1,
                Node::Or(..) => c.or += 1,
                Node::Xor(..) => c.xor += 1,
            }
        }
        c
    }

    /// Evaluates the netlist with **stuck-at faults**: each `(wire,
    /// value)` in `forced` overrides that wire's computed value before
    /// fan-out — classic stuck-at-0/1 fault simulation.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != input_count()`.
    #[must_use]
    pub fn eval_with_faults(&self, inputs: &[bool], forced: &[(Net, bool)]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.input_count,
            "expected {} input values, got {}",
            self.input_count,
            inputs.len()
        );
        let mut values = vec![false; self.nodes.len()];
        let mut next_input = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match *node {
                Node::Input => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                Node::Const(v) => v,
                Node::Alias(a) => values[a.index()],
                Node::Not(a) => !values[a.index()],
                Node::And(a, b) => values[a.index()] && values[b.index()],
                Node::Or(a, b) => values[a.index()] || values[b.index()],
                Node::Xor(a, b) => values[a.index()] ^ values[b.index()],
            };
            for &(net, v) in forced {
                if net.index() == i {
                    values[i] = v;
                }
            }
        }
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// Evaluates the netlist for one input assignment (values in input
    /// creation order); returns the output values in registration order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != input_count()`.
    #[must_use]
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.input_count,
            "expected {} input values, got {}",
            self.input_count,
            inputs.len()
        );
        let mut values = vec![false; self.nodes.len()];
        let mut next_input = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match *node {
                Node::Input => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                Node::Const(v) => v,
                Node::Alias(a) => values[a.index()],
                Node::Not(a) => !values[a.index()],
                Node::And(a, b) => values[a.index()] && values[b.index()],
                Node::Or(a, b) => values[a.index()] || values[b.index()],
                Node::Xor(a, b) => values[a.index()] ^ values[b.index()],
            };
        }
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// The critical-path depth in gate levels from any input/constant to
    /// any marked output (inputs and constants are level 0).
    #[must_use]
    pub fn depth(&self) -> usize {
        let levels = self.levels();
        self.outputs.iter().map(|o| levels[o.index()]).max().unwrap_or(0)
    }

    /// The gate level of one wire.
    #[must_use]
    pub fn depth_of(&self, net: Net) -> usize {
        self.levels()[net.index()]
    }

    /// Structural one-liners for export: a `wire` declaration (with
    /// inline driver for inputs/constants) or an `assign` per node, plus
    /// output aliases. Consumed by
    /// [`export_verilog`](crate::verilog::export_verilog).
    pub(crate) fn structural_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(2 * self.nodes.len());
        let mut next_input = 0usize;
        for (i, node) in self.nodes.iter().enumerate() {
            match *node {
                Node::Input => {
                    lines.push(format!("wire w{i} = in_{next_input};"));
                    next_input += 1;
                }
                Node::Const(v) => {
                    lines.push(format!("wire w{i} = 1'b{};", u8::from(v)));
                }
                Node::Alias(a) => {
                    lines.push(format!("wire w{i} = w{};", a.index()));
                }
                Node::Not(a) => {
                    lines.push(format!("wire w{i};"));
                    lines.push(format!("assign w{i} = ~w{};", a.index()));
                }
                Node::And(a, b) => {
                    lines.push(format!("wire w{i};"));
                    lines.push(format!("assign w{i} = w{} & w{};", a.index(), b.index()));
                }
                Node::Or(a, b) => {
                    lines.push(format!("wire w{i};"));
                    lines.push(format!("assign w{i} = w{} | w{};", a.index(), b.index()));
                }
                Node::Xor(a, b) => {
                    lines.push(format!("wire w{i};"));
                    lines.push(format!("assign w{i} = w{} ^ w{};", a.index(), b.index()));
                }
            }
        }
        for (o, net) in self.outputs.iter().enumerate() {
            lines.push(format!("assign out_{o} = w{};", net.index()));
        }
        lines
    }

    fn levels(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            levels[i] = match *node {
                Node::Input | Node::Const(_) => 0,
                Node::Alias(a) => levels[a.index()], // zero delay
                Node::Not(a) => levels[a.index()] + 1,
                Node::And(a, b) | Node::Or(a, b) | Node::Xor(a, b) => {
                    levels[a.index()].max(levels[b.index()]) + 1
                }
            };
        }
        levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_adder_truth_table() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let sum = nl.xor(a, b);
        let carry = nl.and(a, b);
        nl.mark_output(sum);
        nl.mark_output(carry);
        assert_eq!(nl.eval(&[false, false]), vec![false, false]);
        assert_eq!(nl.eval(&[true, false]), vec![true, false]);
        assert_eq!(nl.eval(&[false, true]), vec![true, false]);
        assert_eq!(nl.eval(&[true, true]), vec![false, true]);
    }

    #[test]
    fn mux_selects() {
        let mut nl = Netlist::new();
        let sel = nl.input();
        let a = nl.input();
        let b = nl.input();
        let m = nl.mux(sel, a, b);
        nl.mark_output(m);
        for (s, x, y) in [(false, true, false), (true, true, false)] {
            let out = nl.eval(&[s, x, y]);
            assert_eq!(out[0], if s { y } else { x });
        }
    }

    #[test]
    fn constants_evaluate() {
        let mut nl = Netlist::new();
        let one = nl.constant(true);
        let zero = nl.constant(false);
        let o = nl.or(one, zero);
        let a = nl.and(one, zero);
        nl.mark_output(o);
        nl.mark_output(a);
        assert_eq!(nl.eval(&[]), vec![true, false]);
    }

    #[test]
    fn depth_counts_levels() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let x = nl.and(a, b); // level 1
        let y = nl.or(x, b); // level 2
        let z = nl.not(y); // level 3
        nl.mark_output(z);
        assert_eq!(nl.depth(), 3);
        assert_eq!(nl.depth_of(x), 1);
        assert_eq!(nl.depth_of(a), 0);
    }

    #[test]
    fn mux_depth_is_three() {
        let mut nl = Netlist::new();
        let sel = nl.input();
        let a = nl.input();
        let b = nl.input();
        let m = nl.mux(sel, a, b);
        nl.mark_output(m);
        assert_eq!(nl.depth(), 3); // NOT → AND → OR
    }

    #[test]
    fn gate_counts_by_kind() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let m = nl.mux(a, b, b);
        let x = nl.xor(m, a);
        nl.mark_output(x);
        let c = nl.gate_counts();
        assert_eq!(c.not, 1);
        assert_eq!(c.and, 2);
        assert_eq!(c.or, 1);
        assert_eq!(c.xor, 1);
        assert_eq!(c.total(), 5);
        assert_eq!(nl.wire_count(), 2 + 5);
    }

    #[test]
    #[should_panic(expected = "input values")]
    fn eval_rejects_wrong_arity() {
        let mut nl = Netlist::new();
        let _ = nl.input();
        let _ = nl.eval(&[]);
    }

    #[test]
    fn stuck_at_faults_override_wires() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let x = nl.and(a, b);
        let y = nl.or(x, b);
        nl.mark_output(y);
        // Healthy: (1,0) → x=0, y=0.
        assert_eq!(nl.eval(&[true, false]), vec![false]);
        // Force the AND output stuck-at-1: y becomes 1.
        assert_eq!(nl.eval_with_faults(&[true, false], &[(x, true)]), vec![true]);
        // Forcing an input wire works too.
        assert_eq!(nl.eval_with_faults(&[true, false], &[(b, true)]), vec![true]);
        // No faults = plain eval.
        assert_eq!(nl.eval_with_faults(&[true, true], &[]), nl.eval(&[true, true]));
    }

    #[test]
    fn shared_inverter_muxes() {
        let mut nl = Netlist::new();
        let sel = nl.input();
        let nsel = nl.not(sel);
        let a0 = nl.input();
        let b0 = nl.input();
        let a1 = nl.input();
        let b1 = nl.input();
        let m0 = nl.mux_shared(sel, nsel, a0, b0);
        let m1 = nl.mux_shared(sel, nsel, a1, b1);
        nl.mark_output(m0);
        nl.mark_output(m1);
        // One inverter for two muxes.
        assert_eq!(nl.gate_counts().not, 1);
        assert_eq!(nl.eval(&[true, false, true, true, false]), vec![true, false]);
        assert_eq!(nl.eval(&[false, false, true, true, false]), vec![false, true]);
    }
}
