//! Property-based tests: the gate-level network is bit-for-bit equivalent
//! to the behavioral model.

use benes_core::Benes;
use benes_gates::GateBenes;
use benes_perm::bpc::{Bpc, SignedBit};
use benes_perm::Permutation;
use proptest::prelude::*;

fn arb_permutation(len: usize) -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(move |(), mut rng| {
        let mut dest: Vec<u32> = (0..len as u32).collect();
        for i in (1..len).rev() {
            let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
            dest.swap(i, j);
        }
        Permutation::from_destinations(dest).expect("bijection")
    })
}

fn arb_bpc(n: u32) -> impl Strategy<Value = Bpc> {
    (arb_permutation(n as usize), proptest::collection::vec(any::<bool>(), n as usize))
        .prop_map(move |(positions, signs)| {
            let entries = positions
                .destinations()
                .iter()
                .zip(signs)
                .map(|(&p, c)| if c { SignedBit::minus(p) } else { SignedBit::plus(p) })
                .collect();
            Bpc::from_entries(entries).expect("valid BPC vector")
        })
}

proptest! {
    // Gate evaluation is slow; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary permutations (inside or outside F): the synthesized gates
    /// and the behavioral switch model deliver identical tag placements.
    #[test]
    fn gates_equal_behavior_on_arbitrary_tags(p in arb_permutation(8)) {
        let hw = GateBenes::build(3, 4);
        let sw = Benes::new(3);
        let data: Vec<u64> = (0..8).collect();
        let hw_out = hw.route(&p, &data);
        let sw_out = sw.self_route(&p);
        prop_assert_eq!(hw_out.tags(), sw_out.outputs());
    }

    /// BPC permutations route payloads correctly through the gates.
    #[test]
    fn gates_route_random_bpc(b in arb_bpc(4), base in 0u64..1000) {
        let hw = GateBenes::build(4, 10);
        let perm = b.to_permutation();
        let data: Vec<u64> = (0..16).map(|i| base + i).collect();
        let out = hw.route(&perm, &data);
        prop_assert!(out.is_success());
        prop_assert_eq!(out.data().to_vec(), perm.apply(&data));
    }

    /// The omega input matches the behavioral omega mode on arbitrary
    /// permutations.
    #[test]
    fn gates_omega_equal_behavior(p in arb_permutation(8)) {
        let hw = GateBenes::build(3, 1);
        let sw = Benes::new(3);
        let data = vec![0u64; 8];
        prop_assert_eq!(
            hw.route_omega(&p, &data).is_success(),
            sw.self_route_omega(&p).is_success()
        );
    }

    /// Gate-level conservation: no payload bit pattern is ever lost, even
    /// for non-F tags.
    #[test]
    fn gates_conserve_payloads(p in arb_permutation(8)) {
        let hw = GateBenes::build(3, 6);
        let data: Vec<u64> = (0..8).map(|i| i * 7 + 1).collect();
        let out = hw.route(&p, &data);
        let mut got = out.data().to_vec();
        got.sort_unstable();
        let mut expected = data;
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
