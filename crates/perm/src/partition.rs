//! `J`-partitions and the block-composite permutation builders of
//! Theorems 4, 5 and 6 of the paper.
//!
//! Let `J ⊆ {n−1, …, 0}` be a set of bit positions. The *J-partition* of
//! `{0, 1, …, 2^n − 1}` groups `i` and `j` into the same block iff
//! `(i)_k = (j)_k` for all `k ∈ J`. With `|J| = n − r` there are `2^{n−r}`
//! blocks of `2^r` (not necessarily consecutive) elements each.
//!
//! The paper's composition theorems state that block-structured
//! permutations assembled from `F`-permutations remain in `F`:
//!
//! * **Theorem 4** ([`within_blocks`]): permute the elements *within* each
//!   block by some `G_i ∈ F(r)`;
//! * **Theorem 5** ([`between_blocks`]): additionally send block `i` onto
//!   block `B_i` for a block-level permutation `B ∈ F(n−r)`;
//! * **Theorem 6** ([`hierarchical_composite`]): partition recursively by
//!   disjoint `J_1, …, J_k` covering all bits and permute the children of
//!   every tree node by an `F` permutation (possibly a different one per
//!   node).
//!
//! The builders here construct the composite [`Permutation`]; membership of
//! the result in `F(n)` is verified in the `benes-core` crate's tests and
//! the `composite_theorems` experiment binary.
//!
//! # Examples
//!
//! ```
//! use benes_perm::partition::JPartition;
//!
//! // The paper's example: n = 3, J = {1} splits {0..7} into
//! // {0, 1, 4, 5} and {2, 3, 6, 7}.
//! let j = JPartition::new(3, [1])?;
//! assert_eq!(j.block_count(), 2);
//! assert_eq!(j.block_elements(0), vec![0, 1, 4, 5]);
//! assert_eq!(j.block_elements(1), vec![2, 3, 6, 7]);
//! # Ok::<(), benes_perm::partition::PartitionError>(())
//! ```

use std::fmt;

use benes_bits::bit;

use crate::Permutation;

/// Error produced by the partition builders.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionError {
    /// `n` was zero or larger than 31.
    BadWidth {
        /// The offending width.
        n: u32,
    },
    /// A position in `J` was `>= n`.
    PositionOutOfRange {
        /// The offending bit position.
        position: u32,
        /// The index width `n`.
        n: u32,
    },
    /// A block permutation had the wrong length.
    BlockPermutationLength {
        /// The block whose permutation was wrong.
        block: u64,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// The block-level permutation had the wrong length (Theorem 5).
    BlockMapLength {
        /// Expected length (the number of blocks).
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// Level masks overlap (Theorem 6 requires disjoint `J_t`).
    OverlappingLevels,
    /// Level masks do not cover all `n` bits (Theorem 6 requires
    /// `∪ J_t = {n−1, …, 0}`).
    IncompleteCover,
    /// A level mask was empty.
    EmptyLevel {
        /// The empty level's index (0-based).
        level: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadWidth { n } => write!(f, "index width n={n} must be in 1..=31"),
            Self::PositionOutOfRange { position, n } => {
                write!(f, "bit position {position} is outside 0..{n}")
            }
            Self::BlockPermutationLength { block, expected, actual } => {
                write!(f, "block {block}: permutation length {actual}, expected {expected}")
            }
            Self::BlockMapLength { expected, actual } => {
                write!(f, "block-level permutation length {actual}, expected {expected}")
            }
            Self::OverlappingLevels => write!(f, "level bit sets must be disjoint"),
            Self::IncompleteCover => {
                write!(f, "level bit sets must cover all index bits")
            }
            Self::EmptyLevel { level } => write!(f, "level {level} has no bits"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A `J`-partition of `{0, …, 2^n − 1}`: indices sharing the bits at the
/// positions in `J` form a block.
///
/// Blocks are numbered by *compacting* the `J`-bits (in increasing position
/// order); positions within a block are numbered by compacting the
/// remaining bits, which preserves the natural (relative) order of the
/// block's elements — the re-indexing Theorem 4 relies on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JPartition {
    n: u32,
    j_mask: u64,
}

impl JPartition {
    /// Builds the partition of `{0, …, 2^n − 1}` induced by the bit
    /// positions in `j`.
    ///
    /// An empty `j` is allowed and yields a single block of all `2^n`
    /// elements.
    ///
    /// # Errors
    ///
    /// Returns an error if `n ∉ 1..=31` or any position is `>= n`.
    pub fn new(n: u32, j: impl IntoIterator<Item = u32>) -> Result<Self, PartitionError> {
        if n == 0 || n > 31 {
            return Err(PartitionError::BadWidth { n });
        }
        let mut j_mask = 0u64;
        for position in j {
            if position >= n {
                return Err(PartitionError::PositionOutOfRange { position, n });
            }
            j_mask |= 1 << position;
        }
        Ok(Self { n, j_mask })
    }

    /// Builds the partition from a bit mask of `J` positions.
    ///
    /// # Errors
    ///
    /// Returns an error if `n ∉ 1..=31` or the mask has bits at or above
    /// position `n`.
    pub fn from_mask(n: u32, j_mask: u64) -> Result<Self, PartitionError> {
        if n == 0 || n > 31 {
            return Err(PartitionError::BadWidth { n });
        }
        if j_mask >> n != 0 {
            return Err(PartitionError::PositionOutOfRange {
                position: 63 - j_mask.leading_zeros(),
                n,
            });
        }
        Ok(Self { n, j_mask })
    }

    /// The index width `n` (`N = 2^n` elements are partitioned).
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The mask of positions in `J`.
    #[must_use]
    pub fn j_mask(&self) -> u64 {
        self.j_mask
    }

    /// The positions in `J`, ascending.
    #[must_use]
    pub fn j_positions(&self) -> Vec<u32> {
        (0..self.n).filter(|&p| bit(self.j_mask, p) == 1).collect()
    }

    /// The number of blocks, `2^{|J|}`.
    #[must_use]
    pub fn block_count(&self) -> usize {
        1usize << self.j_mask.count_ones()
    }

    /// The number of elements per block, `2^{n − |J|}`.
    #[must_use]
    pub fn block_size(&self) -> usize {
        1usize << (self.n - self.j_mask.count_ones())
    }

    /// The block number of element `i` (compacted `J`-bits).
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in `n` bits.
    #[must_use]
    pub fn block_of(&self, i: u64) -> u64 {
        assert!(benes_bits::fits(i, self.n), "index {i} out of range");
        compact_bits(i, self.j_mask)
    }

    /// The rank of element `i` within its block (compacted non-`J` bits);
    /// ranks increase with the natural order of the block's elements.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in `n` bits.
    #[must_use]
    pub fn rank_in_block(&self, i: u64) -> u64 {
        assert!(benes_bits::fits(i, self.n), "index {i} out of range");
        compact_bits(i, !self.j_mask & benes_bits::mask(self.n))
    }

    /// The element with the given block number and in-block rank — the
    /// inverse of ([`block_of`](Self::block_of),
    /// [`rank_in_block`](Self::rank_in_block)).
    ///
    /// # Panics
    ///
    /// Panics if `block >= block_count()` or `rank >= block_size()`.
    #[must_use]
    pub fn element(&self, block: u64, rank: u64) -> u64 {
        assert!((block as usize) < self.block_count(), "block {block} out of range");
        assert!((rank as usize) < self.block_size(), "rank {rank} out of range");
        let free_mask = !self.j_mask & benes_bits::mask(self.n);
        spread_bits(block, self.j_mask) | spread_bits(rank, free_mask)
    }

    /// All elements of the given block, in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `block >= block_count()`.
    #[must_use]
    pub fn block_elements(&self, block: u64) -> Vec<u64> {
        (0..self.block_size() as u64).map(|rank| self.element(block, rank)).collect()
    }

    /// The complementary partition, `J' = {n−1, …, 0} ∖ J`.
    #[must_use]
    pub fn complement(&self) -> Self {
        Self { n: self.n, j_mask: !self.j_mask & benes_bits::mask(self.n) }
    }
}

/// Extracts the bits of `i` at the positions set in `m`, packing them into
/// the low bits of the result (ascending position order).
fn compact_bits(i: u64, m: u64) -> u64 {
    let mut out = 0u64;
    let mut out_pos = 0;
    let mut m = m;
    while m != 0 {
        let p = m.trailing_zeros();
        out |= bit(i, p) << out_pos;
        out_pos += 1;
        m &= m - 1;
    }
    out
}

/// Inverse of [`compact_bits`]: scatters the low bits of `v` to the
/// positions set in `m`.
fn spread_bits(v: u64, m: u64) -> u64 {
    let mut out = 0u64;
    let mut in_pos = 0;
    let mut m = m;
    while m != 0 {
        let p = m.trailing_zeros();
        out |= bit(v, in_pos) << p;
        in_pos += 1;
        m &= m - 1;
    }
    out
}

/// Theorem 4: builds the composite permutation that permutes the elements
/// *within* each block of the `J`-partition, block `b` by `g(b)`.
///
/// If every `g(b) ∈ F(r)` (with `2^r` the block size), the paper proves the
/// composite is in `F(n)`.
///
/// # Errors
///
/// Returns an error if some `g(b)` does not have length
/// [`JPartition::block_size`].
///
/// # Examples
///
/// ```
/// use benes_perm::partition::{within_blocks, JPartition};
/// use benes_perm::Permutation;
///
/// // Reverse within each of the two blocks {0,1,4,5} and {2,3,6,7}.
/// let j = JPartition::new(3, [1])?;
/// let rev = Permutation::from_destinations(vec![3, 2, 1, 0]).unwrap();
/// let g = within_blocks(&j, |_| rev.clone())?;
/// assert_eq!(g.destinations(), &[5, 4, 7, 6, 1, 0, 3, 2]);
/// # Ok::<(), benes_perm::partition::PartitionError>(())
/// ```
pub fn within_blocks(
    j: &JPartition,
    g: impl FnMut(u64) -> Permutation,
) -> Result<Permutation, PartitionError> {
    between_blocks(j, &Permutation::identity(j.block_count()), g)
}

/// Theorem 5: builds the composite that maps block `i` onto block
/// `block_map[i]`, carrying rank `q` of the source block to rank
/// `g(i)[q]` of the target block.
///
/// If every `g(i) ∈ F(r)` and `block_map ∈ F(n−r)`, the paper proves the
/// composite is in `F(n)`.
///
/// # Errors
///
/// Returns an error if `block_map.len()` differs from the block count or
/// some `g(b)` does not have the block size as its length.
///
/// # Examples
///
/// ```
/// use benes_perm::partition::{between_blocks, JPartition};
/// use benes_perm::Permutation;
///
/// // Swap the two blocks of the J = {1} partition, keeping order inside.
/// let j = JPartition::new(3, [1])?;
/// let swap = Permutation::from_destinations(vec![1, 0]).unwrap();
/// let id = Permutation::identity(4);
/// let g = between_blocks(&j, &swap, |_| id.clone())?;
/// assert_eq!(g.destinations(), &[2, 3, 0, 1, 6, 7, 4, 5]);
/// # Ok::<(), benes_perm::partition::PartitionError>(())
/// ```
pub fn between_blocks(
    j: &JPartition,
    block_map: &Permutation,
    mut g: impl FnMut(u64) -> Permutation,
) -> Result<Permutation, PartitionError> {
    if block_map.len() != j.block_count() {
        return Err(PartitionError::BlockMapLength {
            expected: j.block_count(),
            actual: block_map.len(),
        });
    }
    let n = j.n();
    let len = 1usize << n;
    let mut dest = vec![0u32; len];
    for b in 0..j.block_count() as u64 {
        let gb = g(b);
        if gb.len() != j.block_size() {
            return Err(PartitionError::BlockPermutationLength {
                block: b,
                expected: j.block_size(),
                actual: gb.len(),
            });
        }
        let target_block = u64::from(block_map.destination(b as usize));
        for q in 0..j.block_size() as u64 {
            let src = j.element(b, q);
            let dst = j.element(target_block, u64::from(gb.destination(q as usize)));
            dest[src as usize] = dst as u32;
        }
    }
    Ok(Permutation::from_destinations(dest)
        .expect("block composite of bijections is a bijection"))
}

/// Theorem 6: builds the hierarchical composite over disjoint bit sets
/// `J_1, …, J_k` covering all `n` bits.
///
/// Index `x` decomposes into coordinates `c_t = ` compacted `J_t`-bits of
/// `x`. The composite remaps each coordinate by a permutation that may
/// depend on the coordinates of *shallower* levels (the tree ancestors):
/// `c_t ← phi(t, &[c_1, …, c_{t−1}])[c_t]`.
///
/// If every permutation returned by `phi` for level `t` is in `F(|J_t|)`,
/// the paper proves the composite is in `F(n)`.
///
/// `phi(t, parents)` must return a permutation of length `2^{|J_{t+1}|}`
/// (here `t` is 0-based; `parents` holds the already-assigned coordinate
/// values of levels `0..t`).
///
/// # Errors
///
/// Returns an error if the level masks are not disjoint, do not cover all
/// bits, contain an empty level, or `phi` returns a permutation of the
/// wrong length.
///
/// # Examples
///
/// ```
/// use benes_perm::partition::hierarchical_composite;
/// use benes_perm::omega::cyclic_shift;
/// use benes_perm::Permutation;
///
/// // n = 4, level 0 = high two bits, level 1 = low two bits.
/// // Shift the low coordinate by the high coordinate (a "staircase").
/// let g = hierarchical_composite(4, &[0b1100, 0b0011], |t, parents| {
///     if t == 0 {
///         Permutation::identity(4)
///     } else {
///         cyclic_shift(2, parents[0] as i64)
///     }
/// })?;
/// assert_eq!(&g.destinations()[4..8], &[5, 6, 7, 4]); // row 1 shifted by 1
/// # Ok::<(), benes_perm::partition::PartitionError>(())
/// ```
pub fn hierarchical_composite(
    n: u32,
    level_masks: &[u64],
    mut phi: impl FnMut(usize, &[u64]) -> Permutation,
) -> Result<Permutation, PartitionError> {
    if n == 0 || n > 31 {
        return Err(PartitionError::BadWidth { n });
    }
    let full = benes_bits::mask(n);
    let mut seen = 0u64;
    for (level, &m) in level_masks.iter().enumerate() {
        if m == 0 {
            return Err(PartitionError::EmptyLevel { level });
        }
        if m & !full != 0 {
            return Err(PartitionError::PositionOutOfRange {
                position: 63 - m.leading_zeros(),
                n,
            });
        }
        if m & seen != 0 {
            return Err(PartitionError::OverlappingLevels);
        }
        seen |= m;
    }
    if seen != full {
        return Err(PartitionError::IncompleteCover);
    }

    let len = 1usize << n;
    let mut dest = vec![0u32; len];
    for x in 0..len as u64 {
        let mut parents: Vec<u64> = Vec::with_capacity(level_masks.len());
        let mut out = 0u64;
        for (t, &m) in level_masks.iter().enumerate() {
            let c = compact_bits(x, m);
            let p = phi(t, &parents);
            let width = m.count_ones();
            if p.len() != 1usize << width {
                return Err(PartitionError::BlockPermutationLength {
                    block: x,
                    expected: 1usize << width,
                    actual: p.len(),
                });
            }
            let c_new = u64::from(p.destination(c as usize));
            out |= spread_bits(c_new, m);
            parents.push(c);
        }
        dest[x as usize] = out as u32;
    }
    Ok(Permutation::from_destinations(dest)
        .expect("hierarchical composite of bijections is a bijection"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpc::Bpc;
    use crate::omega::cyclic_shift;

    #[test]
    fn paper_partition_example() {
        // n = 3, J = {1}: blocks {0,1,4,5} and {2,3,6,7}.
        let j = JPartition::new(3, [1]).unwrap();
        assert_eq!(j.block_count(), 2);
        assert_eq!(j.block_size(), 4);
        assert_eq!(j.block_elements(0), vec![0, 1, 4, 5]);
        assert_eq!(j.block_elements(1), vec![2, 3, 6, 7]);
    }

    #[test]
    fn empty_j_is_single_block() {
        let j = JPartition::new(3, []).unwrap();
        assert_eq!(j.block_count(), 1);
        assert_eq!(j.block_size(), 8);
        assert_eq!(j.block_elements(0), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn full_j_is_singletons() {
        let j = JPartition::new(3, [0, 1, 2]).unwrap();
        assert_eq!(j.block_count(), 8);
        assert_eq!(j.block_size(), 1);
        for i in 0..8 {
            assert_eq!(j.block_elements(i), vec![i]);
        }
    }

    #[test]
    fn element_inverts_block_and_rank() {
        let j = JPartition::new(5, [0, 3]).unwrap();
        for i in 0..32u64 {
            let b = j.block_of(i);
            let r = j.rank_in_block(i);
            assert_eq!(j.element(b, r), i);
        }
    }

    #[test]
    fn ranks_preserve_relative_order() {
        let j = JPartition::new(4, [2]).unwrap();
        for b in 0..j.block_count() as u64 {
            let elems = j.block_elements(b);
            let mut sorted = elems.clone();
            sorted.sort_unstable();
            assert_eq!(elems, sorted);
        }
    }

    #[test]
    fn complement_swaps_roles() {
        let j = JPartition::new(5, [1, 4]).unwrap();
        let c = j.complement();
        assert_eq!(c.j_positions(), vec![0, 2, 3]);
        assert_eq!(j.block_count(), c.block_size());
        for i in 0..32u64 {
            assert_eq!(j.block_of(i), c.rank_in_block(i));
            assert_eq!(j.rank_in_block(i), c.block_of(i));
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(JPartition::new(0, []), Err(PartitionError::BadWidth { n: 0 }));
        assert_eq!(
            JPartition::new(3, [3]),
            Err(PartitionError::PositionOutOfRange { position: 3, n: 3 })
        );
        assert!(JPartition::from_mask(3, 0b1000).is_err());
    }

    #[test]
    fn within_blocks_empty_j_applies_the_single_block_permutation() {
        // Edge case: empty J ⇒ one block spanning everything, so the
        // Theorem-4 composite *is* the single block permutation.
        let j = JPartition::new(3, []).unwrap();
        let rev = Bpc::vector_reversal(3).to_permutation();
        let g = within_blocks(&j, |b| {
            assert_eq!(b, 0);
            rev.clone()
        })
        .unwrap();
        assert_eq!(g, rev);
    }

    #[test]
    fn within_blocks_full_j_is_identity() {
        // Edge case: J = all bits ⇒ singleton blocks; the only block
        // permutation is the length-1 identity, so the composite is the
        // identity no matter what.
        let j = JPartition::new(3, [0, 1, 2]).unwrap();
        let g = within_blocks(&j, |_| Permutation::identity(1)).unwrap();
        assert!(g.is_identity());
    }

    #[test]
    fn between_blocks_full_j_is_the_block_map() {
        // Edge case: J = all bits ⇒ blocks are single elements, so the
        // Theorem-5 composite collapses to the block map itself.
        let j = JPartition::new(3, [0, 1, 2]).unwrap();
        let map = Bpc::bit_reversal(3).to_permutation();
        let g = between_blocks(&j, &map, |_| Permutation::identity(1)).unwrap();
        assert_eq!(g, map);
    }

    #[test]
    fn between_blocks_single_block_is_within() {
        // Edge case: empty J ⇒ one block; the only valid block map is
        // the length-1 identity and the composite reduces to the
        // within-block permutation.
        let j = JPartition::new(3, []).unwrap();
        let inner = cyclic_shift(3, 3);
        let g = between_blocks(&j, &Permutation::identity(1), |_| inner.clone()).unwrap();
        assert_eq!(g, inner);
    }

    #[test]
    fn within_blocks_reverses_rows() {
        // 4×4 matrix in row-major order (n = 4); J = row bits {2, 3}.
        // Reverse each row.
        let j = JPartition::new(4, [2, 3]).unwrap();
        let rev = Bpc::vector_reversal(2).to_permutation();
        let g = within_blocks(&j, |_| rev.clone()).unwrap();
        assert_eq!(
            g.destinations(),
            &[3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12]
        );
    }

    #[test]
    fn cannon_row_shift_mapping() {
        // Cannon's A(i, j) → A(i, (i + j) mod √N): shift row i left by i.
        // Row-major 4×4, row bits J = {2, 3}, per-row cyclic shift by i.
        let j = JPartition::new(4, [2, 3]).unwrap();
        let g = within_blocks(&j, |row| cyclic_shift(2, row as i64)).unwrap();
        for r in 0..4u64 {
            for c in 0..4u64 {
                let src = 4 * r + c;
                let dst = 4 * r + ((r + c) % 4);
                assert_eq!(u64::from(g.destination(src as usize)), dst);
            }
        }
    }

    #[test]
    fn cannon_column_shift_mapping() {
        // A(i, j) → A((i + j) mod √N, j): column blocks J = {0, 1}.
        let j = JPartition::new(4, [0, 1]).unwrap();
        let g = within_blocks(&j, |col| cyclic_shift(2, col as i64)).unwrap();
        for r in 0..4u64 {
            for c in 0..4u64 {
                let src = 4 * r + c;
                let dst = 4 * ((r + c) % 4) + c;
                assert_eq!(u64::from(g.destination(src as usize)), dst);
            }
        }
    }

    #[test]
    fn row_bit_reversal_mapping() {
        // A(i, j) → A(i^R, j): Theorem 5 with identity inside blocks and a
        // bit-reversal block map over the rows.
        let j = JPartition::new(4, [2, 3]).unwrap();
        let rows_reversed = Bpc::bit_reversal(2).to_permutation();
        let g = between_blocks(&j, &rows_reversed, |_| Permutation::identity(4)).unwrap();
        for r in 0..4u64 {
            for c in 0..4u64 {
                let rr = benes_bits::reverse_bits(r, 2);
                assert_eq!(u64::from(g.destination((4 * r + c) as usize)), 4 * rr + c);
            }
        }
    }

    #[test]
    fn between_blocks_validates_lengths() {
        let j = JPartition::new(3, [1]).unwrap();
        let bad_map = Permutation::identity(4);
        assert_eq!(
            between_blocks(&j, &bad_map, |_| Permutation::identity(4)),
            Err(PartitionError::BlockMapLength { expected: 2, actual: 4 })
        );
        let map = Permutation::identity(2);
        assert_eq!(
            between_blocks(&j, &map, |_| Permutation::identity(2)),
            Err(PartitionError::BlockPermutationLength {
                block: 0,
                expected: 4,
                actual: 2
            })
        );
    }

    #[test]
    fn hierarchical_rejects_bad_levels() {
        let id = |_: usize, _: &[u64]| Permutation::identity(2);
        assert_eq!(
            hierarchical_composite(2, &[0b01, 0b01], id),
            Err(PartitionError::OverlappingLevels)
        );
        assert_eq!(
            hierarchical_composite(3, &[0b01, 0b10], id),
            Err(PartitionError::IncompleteCover)
        );
        assert_eq!(
            hierarchical_composite(2, &[0b01, 0], id),
            Err(PartitionError::EmptyLevel { level: 1 })
        );
    }

    #[test]
    fn hierarchical_single_level_is_plain_permutation() {
        let p = Bpc::bit_reversal(3).to_permutation();
        let g = hierarchical_composite(3, &[0b111], |_, _| p.clone()).unwrap();
        assert_eq!(g, p);
    }

    #[test]
    fn hierarchical_matches_nested_between_blocks() {
        // Two levels: high bits then low bits, with parent-independent
        // permutations — must equal Theorem 5 with the same pieces.
        let n = 4;
        let rows = Bpc::vector_reversal(2).to_permutation();
        let cols = cyclic_shift(2, 1);
        let h = hierarchical_composite(n, &[0b1100, 0b0011], |t, _| {
            if t == 0 {
                rows.clone()
            } else {
                cols.clone()
            }
        })
        .unwrap();
        let j = JPartition::new(n, [2, 3]).unwrap();
        let b = between_blocks(&j, &rows, |_| cols.clone()).unwrap();
        assert_eq!(h, b);
    }

    #[test]
    fn hierarchical_three_d_example() {
        // The paper's Theorem 6 example shape: A(i, j, k) with
        // j' = λ(j), k' = j ⊕ k, i' = (i + j + k) mod 2^r.
        // Levels: j (bits 4..6), k (bits 2..4), i (bits 0..2); n = 6.
        let n = 6;
        let g =
            hierarchical_composite(
                n,
                &[0b110000, 0b001100, 0b000011],
                |t, parents| match t {
                    0 => crate::omega::p_ordering_shift(2, 3, 1),
                    1 => {
                        // k ⊕ j: per-parent BPC complement.
                        let jj = parents[0];
                        Permutation::from_fn(4, |k| (u64::from(k) ^ jj) as u32).unwrap()
                    }
                    _ => cyclic_shift(2, (parents[0] + parents[1]) as i64),
                },
            )
            .unwrap();
        // Spot-check one element: x with j=1, k=2, i=3 → index
        // (1 << 4) | (2 << 2) | 3 = 16 + 8 + 3 = 27.
        // j' = (3·1 + 1) mod 4 = 0; k' = 1 ⊕ 2 = 3; i' = (3 + 1 + 2) mod 4 = 2.
        // dest = (0 << 4) | (3 << 2) | 2 = 14.
        assert_eq!(g.destination(27), 14);
    }
}
