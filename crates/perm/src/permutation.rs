//! The destination-tag representation of a permutation.

use std::fmt;
use std::ops::Index;

/// Error produced when constructing or combining [`Permutation`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PermutationError {
    /// The destination vector was empty.
    Empty,
    /// A destination was outside `0..len`.
    OutOfRange {
        /// The input index carrying the offending destination.
        index: usize,
        /// The offending destination value.
        destination: u32,
        /// The permutation length.
        len: usize,
    },
    /// Two inputs shared the same destination (the map is not a bijection).
    Duplicate {
        /// The repeated destination value.
        destination: u32,
    },
    /// Two permutations of different lengths were combined.
    LengthMismatch {
        /// Length of the left-hand operand.
        left: usize,
        /// Length of the right-hand operand.
        right: usize,
    },
}

impl fmt::Display for PermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "permutation must have at least one element"),
            Self::OutOfRange { index, destination, len } => {
                write!(f, "destination {destination} at input {index} is outside 0..{len}")
            }
            Self::Duplicate { destination } => {
                write!(f, "destination {destination} appears more than once")
            }
            Self::LengthMismatch { left, right } => {
                write!(f, "permutation lengths differ ({left} vs {right})")
            }
        }
    }
}

impl std::error::Error for PermutationError {}

/// A permutation `D = (D_0, …, D_{N−1})` of `(0, …, N−1)` in the paper's
/// destination-tag form: input `i` is sent to output `D_i`.
///
/// The representation is validated at construction: every destination is in
/// range and appears exactly once.
///
/// # Examples
///
/// ```
/// use benes_perm::Permutation;
///
/// let d = Permutation::from_destinations(vec![1, 3, 2, 0])?;
/// assert_eq!(d.destination(0), 1);
/// assert_eq!(d.apply(&["a", "b", "c", "d"]), vec!["d", "a", "c", "b"]);
/// # Ok::<(), benes_perm::PermutationError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    dest: Vec<u32>,
}

impl Permutation {
    /// Builds a permutation from its destination-tag vector `D`.
    ///
    /// # Errors
    ///
    /// Returns an error if the vector is empty, contains a value outside
    /// `0..len`, or contains a repeated value.
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_perm::{Permutation, PermutationError};
    ///
    /// assert!(Permutation::from_destinations(vec![2, 0, 1]).is_ok());
    /// assert_eq!(
    ///     Permutation::from_destinations(vec![0, 0]),
    ///     Err(PermutationError::Duplicate { destination: 0 })
    /// );
    /// ```
    pub fn from_destinations(dest: Vec<u32>) -> Result<Self, PermutationError> {
        if dest.is_empty() {
            return Err(PermutationError::Empty);
        }
        let len = dest.len();
        let mut seen = vec![false; len];
        for (index, &d) in dest.iter().enumerate() {
            let Some(slot) = seen.get_mut(d as usize) else {
                return Err(PermutationError::OutOfRange { index, destination: d, len });
            };
            if *slot {
                return Err(PermutationError::Duplicate { destination: d });
            }
            *slot = true;
        }
        Ok(Self { dest })
    }

    /// Builds the permutation `D_i = f(i)` for `i` in `0..len`.
    ///
    /// # Errors
    ///
    /// Returns an error if `len == 0` or `f` is not a bijection on `0..len`.
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_perm::Permutation;
    ///
    /// // Cyclic shift by 1 on 4 elements.
    /// let d = Permutation::from_fn(4, |i| (i + 1) % 4)?;
    /// assert_eq!(d.destinations(), &[1, 2, 3, 0]);
    /// # Ok::<(), benes_perm::PermutationError>(())
    /// ```
    pub fn from_fn(len: usize, f: impl Fn(u32) -> u32) -> Result<Self, PermutationError> {
        Self::from_destinations((0..len as u32).map(f).collect())
    }

    /// The identity permutation on `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_perm::Permutation;
    /// assert!(Permutation::identity(4).is_identity());
    /// ```
    #[must_use]
    pub fn identity(len: usize) -> Self {
        assert!(len > 0, "permutation must have at least one element");
        Self { dest: (0..len as u32).collect() }
    }

    /// The number of elements `N`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dest.len()
    }

    /// Always `false`: permutations have at least one element.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `n` such that `N = 2^n`, or `None` if `N` is not a power of
    /// two. The paper's networks and machines all require `N = 2^n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_perm::Permutation;
    /// assert_eq!(Permutation::identity(8).log2_len(), Some(3));
    /// assert_eq!(Permutation::identity(6).log2_len(), None);
    /// ```
    #[must_use]
    pub fn log2_len(&self) -> Option<u32> {
        benes_bits::log2_exact(self.dest.len() as u64)
    }

    /// The destination tag `D_i` of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn destination(&self, i: usize) -> u32 {
        self.dest[i]
    }

    /// The full destination-tag vector `D`.
    #[must_use]
    pub fn destinations(&self) -> &[u32] {
        &self.dest
    }

    /// Consumes the permutation, returning the destination vector.
    #[must_use]
    pub fn into_destinations(self) -> Vec<u32> {
        self.dest
    }

    /// Iterates over `(i, D_i)` pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_perm::Permutation;
    /// let d = Permutation::from_destinations(vec![1, 0])?;
    /// let pairs: Vec<_> = d.iter().collect();
    /// assert_eq!(pairs, vec![(0, 1), (1, 0)]);
    /// # Ok::<(), benes_perm::PermutationError>(())
    /// ```
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.dest.iter().enumerate().map(|(i, &d)| (i as u32, d))
    }

    /// Whether this is the identity permutation.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.dest.iter().enumerate().all(|(i, &d)| i as u32 == d)
    }

    /// Applies the permutation to a data slice: output slot `D_i` receives
    /// `data[i]`.
    ///
    /// This is exactly what the network does with the records presented at
    /// its input terminals.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_perm::Permutation;
    /// let d = Permutation::from_destinations(vec![2, 0, 1])?;
    /// assert_eq!(d.apply(&[10, 20, 30]), vec![20, 30, 10]);
    /// # Ok::<(), benes_perm::PermutationError>(())
    /// ```
    #[must_use]
    pub fn apply<T: Clone>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(
            data.len(),
            self.dest.len(),
            "data length {} does not match permutation length {}",
            data.len(),
            self.dest.len()
        );
        let mut out: Vec<Option<T>> = vec![None; data.len()];
        for (i, &d) in self.dest.iter().enumerate() {
            out[d as usize] = Some(data[i].clone());
        }
        out.into_iter().map(|x| x.expect("bijection fills every slot")).collect()
    }

    /// The inverse permutation: if `self` sends `i` to `D_i`, the inverse
    /// sends `D_i` to `i`.
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_perm::Permutation;
    /// let d = Permutation::from_destinations(vec![2, 0, 1])?;
    /// assert!(d.then(&d.inverse()).is_identity());
    /// # Ok::<(), benes_perm::PermutationError>(())
    /// ```
    #[must_use]
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0u32; self.dest.len()];
        for (i, &d) in self.dest.iter().enumerate() {
            inv[d as usize] = i as u32;
        }
        Self { dest: inv }
    }

    /// Sequential composition: first `self`, then `other`.
    ///
    /// `self.then(other)` sends `i` to `other[self[i]]`. This matches the
    /// paper's product notation: with `A = (3,0,1,2)` and `B = (0,1,3,2)`,
    /// `A ∘ B = (2,0,1,3)` (§II, closing remark on non-closure of `F`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ. Use [`Permutation::try_then`] for a
    /// fallible version.
    #[must_use]
    pub fn then(&self, other: &Self) -> Self {
        self.try_then(other).expect("permutation lengths must match")
    }

    /// Fallible version of [`Permutation::then`].
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError::LengthMismatch`] if lengths differ.
    pub fn try_then(&self, other: &Self) -> Result<Self, PermutationError> {
        if self.dest.len() != other.dest.len() {
            return Err(PermutationError::LengthMismatch {
                left: self.dest.len(),
                right: other.dest.len(),
            });
        }
        let dest = self.dest.iter().map(|&d| other.dest[d as usize]).collect();
        Ok(Self { dest })
    }

    /// The `k`-fold self-composition (`k = 0` gives the identity).
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_perm::Permutation;
    /// let shift = Permutation::from_fn(8, |i| (i + 1) % 8)?;
    /// assert_eq!(shift.pow(3).destination(0), 3);
    /// assert!(shift.pow(8).is_identity());
    /// # Ok::<(), benes_perm::PermutationError>(())
    /// ```
    #[must_use]
    pub fn pow(&self, k: u64) -> Self {
        let mut acc = Self::identity(self.dest.len());
        let mut base = self.clone();
        let mut k = k;
        while k > 0 {
            if k & 1 == 1 {
                acc = acc.then(&base);
            }
            base = base.then(&base);
            k >>= 1;
        }
        acc
    }

    /// The cycle decomposition, each cycle starting at its smallest element,
    /// cycles ordered by that element. Fixed points are included as
    /// singleton cycles.
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_perm::Permutation;
    /// let d = Permutation::from_destinations(vec![1, 0, 2, 3])?;
    /// assert_eq!(d.cycles(), vec![vec![0, 1], vec![2], vec![3]]);
    /// # Ok::<(), benes_perm::PermutationError>(())
    /// ```
    #[must_use]
    pub fn cycles(&self) -> Vec<Vec<u32>> {
        let mut seen = vec![false; self.dest.len()];
        let mut cycles = Vec::new();
        for start in 0..self.dest.len() {
            if seen[start] {
                continue;
            }
            let mut cycle = Vec::new();
            let mut cur = start;
            while !seen[cur] {
                seen[cur] = true;
                cycle.push(cur as u32);
                cur = self.dest[cur] as usize;
            }
            cycles.push(cycle);
        }
        cycles
    }

    /// Whether the permutation is even (expressible as an even number of
    /// transpositions).
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_perm::Permutation;
    /// assert!(Permutation::identity(4).is_even());
    /// let swap = Permutation::from_destinations(vec![1, 0, 2, 3])?;
    /// assert!(!swap.is_even());
    /// # Ok::<(), benes_perm::PermutationError>(())
    /// ```
    #[must_use]
    pub fn is_even(&self) -> bool {
        let transpositions: usize = self.cycles().iter().map(|c| c.len() - 1).sum();
        transpositions.is_multiple_of(2)
    }

    /// The order of the permutation in the symmetric group: the smallest
    /// `k ≥ 1` with `self.pow(k)` the identity (the lcm of the cycle
    /// lengths).
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_perm::Permutation;
    /// let d = Permutation::from_destinations(vec![1, 0, 3, 4, 2])?;
    /// assert_eq!(d.order(), 6); // a 2-cycle and a 3-cycle
    /// assert!(d.pow(6).is_identity());
    /// # Ok::<(), benes_perm::PermutationError>(())
    /// ```
    #[must_use]
    pub fn order(&self) -> u64 {
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        self.cycles()
            .iter()
            .map(|c| c.len() as u64)
            .fold(1u64, |acc, l| acc / gcd(acc, l) * l)
    }

    /// The number of fixed points (`D_i == i`).
    #[must_use]
    pub fn fixed_points(&self) -> usize {
        self.dest.iter().enumerate().filter(|&(i, &d)| i as u32 == d).count()
    }

    /// A stable 64-bit fingerprint of the permutation, suitable as a
    /// cache or routing-table key.
    ///
    /// The value depends only on the destination vector — not on the
    /// process, platform, or library version hash seeds — so it can be
    /// persisted and compared across runs. Two equal permutations always
    /// fingerprint identically; distinct permutations collide with
    /// probability ≈ 2⁻⁶⁴ (callers that cannot tolerate collisions should
    /// verify equality on fingerprint match).
    ///
    /// The hash is FNV-1a over the little-endian destination bytes, seeded
    /// with the length and passed through a final avalanche so that nearby
    /// permutations disperse across the full 64-bit range (important when
    /// the fingerprint is reduced to a few shard/bucket bits).
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_perm::Permutation;
    ///
    /// let a = Permutation::from_destinations(vec![1, 3, 2, 0])?;
    /// let b = Permutation::from_destinations(vec![1, 3, 2, 0])?;
    /// assert_eq!(a.fingerprint(), b.fingerprint());
    /// assert_ne!(a.fingerprint(), Permutation::identity(4).fingerprint());
    /// # Ok::<(), benes_perm::PermutationError>(())
    /// ```
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for byte in (self.dest.len() as u64).to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        for &d in &self.dest {
            for byte in d.to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            }
        }
        // splitmix64 finalizer: avalanche the FNV state so low bits are
        // usable as shard indices.
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }
}

impl Index<usize> for Permutation {
    type Output = u32;

    fn index(&self, i: usize) -> &u32 {
        &self.dest[i]
    }
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Permutation{:?}", self.dest)
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dest.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl TryFrom<Vec<u32>> for Permutation {
    type Error = PermutationError;

    fn try_from(dest: Vec<u32>) -> Result<Self, PermutationError> {
        Self::from_destinations(dest)
    }
}

impl From<Permutation> for Vec<u32> {
    fn from(p: Permutation) -> Vec<u32> {
        p.into_destinations()
    }
}

impl IntoIterator for &Permutation {
    type Item = (u32, u32);
    type IntoIter = std::vec::IntoIter<(u32, u32)>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Permutation {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.dest.serialize(serializer)
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Permutation {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let dest = Vec::<u32>::deserialize(deserializer)?;
        Permutation::from_destinations(dest).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[u32]) -> Permutation {
        Permutation::from_destinations(v.to_vec()).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Permutation::from_destinations(vec![]), Err(PermutationError::Empty));
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Permutation::from_destinations(vec![0, 3]),
            Err(PermutationError::OutOfRange { index: 1, destination: 3, len: 2 })
        );
    }

    #[test]
    fn rejects_duplicates() {
        assert_eq!(
            Permutation::from_destinations(vec![1, 1, 0]),
            Err(PermutationError::Duplicate { destination: 1 })
        );
    }

    #[test]
    fn identity_properties() {
        let id = Permutation::identity(8);
        assert_eq!(id.len(), 8);
        assert!(id.is_identity());
        assert_eq!(id.fixed_points(), 8);
        assert!(id.is_even());
        assert_eq!(id.inverse(), id);
    }

    #[test]
    fn apply_routes_input_to_destination() {
        // D = (1,3,2,0): input 0 → output 1, input 1 → output 3, ...
        let d = p(&[1, 3, 2, 0]);
        let out = d.apply(&['a', 'b', 'c', 'd']);
        assert_eq!(out, vec!['d', 'a', 'c', 'b']);
    }

    #[test]
    fn inverse_roundtrip() {
        let d = p(&[4, 2, 0, 3, 1]);
        assert!(d.then(&d.inverse()).is_identity());
        assert!(d.inverse().then(&d).is_identity());
        assert_eq!(d.inverse().inverse(), d);
    }

    #[test]
    fn then_matches_paper_product() {
        // §II closing remark: A = (3,0,1,2), B = (0,1,3,2), A∘B = (2,0,1,3).
        let a = p(&[3, 0, 1, 2]);
        let b = p(&[0, 1, 3, 2]);
        assert_eq!(a.then(&b), p(&[2, 0, 1, 3]));
    }

    #[test]
    fn then_rejects_length_mismatch() {
        let a = Permutation::identity(4);
        let b = Permutation::identity(8);
        assert_eq!(
            a.try_then(&b),
            Err(PermutationError::LengthMismatch { left: 4, right: 8 })
        );
    }

    #[test]
    fn apply_agrees_with_then() {
        // Applying a then b to data equals applying (a.then(b)).
        let a = p(&[3, 0, 1, 2]);
        let b = p(&[0, 1, 3, 2]);
        let data = [100, 200, 300, 400];
        assert_eq!(b.apply(&a.apply(&data)), a.then(&b).apply(&data));
    }

    #[test]
    fn pow_cycles_back() {
        let shift = Permutation::from_fn(16, |i| (i + 1) % 16).unwrap();
        assert_eq!(shift.pow(0), Permutation::identity(16));
        assert_eq!(shift.pow(5).destination(0), 5);
        assert!(shift.pow(16).is_identity());
        assert_eq!(shift.pow(3).then(&shift.pow(7)), shift.pow(10));
    }

    #[test]
    fn cycles_cover_all_elements() {
        let d = p(&[2, 0, 1, 4, 3, 5]);
        let cycles = d.cycles();
        assert_eq!(cycles, vec![vec![0, 2, 1], vec![3, 4], vec![5]]);
        let total: usize = cycles.iter().map(Vec::len).sum();
        assert_eq!(total, d.len());
    }

    #[test]
    fn order_is_lcm_of_cycle_lengths() {
        assert_eq!(Permutation::identity(8).order(), 1);
        let shift = Permutation::from_fn(8, |i| (i + 1) % 8).unwrap();
        assert_eq!(shift.order(), 8);
        // 2-cycle + 3-cycle + fixed point.
        let d = p(&[1, 0, 3, 4, 2, 5]);
        assert_eq!(d.order(), 6);
        assert!(d.pow(d.order()).is_identity());
        assert!(!d.pow(3).is_identity());
    }

    #[test]
    fn parity_of_transposition_chain() {
        assert!(p(&[1, 0, 3, 2]).is_even()); // two transpositions
        assert!(!p(&[1, 2, 3, 0]).is_even()); // 4-cycle = 3 transpositions
    }

    #[test]
    fn log2_len_detection() {
        assert_eq!(Permutation::identity(16).log2_len(), Some(4));
        assert_eq!(Permutation::identity(12).log2_len(), None);
        assert_eq!(Permutation::identity(1).log2_len(), Some(0));
    }

    #[test]
    fn display_and_debug() {
        let d = p(&[1, 0]);
        assert_eq!(d.to_string(), "(1, 0)");
        assert_eq!(format!("{d:?}"), "Permutation[1, 0]");
    }

    #[test]
    fn conversions() {
        let d = Permutation::try_from(vec![1u32, 0]).unwrap();
        let v: Vec<u32> = d.into();
        assert_eq!(v, vec![1, 0]);
    }

    #[test]
    fn fingerprint_is_stable_and_length_sensitive() {
        // Pinned value: the fingerprint is part of the on-disk cache-key
        // contract, so it must never change across releases.
        assert_eq!(p(&[1, 3, 2, 0]).fingerprint(), p(&[1, 3, 2, 0]).fingerprint());
        let golden = p(&[1, 3, 2, 0]).fingerprint();
        assert_eq!(golden, 0x7945_caaa_a8dd_f95b, "fingerprint contract changed");
        // Identity permutations of different lengths must differ even
        // though the shared prefix of destination bytes is identical.
        assert_ne!(
            Permutation::identity(4).fingerprint(),
            Permutation::identity(8).fingerprint()
        );
    }

    #[test]
    fn fingerprint_separates_small_permutations() {
        // All 24 permutations of 4 elements hash distinctly.
        let mut seen = std::collections::HashSet::new();
        let mut dest = vec![0u32, 1, 2, 3];
        // Heap's algorithm, iterative.
        let mut c = [0usize; 4];
        seen.insert(p(&dest).fingerprint());
        let mut i = 0;
        while i < 4 {
            if c[i] < i {
                if i % 2 == 0 {
                    dest.swap(0, i);
                } else {
                    dest.swap(c[i], i);
                }
                seen.insert(p(&dest).fingerprint());
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn iter_pairs() {
        let d = p(&[2, 0, 1]);
        assert_eq!((&d).into_iter().collect::<Vec<_>>(), vec![(0, 2), (1, 0), (2, 1)]);
    }
}
