//! The bit-permute-complement class `BPC(n)` (§II of the paper, after
//! Nassimi & Sahni, *Bitonic sort on a mesh-connected parallel computer* and
//! the companion BPC papers, reference \[6\]).
//!
//! A permutation in `BPC(n)` is specified by an `n`-tuple
//! `A = (A_{n−1}, …, A_0)` where `|A| = (|A_{n−1}|, …, |A_0|)` is a
//! permutation of `(0, …, n−1)` and each entry carries a sign — with `+0`
//! and `−0` distinguished. The destination of input `i` is obtained by
//! complementing bit `j` of `i` whenever `A_j` is negative, and then moving
//! (the possibly complemented) bit `j` to bit position `|A_j|`:
//!
//! ```text
//! (D_i)_{|A_j|} = (i)_j        if A_j ≥ 0
//! (D_i)_{|A_j|} = 1 − (i)_j    if A_j < 0
//! ```
//!
//! `BPC(n)` contains `2^n · n!` of the `N!` permutations, including every
//! entry of the paper's Table I (matrix transpose, bit reversal, vector
//! reversal, perfect shuffle, unshuffle, shuffled row major, bit shuffle).
//! Theorem 2 of the paper shows `BPC(n) ⊆ F(n)`: all of them self-route on
//! the Benes network.
//!
//! # Examples
//!
//! ```
//! use benes_perm::bpc::{Bpc, SignedBit};
//!
//! // The paper's §II example: A = (0, −1, −2) for n = 3.
//! // Stored low-to-high: A_0 = −2, A_1 = −1, A_2 = +0.
//! let a = Bpc::from_entries(vec![
//!     SignedBit::minus(2),
//!     SignedBit::minus(1),
//!     SignedBit::plus(0),
//! ])?;
//! assert_eq!(a.to_permutation().destinations(), &[6, 2, 4, 0, 7, 3, 5, 1]);
//! # Ok::<(), benes_perm::bpc::BpcError>(())
//! ```

use std::fmt;

use benes_bits::bit;

use crate::{Permutation, PermutationError};

/// One entry `A_j` of a BPC vector: a destination bit position with a sign.
///
/// The paper distinguishes `+0` from `−0` (it uses the convention
/// `−0 < 0`), so a plain signed integer cannot represent an entry; this type
/// stores the magnitude and the complement flag separately.
///
/// # Examples
///
/// ```
/// use benes_perm::bpc::SignedBit;
///
/// let e = SignedBit::minus(0);
/// assert_eq!(e.position(), 0);
/// assert!(e.is_complement());
/// assert_eq!(e.to_string(), "-0");
/// assert_eq!(e.negated(), SignedBit::plus(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignedBit {
    position: u32,
    complement: bool,
}

impl SignedBit {
    /// A positive entry `+position`: the bit is moved without complementing.
    #[must_use]
    pub fn plus(position: u32) -> Self {
        Self { position, complement: false }
    }

    /// A negative entry `−position`: the bit is complemented before moving.
    #[must_use]
    pub fn minus(position: u32) -> Self {
        Self { position, complement: true }
    }

    /// The magnitude `|A_j|`: the destination bit position.
    #[must_use]
    pub fn position(self) -> u32 {
        self.position
    }

    /// Whether the source bit is complemented (`A_j < 0`, including `−0`).
    #[must_use]
    pub fn is_complement(self) -> bool {
        self.complement
    }

    /// The entry with the opposite sign (`+j ↔ −j`).
    #[must_use]
    pub fn negated(self) -> Self {
        Self { position: self.position, complement: !self.complement }
    }

    /// The paper's `LMAG` helper (§II, eq. (4)):
    /// `LMAG(A_j) = SIGN(A_j) · (|A_j| − 1)` — the entry re-expressed for
    /// the half-size subproblem after dropping destination bit 0.
    ///
    /// # Panics
    ///
    /// Panics if `position == 0` (`LMAG` is only applied to nonzero
    /// magnitudes in the paper).
    #[must_use]
    pub fn lmag(self) -> Self {
        assert!(self.position > 0, "LMAG requires |A_j| >= 1");
        Self { position: self.position - 1, complement: self.complement }
    }
}

impl fmt::Display for SignedBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.complement { '-' } else { '+' }, self.position)
    }
}

/// Error produced when constructing a [`Bpc`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BpcError {
    /// The `A`-vector was empty.
    Empty,
    /// A magnitude was `>= n`.
    PositionOutOfRange {
        /// Source bit index `j` with the offending entry.
        index: u32,
        /// The offending magnitude `|A_j|`.
        position: u32,
        /// The vector length `n`.
        n: u32,
    },
    /// Two entries shared a magnitude (the magnitudes must be a permutation
    /// of `0..n`).
    DuplicatePosition {
        /// The repeated magnitude.
        position: u32,
    },
}

impl fmt::Display for BpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "BPC vector must have at least one entry"),
            Self::PositionOutOfRange { index, position, n } => {
                write!(f, "entry A_{index} has magnitude {position}, outside 0..{n}")
            }
            Self::DuplicatePosition { position } => {
                write!(f, "magnitude {position} appears more than once")
            }
        }
    }
}

impl std::error::Error for BpcError {}

/// A bit-permute-complement permutation in its compact `A`-vector form.
///
/// Entries are stored **low-to-high**: `entries()[j]` is `A_j`, the rule for
/// source bit `j`. (The paper writes vectors high-to-low as
/// `(A_{n−1}, …, A_0)`; [`fmt::Display`] follows the paper's order.)
///
/// # Examples
///
/// ```
/// use benes_perm::bpc::Bpc;
///
/// let t = Bpc::bit_reversal(3);
/// assert_eq!(t.to_string(), "(+0, +1, +2)"); // A_2 = 0, A_1 = 1, A_0 = 2
/// assert_eq!(t.destination(0b110), 0b011);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bpc {
    /// `a[j]` is the entry `A_j`.
    a: Vec<SignedBit>,
}

impl Bpc {
    /// Builds a BPC permutation from its entries, `entries[j] = A_j`
    /// (low-to-high order).
    ///
    /// # Errors
    ///
    /// Returns an error if the vector is empty or the magnitudes do not form
    /// a permutation of `0..n`.
    pub fn from_entries(entries: Vec<SignedBit>) -> Result<Self, BpcError> {
        if entries.is_empty() {
            return Err(BpcError::Empty);
        }
        let n = entries.len() as u32;
        let mut seen = vec![false; entries.len()];
        for (j, e) in entries.iter().enumerate() {
            if e.position >= n {
                return Err(BpcError::PositionOutOfRange {
                    index: j as u32,
                    position: e.position,
                    n,
                });
            }
            if seen[e.position as usize] {
                return Err(BpcError::DuplicatePosition { position: e.position });
            }
            seen[e.position as usize] = true;
        }
        Ok(Self { a: entries })
    }

    /// Convenience constructor from `(position, complement)` pairs,
    /// low-to-high.
    ///
    /// # Errors
    ///
    /// Same as [`Bpc::from_entries`].
    pub fn from_pairs(pairs: Vec<(u32, bool)>) -> Result<Self, BpcError> {
        Self::from_entries(
            pairs
                .into_iter()
                .map(|(p, c)| SignedBit { position: p, complement: c })
                .collect(),
        )
    }

    /// The identity element of `BPC(n)`: `A_j = +j`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn identity(n: u32) -> Self {
        assert!(n > 0, "BPC requires n >= 1");
        Self { a: (0..n).map(SignedBit::plus).collect() }
    }

    /// Table I: **matrix transpose** of a `2^{n/2} × 2^{n/2}` matrix stored
    /// in row-major order; `A = (n/2 − 1, …, 0, n − 1, …, n/2)`.
    ///
    /// Source bit `j` moves to `(j + n/2) mod n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or odd.
    #[must_use]
    pub fn matrix_transpose(n: u32) -> Self {
        assert!(n > 0 && n.is_multiple_of(2), "matrix transpose requires even n >= 2");
        Self { a: (0..n).map(|j| SignedBit::plus((j + n / 2) % n)).collect() }
    }

    /// Table I: **bit reversal**; `A = (0, 1, …, n − 1)`, i.e.
    /// `A_j = n − 1 − j`. This is the permutation of the paper's Fig. 4.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn bit_reversal(n: u32) -> Self {
        assert!(n > 0, "BPC requires n >= 1");
        Self { a: (0..n).map(|j| SignedBit::plus(n - 1 - j)).collect() }
    }

    /// Table I: **vector reversal** (`D_i = N − 1 − i`);
    /// `A = (−(n−1), …, −1, −0)`, i.e. `A_j = −j`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn vector_reversal(n: u32) -> Self {
        assert!(n > 0, "BPC requires n >= 1");
        Self { a: (0..n).map(SignedBit::minus).collect() }
    }

    /// Table I: **perfect shuffle** (`D_i = rotate-left₁(i)`);
    /// `A = (0, n−1, …, 1)`, i.e. `A_j = (j + 1) mod n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn perfect_shuffle(n: u32) -> Self {
        assert!(n > 0, "BPC requires n >= 1");
        Self { a: (0..n).map(|j| SignedBit::plus((j + 1) % n)).collect() }
    }

    /// Table I: **unshuffle** (`D_i = rotate-right₁(i)`);
    /// `A = (n−2, …, 0, n−1)`, i.e. `A_j = (j + n − 1) mod n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn unshuffle(n: u32) -> Self {
        assert!(n > 0, "BPC requires n >= 1");
        Self { a: (0..n).map(|j| SignedBit::plus((j + n - 1) % n)).collect() }
    }

    /// Table I: **shuffled row major**: the index halves are interleaved,
    /// `x_{h−1} … x_0 y_{h−1} … y_0 ↦ x_{h−1} y_{h−1} … x_0 y_0`.
    ///
    /// Low-half bit `j` moves to `2j`; high-half bit `h + b` moves to
    /// `2b + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or odd.
    #[must_use]
    pub fn shuffled_row_major(n: u32) -> Self {
        assert!(n > 0 && n.is_multiple_of(2), "shuffled row major requires even n >= 2");
        let h = n / 2;
        Self {
            a: (0..n)
                .map(|j| {
                    if j < h {
                        SignedBit::plus(2 * j)
                    } else {
                        SignedBit::plus(2 * (j - h) + 1)
                    }
                })
                .collect(),
        }
    }

    /// Table I: **bit shuffle**: the inverse of
    /// [shuffled row major](Bpc::shuffled_row_major) — even-position bits
    /// gather in the low half, odd-position bits in the high half.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or odd.
    #[must_use]
    pub fn bit_shuffle(n: u32) -> Self {
        assert!(n > 0 && n.is_multiple_of(2), "bit shuffle requires even n >= 2");
        let h = n / 2;
        Self {
            a: (0..n)
                .map(|j| {
                    if j % 2 == 0 {
                        SignedBit::plus(j / 2)
                    } else {
                        SignedBit::plus(h + j / 2)
                    }
                })
                .collect(),
        }
    }

    /// `n`, the number of index bits (`N = 2^n`).
    #[must_use]
    pub fn n(&self) -> u32 {
        self.a.len() as u32
    }

    /// `N = 2^n`, the number of elements permuted.
    #[must_use]
    pub fn len(&self) -> usize {
        1usize << self.a.len()
    }

    /// Always `false`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The entries `A_0, …, A_{n−1}` in low-to-high order.
    #[must_use]
    pub fn entries(&self) -> &[SignedBit] {
        &self.a
    }

    /// The entry `A_j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= n`.
    #[must_use]
    pub fn entry(&self, j: u32) -> SignedBit {
        self.a[j as usize]
    }

    /// The destination `D_i` of input `i` under this BPC permutation.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in `n` bits.
    #[must_use]
    pub fn destination(&self, i: u64) -> u64 {
        assert!(
            benes_bits::fits(i, self.n()),
            "index {i} does not fit in {} bits",
            self.n()
        );
        let mut d = 0u64;
        for (j, e) in self.a.iter().enumerate() {
            let b = bit(i, j as u32) ^ u64::from(e.complement);
            d |= b << e.position;
        }
        d
    }

    /// Expands the compact `A`-vector into the full destination-tag
    /// [`Permutation`] of length `2^n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 31` (the expansion would not fit in memory /
    /// `u32` tags).
    #[must_use]
    pub fn to_permutation(&self) -> Permutation {
        assert!(self.n() <= 31, "cannot expand BPC with n > 31");
        let dest = (0..self.len() as u64).map(|i| self.destination(i) as u32).collect();
        Permutation::from_destinations(dest).expect("BPC expansion is a bijection")
    }

    /// Attempts to recognize an arbitrary permutation as a member of
    /// `BPC(n)` and recover its `A`-vector.
    ///
    /// Returns `None` if the permutation length is not a power of two or the
    /// permutation is not bit-permute-complement.
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_perm::{Permutation, bpc::Bpc};
    ///
    /// let p = Bpc::vector_reversal(3).to_permutation();
    /// assert_eq!(Bpc::from_permutation(&p), Some(Bpc::vector_reversal(3)));
    ///
    /// // Cyclic shift is not BPC (paper, §II).
    /// let shift = Permutation::from_fn(8, |i| (i + 1) % 8).unwrap();
    /// assert_eq!(Bpc::from_permutation(&shift), None);
    /// ```
    #[must_use]
    pub fn from_permutation(p: &Permutation) -> Option<Self> {
        let n = p.log2_len()?;
        if n == 0 {
            return None; // BPC is defined for n >= 1 (N >= 2).
        }
        let nn = p.len() as u64;
        let mut a = Vec::with_capacity(n as usize);
        let mut used = vec![false; n as usize];
        for j in 0..n {
            let mut found = None;
            'positions: for m in 0..n {
                if used[m as usize] {
                    continue;
                }
                for complement in [false, true] {
                    let c = u64::from(complement);
                    let ok = (0..nn).all(|i| {
                        bit(u64::from(p.destination(i as usize)), m) == bit(i, j) ^ c
                    });
                    if ok {
                        found = Some(SignedBit { position: m, complement });
                        break 'positions;
                    }
                }
            }
            let e = found?;
            used[e.position as usize] = true;
            a.push(e);
        }
        Some(Self { a })
    }

    /// The inverse BPC permutation (BPC is a group).
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_perm::bpc::Bpc;
    /// let s = Bpc::perfect_shuffle(4);
    /// assert_eq!(s.inverse(), Bpc::unshuffle(4));
    /// ```
    #[must_use]
    pub fn inverse(&self) -> Self {
        let mut a = vec![SignedBit::plus(0); self.a.len()];
        for (j, e) in self.a.iter().enumerate() {
            a[e.position as usize] =
                SignedBit { position: j as u32, complement: e.complement };
        }
        Self { a }
    }

    /// Sequential composition in `A`-vector form: first `self`, then
    /// `other`. Agrees with [`Permutation::then`] on the expansions.
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError::LengthMismatch`] if `n` differs.
    pub fn try_then(&self, other: &Self) -> Result<Self, PermutationError> {
        if self.a.len() != other.a.len() {
            return Err(PermutationError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        let a = self
            .a
            .iter()
            .map(|e| {
                let second = other.a[e.position as usize];
                SignedBit {
                    position: second.position,
                    complement: e.complement ^ second.complement,
                }
            })
            .collect();
        Ok(Self { a })
    }

    /// Infallible [`Bpc::try_then`].
    ///
    /// # Panics
    ///
    /// Panics if `n` differs.
    #[must_use]
    pub fn then(&self, other: &Self) -> Self {
        self.try_then(other).expect("BPC sizes must match")
    }

    /// The source-bit position `k` with `|A_k| = 0` (the bit that lands in
    /// destination bit 0). Central to Lemma 1 and Theorem 2.
    #[must_use]
    pub fn k_zero(&self) -> u32 {
        self.a
            .iter()
            .position(|e| e.position == 0)
            .expect("magnitudes are a permutation, so 0 occurs") as u32
    }

    /// Lemma 1 of the paper, formula form: splits this `BPC(n)` permutation
    /// (`n > 1`) into the two `BPC(n−1)` permutations `F1` (vector `B`) and
    /// `F2` (vector `C`) induced on the half-size subproblems.
    ///
    /// With `k` the position such that `|A_k| = 0`:
    /// `B_j = LMAG(A_{j+1})` for `j ≠ k−1`, `B_{k−1} = LMAG(A_0)`, and
    /// `C` equals `B` except `C_{k−1} = −B_{k−1}` (when `k = 0` the two
    /// coincide and the formula degenerates to dropping `A_0`).
    ///
    /// Use [`Bpc::split_destination_halves`] for the direct `Q/R`
    /// computation from the expanded permutation; the two agree (tested).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn split_lemma1(&self) -> (Self, Self) {
        let n = self.a.len();
        assert!(n >= 2, "Lemma 1 requires n >= 2");
        let k = self.k_zero();
        let mut b = Vec::with_capacity(n - 1);
        for j in 0..(n - 1) as u32 {
            if k >= 1 && j == k - 1 {
                b.push(self.a[0].lmag());
            } else {
                b.push(self.a[(j + 1) as usize].lmag());
            }
        }
        let f1 = Self { a: b };
        let mut c = f1.clone();
        if k >= 1 {
            let idx = (k - 1) as usize;
            c.a[idx] = c.a[idx].negated();
        }
        (f1, c)
    }

    /// Lemma 1 of the paper, direct form: computes the permutations
    /// `F1 = (Q_0, …)` and `F2 = (R_0, …)` from the expanded destination
    /// tags, where with `k` as in [`Bpc::k_zero`]:
    ///
    /// ```text
    /// Q_i = (D_{2i})_{n−1..1}   if (2i)_k = 0, else (D_{2i+1})_{n−1..1}
    /// R_i = (D_{2i})_{n−1..1}   if (2i)_k = 1, else (D_{2i+1})_{n−1..1}
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n > 31`.
    #[must_use]
    pub fn split_destination_halves(&self) -> (Permutation, Permutation) {
        let n = self.n();
        assert!(n >= 2, "Lemma 1 requires n >= 2");
        assert!(n <= 31, "cannot expand BPC with n > 31");
        let k = self.k_zero();
        let half = self.len() / 2;
        let mut q = Vec::with_capacity(half);
        let mut r = Vec::with_capacity(half);
        for i in 0..half as u64 {
            let upper = self.destination(2 * i);
            let lower = self.destination(2 * i + 1);
            let (qv, rv) = if bit(2 * i, k) == 0 { (upper, lower) } else { (lower, upper) };
            q.push((qv >> 1) as u32);
            r.push((rv >> 1) as u32);
        }
        (
            Permutation::from_destinations(q).expect("Lemma 1: Q is a permutation"),
            Permutation::from_destinations(r).expect("Lemma 1: R is a permutation"),
        )
    }
}

impl fmt::Display for Bpc {
    /// Prints in the paper's high-to-low order `(A_{n−1}, …, A_0)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (count, e) in self.a.iter().rev().enumerate() {
            if count > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

impl From<Bpc> for Permutation {
    fn from(b: Bpc) -> Permutation {
        b.to_permutation()
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for SignedBit {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (self.position, self.complement).serialize(serializer)
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for SignedBit {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let (position, complement) = <(u32, bool)>::deserialize(deserializer)?;
        Ok(Self { position, complement })
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bpc {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.a.serialize(serializer)
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Bpc {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let entries = Vec::<SignedBit>::deserialize(deserializer)?;
        Bpc::from_entries(entries).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benes_bits::{interleave, reverse_bits, shuffle, unshuffle as bits_unshuffle};

    #[test]
    fn paper_example_a_vector() {
        // §II: A = (0, −1, −2) gives D = (6, 2, 4, 0, 7, 3, 5, 1).
        let a = Bpc::from_entries(vec![
            SignedBit::minus(2),
            SignedBit::minus(1),
            SignedBit::plus(0),
        ])
        .unwrap();
        assert_eq!(a.to_permutation().destinations(), &[6, 2, 4, 0, 7, 3, 5, 1]);
        assert_eq!(a.to_string(), "(+0, -1, -2)");
    }

    #[test]
    fn rejects_bad_vectors() {
        assert_eq!(Bpc::from_entries(vec![]), Err(BpcError::Empty));
        assert_eq!(
            Bpc::from_entries(vec![SignedBit::plus(1), SignedBit::plus(2)]),
            Err(BpcError::PositionOutOfRange { index: 1, position: 2, n: 2 })
        );
        assert_eq!(
            Bpc::from_entries(vec![SignedBit::plus(1), SignedBit::minus(1)]),
            Err(BpcError::DuplicatePosition { position: 1 })
        );
    }

    #[test]
    fn identity_is_identity() {
        for n in 1..6 {
            assert!(Bpc::identity(n).to_permutation().is_identity());
        }
    }

    #[test]
    fn bit_reversal_matches_bit_utils() {
        for n in 1..8u32 {
            let b = Bpc::bit_reversal(n);
            for i in 0..(1u64 << n) {
                assert_eq!(b.destination(i), reverse_bits(i, n));
            }
        }
    }

    #[test]
    fn vector_reversal_is_complement() {
        for n in 1..8u32 {
            let b = Bpc::vector_reversal(n);
            let nn = 1u64 << n;
            for i in 0..nn {
                assert_eq!(b.destination(i), nn - 1 - i);
            }
        }
    }

    #[test]
    fn perfect_shuffle_matches_bit_utils() {
        for n in 1..8u32 {
            let b = Bpc::perfect_shuffle(n);
            for i in 0..(1u64 << n) {
                assert_eq!(b.destination(i), shuffle(i, n));
            }
        }
    }

    #[test]
    fn unshuffle_matches_bit_utils() {
        for n in 1..8u32 {
            let b = Bpc::unshuffle(n);
            for i in 0..(1u64 << n) {
                assert_eq!(b.destination(i), bits_unshuffle(i, n));
            }
        }
    }

    #[test]
    fn shuffled_row_major_is_interleave() {
        for h in 1..4u32 {
            let n = 2 * h;
            let b = Bpc::shuffled_row_major(n);
            for i in 0..(1u64 << n) {
                assert_eq!(b.destination(i), interleave(i, h));
            }
        }
    }

    #[test]
    fn bit_shuffle_inverts_shuffled_row_major() {
        for h in 1..4u32 {
            let n = 2 * h;
            assert_eq!(Bpc::shuffled_row_major(n).inverse(), Bpc::bit_shuffle(n));
            assert!(Bpc::shuffled_row_major(n)
                .then(&Bpc::bit_shuffle(n))
                .to_permutation()
                .is_identity());
        }
    }

    #[test]
    fn matrix_transpose_transposes() {
        // n = 4: a 4×4 matrix in row-major order; element (r, c) at index
        // 4r + c must move to 4c + r.
        let t = Bpc::matrix_transpose(4);
        for r in 0..4u64 {
            for c in 0..4u64 {
                assert_eq!(t.destination(4 * r + c), 4 * c + r);
            }
        }
    }

    #[test]
    fn transpose_is_self_inverse() {
        for n in [2u32, 4, 6] {
            let t = Bpc::matrix_transpose(n);
            assert!(t.then(&t).to_permutation().is_identity());
        }
    }

    #[test]
    fn shuffle_unshuffle_inverse_vectors() {
        for n in 1..8u32 {
            assert_eq!(Bpc::perfect_shuffle(n).inverse(), Bpc::unshuffle(n));
        }
    }

    #[test]
    fn then_agrees_with_permutation_then() {
        let a = Bpc::bit_reversal(4);
        let b = Bpc::vector_reversal(4);
        let c = Bpc::perfect_shuffle(4);
        let lhs = a.then(&b).then(&c).to_permutation();
        let rhs = a.to_permutation().then(&b.to_permutation()).then(&c.to_permutation());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn inverse_agrees_with_permutation_inverse() {
        let a = Bpc::from_entries(vec![
            SignedBit::minus(2),
            SignedBit::plus(0),
            SignedBit::minus(1),
        ])
        .unwrap();
        assert_eq!(a.inverse().to_permutation(), a.to_permutation().inverse());
    }

    #[test]
    fn from_permutation_roundtrip() {
        for b in [
            Bpc::identity(4),
            Bpc::bit_reversal(4),
            Bpc::vector_reversal(4),
            Bpc::perfect_shuffle(4),
            Bpc::unshuffle(4),
            Bpc::matrix_transpose(4),
            Bpc::shuffled_row_major(4),
            Bpc::bit_shuffle(4),
        ] {
            assert_eq!(Bpc::from_permutation(&b.to_permutation()), Some(b));
        }
    }

    #[test]
    fn from_permutation_rejects_non_bpc() {
        // Cyclic shift (paper: not in BPC unless k ≡ 0 mod N).
        let shift = Permutation::from_fn(8, |i| (i + 1) % 8).unwrap();
        assert_eq!(Bpc::from_permutation(&shift), None);
        // Non-power-of-two length.
        let p = Permutation::identity(6);
        assert_eq!(Bpc::from_permutation(&p), None);
        // A permutation that fixes parity but is not linear in the bits.
        let odd = Permutation::from_destinations(vec![0, 1, 2, 3, 6, 7, 4, 5]).unwrap();
        // (This one happens to be BPC? Verify by construction instead.)
        let detected = Bpc::from_permutation(&odd);
        if let Some(b) = detected {
            assert_eq!(b.to_permutation(), odd);
        }
    }

    #[test]
    fn from_permutation_never_lies() {
        // Exhaustive over S_4: detection must agree with expansion.
        let mut bpc_count = 0;
        for d in permutations_of(4) {
            let p = Permutation::from_destinations(d).unwrap();
            if let Some(b) = Bpc::from_permutation(&p) {
                assert_eq!(b.to_permutation(), p);
                bpc_count += 1;
            }
        }
        // |BPC(2)| = 2^2 · 2! = 8.
        assert_eq!(bpc_count, 8);
    }

    #[test]
    fn lemma1_splits_agree_and_are_bpc() {
        let cases = [
            Bpc::bit_reversal(3),
            Bpc::vector_reversal(3),
            Bpc::perfect_shuffle(3),
            Bpc::identity(3),
            Bpc::bit_reversal(4),
            Bpc::matrix_transpose(4),
            Bpc::shuffled_row_major(4),
            Bpc::from_entries(vec![
                SignedBit::minus(1),
                SignedBit::plus(0),
                SignedBit::minus(2),
            ])
            .unwrap(),
            Bpc::from_entries(vec![
                SignedBit::minus(2),
                SignedBit::minus(0),
                SignedBit::plus(1),
            ])
            .unwrap(),
        ];
        for a in cases {
            let (f1, f2) = a.split_lemma1();
            let (q, r) = a.split_destination_halves();
            assert_eq!(f1.to_permutation(), q, "F1 vs Q for A = {a}");
            assert_eq!(f2.to_permutation(), r, "F2 vs R for A = {a}");
            assert_eq!(f1.n(), a.n() - 1);
            assert_eq!(f2.n(), a.n() - 1);
        }
    }

    #[test]
    fn lemma1_sign_flip_between_f1_f2() {
        // With k >= 1, F1 and F2 differ exactly in the sign of entry k−1.
        let a = Bpc::from_entries(vec![
            SignedBit::plus(1), // A_0 = +1  (|A_0| = 1 → case 2 of Thm 2)
            SignedBit::plus(0), // A_1 = +0  (k = 1)
            SignedBit::plus(2),
        ])
        .unwrap();
        assert_eq!(a.k_zero(), 1);
        let (f1, f2) = a.split_lemma1();
        assert_eq!(f1.entry(0).negated(), f2.entry(0));
        assert_eq!(f1.entry(1), f2.entry(1));
    }

    #[test]
    fn bpc_class_size() {
        // |BPC(n)| = 2^n · n! — enumerate for n = 2 via detection.
        let mut count = 0;
        for d in permutations_of(4) {
            let p = Permutation::from_destinations(d).unwrap();
            if Bpc::from_permutation(&p).is_some() {
                count += 1;
            }
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn display_orders_high_to_low() {
        let b = Bpc::perfect_shuffle(3);
        // A_2 = +0, A_1 = +2, A_0 = +1.
        assert_eq!(b.to_string(), "(+0, +2, +1)");
    }

    /// All permutations of `0..len` as destination vectors.
    fn permutations_of(len: u32) -> Vec<Vec<u32>> {
        fn rec(remaining: &mut Vec<u32>, current: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if remaining.is_empty() {
                out.push(current.clone());
                return;
            }
            for idx in 0..remaining.len() {
                let v = remaining.remove(idx);
                current.push(v);
                rec(remaining, current, out);
                current.pop();
                remaining.insert(idx, v);
            }
        }
        let mut remaining: Vec<u32> = (0..len).collect();
        let mut out = Vec::new();
        rec(&mut remaining, &mut Vec::new(), &mut out);
        out
    }
}
