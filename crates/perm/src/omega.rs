//! Lawrie's omega `Ω(n)` and inverse-omega `Ω⁻¹(n)` permutation classes
//! (§II of the paper, after Lawrie, *Access and alignment of data in an
//! array processor*, reference \[4\]), plus the paper's list of useful
//! `Ω⁻¹(n)` permutations.
//!
//! An omega network on `N = 2^n` terminals consists of `n` identical
//! stages, each a perfect shuffle followed by a column of `N/2` exchange
//! switches. A permutation is *an omega permutation* iff the network can
//! realize it without conflicts; Lawrie characterized the class by a
//! residue condition on index bit-slices, which is what [`is_omega`] and
//! [`is_inverse_omega`] test. (The `benes-networks` crate implements the
//! network itself; the two definitions are property-tested against each
//! other there.)
//!
//! A permutation `D` is in `Ω(n)` iff for every `i ≠ j` and every
//! `b ∈ 1..n`:
//!
//! ```text
//! (i)_{b−1..0} = (j)_{b−1..0}  ⟹  (D_i)_{n−1..b} ≠ (D_j)_{n−1..b}
//! ```
//!
//! and in `Ω⁻¹(n)` iff for every `i ≠ j` and every `b ∈ 1..n`:
//!
//! ```text
//! (i)_{n−1..b} = (j)_{n−1..b}  ⟹  (D_i)_{b−1..0} ≠ (D_j)_{b−1..0}
//! ```
//!
//! (Equivalently, `D ∈ Ω(n)` iff `D⁻¹ ∈ Ω⁻¹(n)`: an inverse-omega
//! permutation is one realizable by running an omega network backwards.)
//!
//! Theorem 3 of the paper proves `Ω⁻¹(n) ⊆ F(n)`: every inverse-omega
//! permutation self-routes on the Benes network. `Ω(n)` permutations are
//! handled with the "omega bit" extension (forcing the first `n−1` stages
//! straight).
//!
//! The paper lists six families of useful `Ω⁻¹(n)` permutations, all
//! provided here: [`cyclic_shift`], [`p_ordering`], [`inverse_p_ordering`],
//! [`p_ordering_shift`], [`segment_cyclic_shift`] and
//! [`conditional_exchange`]. The paper also notes all six are in `Ω(n)` as
//! well (tested).

use benes_bits::{bit, bit_slice, mask};

use crate::Permutation;

/// Tests membership in Lawrie's omega class `Ω(n)`.
///
/// Returns `false` if the permutation length is not a power of two (`Ω` is
/// only defined for `N = 2^n`). For `n ≤ 1` every permutation is in `Ω(n)`.
///
/// The test runs in `O(N log N)` time using a radix bucket per `b` rather
/// than the naive `O(N²)` pairwise check.
///
/// # Examples
///
/// ```
/// use benes_perm::{Permutation, omega::is_omega};
///
/// // The paper's Fig. 5 permutation is in Ω(2) but not in F(2).
/// let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
/// assert!(is_omega(&d));
/// ```
#[must_use]
pub fn is_omega(d: &Permutation) -> bool {
    let Some(n) = d.log2_len() else { return false };
    // For each b in 1..n, group inputs by (i)_{b-1..0}; within a group all
    // (D_i)_{n-1..b} must be distinct.
    for b in 1..n {
        if has_slice_collision(d, b, SliceSide::OmegaForward) {
            return false;
        }
    }
    true
}

/// Tests membership in the inverse-omega class `Ω⁻¹(n)`.
///
/// Returns `false` if the permutation length is not a power of two. For
/// `n ≤ 1` every permutation is in `Ω⁻¹(n)`.
///
/// # Examples
///
/// ```
/// use benes_perm::{Permutation, omega::{cyclic_shift, is_inverse_omega}};
///
/// assert!(is_inverse_omega(&cyclic_shift(3, 5)));
///
/// // Fig. 5's permutation is NOT inverse-omega (hence not in F(2)).
/// let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
/// assert!(!is_inverse_omega(&d));
/// ```
#[must_use]
pub fn is_inverse_omega(d: &Permutation) -> bool {
    let Some(n) = d.log2_len() else { return false };
    for b in 1..n {
        if has_slice_collision(d, b, SliceSide::OmegaInverse) {
            return false;
        }
    }
    true
}

#[derive(Clone, Copy)]
enum SliceSide {
    /// Group by low source bits, compare high destination bits.
    OmegaForward,
    /// Group by high source bits, compare low destination bits.
    OmegaInverse,
}

/// Returns `true` if two distinct inputs collide for the given `b`.
fn has_slice_collision(d: &Permutation, b: u32, side: SliceSide) -> bool {
    let n = d.log2_len().expect("caller checked power of two");
    let len = d.len();
    // seen[group * 2^(n-b) + residue] — we deduplicate (group, key) pairs.
    let mut seen = vec![false; len];
    for i in 0..len {
        let i64v = i as u64;
        let dv = u64::from(d.destination(i));
        // `keys_per_group` is the number of possible `key` values; the pair
        // (group, key) always enumerates exactly `len` combinations.
        let (group, key, keys_per_group) = match side {
            SliceSide::OmegaForward => {
                // 2^b groups of low source bits, 2^(n-b) high-dest keys.
                (i64v & mask(b), bit_slice(dv, n - 1, b), len >> b)
            }
            SliceSide::OmegaInverse => {
                // 2^(n-b) groups of high source bits, 2^b low-dest keys.
                (bit_slice(i64v, n - 1, b), dv & mask(b), 1usize << b)
            }
        };
        let idx = (group as usize) * keys_per_group + key as usize;
        if seen[idx] {
            return true;
        }
        seen[idx] = true;
    }
    false
}

/// §II generator 1: **cyclic shift** `D_i = (i + k) mod N`.
///
/// In `Ω⁻¹(n)` (and `Ω(n)`) for every `k`. Not in `BPC(n)` unless
/// `k ≡ 0 (mod N)`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 31`.
///
/// # Examples
///
/// ```
/// use benes_perm::omega::cyclic_shift;
/// assert_eq!(cyclic_shift(2, 1).destinations(), &[1, 2, 3, 0]);
/// assert_eq!(cyclic_shift(2, -1).destinations(), &[3, 0, 1, 2]);
/// ```
#[must_use]
pub fn cyclic_shift(n: u32, k: i64) -> Permutation {
    assert!(n > 0 && n <= 31, "cyclic shift requires 1 <= n <= 31");
    let len = 1usize << n;
    let kk = k.rem_euclid(len as i64) as u64;
    Permutation::from_fn(len, |i| ((u64::from(i) + kk) & mask(n)) as u32)
        .expect("cyclic shift is a bijection")
}

/// §II generator 2: **p-ordering** `D_i = (p · i) mod N` for odd `p`.
///
/// # Panics
///
/// Panics if `n == 0`, `n > 31`, or `p` is even (an even multiplier is not
/// a bijection modulo a power of two).
///
/// # Examples
///
/// ```
/// use benes_perm::omega::p_ordering;
/// assert_eq!(p_ordering(3, 3).destinations(), &[0, 3, 6, 1, 4, 7, 2, 5]);
/// ```
#[must_use]
pub fn p_ordering(n: u32, p: u64) -> Permutation {
    assert!(n > 0 && n <= 31, "p-ordering requires 1 <= n <= 31");
    assert!(p % 2 == 1, "p-ordering requires odd p (got {p})");
    let len = 1usize << n;
    Permutation::from_fn(len, |i| (p.wrapping_mul(u64::from(i)) & mask(n)) as u32)
        .expect("odd multiplier is a bijection mod 2^n")
}

/// §II generator 3: **inverse p-ordering** — the q-ordering with
/// `p · q ≡ 1 (mod N)`, which unscrambles [`p_ordering`].
///
/// # Panics
///
/// Panics if `n == 0`, `n > 31`, or `p` is even.
///
/// # Examples
///
/// ```
/// use benes_perm::omega::{inverse_p_ordering, p_ordering};
/// let p = p_ordering(4, 5);
/// let q = inverse_p_ordering(4, 5);
/// assert!(p.then(&q).is_identity());
/// ```
#[must_use]
pub fn inverse_p_ordering(n: u32, p: u64) -> Permutation {
    assert!(n > 0 && n <= 31, "inverse p-ordering requires 1 <= n <= 31");
    assert!(p % 2 == 1, "inverse p-ordering requires odd p (got {p})");
    p_ordering(n, mod_inverse_pow2(p, n))
}

/// The multiplicative inverse of odd `p` modulo `2^n`.
///
/// Uses Newton–Hensel lifting: `x ← x(2 − px)` doubles the number of
/// correct low bits per step.
///
/// # Panics
///
/// Panics if `p` is even or `n == 0` or `n > 63`.
///
/// # Examples
///
/// ```
/// use benes_perm::omega::mod_inverse_pow2;
/// assert_eq!((3 * mod_inverse_pow2(3, 8)) % 256, 1);
/// ```
#[must_use]
pub fn mod_inverse_pow2(p: u64, n: u32) -> u64 {
    assert!(p % 2 == 1, "only odd numbers are invertible mod 2^n (got {p})");
    assert!(n > 0 && n <= 63, "modulus width must be in 1..=63");
    let mut x = 1u64; // correct mod 2
    for _ in 0..6 {
        x = x.wrapping_mul(2u64.wrapping_sub(p.wrapping_mul(x)));
    }
    x & mask(n)
}

/// §II generator 4: **p-ordering and cyclic shift**
/// `D_i = (p·i + k) mod N` for odd `p` — Lenfant's FUB family `λ(n)`.
///
/// # Panics
///
/// Panics if `n == 0`, `n > 31`, or `p` is even.
///
/// # Examples
///
/// ```
/// use benes_perm::omega::p_ordering_shift;
/// assert_eq!(p_ordering_shift(2, 3, 1).destinations(), &[1, 0, 3, 2]);
/// ```
#[must_use]
pub fn p_ordering_shift(n: u32, p: u64, k: i64) -> Permutation {
    assert!(n > 0 && n <= 31, "p-ordering-shift requires 1 <= n <= 31");
    assert!(p % 2 == 1, "p-ordering-shift requires odd p (got {p})");
    let len = 1usize << n;
    let kk = k.rem_euclid(len as i64) as u64;
    Permutation::from_fn(len, |i| {
        ((p.wrapping_mul(u64::from(i)).wrapping_add(kk)) & mask(n)) as u32
    })
    .expect("affine map with odd multiplier is a bijection mod 2^n")
}

/// §II generator 5: **cyclic shifts within segments** — Lenfant's FUB
/// family `δ(n)`.
///
/// For segment width `j ∈ 1..=n` and shift `k`:
/// `(D_i)_{n−1..j} = (i)_{n−1..j}` and
/// `(D_i)_{j−1..0} = ((i)_{j−1..0} + k) mod 2^j` — a cyclic shift of `k`
/// within each block of `2^j` consecutive elements.
///
/// # Panics
///
/// Panics if `n == 0`, `n > 31`, or `j` is not in `1..=n`.
///
/// # Examples
///
/// ```
/// use benes_perm::omega::segment_cyclic_shift;
/// assert_eq!(
///     segment_cyclic_shift(3, 2, 1).destinations(),
///     &[1, 2, 3, 0, 5, 6, 7, 4]
/// );
/// ```
#[must_use]
pub fn segment_cyclic_shift(n: u32, j: u32, k: i64) -> Permutation {
    assert!(n > 0 && n <= 31, "segment cyclic shift requires 1 <= n <= 31");
    assert!((1..=n).contains(&j), "segment width exponent j must be in 1..={n} (got {j})");
    let len = 1usize << n;
    let kk = k.rem_euclid(1i64 << j) as u64;
    Permutation::from_fn(len, |i| {
        let i = u64::from(i);
        let high = i & !mask(j);
        let low = (i.wrapping_add(kk)) & mask(j);
        (high | low) as u32
    })
    .expect("per-segment shift is a bijection")
}

/// §II generator 6: **conditional exchange** — Lenfant's `η^{(k)}`.
///
/// For `k ∈ 1..n`: `(D_i)_{n−1..1} = (i)_{n−1..1}` and
/// `(D_i)_0 = (i)_0 ⊕ (i)_k`; the elements of each pair `(2i, 2i+1)` are
/// exchanged iff bit `k` of `2i` is 1.
///
/// # Panics
///
/// Panics if `n < 2`, `n > 31`, or `k` is not in `1..n`.
///
/// # Examples
///
/// ```
/// use benes_perm::omega::conditional_exchange;
/// assert_eq!(
///     conditional_exchange(2, 1).destinations(),
///     &[0, 1, 3, 2]
/// );
/// ```
#[must_use]
pub fn conditional_exchange(n: u32, k: u32) -> Permutation {
    assert!((2..=31).contains(&n), "conditional exchange requires 2 <= n <= 31");
    assert!((1..n).contains(&k), "k must be in 1..{n} (got {k})");
    let len = 1usize << n;
    Permutation::from_fn(len, |i| {
        let i = u64::from(i);
        (i ^ bit(i, k)) as u32
    })
    .expect("conditional exchange is an involution")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_perms(len: u32) -> Vec<Permutation> {
        fn rec(rem: &mut Vec<u32>, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if rem.is_empty() {
                out.push(cur.clone());
                return;
            }
            for idx in 0..rem.len() {
                let v = rem.remove(idx);
                cur.push(v);
                rec(rem, cur, out);
                cur.pop();
                rem.insert(idx, v);
            }
        }
        let mut out = Vec::new();
        rec(&mut (0..len).collect(), &mut Vec::new(), &mut out);
        out.into_iter().map(|d| Permutation::from_destinations(d).unwrap()).collect()
    }

    #[test]
    fn fig5_permutation_is_omega_not_inverse_omega() {
        let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
        assert!(is_omega(&d));
        assert!(!is_inverse_omega(&d));
    }

    #[test]
    fn identity_is_in_both_classes() {
        for n in 1..6 {
            let id = Permutation::identity(1 << n);
            assert!(is_omega(&id));
            assert!(is_inverse_omega(&id));
        }
    }

    #[test]
    fn omega_iff_inverse_is_inverse_omega() {
        for d in all_perms(8) {
            assert_eq!(is_omega(&d), is_inverse_omega(&d.inverse()), "D = {d}");
        }
    }

    #[test]
    fn omega_class_cardinality_n2() {
        // The 4-input omega network has 4 independent binary switches and
        // realizes a distinct permutation with each setting: |Ω(2)| = 16.
        let count = all_perms(4).iter().filter(|d| is_omega(d)).count();
        assert_eq!(count, 16);
        let count_inv = all_perms(4).iter().filter(|d| is_inverse_omega(d)).count();
        assert_eq!(count_inv, 16);
    }

    #[test]
    fn non_power_of_two_is_rejected() {
        let d = Permutation::identity(6);
        assert!(!is_omega(&d));
        assert!(!is_inverse_omega(&d));
    }

    #[test]
    fn generators_are_inverse_omega_and_omega() {
        // The paper: generators 1-6 are in Ω⁻¹(n) and "it is interesting to
        // note that all of the above Ω⁻¹(n) permutations are also members
        // of Ω(n)".
        for n in 2..6u32 {
            let nn = 1i64 << n;
            let mut cases: Vec<(String, Permutation)> = Vec::new();
            for k in [-3, 0, 1, nn / 2, nn - 1] {
                cases.push((format!("shift {k}"), cyclic_shift(n, k)));
            }
            for p in [1u64, 3, 5, 7, 11] {
                cases.push((format!("p-order {p}"), p_ordering(n, p)));
                cases.push((format!("inv-p-order {p}"), inverse_p_ordering(n, p)));
                cases.push((format!("affine {p}"), p_ordering_shift(n, p, 3)));
            }
            for j in 1..=n {
                cases.push((format!("segment j={j}"), segment_cyclic_shift(n, j, 1)));
            }
            for k in 1..n {
                cases.push((format!("cond-exch k={k}"), conditional_exchange(n, k)));
            }
            for (name, d) in cases {
                assert!(is_inverse_omega(&d), "{name} not in Ω⁻¹({n})");
                assert!(is_omega(&d), "{name} not in Ω({n})");
            }
        }
    }

    #[test]
    fn cyclic_shift_wraps() {
        let d = cyclic_shift(3, 11); // 11 mod 8 = 3
        assert_eq!(d, cyclic_shift(3, 3));
        assert!(cyclic_shift(4, 0).is_identity());
        assert!(cyclic_shift(4, 16).is_identity());
    }

    #[test]
    fn cyclic_shift_composes_additively() {
        let a = cyclic_shift(4, 5);
        let b = cyclic_shift(4, 7);
        assert_eq!(a.then(&b), cyclic_shift(4, 12));
    }

    #[test]
    fn p_ordering_inverse_roundtrip() {
        for n in 1..8u32 {
            for p in [1u64, 3, 5, 9, 15, 21] {
                let f = p_ordering(n, p);
                let g = inverse_p_ordering(n, p);
                assert!(f.then(&g).is_identity(), "n={n}, p={p}");
                assert!(g.then(&f).is_identity(), "n={n}, p={p}");
            }
        }
    }

    #[test]
    fn mod_inverse_is_correct() {
        for n in 1..=20u32 {
            for p in (1u64..100).step_by(2) {
                let q = mod_inverse_pow2(p, n);
                assert_eq!(p.wrapping_mul(q) & mask(n), 1, "p={p}, n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn p_ordering_rejects_even_p() {
        let _ = p_ordering(3, 4);
    }

    #[test]
    fn segment_shift_keeps_segments() {
        let n = 4;
        let j = 2;
        let d = segment_cyclic_shift(n, j, 3);
        for (i, dest) in d.iter() {
            assert_eq!(i / 4, dest / 4, "element left its segment");
            assert_eq!(u64::from(dest % 4), u64::from(i % 4 + 3) % 4);
        }
    }

    #[test]
    fn segment_shift_full_width_is_cyclic_shift() {
        assert_eq!(segment_cyclic_shift(4, 4, 6), cyclic_shift(4, 6));
    }

    #[test]
    fn conditional_exchange_matches_paper_wording() {
        // "the elements of each pair (2i, 2i+1) are exchanged iff bit k of
        // 2i is 1"
        for n in 2..6u32 {
            for k in 1..n {
                let d = conditional_exchange(n, k);
                for i in 0..(1u32 << (n - 1)) {
                    let even = 2 * i;
                    let odd = 2 * i + 1;
                    if bit(u64::from(even), k) == 1 {
                        assert_eq!(d.destination(even as usize), odd);
                        assert_eq!(d.destination(odd as usize), even);
                    } else {
                        assert_eq!(d.destination(even as usize), even);
                        assert_eq!(d.destination(odd as usize), odd);
                    }
                }
            }
        }
    }

    #[test]
    fn conditional_exchange_is_involution() {
        for n in 2..6u32 {
            for k in 1..n {
                let d = conditional_exchange(n, k);
                assert!(d.then(&d).is_identity());
            }
        }
    }

    #[test]
    fn cyclic_shift_is_not_bpc() {
        // §II: "cyclic shift is not in BPC(n) unless k mod N = 0". The one
        // refinement: k = N/2 is i ↦ i ⊕ N/2, a pure bit-complement, which
        // IS in BPC. Every shift that generates carries is not.
        use crate::bpc::Bpc;
        for n in 2..5u32 {
            let half = 1i64 << (n - 1);
            for k in 1..(1i64 << n) {
                let detected = Bpc::from_permutation(&cyclic_shift(n, k));
                if k == half {
                    assert!(detected.is_some(), "n={n}: shift by N/2 is BPC");
                } else {
                    assert!(detected.is_none(), "n={n}, k={k}");
                }
            }
            assert!(Bpc::from_permutation(&cyclic_shift(n, 0)).is_some());
        }
    }

    #[test]
    fn some_bpc_not_omega_nor_inverse_omega() {
        // §II: every BPC permutation with |A_j| ≠ j for some j is in
        // neither Ω(n) nor Ω⁻¹(n). Example: bit reversal for n >= 2... but
        // bit reversal at n=2 swaps bits (|A_0| = 1 ≠ 0). Check it.
        use crate::bpc::Bpc;
        for n in 2..6u32 {
            let rev = Bpc::bit_reversal(n).to_permutation();
            assert!(!is_omega(&rev), "bit reversal n={n} should not be Ω");
            assert!(!is_inverse_omega(&rev), "bit reversal n={n} should not be Ω⁻¹");
        }
    }
}
