//! Lenfant's "frequently used bijections" (FUB families), as referenced by
//! the paper.
//!
//! Lenfant (*Parallel permutations of data: a Benes network control
//! algorithm for frequently used permutations*, 1978 — reference \[5\] of the
//! paper) identified five families of permutations that dominate parallel
//! numerical codes and designed a bespoke Benes set-up algorithm for each.
//! The paper's §II places all five inside the self-routing class `F(n)`:
//!
//! * three families (Lenfant's `α(n)`, `β(n)`, `γ(n)`) are
//!   bit-permute-complement permutations — they are covered by the
//!   [`crate::bpc`] module's `A`-vector machinery (Theorem 2);
//! * `λ(n)` is "p-ordering and cyclic shift" ([`lambda`]);
//! * `δ(n)` is "cyclic shifts within segments" ([`delta`]).
//!
//! The paper additionally matches its "conditional exchange" generator to
//! Lenfant's `η^{(k)}` ([`eta`]).
//!
//! This module gives the two formula-defined families (plus `η`) their
//! Lenfant names so that code reproducing the paper's containment claims
//! can refer to them directly.

use crate::omega::{conditional_exchange, p_ordering_shift, segment_cyclic_shift};
use crate::Permutation;

/// Lenfant's family `λ(n)`: `D_i = (p·i + k) mod N` with `p` odd.
///
/// Alias of [`crate::omega::p_ordering_shift`]; in `Ω⁻¹(n) ⊆ F(n)`.
///
/// # Panics
///
/// Panics if `n == 0`, `n > 31`, or `p` is even.
///
/// # Examples
///
/// ```
/// use benes_perm::fub::lambda;
/// use benes_perm::omega::is_inverse_omega;
/// assert!(is_inverse_omega(&lambda(4, 5, 3)));
/// ```
#[must_use]
pub fn lambda(n: u32, p: u64, k: i64) -> Permutation {
    p_ordering_shift(n, p, k)
}

/// Lenfant's family `δ(n)`: cyclic shift by `k` within each segment of
/// `2^j` consecutive elements.
///
/// Alias of [`crate::omega::segment_cyclic_shift`]; in `Ω⁻¹(n) ⊆ F(n)`.
///
/// # Panics
///
/// Panics if `n == 0`, `n > 31`, or `j ∉ 1..=n`.
///
/// # Examples
///
/// ```
/// use benes_perm::fub::delta;
/// assert_eq!(delta(2, 1, 1).destinations(), &[1, 0, 3, 2]);
/// ```
#[must_use]
pub fn delta(n: u32, j: u32, k: i64) -> Permutation {
    segment_cyclic_shift(n, j, k)
}

/// Lenfant's `η^{(k)}`: conditional exchange — each pair `(2i, 2i+1)` is
/// swapped iff bit `k` of `2i` is 1.
///
/// Alias of [`crate::omega::conditional_exchange`]; in `Ω⁻¹(n) ⊆ F(n)`.
///
/// # Panics
///
/// Panics if `n < 2`, `n > 31`, or `k ∉ 1..n`.
///
/// # Examples
///
/// ```
/// use benes_perm::fub::eta;
/// assert_eq!(eta(2, 1).destinations(), &[0, 1, 3, 2]);
/// ```
#[must_use]
pub fn eta(n: u32, k: u32) -> Permutation {
    conditional_exchange(n, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omega::{is_inverse_omega, is_omega};

    #[test]
    fn lambda_delta_eta_are_inverse_omega() {
        for n in 2..6u32 {
            assert!(is_inverse_omega(&lambda(n, 3, 2)));
            assert!(is_inverse_omega(&delta(n, 1, 1)));
            assert!(is_inverse_omega(&eta(n, n - 1)));
            assert!(is_omega(&lambda(n, 3, 2)));
        }
    }

    #[test]
    fn aliases_match_generators() {
        use crate::omega::{conditional_exchange, p_ordering_shift, segment_cyclic_shift};
        assert_eq!(lambda(4, 7, -2), p_ordering_shift(4, 7, -2));
        assert_eq!(delta(4, 2, 3), segment_cyclic_shift(4, 2, 3));
        assert_eq!(eta(4, 2), conditional_exchange(4, 2));
    }
}
