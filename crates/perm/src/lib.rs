//! Permutation representations and the permutation classes studied in
//! Nassimi & Sahni, *A Self-Routing Benes Network and Parallel Permutation
//! Algorithms* (1980).
//!
//! The paper routes data through an `N = 2^n` input/output Benes network
//! according to a permutation `D = (D_0, …, D_{N−1})` of `(0, …, N−1)`:
//! input `i` carries *destination tag* `D_i`. This crate provides:
//!
//! * [`Permutation`] — the validated destination-tag representation, with
//!   application, inversion and composition ([`Permutation::then`] matches
//!   the paper's `A ∘ B` product);
//! * [`bpc`] — the **bit-permute-complement** class `BPC(n)` and its compact
//!   signed `A`-vector representation, including every named permutation of
//!   the paper's Table I;
//! * [`omega`] — Lawrie's **omega** `Ω(n)` and **inverse-omega** `Ω⁻¹(n)`
//!   classes (membership predicates) and the paper's list of useful
//!   `Ω⁻¹(n)` generators (cyclic shift, p-ordering, …);
//! * [`fub`] — the two of Lenfant's "frequently used bijection" families the
//!   paper identifies with explicit formulas (`λ`, `δ`) plus `η`
//!   (conditional exchange);
//! * [`partition`] — `J`-partitions of `{0, …, N−1}` and the block-composite
//!   permutation builders of Theorems 4, 5 and 6.
//!
//! Membership in the self-routing class `F(n)` itself is decided by the
//! `benes-core` crate, which owns the network model; this crate is purely
//! about permutations as mathematical objects.
//!
//! # Examples
//!
//! ```
//! use benes_perm::{Permutation, bpc::Bpc};
//!
//! // Bit reversal on 8 elements, built from its BPC A-vector (Table I).
//! let rev = Bpc::bit_reversal(3).to_permutation();
//! assert_eq!(rev.destinations(), &[0, 4, 2, 6, 1, 5, 3, 7]);
//!
//! // The paper's closure counterexample: A ∘ B.
//! let a = Permutation::from_destinations(vec![3, 0, 1, 2]).unwrap();
//! let b = Permutation::from_destinations(vec![0, 1, 3, 2]).unwrap();
//! assert_eq!(a.then(&b).destinations(), &[2, 0, 1, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpc;
pub mod fub;
pub mod omega;
pub mod partition;

mod permutation;

pub use permutation::{Permutation, PermutationError};
