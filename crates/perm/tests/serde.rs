//! Serde round-trips (run with `--features serde`). Deserialization
//! re-validates: corrupt data is rejected, never constructed.
#![cfg(feature = "serde")]

use benes_perm::bpc::{Bpc, SignedBit};
use benes_perm::Permutation;

#[test]
fn permutation_roundtrip() {
    let p = Permutation::from_destinations(vec![2, 0, 3, 1]).unwrap();
    let json = serde_json::to_string(&p).unwrap();
    assert_eq!(json, "[2,0,3,1]");
    let back: Permutation = serde_json::from_str(&json).unwrap();
    assert_eq!(back, p);
}

#[test]
fn permutation_rejects_invalid_json() {
    assert!(serde_json::from_str::<Permutation>("[0,0,1]").is_err());
    assert!(serde_json::from_str::<Permutation>("[5]").is_err());
    assert!(serde_json::from_str::<Permutation>("[]").is_err());
}

#[test]
fn bpc_roundtrip() {
    let b = Bpc::from_entries(vec![SignedBit::minus(1), SignedBit::plus(0)]).unwrap();
    let json = serde_json::to_string(&b).unwrap();
    let back: Bpc = serde_json::from_str(&json).unwrap();
    assert_eq!(back, b);
}

#[test]
fn bpc_rejects_invalid() {
    // Duplicate magnitudes.
    assert!(serde_json::from_str::<Bpc>("[[0,false],[0,true]]").is_err());
}
