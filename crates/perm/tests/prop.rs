//! Property-based tests across the permutation classes.

use benes_perm::bpc::{Bpc, SignedBit};
use benes_perm::omega::{
    cyclic_shift, inverse_p_ordering, is_inverse_omega, is_omega, p_ordering,
    p_ordering_shift, segment_cyclic_shift,
};
use benes_perm::partition::{between_blocks, within_blocks, JPartition};
use benes_perm::Permutation;
use proptest::prelude::*;

/// A random permutation of `0..len` via index shuffling.
fn arb_permutation(len: usize) -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(move |(), mut rng| {
        let mut dest: Vec<u32> = (0..len as u32).collect();
        // Fisher-Yates with the proptest RNG.
        for i in (1..len).rev() {
            let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
            dest.swap(i, j);
        }
        Permutation::from_destinations(dest).expect("shuffle of identity is a bijection")
    })
}

/// A random BPC(n) A-vector.
fn arb_bpc(n: u32) -> impl Strategy<Value = Bpc> {
    (arb_permutation(n as usize), proptest::collection::vec(any::<bool>(), n as usize))
        .prop_map(move |(positions, signs)| {
            let entries = positions
                .destinations()
                .iter()
                .zip(signs)
                .map(|(&p, c)| if c { SignedBit::minus(p) } else { SignedBit::plus(p) })
                .collect();
            Bpc::from_entries(entries).expect("positions are a permutation")
        })
}

proptest! {
    #[test]
    fn inverse_then_is_identity(p in arb_permutation(32)) {
        prop_assert!(p.then(&p.inverse()).is_identity());
        prop_assert!(p.inverse().then(&p).is_identity());
    }

    #[test]
    fn then_is_associative(
        a in arb_permutation(16),
        b in arb_permutation(16),
        c in arb_permutation(16),
    ) {
        prop_assert_eq!(a.then(&b).then(&c), a.then(&b.then(&c)));
    }

    #[test]
    fn apply_then_apply_matches_composition(
        a in arb_permutation(16),
        b in arb_permutation(16),
    ) {
        let data: Vec<u32> = (100..116).collect();
        prop_assert_eq!(b.apply(&a.apply(&data)), a.then(&b).apply(&data));
    }

    #[test]
    fn cycles_partition_elements(p in arb_permutation(24)) {
        let mut seen = [false; 24];
        for cycle in p.cycles() {
            for &e in &cycle {
                prop_assert!(!seen[e as usize], "element {} in two cycles", e);
                seen[e as usize] = true;
            }
            // Following the permutation around the cycle returns home.
            for w in cycle.windows(2) {
                prop_assert_eq!(p.destination(w[0] as usize), w[1]);
            }
            prop_assert_eq!(p.destination(*cycle.last().unwrap() as usize), cycle[0]);
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn parity_is_a_homomorphism(a in arb_permutation(16), b in arb_permutation(16)) {
        prop_assert_eq!(a.then(&b).is_even(), a.is_even() == b.is_even());
    }

    #[test]
    fn bpc_roundtrips_through_detection(b in arb_bpc(4)) {
        prop_assert_eq!(Bpc::from_permutation(&b.to_permutation()), Some(b));
    }

    #[test]
    fn bpc_then_matches_expanded_then(a in arb_bpc(4), b in arb_bpc(4)) {
        prop_assert_eq!(
            a.then(&b).to_permutation(),
            a.to_permutation().then(&b.to_permutation())
        );
    }

    #[test]
    fn bpc_inverse_matches_expanded_inverse(a in arb_bpc(5)) {
        prop_assert_eq!(a.inverse().to_permutation(), a.to_permutation().inverse());
    }

    #[test]
    fn lemma1_formula_matches_direct_split(a in arb_bpc(4)) {
        let (f1, f2) = a.split_lemma1();
        let (q, r) = a.split_destination_halves();
        prop_assert_eq!(f1.to_permutation(), q);
        prop_assert_eq!(f2.to_permutation(), r);
    }

    #[test]
    fn omega_duality(p in arb_permutation(16)) {
        prop_assert_eq!(is_omega(&p), is_inverse_omega(&p.inverse()));
        prop_assert_eq!(is_inverse_omega(&p), is_omega(&p.inverse()));
    }

    #[test]
    fn affine_maps_are_omega_and_inverse_omega(
        pmul in (0u64..64).prop_map(|v| 2 * v + 1),
        k in -64i64..64,
    ) {
        let d = p_ordering_shift(5, pmul, k);
        prop_assert!(is_omega(&d));
        prop_assert!(is_inverse_omega(&d));
    }

    #[test]
    fn p_ordering_inverse(pmul in (0u64..512).prop_map(|v| 2 * v + 1)) {
        let f = p_ordering(6, pmul);
        let g = inverse_p_ordering(6, pmul);
        prop_assert!(f.then(&g).is_identity());
    }

    #[test]
    fn cyclic_shifts_form_a_group(k1 in -100i64..100, k2 in -100i64..100) {
        let a = cyclic_shift(5, k1);
        let b = cyclic_shift(5, k2);
        prop_assert_eq!(a.then(&b), cyclic_shift(5, k1 + k2));
        prop_assert_eq!(a.inverse(), cyclic_shift(5, -k1));
    }

    #[test]
    fn segment_shift_blocks_are_invariant(j in 1u32..=5, k in -20i64..20) {
        let n = 5;
        let d = segment_cyclic_shift(n, j, k);
        for (i, dest) in d.iter() {
            prop_assert_eq!(i >> j, dest >> j);
        }
    }

    #[test]
    fn within_blocks_respects_blocks(
        mask in 0u64..16,
        p in arb_permutation(4),
        q in arb_permutation(4),
    ) {
        // n = 4 with a 2-bit J: blocks of size 4.
        let positions: Vec<u32> = (0..4).filter(|&b| (mask >> b) & 1 == 1).collect();
        prop_assume!(positions.len() == 2);
        let j = JPartition::new(4, positions).unwrap();
        let g = within_blocks(&j, |b| if b == 0 { p.clone() } else { q.clone() }).unwrap();
        for i in 0..16u64 {
            prop_assert_eq!(
                j.block_of(i),
                j.block_of(u64::from(g.destination(i as usize)))
            );
        }
    }

    #[test]
    fn between_blocks_moves_whole_blocks(
        block_map in arb_permutation(4),
        inner in arb_permutation(4),
    ) {
        let j = JPartition::new(4, [1, 3]).unwrap();
        let g = between_blocks(&j, &block_map, |_| inner.clone()).unwrap();
        for i in 0..16u64 {
            let src_block = j.block_of(i);
            let dst_block = j.block_of(u64::from(g.destination(i as usize)));
            prop_assert_eq!(
                dst_block,
                u64::from(block_map.destination(src_block as usize))
            );
        }
    }
}
