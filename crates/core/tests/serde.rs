//! Serde round-trips for switch settings (run with `--features serde`).
#![cfg(feature = "serde")]

use benes_core::{waksman, Benes, SwitchSettings};
use benes_perm::Permutation;

#[test]
fn settings_roundtrip_preserves_routing() {
    let d = Permutation::from_destinations(vec![5, 2, 7, 0, 1, 6, 3, 4]).unwrap();
    let settings = waksman::setup(&d).unwrap();
    let json = serde_json::to_string(&settings).unwrap();
    let back: SwitchSettings = serde_json::from_str(&json).unwrap();
    assert_eq!(back, settings);
    // The deserialized settings route identically.
    let net = Benes::new(3);
    let data: Vec<u32> = (0..8).collect();
    assert_eq!(
        net.route_with(&back, &data).unwrap(),
        net.route_with(&settings, &data).unwrap()
    );
}

#[test]
fn settings_reject_corrupt_payloads() {
    // Wrong bit count for the claimed order.
    assert!(serde_json::from_str::<SwitchSettings>("[2,[0,0,0]]").is_err());
    // Invalid state value.
    assert!(serde_json::from_str::<SwitchSettings>("[1,[2]]").is_err());
    // Out-of-range order.
    assert!(serde_json::from_str::<SwitchSettings>("[0,[]]").is_err());
}
