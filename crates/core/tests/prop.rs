//! Property-based tests tying the paper's theorems to the network model.

use benes_core::class_f::{is_in_f, is_in_f_by_simulation};
use benes_core::{waksman, Benes};
use benes_perm::bpc::{Bpc, SignedBit};
use benes_perm::omega::{is_inverse_omega, p_ordering_shift, segment_cyclic_shift};
use benes_perm::partition::{between_blocks, within_blocks, JPartition};
use benes_perm::Permutation;
use proptest::prelude::*;

fn arb_permutation(len: usize) -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(move |(), mut rng| {
        let mut dest: Vec<u32> = (0..len as u32).collect();
        for i in (1..len).rev() {
            let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
            dest.swap(i, j);
        }
        Permutation::from_destinations(dest).expect("shuffle is a bijection")
    })
}

fn arb_bpc(n: u32) -> impl Strategy<Value = Bpc> {
    (arb_permutation(n as usize), proptest::collection::vec(any::<bool>(), n as usize))
        .prop_map(move |(positions, signs)| {
            let entries = positions
                .destinations()
                .iter()
                .zip(signs)
                .map(|(&p, c)| if c { SignedBit::minus(p) } else { SignedBit::plus(p) })
                .collect();
            Bpc::from_entries(entries).expect("valid BPC vector")
        })
}

proptest! {
    /// Theorem 1's recursion and the flattened-circuit simulation are the
    /// same predicate.
    #[test]
    fn recursion_equals_simulation(p in arb_permutation(16)) {
        prop_assert_eq!(is_in_f(&p), is_in_f_by_simulation(&p));
    }

    /// Theorem 2: BPC(n) ⊆ F(n), at a size beyond the exhaustive tests.
    #[test]
    fn random_bpc_in_f(b in arb_bpc(6)) {
        prop_assert!(is_in_f(&b.to_permutation()));
    }

    /// Theorem 2 via hardware: random BPC permutations self-route on B(6).
    #[test]
    fn random_bpc_self_routes(b in arb_bpc(6)) {
        let net = Benes::new(6);
        prop_assert!(net.self_route(&b.to_permutation()).is_success());
    }

    /// Theorem 3: random affine (inverse-omega) permutations self-route.
    #[test]
    fn affine_self_routes(pmul in (0u64..128).prop_map(|v| 2 * v + 1), k in -200i64..200) {
        let d = p_ordering_shift(6, pmul, k);
        prop_assert!(is_inverse_omega(&d));
        prop_assert!(is_in_f(&d));
        prop_assert!(Benes::new(6).self_route(&d).is_success());
    }

    /// Segment shifts (FUB δ) self-route at any segment width.
    #[test]
    fn segment_shift_self_routes(j in 1u32..=6, k in -70i64..70) {
        let d = segment_cyclic_shift(6, j, k);
        prop_assert!(is_in_f(&d));
    }

    /// Waksman external set-up realizes arbitrary permutations.
    #[test]
    fn waksman_realizes_random_permutations(p in arb_permutation(32)) {
        let net = Benes::new(5);
        let settings = waksman::setup(&p).unwrap();
        let data: Vec<u32> = (0..32).collect();
        let out = net.route_with(&settings, &data).unwrap();
        for (i, &dest) in p.destinations().iter().enumerate() {
            prop_assert_eq!(out[dest as usize], i as u32);
        }
    }

    /// Self-routing never loses or duplicates tags, in or out of F.
    #[test]
    fn self_route_is_always_a_bijection(p in arb_permutation(32)) {
        let net = Benes::new(5);
        let mut out = net.self_route(&p).outputs().to_vec();
        out.sort_unstable();
        let expected: Vec<u32> = (0..32).collect();
        prop_assert_eq!(out, expected);
    }

    /// If self-routing succeeds, the settings replayed externally realize
    /// the same permutation.
    #[test]
    fn successful_settings_replay(b in arb_bpc(5)) {
        let net = Benes::new(5);
        let perm = b.to_permutation();
        let outcome = net.self_route(&perm);
        prop_assert!(outcome.is_success());
        let data: Vec<u32> = (0..32).collect();
        let replay = net.route_with(outcome.settings(), &data).unwrap();
        for (i, &dest) in perm.destinations().iter().enumerate() {
            prop_assert_eq!(replay[dest as usize], i as u32);
        }
    }

    /// Theorem 4 with random F-members inside random-size blocks.
    #[test]
    fn theorem4_random(j_mask in 1u64..15, seed in any::<u64>()) {
        // n = 4; choose a nonempty proper J.
        let positions: Vec<u32> = (0..4).filter(|&b| (j_mask >> b) & 1 == 1).collect();
        prop_assume!(!positions.is_empty() && positions.len() < 4);
        let j = JPartition::new(4, positions).unwrap();
        let size = j.block_size();
        // Deterministic per-block F members derived from the seed: use
        // cyclic shifts, which are always in F.
        let g = within_blocks(&j, |b| {
            benes_perm::omega::cyclic_shift(
                size.trailing_zeros(),
                (seed.wrapping_add(b) % size as u64) as i64,
            )
        }).unwrap();
        prop_assert!(is_in_f(&g));
    }

    /// Theorem 5 with a block-level F permutation.
    #[test]
    fn theorem5_random(seed in any::<u64>()) {
        let j = JPartition::new(4, [0, 1]).unwrap(); // 4 blocks of 4
        let block_map = benes_perm::omega::cyclic_shift(2, (seed % 4) as i64);
        let g = between_blocks(&j, &block_map, |b| {
            benes_perm::omega::cyclic_shift(2, ((seed >> 8).wrapping_add(b) % 4) as i64)
        }).unwrap();
        prop_assert!(is_in_f(&g));
    }

    /// The omega-bit mode succeeds exactly on Ω(n) permutations.
    #[test]
    fn omega_bit_iff_omega(p in arb_permutation(16)) {
        let net = Benes::new(4);
        prop_assert_eq!(
            net.self_route_omega(&p).is_success(),
            benes_perm::omega::is_omega(&p)
        );
    }

    /// Pipelined and unpipelined routing agree on random BPC wavefronts.
    #[test]
    fn pipeline_agrees_with_direct(b in arb_bpc(4)) {
        use benes_core::pipeline::Pipeline;
        let perm = b.to_permutation();
        let records: Vec<(u32, u32)> = perm
            .destinations()
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u32))
            .collect();
        let mut pipe: Pipeline<u32> = Pipeline::new(4);
        pipe.clock(Some(records.clone()));
        let waves = pipe.drain();
        prop_assert_eq!(waves.len(), 1);
        let (direct, _) = Benes::new(4).self_route_records(records).unwrap();
        prop_assert_eq!(waves.into_iter().next().unwrap(), direct);
    }
}

proptest! {
    /// The sequential (Waksman) and parallel (pointer-jumping) set-ups
    /// both realize arbitrary permutations, and both respect the
    /// reduced-network fixed switches.
    #[test]
    fn setups_agree_on_random_permutations(p in arb_permutation(64)) {
        use benes_core::parallel_setup::setup_parallel;
        let net = Benes::new(6);
        let data: Vec<u32> = (0..64).collect();

        let seq = waksman::setup(&p).unwrap();
        let (par, cost) = setup_parallel(&p).unwrap();
        prop_assert!(cost.rounds > 0);

        let out_seq = net.route_with(&seq, &data).unwrap();
        let out_par = net.route_with(&par, &data).unwrap();
        prop_assert_eq!(&out_seq, &out_par);
        prop_assert_eq!(out_seq, p.apply(&data));

        for &(stage, row) in &waksman::reduced_fixed_switches(6) {
            prop_assert_eq!(seq.get(stage, row), benes_core::SwitchState::Straight);
            prop_assert_eq!(par.get(stage, row), benes_core::SwitchState::Straight);
        }
    }
}

proptest! {
    /// Word-kernel vs scalar-kernel agreement on healthy fabrics across
    /// B(4..8): success flag, arrival tags, and recovered settings must be
    /// bit-identical for both the plain and the omega-bit variants.
    #[test]
    fn word_kernel_agrees_with_scalar(n in 4u32..=8, seed in any::<u64>()) {
        let net = Benes::new(n);
        let p = seeded_permutation(1usize << n, seed);

        let scalar = net.self_route(&p);
        let word = net.self_route_fast(&p).unwrap();
        prop_assert_eq!(word.is_success(), scalar.is_success());
        prop_assert_eq!(word.outputs(), scalar.outputs());
        prop_assert_eq!(&word.settings(&net).unwrap(), scalar.settings());

        let scalar_o = net.self_route_omega(&p);
        let word_o = net.self_route_omega_fast(&p).unwrap();
        prop_assert_eq!(word_o.is_success(), scalar_o.is_success());
        prop_assert_eq!(word_o.outputs(), scalar_o.outputs());
        prop_assert_eq!(&word_o.settings(&net).unwrap(), scalar_o.settings());
    }

    /// Same agreement over random stuck/dead fabrics: the fault overlay
    /// masks must reproduce the scalar per-switch effective states exactly.
    #[test]
    fn word_kernel_agrees_with_scalar_under_faults(
        n in 4u32..=8,
        seed in any::<u64>(),
        fault_count in 1usize..=5,
        fault_seed in any::<u64>(),
    ) {
        use benes_core::faults::{self_route_omega_with_faults, self_route_with_faults, FaultSet};
        use benes_core::word;

        let net = Benes::new(n);
        let p = seeded_permutation(1usize << n, seed);
        let fs = FaultSet::random_stuck(n, fault_count, fault_seed);

        let scalar = self_route_with_faults(&net, &p, &fs);
        let fast = word::self_route_with_faults(&net, &p, &fs).unwrap();
        prop_assert_eq!(fast.is_success(), scalar.is_success());
        prop_assert_eq!(fast.outputs(), scalar.outputs());
        prop_assert_eq!(&fast.settings(&net).unwrap(), scalar.settings());

        let scalar_o = self_route_omega_with_faults(&net, &p, &fs);
        let fast_o = word::self_route_omega_with_faults(&net, &p, &fs).unwrap();
        prop_assert_eq!(fast_o.is_success(), scalar_o.is_success());
        prop_assert_eq!(fast_o.outputs(), scalar_o.outputs());
        prop_assert_eq!(&fast_o.settings(&net).unwrap(), scalar_o.settings());
    }
}

/// Fisher–Yates from a splitmix64 stream, so the permutation is a pure
/// function of (len, seed) and failures minimize cleanly.
fn seeded_permutation(len: usize, seed: u64) -> Permutation {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut dest: Vec<u32> = (0..len as u32).collect();
    for i in (1..len).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        dest.swap(i, j);
    }
    Permutation::from_destinations(dest).expect("shuffle is a bijection")
}
