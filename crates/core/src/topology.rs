//! The static structure of the Benes network `B(n)` (Fig. 1 of the paper).
//!
//! `B(n)` consists of a stage of `N/2` binary switches, followed by two
//! copies of `B(n−1)` (the *upper* and *lower* subnetworks), followed by
//! another stage of `N/2` switches; `B(1)` is a single switch. Flattening
//! the recursion gives `2n − 1` stages of `N/2` switches each, for
//! `N·log N − N/2` switches in total.
//!
//! This module computes the flattened representation honestly from the
//! recursion:
//!
//! * [`build_links`] — for each of the `2n − 2` inter-stage gaps, the
//!   wiring permutation taking an output port of one stage to an input
//!   port of the next;
//! * [`control_bit`] — the destination-tag bit examined by the switches of
//!   each stage under the paper's self-routing rule (stage `b` and stage
//!   `2n−2−b` both use bit `b`, Fig. 3);
//! * the closed-form size accessors ([`stage_count`], [`switch_count`]).
//!
//! Port numbering: in every stage, switch `i` owns input ports `2i`
//! (upper) and `2i+1` (lower), and output ports `2i` and `2i+1` likewise.
//! Terminal `i` of the network is input port `i` of stage 0 and output
//! port `i` of the last stage.

/// Maximum supported `n`. `B(20)` already has one million terminals and
/// ~20 M switches; larger networks exhaust memory long before correctness
/// is at risk, so the bound is practical rather than fundamental.
pub const MAX_N: u32 = 24;

/// Validates `n` for network construction.
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_N` — the paper defines `B(n)` for
/// `n ≥ 1`.
pub(crate) fn validate_n(n: u32) {
    assert!(n >= 1, "B(n) requires n >= 1 (B(1) is a single switch)");
    assert!(n <= MAX_N, "n = {n} exceeds the supported maximum {MAX_N}");
}

/// The number of terminals `N = 2^n`.
///
/// # Panics
///
/// Panics if `n` is out of range (see [`MAX_N`]).
#[must_use]
pub fn terminal_count(n: u32) -> usize {
    validate_n(n);
    1usize << n
}

/// The number of switch stages, `2n − 1`.
///
/// # Panics
///
/// Panics if `n` is out of range.
///
/// # Examples
///
/// ```
/// use benes_core::topology::stage_count;
/// assert_eq!(stage_count(1), 1);
/// assert_eq!(stage_count(3), 5);
/// ```
#[must_use]
pub fn stage_count(n: u32) -> usize {
    validate_n(n);
    2 * n as usize - 1
}

/// The number of switches per stage, `N/2`.
///
/// # Panics
///
/// Panics if `n` is out of range.
#[must_use]
pub fn switches_per_stage(n: u32) -> usize {
    terminal_count(n) / 2
}

/// The total number of binary switches, `N·log N − N/2`.
///
/// # Panics
///
/// Panics if `n` is out of range.
///
/// # Examples
///
/// ```
/// use benes_core::topology::switch_count;
/// assert_eq!(switch_count(3), 8 * 3 - 4); // 20 switches in B(3)
/// ```
#[must_use]
pub fn switch_count(n: u32) -> usize {
    stage_count(n) * switches_per_stage(n)
}

/// The destination-tag bit examined by the switches of `stage` in `B(n)`
/// under the self-routing rule of Fig. 3: stage `b` and stage `2n−2−b`
/// both use bit `b`, so `control_bit = min(stage, 2n−2−stage)`.
///
/// # Panics
///
/// Panics if `n` is out of range or `stage >= 2n−1`.
///
/// # Examples
///
/// ```
/// use benes_core::topology::control_bit;
/// // B(3): stages 0,1,2,3,4 use bits 0,1,2,1,0.
/// assert_eq!((0..5).map(|s| control_bit(3, s)).collect::<Vec<_>>(),
///            vec![0, 1, 2, 1, 0]);
/// ```
#[must_use]
pub fn control_bit(n: u32, stage: usize) -> u32 {
    validate_n(n);
    let stages = stage_count(n);
    assert!(stage < stages, "stage {stage} out of range (B({n}) has {stages} stages)");
    (stage.min(stages - 1 - stage)) as u32 // analyze:allow(truncating-cast): stage < 2n−1 ≤ 47
}

/// Builds the inter-stage wiring of `B(n)` by the recursion of Fig. 1.
///
/// The result has `2n − 2` entries; entry `s` maps each output port `p` of
/// stage `s` to the input port `links[s][p]` of stage `s + 1`. Each entry
/// is a permutation of `0..N`.
///
/// The recursion: the first link sends stage-0 switch `i`'s upper output
/// to input `i` of the upper `B(n−1)` copy and its lower output to input
/// `i` of the lower copy; the two copies sit block-diagonally in the
/// middle stages (upper copy on ports `0..N/2`); the last link brings
/// output `j` of the upper copy to the upper input of final-stage switch
/// `j` and output `j` of the lower copy to its lower input.
///
/// # Panics
///
/// Panics if `n` is out of range.
///
/// # Examples
///
/// ```
/// use benes_core::topology::build_links;
/// // B(2): both links interleave the halves.
/// assert_eq!(build_links(2), vec![vec![0, 2, 1, 3], vec![0, 2, 1, 3]]);
/// ```
#[must_use]
pub fn build_links(n: u32) -> Vec<Vec<u32>> {
    validate_n(n);
    if n == 1 {
        return Vec::new();
    }
    let nn = terminal_count(n);
    let half = (nn / 2) as u32; // analyze:allow(truncating-cast): nn = 2^n ≤ 2^MAX_N

    // First link: stage-0 output port 2i → upper-copy input i (port i);
    // port 2i+1 → lower-copy input i (port half + i).
    let mut first = vec![0u32; nn];
    for i in 0..half {
        first[(2 * i) as usize] = i;
        first[(2 * i + 1) as usize] = half + i;
    }

    // Middle links: block-diagonal composition of the two B(n−1) copies.
    let sub = build_links(n - 1);
    let mut links = Vec::with_capacity(2 * n as usize - 2);
    links.push(first);
    for sub_link in &sub {
        let mut combined = vec![0u32; nn];
        for (p, &q) in sub_link.iter().enumerate() {
            combined[p] = q; // upper copy: ports 0..N/2
            combined[p + half as usize] = q + half; // lower copy
        }
        links.push(combined);
    }

    // Last link: upper-copy output j (port j) → final-stage port 2j;
    // lower-copy output j (port half + j) → final-stage port 2j+1.
    let mut last = vec![0u32; nn];
    for j in 0..half {
        last[j as usize] = 2 * j;
        last[(half + j) as usize] = 2 * j + 1;
    }
    links.push(last);
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper_formulas() {
        for n in 1..10u32 {
            let nn = 1usize << n;
            assert_eq!(terminal_count(n), nn);
            assert_eq!(stage_count(n), 2 * n as usize - 1);
            assert_eq!(switches_per_stage(n), nn / 2);
            // Paper: N·log N − N/2 switches.
            assert_eq!(switch_count(n), nn * n as usize - nn / 2);
        }
    }

    #[test]
    fn b1_has_no_links() {
        assert!(build_links(1).is_empty());
        assert_eq!(stage_count(1), 1);
        assert_eq!(switch_count(1), 1);
    }

    #[test]
    fn link_count_is_stages_minus_one() {
        for n in 1..8u32 {
            assert_eq!(build_links(n).len(), stage_count(n) - 1);
        }
    }

    #[test]
    fn links_are_permutations() {
        for n in 1..8u32 {
            let nn = terminal_count(n);
            for (s, link) in build_links(n).iter().enumerate() {
                assert_eq!(link.len(), nn);
                let mut seen = vec![false; nn];
                for &q in link {
                    assert!(!seen[q as usize], "n={n}, link {s}: duplicate port {q}");
                    seen[q as usize] = true;
                }
            }
        }
    }

    #[test]
    fn b2_links_interleave() {
        assert_eq!(build_links(2), vec![vec![0, 2, 1, 3], vec![0, 2, 1, 3]]);
    }

    #[test]
    fn b3_first_link_splits_into_halves() {
        let links = build_links(3);
        assert_eq!(links.len(), 4);
        // Upper outputs of stage 0 go to ports 0..4 (upper copy),
        // lower outputs to ports 4..8.
        assert_eq!(links[0], vec![0, 4, 1, 5, 2, 6, 3, 7]);
        // Last link mirrors the first.
        assert_eq!(links[3], vec![0, 2, 4, 6, 1, 3, 5, 7]);
    }

    #[test]
    fn middle_links_are_block_diagonal() {
        let links = build_links(3);
        // Links 1 and 2 embed two copies of B(2)'s single link pattern
        // [0,2,1,3] in each half.
        let expected = vec![0, 2, 1, 3, 4, 6, 5, 7];
        assert_eq!(links[1], expected);
        assert_eq!(links[2], expected);
    }

    #[test]
    fn control_bits_are_symmetric() {
        for n in 1..10u32 {
            let stages = stage_count(n);
            for s in 0..stages {
                assert_eq!(control_bit(n, s), control_bit(n, stages - 1 - s));
            }
            // Middle stage uses the highest bit.
            assert_eq!(control_bit(n, stages / 2), n - 1);
            // Outer stages use bit 0.
            assert_eq!(control_bit(n, 0), 0);
            assert_eq!(control_bit(n, stages - 1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn rejects_n_zero() {
        let _ = stage_count(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_stage_out_of_range() {
        let _ = control_bit(2, 3);
    }
}
