//! Parallel Benes set-up by pointer jumping — the state of the art the
//! self-routing scheme renders unnecessary.
//!
//! §I of the paper frames the problem: even with the parallel set-up
//! algorithms of Nassimi & Sahni \[7\] (`O(log² N)` on an `N`-PE CIC or
//! cube), "the time needed to perform an arbitrary permutation on the
//! Benes network is dominated by the setup time". This module implements
//! a set-up of that complexity class so the claim can be *measured*
//! rather than quoted.
//!
//! The sequential looping algorithm ([`crate::waksman`]) walks each
//! constraint loop one element at a time. The parallel version resolves
//! every loop simultaneously by **pointer jumping**: each input holds a
//! successor pointer (`succ(x) = inv[perm[x]⊕1]⊕1`, which *preserves* the
//! side, so each succ-cycle is monochrome and is paired with the opposite
//! -side cycle holding the partners); `⌈log₂ L⌉` doubling rounds elect
//! each cycle's minimum as leader, and a cycle goes to the upper
//! subnetwork iff its leader beats its partner cycle's. One such phase
//! per recursion level gives `Σ O(log 2^m) = O(log² N)` parallel rounds
//! on a machine where every PE can read any other PE's registers in one
//! step (the paper's CIC model).
//!
//! The output is bit-for-bit a valid [`SwitchSettings`] (verified against
//! actual routing), and [`ParallelCost`] reports the parallel rounds
//! consumed — the number the `route_counts`-style experiments compare
//! with the **zero** set-up of self-routing.

use benes_perm::Permutation;

use crate::network::{SwitchSettings, SwitchState};
use crate::topology;
use crate::waksman::SetupError;

/// Parallel-cost accounting for one set-up run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelCost {
    /// Pointer-jumping rounds executed (each is one CIC step for all PEs
    /// in lockstep).
    pub rounds: u64,
    /// Recursion levels processed (`log N` of them, two half-size
    /// problems handled in parallel per level).
    pub levels: u64,
}

/// Computes Benes switch settings for an arbitrary permutation with the
/// parallel looping algorithm, returning the settings and the parallel
/// cost.
///
/// The settings are interchangeable with [`crate::waksman::setup`]'s
/// (both realize `d`; the loop seeds differ, so the exact bit patterns
/// may differ — but see the tests: both leave Waksman's removable
/// switches straight).
///
/// # Errors
///
/// Returns an error if the length is not a power of two (or exceeds the
/// supported maximum), exactly like the sequential set-up.
pub fn setup_parallel(
    d: &Permutation,
) -> Result<(SwitchSettings, ParallelCost), SetupError> {
    let n = d
        .log2_len()
        .filter(|&n| n >= 1)
        .ok_or(SetupError::NotPowerOfTwo { len: d.len() })?;
    if n > topology::MAX_N {
        return Err(SetupError::TooLarge { n });
    }
    let mut settings = SwitchSettings::all_straight(n);
    let mut cost = ParallelCost::default();
    // All sub-problems of one level are processed "in parallel": the
    // model charges the maximum rounds of any sub-problem at that level,
    // which is the rounds of the full-width pointer jump.
    let mut problems: Vec<(Vec<u32>, usize, usize)> =
        vec![(d.destinations().to_vec(), 0usize, 0usize)];
    let mut m = n;
    while m >= 1 {
        cost.levels += 1;
        if m == 1 {
            for (perm, stage_base, row_base) in &problems {
                let state =
                    if perm[0] == 0 { SwitchState::Straight } else { SwitchState::Cross };
                settings.set(*stage_base, *row_base, state);
            }
            // Setting a switch from a local register: one parallel step.
            cost.rounds += 1;
            break;
        }
        let mut next_problems = Vec::with_capacity(problems.len() * 2);
        let mut level_rounds = 0u64;
        for (perm, stage_base, row_base) in &problems {
            let (upper, lower, rounds) =
                split_level(perm, m, *stage_base, *row_base, &mut settings);
            level_rounds = level_rounds.max(rounds);
            let half_rows = 1usize << (m - 2);
            next_problems.push((upper, stage_base + 1, *row_base));
            next_problems.push((lower, stage_base + 1, row_base + half_rows));
        }
        cost.rounds += level_rounds;
        problems = next_problems;
        m -= 1;
    }
    Ok((settings, cost))
}

/// One recursion level, parallel style: build the constraint-loop
/// successor function, 2-colour it by pointer jumping, set the outer
/// stages, emit the half-size permutations. Returns the parallel rounds
/// charged.
fn split_level(
    perm: &[u32],
    m: u32,
    stage_base: usize,
    row_base: usize,
    settings: &mut SwitchSettings,
) -> (Vec<u32>, Vec<u32>, u64) {
    let len = perm.len();
    let mut inv = vec![0u32; len];
    for (i, &o) in perm.iter().enumerate() {
        inv[o as usize] = i as u32;
    }

    // Constraint-structure successor on the INPUT side: from input x, its
    // output's partner forces an input, whose partner continues:
    // succ(x) = inv[perm[x] ^ 1] ^ 1. Following one step preserves the
    // side (two alternations cancel), so the side is CONSTANT on each
    // succ-cycle; the input-pair constraint `side(x^1) = 1 − side(x)`
    // pairs each cycle with a distinct partner cycle (they can never
    // coincide — that would make the constraints unsatisfiable,
    // contradicting rearrangeability). Picking the side of each cycle
    // pair by comparing cycle leaders (minima) satisfies everything.
    // (One parallel round computes succ in every PE.)
    let succ = |x: usize| -> usize { (inv[(perm[x] ^ 1) as usize] ^ 1) as usize };
    let mut next: Vec<usize> = (0..len).map(succ).collect();
    let mut rounds = 1u64;

    // Pointer jumping: leader[x] = minimum index on x's succ-cycle, in
    // ⌈log₂ len⌉ doubling rounds (each one parallel CIC step).
    let mut leader: Vec<usize> = (0..len).collect();
    let mut hops = 1usize;
    while hops < len {
        let snapshot_leader = leader.clone();
        let snapshot_next = next.clone();
        for x in 0..len {
            let nx = snapshot_next[x];
            leader[x] = snapshot_leader[x].min(snapshot_leader[nx]);
            next[x] = snapshot_next[nx];
        }
        rounds += 1;
        hops *= 2;
    }
    // side[x] = 0 (upper) iff x's cycle leader beats its partner's.
    // Input 0's cycle always holds the global minimum, so side[0] = 0 —
    // which also keeps the Waksman-removable switches straight.
    // (One more parallel round: each PE reads its partner's leader.)
    rounds += 1;
    let side: Vec<u8> = (0..len).map(|x| u8::from(leader[x] > leader[x ^ 1])).collect();

    // Outer stages + induced sub-permutations (one more parallel round:
    // every switch/PE acts locally).
    rounds += 1;
    let half = len / 2;
    let mut upper = vec![0u32; half];
    let mut lower = vec![0u32; half];
    for i in 0..half {
        let up_in = if side[2 * i] == 0 { 2 * i } else { 2 * i + 1 };
        let state = if up_in == 2 * i { SwitchState::Straight } else { SwitchState::Cross };
        settings.set(stage_base, row_base + i, state);
        upper[i] = perm[up_in] >> 1;
        lower[i] = perm[up_in ^ 1] >> 1;
    }
    let stages = 2 * m as usize - 1;
    for j in 0..half {
        // Output side: output 2j is fed by the upper subnetwork iff the
        // input mapped to it went up.
        let feeder = inv[2 * j] as usize;
        let state =
            if side[feeder] == 0 { SwitchState::Straight } else { SwitchState::Cross };
        settings.set(stage_base + stages - 1, row_base + j, state);
    }
    (upper, lower, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Benes;

    fn assert_realizes(net: &Benes, d: &Permutation) -> ParallelCost {
        let (settings, cost) = setup_parallel(d).expect("setup succeeds");
        let data: Vec<u32> = (0..net.terminal_count() as u32).collect();
        let out = net.route_with(&settings, &data).unwrap();
        for (i, &dest) in d.destinations().iter().enumerate() {
            assert_eq!(out[dest as usize], i as u32, "input {i} missed {dest}");
        }
        cost
    }

    #[test]
    fn realizes_all_permutations_n2_exhaustively() {
        let net = Benes::new(2);
        for d in all_perms(4) {
            assert_realizes(&net, &d);
        }
    }

    #[test]
    fn realizes_all_permutations_n3_exhaustively() {
        let net = Benes::new(3);
        for d in all_perms(8) {
            assert_realizes(&net, &d);
        }
    }

    #[test]
    fn realizes_structured_and_random_style_large() {
        use benes_perm::bpc::Bpc;
        for n in [4u32, 6, 9] {
            let net = Benes::new(n);
            assert_realizes(&net, &Bpc::bit_reversal(n).to_permutation());
            assert_realizes(&net, &benes_perm::omega::cyclic_shift(n, 3));
            // Pseudo-random.
            let len = 1usize << n;
            let mut dest: Vec<u32> = (0..len as u32).collect();
            let mut state = 7u64;
            for i in (1..len).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                dest.swap(i, (state >> 33) as usize % (i + 1));
            }
            assert_realizes(&net, &Permutation::from_destinations(dest).unwrap());
        }
    }

    #[test]
    fn parallel_rounds_grow_as_log_squared() {
        // rounds(n) ≈ Σ_{m=2..n} (log 2^m + 2) + 1 = O(n²); crucially
        // rounds(2n) ≈ 4·rounds(n) for large n, and rounds ≪ N.
        let net = Benes::new(4);
        let d = benes_perm::omega::cyclic_shift(4, 5);
        let cost = assert_realizes(&net, &d);
        assert_eq!(cost.levels, 4);
        let mut prev = 0u64;
        let mut measured = Vec::new();
        for n in [2u32, 4, 8, 16] {
            let d = benes_perm::omega::cyclic_shift(n, 1);
            let (_, cost) = setup_parallel(&d).unwrap();
            assert!(cost.rounds > prev, "rounds must grow with n");
            if n >= 8 {
                // O(log² N) ≪ N once N outgrows the constants.
                assert!(
                    u128::from(cost.rounds) < (1u128 << n),
                    "rounds must be far below N = 2^{n}"
                );
            }
            prev = cost.rounds;
            measured.push((n, cost.rounds));
        }
        // Quadratic-ish growth in n: rounds(16)/rounds(8) ≈ 4 within
        // generous slack (low-order terms).
        let r8 = measured[2].1 as f64;
        let r16 = measured[3].1 as f64;
        assert!(r16 / r8 > 2.5 && r16 / r8 < 5.0, "ratio {}", r16 / r8);
    }

    #[test]
    fn parallel_and_sequential_settings_both_respect_reduction() {
        // Both set-ups seed loops at the minimum with side 0, so both
        // leave the Waksman-removable switches straight.
        let fixed = crate::waksman::reduced_fixed_switches(3);
        for d in all_perms(8) {
            let (settings, _) = setup_parallel(&d).unwrap();
            for &(stage, row) in &fixed {
                assert_eq!(settings.get(stage, row), SwitchState::Straight, "D = {d}");
            }
        }
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(setup_parallel(&Permutation::identity(6)).is_err());
        assert!(setup_parallel(&Permutation::identity(1)).is_err());
    }

    fn all_perms(len: u32) -> Vec<Permutation> {
        fn rec(rem: &mut Vec<u32>, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if rem.is_empty() {
                out.push(cur.clone());
                return;
            }
            for idx in 0..rem.len() {
                let v = rem.remove(idx);
                cur.push(v);
                rec(rem, cur, out);
                cur.pop();
                rem.insert(idx, v);
            }
        }
        let mut out = Vec::new();
        rec(&mut (0..len).collect(), &mut Vec::new(), &mut out);
        out.into_iter().map(|d| Permutation::from_destinations(d).unwrap()).collect()
    }
}
