//! Pipelined operation of the self-routing network (§IV of the paper).
//!
//! "By providing registers between the stages of `B(n)`, the network may
//! operate in pipelined mode. That is, a new `N`-element vector may enter
//! the network every clock period. … the network will output the first
//! permuted vector after `O(log N)` delay, while each subsequent permuted
//! vector will emerge after unit delay."
//!
//! [`Pipeline`] models exactly that: a register bank in front of every
//! stage. Each clock, every resident wavefront advances one stage, its
//! switches setting themselves from the wavefront's own destination tags —
//! so successive vectors may use **different** permutations, as the paper
//! notes.
//!
//! # Examples
//!
//! ```
//! use benes_core::pipeline::Pipeline;
//! use benes_perm::bpc::Bpc;
//!
//! let mut pipe: Pipeline<u32> = Pipeline::new(3);
//! assert_eq!(pipe.latency(), 5);
//!
//! // Feed one tagged vector, then drain.
//! let perm = Bpc::bit_reversal(3).to_permutation();
//! let records: Vec<(u32, u32)> =
//!     perm.destinations().iter().enumerate().map(|(i, &d)| (d, i as u32)).collect();
//! assert!(pipe.clock(Some(records)).is_none());
//! for _ in 0..4 {
//!     assert!(pipe.clock(None).is_none()); // still filling
//! }
//! let out = pipe.clock(None).expect("emerges after 2n−1 clocks");
//! assert_eq!(out[0], (0, 0));
//! ```

use crate::network::{Benes, NetworkError, SwitchState};

/// One tagged record travelling through the pipeline: `(destination tag,
/// payload)`.
pub type Record<T> = (u32, T);

/// A register-pipelined `B(n)` network.
///
/// `clock` advances the machine one cycle: an optional new wavefront is
/// latched at the input, every resident wavefront moves one stage, and the
/// wavefront leaving the last stage (if any) is returned.
#[derive(Debug, Clone)]
pub struct Pipeline<T> {
    net: Benes,
    /// `regs[s]` holds the wavefront waiting at the *input* of stage `s`.
    regs: Vec<Option<Vec<Record<T>>>>,
    clock: u64,
    emitted: u64,
}

impl<T> Pipeline<T> {
    /// Builds a pipelined `B(n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range (see [`crate::topology::MAX_N`]).
    #[must_use]
    pub fn new(n: u32) -> Self {
        let net = Benes::new(n);
        let stages = net.stage_count();
        Self { net, regs: (0..stages).map(|_| None).collect(), clock: 0, emitted: 0 }
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &Benes {
        &self.net
    }

    /// The fill latency in clocks: a vector entered at clock `t` emerges
    /// at clock `t + latency()` — one clock per stage, `2n − 1` total.
    #[must_use]
    pub fn latency(&self) -> usize {
        self.net.stage_count()
    }

    /// The number of clock cycles executed so far.
    #[must_use]
    pub fn clock_count(&self) -> u64 {
        self.clock
    }

    /// The number of wavefronts that have emerged so far.
    #[must_use]
    pub fn emitted_count(&self) -> u64 {
        self.emitted
    }

    /// Whether any wavefront is still in flight.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.regs.iter().any(Option::is_some)
    }

    /// Advances one clock period: latches `input` (if any) into the first
    /// stage register, moves every resident wavefront through its stage,
    /// and returns the wavefront that left the last stage, in
    /// output-terminal order.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InputLength`] if `input` is present but not
    /// of length `N`; the pipeline state is unchanged in that case.
    pub fn try_clock(
        &mut self,
        input: Option<Vec<Record<T>>>,
    ) -> Result<Option<Vec<Record<T>>>, NetworkError> {
        if let Some(ref v) = input {
            if v.len() != self.net.terminal_count() {
                return Err(NetworkError::InputLength {
                    expected: self.net.terminal_count(),
                    actual: v.len(),
                });
            }
        }
        self.clock += 1;
        let stages = self.net.stage_count();

        // Process the last stage first so registers free up front-to-back.
        let emitted =
            self.regs[stages - 1].take().map(|wave| self.step_stage(stages - 1, wave));
        for s in (0..stages - 1).rev() {
            if let Some(wave) = self.regs[s].take() {
                let advanced = self.step_stage(s, wave);
                self.regs[s + 1] = Some(advanced);
            }
        }
        self.regs[0] = input;
        if emitted.is_some() {
            self.emitted += 1;
        }
        Ok(emitted)
    }

    /// Infallible [`Pipeline::try_clock`].
    ///
    /// # Panics
    ///
    /// Panics if `input` is present but not of length `N`.
    pub fn clock(&mut self, input: Option<Vec<Record<T>>>) -> Option<Vec<Record<T>>> {
        self.try_clock(input).expect("input wavefront length must be N")
    }

    /// Runs the pipeline until empty, collecting every emerging wavefront.
    pub fn drain(&mut self) -> Vec<Vec<Record<T>>> {
        let mut out = Vec::new();
        while self.is_busy() {
            if let Some(wave) = self.clock(None) {
                out.push(wave);
            }
        }
        out
    }

    /// Applies stage `s`'s switches (self-setting) and, unless it is the
    /// last stage, the outgoing link wiring.
    fn step_stage(&self, s: usize, wave: Vec<Record<T>>) -> Vec<Record<T>> {
        let bit = self.net.control_bit(s);
        let mut cur: Vec<Option<Record<T>>> = wave.into_iter().map(Some).collect();
        let mut out: Vec<Option<Record<T>>> = (0..cur.len()).map(|_| None).collect();
        for i in 0..cur.len() / 2 {
            let state = {
                let upper = cur[2 * i].as_ref().expect("port filled");
                SwitchState::from_bit(benes_bits::bit(u64::from(upper.0), bit))
            };
            let a = cur[2 * i].take().expect("port filled");
            let b = cur[2 * i + 1].take().expect("port filled");
            match state {
                SwitchState::Straight => {
                    out[2 * i] = Some(a);
                    out[2 * i + 1] = Some(b);
                }
                SwitchState::Cross => {
                    out[2 * i] = Some(b);
                    out[2 * i + 1] = Some(a);
                }
            }
        }
        if s < self.net.stage_count() - 1 {
            let link = self.net.link(s);
            let mut next: Vec<Option<Record<T>>> = (0..out.len()).map(|_| None).collect();
            for (p, item) in out.into_iter().enumerate() {
                next[link[p] as usize] = item;
            }
            next.into_iter().map(|o| o.expect("port filled")).collect()
        } else {
            out.into_iter().map(|o| o.expect("port filled")).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benes_perm::bpc::Bpc;
    use benes_perm::omega::cyclic_shift;
    use benes_perm::Permutation;

    fn tagged(perm: &Permutation) -> Vec<Record<u32>> {
        perm.destinations().iter().enumerate().map(|(i, &d)| (d, i as u32)).collect()
    }

    #[test]
    fn single_vector_latency_is_stage_count() {
        let mut pipe: Pipeline<u32> = Pipeline::new(3);
        let perm = Bpc::bit_reversal(3).to_permutation();
        assert!(pipe.clock(Some(tagged(&perm))).is_none());
        for k in 1..5 {
            assert!(pipe.clock(None).is_none(), "emerged early at clock {k}");
        }
        let out = pipe.clock(None).expect("emerges at clock 2n−1");
        assert_eq!(pipe.clock_count(), 6);
        // Output o holds the payload originally at input perm⁻¹(o).
        let inv = perm.inverse();
        for (o, (tag, payload)) in out.iter().enumerate() {
            assert_eq!(*tag, o as u32);
            assert_eq!(*payload, inv.destination(o));
        }
    }

    #[test]
    fn pipeline_matches_unpipelined_routing() {
        let net = Benes::new(4);
        let mut pipe: Pipeline<u32> = Pipeline::new(4);
        let perm = Bpc::matrix_transpose(4).to_permutation();
        pipe.clock(Some(tagged(&perm)));
        let waves = pipe.drain();
        assert_eq!(waves.len(), 1);
        let (expected, _) = net.self_route_records(tagged(&perm)).unwrap();
        assert_eq!(waves[0], expected);
    }

    #[test]
    fn back_to_back_vectors_emerge_every_clock() {
        // §IV: one vector per clock after the fill latency, and successive
        // vectors may use different permutations.
        let n = 3;
        let mut pipe: Pipeline<u32> = Pipeline::new(n);
        let perms = [
            Bpc::bit_reversal(n).to_permutation(),
            cyclic_shift(n, 3),
            Bpc::vector_reversal(n).to_permutation(),
            Permutation::identity(8),
            cyclic_shift(n, -2),
        ];
        let mut emerged = Vec::new();
        for p in &perms {
            if let Some(w) = pipe.clock(Some(tagged(p))) {
                emerged.push(w);
            }
        }
        // Latency is 5 stages; the first vector emerges on clock 5 while
        // we are feeding the last of the 5 vectors? Feeding happened on
        // clocks 1..=5, first emerges on clock 5? It entered the stage-0
        // register at end of clock 1, processes stages on clocks 2..6.
        emerged.extend(pipe.drain());
        assert_eq!(emerged.len(), perms.len());
        // Every emerged wavefront is correctly permuted.
        for (k, wave) in emerged.iter().enumerate() {
            let inv = perms[k].inverse();
            for (o, (tag, payload)) in wave.iter().enumerate() {
                assert_eq!(*tag, o as u32, "vector {k}");
                assert_eq!(*payload, inv.destination(o), "vector {k}");
            }
        }
    }

    #[test]
    fn throughput_after_fill_is_one_per_clock() {
        let n = 4;
        let mut pipe: Pipeline<u32> = Pipeline::new(n);
        let perm = cyclic_shift(n, 1);
        let total = 20u64;
        let mut clocks_with_output = 0u64;
        for k in 0..total + pipe.latency() as u64 {
            let input = if k < total { Some(tagged(&perm)) } else { None };
            if pipe.clock(input).is_some() {
                clocks_with_output += 1;
            }
        }
        assert_eq!(clocks_with_output, total);
        assert_eq!(pipe.emitted_count(), total);
        // Total time = fill latency + (total − 1) extra clocks + 1.
        assert_eq!(pipe.clock_count(), total + pipe.latency() as u64);
    }

    #[test]
    fn bad_wavefront_length_is_rejected_without_state_change() {
        let mut pipe: Pipeline<u32> = Pipeline::new(2);
        pipe.clock(Some(tagged(&Permutation::identity(4))));
        let before_clock = pipe.clock_count();
        assert!(pipe.try_clock(Some(vec![(0, 0)])).is_err());
        assert_eq!(pipe.clock_count(), before_clock);
        assert!(pipe.is_busy());
    }

    #[test]
    fn bubbles_pass_through() {
        // Gaps in the input stream produce gaps in the output stream at
        // the same relative positions.
        let n = 2;
        let mut pipe: Pipeline<u32> = Pipeline::new(n);
        let perm = cyclic_shift(n, 1);
        let pattern = [true, false, true, true, false, false, true];
        let mut outputs = Vec::new();
        for &feed in &pattern {
            let input = if feed { Some(tagged(&perm)) } else { None };
            outputs.push(pipe.clock(input).is_some());
        }
        while pipe.is_busy() {
            outputs.push(pipe.clock(None).is_some());
        }
        // The output pattern is the input pattern delayed by the latency.
        let expected: Vec<bool> = std::iter::repeat_n(false, pipe.latency())
            .chain(pattern.iter().copied())
            .collect();
        assert_eq!(outputs, expected);
    }
}
