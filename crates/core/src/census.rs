//! Exact and estimated cardinality of the class `F(n)` — how rich is the
//! self-routing class, really?
//!
//! The paper demonstrates richness qualitatively (`BPC ∪ Ω⁻¹ ⊆ F`,
//! Theorems 4–6). This module quantifies it. Inverting the Theorem 1
//! recursion gives an exact product formula: a member of `F(n)` is
//! uniquely described by
//!
//! 1. a pair `U, L ∈ F(n−1)` (the subnetwork tag permutations),
//! 2. for each half-range value `h`, a *choice bit* `c_h` — whether
//!    `2h+1` (rather than `2h`) travels through the upper subnetwork, and
//! 3. for each stage-0 switch, which of its two records sits on the upper
//!    input — subject to the Fig. 3 rule being consistent.
//!
//! At the switch pairing upper-value `u = U_i` with lower-value `l = L_i`
//! the number of consistent input orders depends only on `(c_u, c_l)`:
//! `2` if both are 0, `1` if exactly one is, `0` if both are 1. Summing
//! over all `c` therefore factorizes along the cycles of the permutation
//! `π = U⁻¹ ∘ L` (value `u` is paired with value `l = π(u)` at some
//! switch), giving
//!
//! ```text
//! count(U, L) = ∏_{cycles of π, length k} trace(W^k),   W = [[2, 1], [1, 0]]
//! |F(n)| = Σ_{U, L ∈ F(n−1)} count(U, L)
//! ```
//!
//! with `trace(W^k)` obeying `t_k = 2·t_{k−1} + t_{k−2}`, `t_1 = 2`,
//! `t_2 = 6` (the paper's `|F(2)| = 20` appears as `2·t_1² + 2·t_2`).
//!
//! Everything here is cross-validated against brute-force enumeration in
//! the tests; the `class_census` experiment binary reports the numbers.

use benes_perm::Permutation;

use crate::class_f::is_in_f;

/// `trace(W^k)` for `W = [[2,1],[1,0]]`: the per-cycle factor of the
/// counting formula. Sequence 2, 6, 14, 34, 82, … (`t_k = 2t_{k−1} +
/// t_{k−2}`).
///
/// # Panics
///
/// Panics if `k == 0` or the value would overflow `u128`.
#[must_use]
pub fn cycle_factor(k: usize) -> u128 {
    assert!(k >= 1, "cycles have length >= 1");
    let (mut prev, mut cur) = (2u128, 6u128); // t_1, t_2
    if k == 1 {
        return prev;
    }
    for _ in 2..k {
        let next = cur
            .checked_mul(2)
            .and_then(|x| x.checked_add(prev))
            .expect("cycle factor overflow");
        prev = cur;
        cur = next;
    }
    cur
}

/// The number of `F(n)` members whose subnetwork permutations are exactly
/// `(u, l)`: `∏ trace(W^k)` over the cycles of `u⁻¹ ∘ l`.
///
/// # Panics
///
/// Panics if the lengths differ or the product overflows `u128`.
#[must_use]
pub fn pair_weight(u: &Permutation, l: &Permutation) -> u128 {
    assert_eq!(u.len(), l.len(), "subnetwork permutations must have equal length");
    let pi = u.inverse().then(l);
    pi.cycles()
        .iter()
        .map(|c| cycle_factor(c.len()))
        .try_fold(1u128, u128::checked_mul)
        .expect("pair weight overflow")
}

/// Enumerates every member of `F(n)` constructively (no filtering of
/// `S_N`), by inverting the Theorem 1 recursion.
///
/// Output size is `|F(n)|`, which grows super-exponentially; the function
/// refuses `n > 3` (`|F(3)|` is already five digits; `|F(4)|` is beyond
/// ten billion).
///
/// # Panics
///
/// Panics if `n == 0` or `n > 3`.
#[must_use]
pub fn enumerate_f(n: u32) -> Vec<Permutation> {
    assert!((1..=3).contains(&n), "enumerate_f supports 1 <= n <= 3");
    enumerate_tags(n)
        .into_iter()
        .map(|tags| {
            Permutation::from_destinations(tags.into_iter().map(|t| t as u32).collect())
                .expect("constructed tags form a permutation")
        })
        .collect()
}

fn enumerate_tags(m: u32) -> Vec<Vec<u64>> {
    if m == 1 {
        return vec![vec![0, 1], vec![1, 0]];
    }
    let half = 1usize << (m - 1);
    let subs = enumerate_tags(m - 1);
    let mut out = Vec::new();
    for u in &subs {
        for l in &subs {
            // Enumerate choice bits c (one per half-range value) and
            // switch input orders.
            for c_mask in 0u64..(1 << half) {
                // Validity: no switch has c_u = c_l = 1.
                let valid = (0..half).all(|i| {
                    let cu = (c_mask >> u[i]) & 1;
                    let cl = (c_mask >> l[i]) & 1;
                    !(cu == 1 && cl == 1)
                });
                if !valid {
                    continue;
                }
                // Switches where both orders work: c_u = 0 AND c_l = 0.
                let free: Vec<usize> = (0..half)
                    .filter(|&i| (c_mask >> u[i]) & 1 == 0 && (c_mask >> l[i]) & 1 == 0)
                    .collect();
                for order_mask in 0u64..(1 << free.len()) {
                    let mut tags = vec![0u64; 2 * half];
                    let mut free_idx = 0;
                    for i in 0..half {
                        let cu = (c_mask >> u[i]) & 1;
                        let cl = (c_mask >> l[i]) & 1;
                        let a = 2 * u[i] + cu; // travels up
                        let b = 2 * l[i] + (1 - cl); // travels down
                        let a_first_ok = a & 1 == 0;
                        let b_first_ok = b & 1 == 1;
                        let a_first = if a_first_ok && b_first_ok {
                            let pick = (order_mask >> free_idx) & 1 == 0;
                            free_idx += 1;
                            pick
                        } else {
                            a_first_ok
                        };
                        if a_first {
                            tags[2 * i] = a;
                            tags[2 * i + 1] = b;
                        } else {
                            tags[2 * i] = b;
                            tags[2 * i + 1] = a;
                        }
                    }
                    out.push(tags);
                }
            }
        }
    }
    out
}

/// `|F(n)|` computed exactly from the product formula.
///
/// Cost: `|F(n−1)|²` pair-weight evaluations — instantaneous for
/// `n ≤ 3`, minutes for `n = 4` (400 million pairs over `S_8`); larger
/// `n` is rejected.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 4`.
#[must_use]
pub fn count_f(n: u32) -> u128 {
    assert!((1..=4).contains(&n), "count_f supports 1 <= n <= 4");
    if n == 1 {
        return 2;
    }
    let members = enumerate_f(n - 1);
    let mut total = 0u128;
    for u in &members {
        for l in &members {
            total += pair_weight(u, l);
        }
    }
    total
}

/// An unbiased Monte-Carlo estimate of `|F(n)|` for `n = 4` or `5`:
/// samples pairs `(U, L)` uniformly from the exact `F(n−1)` enumeration
/// (for `n = 4`) or from uniform members reachable by the exact
/// enumeration at `n−1 = 3` composed… for `n = 5` the base set would be
/// `F(4)`, which cannot be enumerated, so only `n = 4` is supported.
///
/// Returns `(estimate, standard_error)`.
///
/// # Panics
///
/// Panics if `n != 4` or `samples == 0`.
#[must_use]
pub fn estimate_count_f(
    n: u32,
    samples: usize,
    mut pick: impl FnMut(usize) -> usize,
) -> (f64, f64) {
    assert_eq!(n, 4, "estimation is supported for n = 4 only");
    assert!(samples > 0, "need at least one sample");
    let members = enumerate_f(3);
    let m = members.len() as f64;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for _ in 0..samples {
        let u = &members[pick(members.len())];
        let l = &members[pick(members.len())];
        let w = pair_weight(u, l) as f64;
        sum += w;
        sum_sq += w * w;
    }
    let mean = sum / samples as f64;
    let var = (sum_sq / samples as f64 - mean * mean).max(0.0);
    let scale = m * m;
    (scale * mean, scale * (var / samples as f64).sqrt())
}

/// Brute-force `|F(n)|` by filtering all `N!` permutations — only
/// feasible for `n ≤ 3`; used to validate [`count_f`].
///
/// # Panics
///
/// Panics if `n == 0` or `n > 3`.
#[must_use]
pub fn count_f_brute_force(n: u32) -> u128 {
    assert!((1..=3).contains(&n), "brute force supports 1 <= n <= 3");
    let len = 1u32 << n;
    let mut count = 0u128;
    let mut dest: Vec<u32> = (0..len).collect();
    permute_count(&mut dest, 0, &mut count);
    count
}

fn permute_count(dest: &mut Vec<u32>, k: usize, count: &mut u128) {
    if k == dest.len() {
        let p = Permutation::from_destinations(dest.clone()).expect("valid");
        if is_in_f(&p) {
            *count += 1;
        }
        return;
    }
    for i in k..dest.len() {
        dest.swap(k, i);
        permute_count(dest, k + 1, count);
        dest.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn cycle_factors_follow_recurrence() {
        assert_eq!(cycle_factor(1), 2);
        assert_eq!(cycle_factor(2), 6);
        assert_eq!(cycle_factor(3), 14);
        assert_eq!(cycle_factor(4), 34);
        assert_eq!(cycle_factor(5), 82);
        for k in 3..30 {
            assert_eq!(cycle_factor(k), 2 * cycle_factor(k - 1) + cycle_factor(k - 2));
        }
    }

    #[test]
    fn formula_reproduces_f2() {
        assert_eq!(count_f(2), 20);
        assert_eq!(count_f_brute_force(2), 20);
    }

    #[test]
    fn formula_matches_brute_force_at_n3() {
        assert_eq!(count_f(3), count_f_brute_force(3));
    }

    #[test]
    fn enumeration_is_exact_and_duplicate_free() {
        for n in 1..=3u32 {
            let members = enumerate_f(n);
            assert_eq!(members.len() as u128, count_f(n), "n = {n}");
            let set: HashSet<Vec<u32>> =
                members.iter().map(|p| p.destinations().to_vec()).collect();
            assert_eq!(set.len(), members.len(), "duplicates at n = {n}");
            for p in &members {
                assert!(is_in_f(p), "enumerated non-member {p} at n = {n}");
            }
        }
    }

    #[test]
    fn pair_weight_identity_pair() {
        // U = L = identity: π = identity, H fixed points, weight 2^H.
        let id = Permutation::identity(4);
        assert_eq!(pair_weight(&id, &id), 16);
    }

    #[test]
    fn pair_weight_single_cycle() {
        // π a 4-cycle: weight t_4 = 34.
        let u = Permutation::identity(4);
        let l = Permutation::from_destinations(vec![1, 2, 3, 0]).unwrap();
        assert_eq!(pair_weight(&u, &l), 34);
    }

    #[test]
    fn f2_decomposition_matches_hand_count() {
        // |F(2)| = Σ over (U, L) ∈ F(1)²: identity pairs give t_1² = 4,
        // swapped pairs give t_2 = 6 → 2·4 + 2·6 = 20.
        let members = enumerate_f(1);
        let total: u128 =
            members.iter().flat_map(|u| members.iter().map(|l| pair_weight(u, l))).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn estimator_is_consistent_with_exact_value() {
        // Deterministic "sampling" cycling through indices: with enough
        // samples the estimate approaches |F(4)|'s exact pair-sum mean.
        // Here we only verify that full-coverage sampling of n = 4 over a
        // fixed member subset is finite and positive.
        let mut state = 0usize;
        let (est, se) = estimate_count_f(4, 2000, |len| {
            state = (state * 1103515245 + 12345) % len.max(1);
            state
        });
        assert!(est > 0.0);
        assert!(se >= 0.0);
        // |F(4)| must exceed |F(3)|² / something reasonable… sanity bound:
        let f3 = count_f(3) as f64;
        assert!(est > f3, "estimate {est} implausibly small");
    }

    #[test]
    fn f_fraction_shrinks() {
        // |F(n)| / N! falls steeply: 20/24 at n = 2, far less at n = 3.
        let f3 = count_f(3) as f64;
        let fact8 = 40320.0;
        assert!(f3 / fact8 < 20.0 / 24.0);
        assert!(f3 / fact8 > 0.0);
    }
}
