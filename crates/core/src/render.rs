//! Text rendering of the network structure (Fig. 1) and of route traces
//! (Figs. 4 and 5).
//!
//! The renderings are deliberately plain ASCII so they can be embedded in
//! experiment logs and diffed in tests.

use crate::network::Benes;
use crate::trace::RouteTrace;

/// Renders the recursive structure of `B(n)` in the style of Fig. 1: one
/// column per stage, each listing its switches and the control bit used by
/// the self-routing rule, plus the inter-stage wiring tables.
///
/// # Examples
///
/// ```
/// use benes_core::{Benes, render::render_structure};
/// let text = render_structure(&Benes::new(2));
/// assert!(text.contains("B(2): 4 terminals, 3 stages, 6 switches"));
/// ```
#[must_use]
pub fn render_structure(net: &Benes) -> String {
    let mut out = String::new();
    let n = net.n();
    out.push_str(&format!(
        "B({n}): {} terminals, {} stages, {} switches\n",
        net.terminal_count(),
        net.stage_count(),
        net.switch_count()
    ));
    out.push_str(&format!(
        "self-routing control bits by stage: {:?}\n",
        (0..net.stage_count()).map(|s| net.control_bit(s)).collect::<Vec<_>>()
    ));
    for s in 0..net.stage_count() {
        out.push_str(&format!(
            "stage {s:>2} (bit {}): switches 0..{}\n",
            net.control_bit(s),
            net.switches_per_stage()
        ));
        if s < net.stage_count() - 1 {
            out.push_str("  wiring to next stage: ");
            let link = net.link(s);
            for (p, &q) in link.iter().enumerate() {
                if p > 0 {
                    out.push(' ');
                }
                out.push_str(&format!("{p}→{q}"));
            }
            out.push('\n');
        }
    }
    out
}

/// Renders a route trace in the style of the paper's Fig. 4: for every
/// stage, each switch with the binary destination tags on its two inputs
/// and the state it assumed (`=` straight, `x` cross), then the output
/// tags.
///
/// # Examples
///
/// ```
/// use benes_core::{Benes, render::render_trace, trace::RouteTrace};
/// use benes_perm::bpc::Bpc;
///
/// let net = Benes::new(3);
/// let perm = Bpc::bit_reversal(3).to_permutation();
/// let trace = RouteTrace::capture_self_route(&net, &perm).unwrap();
/// let text = render_trace(&trace);
/// assert!(text.contains("stage 0"));
/// assert!(text.contains("SUCCESS"));
/// ```
#[must_use]
pub fn render_trace(trace: &RouteTrace) -> String {
    let n = trace.n();
    let width = n as usize;
    let mut out = String::new();
    out.push_str(&format!("route trace on B({n}) [{:?}]\n", trace.mode()));
    let stages = trace.settings().stage_count();
    for s in 0..stages {
        out.push_str(&format!("stage {s} (bit {}):", s.min(stages - 1 - s)));
        let inputs = trace.stage_input(s);
        for (i, &state) in trace.settings().stage(s).iter().enumerate() {
            out.push_str(&format!(
                "  [{:0w$b},{:0w$b}]{}",
                inputs[2 * i],
                inputs[2 * i + 1],
                state,
                w = width
            ));
        }
        out.push('\n');
    }
    out.push_str("outputs:");
    for &t in trace.outputs() {
        out.push_str(&format!(" {t:0w$b}", w = width));
    }
    out.push('\n');
    if trace.is_success() {
        out.push_str("SUCCESS: every tag reached its named output\n");
    } else {
        out.push_str(&format!("FAILURE: misrouted outputs {:?}\n", trace.misrouted()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use benes_perm::bpc::Bpc;
    use benes_perm::Permutation;

    #[test]
    fn structure_lists_every_stage() {
        let net = Benes::new(3);
        let text = render_structure(&net);
        for s in 0..5 {
            assert!(text.contains(&format!("stage  {s}")), "missing stage {s}:\n{text}");
        }
        assert!(text.contains("control bits by stage: [0, 1, 2, 1, 0]"));
    }

    #[test]
    fn trace_render_shows_fig4_success() {
        let net = Benes::new(3);
        let perm = Bpc::bit_reversal(3).to_permutation();
        let trace = crate::trace::RouteTrace::capture_self_route(&net, &perm).unwrap();
        let text = render_trace(&trace);
        assert!(text.contains("SUCCESS"));
        // First switch of stage 0 carries tags 000 and 100.
        assert!(text.contains("[000,100]"));
    }

    #[test]
    fn trace_render_shows_fig5_failure() {
        let net = Benes::new(2);
        let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
        let trace = crate::trace::RouteTrace::capture_self_route(&net, &d).unwrap();
        let text = render_trace(&trace);
        assert!(text.contains("FAILURE"));
        assert!(text.contains("(0, 2)"));
    }
}
