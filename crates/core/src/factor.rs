//! Factoring an arbitrary permutation through the Benes middle stage:
//! `D = P ∘ Q` with `P ∈ Ω⁻¹(n)` and `Q ∈ Ω(n)`.
//!
//! §II of the paper observes that "the first `n` stages of `B(n)`
//! correspond to an inverse omega network … the last `n` stages … to an
//! omega network". A Waksman-configured route therefore *witnesses* the
//! classical factorization theorem: reading off where every record sits
//! after the middle stage splits any permutation `D` into an
//! inverse-omega permutation (inputs → middle) followed by an omega
//! permutation (middle → outputs).
//!
//! [`factor_inverse_omega_omega`] computes the split and the tests verify
//! the class memberships exhaustively — turning the paper's passing
//! remark into a checked theorem, and giving `Ω`-network users a recipe:
//! **any** permutation runs on an omega network in two passes (one
//! backward, one forward).

use benes_perm::Permutation;

use crate::network::{Benes, SwitchState};
use crate::waksman::{self, SetupError};

/// Splits `d` into `(p, q)` with `p.then(&q) == d`, `p ∈ Ω⁻¹(n)` and
/// `q ∈ Ω(n)`, by configuring `B(n)` for `d` (Waksman) and reading the
/// record positions at the middle-stage outputs.
///
/// For `n = 1` the single stage is both halves; the split returns
/// `(d, identity)`.
///
/// # Errors
///
/// Returns an error if the length is not a power of two (or exceeds the
/// supported maximum).
pub fn factor_inverse_omega_omega(
    d: &Permutation,
) -> Result<(Permutation, Permutation), SetupError> {
    let n = d
        .log2_len()
        .filter(|&n| n >= 1)
        .ok_or(SetupError::NotPowerOfTwo { len: d.len() })?;
    if n == 1 {
        return Ok((d.clone(), Permutation::identity(d.len())));
    }
    let settings = waksman::setup(d)?;
    let net = Benes::new(n);

    // Push the record ids through stages 0..=n−1 (the inverse-omega
    // half, ending at the middle stage's outputs) by replaying the
    // settings on the first half only.
    let len = d.len();
    let mut cur: Vec<u32> = (0..len as u32).collect();
    let middle = n as usize - 1; // stage index of the middle stage
    for s in 0..=middle {
        let mut out = vec![0u32; len];
        for i in 0..len / 2 {
            let (a, b) = (cur[2 * i], cur[2 * i + 1]);
            match settings.get(s, i) {
                SwitchState::Straight => {
                    out[2 * i] = a;
                    out[2 * i + 1] = b;
                }
                SwitchState::Cross => {
                    out[2 * i] = b;
                    out[2 * i + 1] = a;
                }
            }
        }
        if s < middle {
            // Inter-stage wiring; the middle stage's OUTPUTS are the
            // factorization cut, so its outgoing link is not applied.
            let link = net.link(s);
            let mut next = vec![0u32; len];
            for (p, &record) in out.iter().enumerate() {
                next[link[p] as usize] = record;
            }
            cur = next;
        } else {
            cur = out;
        }
    }

    // cur[pos] = record id sitting at middle-output position pos.
    // P_raw: record i → its middle position. The paper's caveat — the
    // first half equals an inverse omega network "except for some
    // rearrangement of switches" — shows up as a FIXED relabeling of the
    // middle positions: with all switches straight the wiring alone
    // displaces records by φ = link_{n−2} ∘ … ∘ link_0. Relabeling the
    // middle by φ⁻¹ aligns the half with the textbook inverse omega
    // network (verified exhaustively in the tests).
    let mut p_raw = vec![0u32; len];
    for (pos, &record) in cur.iter().enumerate() {
        p_raw[record as usize] = pos as u32;
    }
    let p_raw = Permutation::from_destinations(p_raw).expect("positions are a bijection");

    // φ: position displacement of the bare first-half wiring.
    let mut phi: Vec<u32> = (0..len as u32).collect();
    for s in 0..middle {
        let link = net.link(s);
        let mut next = vec![0u32; len];
        for (pos, &record) in phi.iter().enumerate() {
            next[link[pos] as usize] = record;
        }
        phi = next;
    }
    let mut phi_dest = vec![0u32; len];
    for (pos, &record) in phi.iter().enumerate() {
        phi_dest[record as usize] = pos as u32;
    }
    let phi = Permutation::from_destinations(phi_dest).expect("wiring is a bijection");

    let p = p_raw.then(&phi.inverse());
    let q = p.inverse().then(d);
    debug_assert_eq!(p.then(&q), *d);
    Ok((p, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use benes_perm::omega::{is_inverse_omega, is_omega};

    fn all_perms(len: u32) -> Vec<Permutation> {
        fn rec(rem: &mut Vec<u32>, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if rem.is_empty() {
                out.push(cur.clone());
                return;
            }
            for idx in 0..rem.len() {
                let v = rem.remove(idx);
                cur.push(v);
                rec(rem, cur, out);
                cur.pop();
                rem.insert(idx, v);
            }
        }
        let mut out = Vec::new();
        rec(&mut (0..len).collect(), &mut Vec::new(), &mut out);
        out.into_iter().map(|d| Permutation::from_destinations(d).unwrap()).collect()
    }

    #[test]
    fn factorization_theorem_exhaustive_n2() {
        for d in all_perms(4) {
            let (p, q) = factor_inverse_omega_omega(&d).unwrap();
            assert_eq!(p.then(&q), d, "composition broken for {d}");
            assert!(is_inverse_omega(&p), "P ∉ Ω⁻¹ for D = {d}: P = {p}");
            assert!(is_omega(&q), "Q ∉ Ω for D = {d}: Q = {q}");
        }
    }

    #[test]
    fn factorization_theorem_exhaustive_n3() {
        for d in all_perms(8) {
            let (p, q) = factor_inverse_omega_omega(&d).unwrap();
            assert_eq!(p.then(&q), d);
            assert!(is_inverse_omega(&p), "D = {d}");
            assert!(is_omega(&q), "D = {d}");
        }
    }

    #[test]
    fn factorization_at_scale() {
        let len = 1usize << 9;
        let mut dest: Vec<u32> = (0..len as u32).collect();
        let mut state = 5u64;
        for i in (1..len).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            dest.swap(i, (state >> 33) as usize % (i + 1));
        }
        let d = Permutation::from_destinations(dest).unwrap();
        let (p, q) = factor_inverse_omega_omega(&d).unwrap();
        assert_eq!(p.then(&q), d);
        assert!(is_inverse_omega(&p));
        assert!(is_omega(&q));
    }

    #[test]
    fn trivial_sizes() {
        let (p, q) = factor_inverse_omega_omega(
            &Permutation::from_destinations(vec![1, 0]).unwrap(),
        )
        .unwrap();
        assert_eq!(p.destinations(), &[1, 0]);
        assert!(q.is_identity());
        assert!(factor_inverse_omega_omega(&Permutation::identity(6)).is_err());
    }
}
