//! Fault location: which switch is broken?
//!
//! A deployed self-routing network can fail in the field — a switch stuck
//! at straight or cross no longer obeys the Fig. 3 rule. Because routing
//! is deterministic, the symptom (which outputs receive which tags) is a
//! strong fingerprint: this module enumerates every single-stuck-switch
//! hypothesis, replays the route under it, and returns the hypotheses
//! consistent with the observation.
//!
//! This is an engineering extension (the paper does not treat faults),
//! but it exercises the model in a way only an honest circuit-level
//! simulator supports. Two phenomena make the problem interesting:
//!
//! * **benign faults** — a switch stuck at the state it would take anyway
//!   is invisible for that permutation;
//! * **masked faults** — a wrong switch in the *first half* of the
//!   network swaps two records, but the last `n` stages route by tag and
//!   may re-sort the pair onto their correct outputs, hiding the fault
//!   entirely (late-stage faults can never hide — those stages commit
//!   positions). This is a genuine consequence of self-routing the paper
//!   never had occasion to mention.
//!
//! Consequently a single observation yields an *equivalence class* of
//! suspects; [`diagnose_with_probes`] intersects the classes over several
//! probe permutations to narrow the list.

use benes_perm::Permutation;

use crate::network::{Benes, SwitchState};

/// A single-stuck-switch hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StuckSwitch {
    /// The stage of the suspect switch.
    pub stage: usize,
    /// The row of the suspect switch.
    pub switch: usize,
    /// The state the switch is stuck at.
    pub stuck_at: SwitchState,
}

/// Simulates a self-route of `perm` with one switch stuck at a fixed
/// state (every other switch self-sets normally).
///
/// # Panics
///
/// Panics if `perm.len() != net.terminal_count()` or the fault location
/// is out of range.
#[must_use]
pub fn self_route_with_fault(
    net: &Benes,
    perm: &Permutation,
    fault: StuckSwitch,
) -> Vec<u32> {
    assert_eq!(perm.len(), net.terminal_count(), "permutation length must be N");
    assert!(fault.stage < net.stage_count(), "fault stage out of range");
    assert!(fault.switch < net.switches_per_stage(), "fault row out of range");
    let tags: Vec<u32> = perm.destinations().to_vec();
    let (outputs, _) = net.propagate(tags, |s, i, upper, _| {
        if s == fault.stage && i == fault.switch {
            fault.stuck_at
        } else {
            SwitchState::from_bit(benes_bits::bit(u64::from(*upper), net.control_bit(s)))
        }
    });
    outputs
}

/// Returns every single-stuck-switch hypothesis consistent with an
/// observed output-tag vector for a self-routed `perm`.
///
/// An empty result means no single stuck switch explains the observation
/// (healthy network, multiple faults, or a non-fault cause). When the
/// observation matches the healthy route, the hypotheses returned are
/// exactly the *benign* ones (faults that coincide with the intended
/// states).
///
/// # Panics
///
/// Panics if `perm.len()` or `observed.len()` differ from the terminal
/// count.
#[must_use]
pub fn locate_stuck_switch(
    net: &Benes,
    perm: &Permutation,
    observed: &[u32],
) -> Vec<StuckSwitch> {
    assert_eq!(perm.len(), net.terminal_count(), "permutation length must be N");
    assert_eq!(observed.len(), net.terminal_count(), "observation length must be N");
    let mut consistent = Vec::new();
    for stage in 0..net.stage_count() {
        for switch in 0..net.switches_per_stage() {
            for stuck_at in [SwitchState::Straight, SwitchState::Cross] {
                let fault = StuckSwitch { stage, switch, stuck_at };
                if self_route_with_fault(net, perm, fault) == observed {
                    consistent.push(fault);
                }
            }
        }
    }
    consistent
}

/// Runs a *diagnostic campaign*: routes every permutation in `probes`
/// through the faulty network and intersects the per-probe hypothesis
/// sets, narrowing the suspect list. Returns the surviving hypotheses.
///
/// A good probe set distinguishes faults quickly; even two or three
/// structured permutations usually pin the fault to the benign-equivalent
/// class.
///
/// # Panics
///
/// Panics if any probe's length differs from the terminal count.
#[must_use]
pub fn diagnose_with_probes(
    net: &Benes,
    probes: &[Permutation],
    actual_fault: StuckSwitch,
) -> Vec<StuckSwitch> {
    let mut survivors: Option<Vec<StuckSwitch>> = None;
    for probe in probes {
        let observed = self_route_with_fault(net, probe, actual_fault);
        let hypotheses = locate_stuck_switch(net, probe, &observed);
        survivors = Some(match survivors {
            None => hypotheses,
            Some(prev) => prev.into_iter().filter(|h| hypotheses.contains(h)).collect(),
        });
    }
    survivors.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use benes_perm::bpc::Bpc;
    use benes_perm::omega::cyclic_shift;

    #[test]
    fn healthy_route_is_explained_by_benign_and_masked_faults() {
        let net = Benes::new(3);
        let perm = Bpc::bit_reversal(3).to_permutation();
        let healthy = net.self_route(&perm);
        let hypotheses = locate_stuck_switch(&net, &perm, healthy.outputs());
        // Every benign hypothesis (stuck at the state the switch takes
        // anyway) must be present…
        for stage in 0..net.stage_count() {
            for switch in 0..net.switches_per_stage() {
                let benign = StuckSwitch {
                    stage,
                    switch,
                    stuck_at: healthy.settings().get(stage, switch),
                };
                assert!(hypotheses.contains(&benign), "missing benign {benign:?}");
            }
        }
        // …and some NON-benign ones may also appear: a wrong switch in
        // the first half swaps two records, but the last n stages
        // re-sort by tag, MASKING the fault. Verify every such masked
        // hypothesis truly reproduces the healthy outputs, and that
        // masking only happens before the middle stage (the last n
        // stages of B(n) route positionally by tag, so a late flip
        // always shows).
        let middle = net.stage_count() / 2;
        for h in &hypotheses {
            if h.stuck_at != healthy.settings().get(h.stage, h.switch) {
                assert!(h.stage <= middle, "late-stage fault {h:?} cannot be masked");
                assert_eq!(self_route_with_fault(&net, &perm, *h), healthy.outputs());
            }
        }
    }

    #[test]
    fn injected_fault_is_always_located() {
        let net = Benes::new(3);
        let perm = cyclic_shift(3, 3);
        let healthy = net.self_route(&perm);
        for stage in 0..net.stage_count() {
            for switch in 0..net.switches_per_stage() {
                let intended = healthy.settings().get(stage, switch);
                let fault = StuckSwitch { stage, switch, stuck_at: intended.toggled() };
                let observed = self_route_with_fault(&net, &perm, fault);
                let hypotheses = locate_stuck_switch(&net, &perm, &observed);
                assert!(
                    hypotheses.contains(&fault),
                    "true fault {fault:?} missing from hypotheses"
                );
            }
        }
    }

    #[test]
    fn disruptive_fault_changes_outputs() {
        let net = Benes::new(4);
        let perm = Bpc::matrix_transpose(4).to_permutation();
        let healthy = net.self_route(&perm);
        let intended = healthy.settings().get(3, 2);
        let fault = StuckSwitch { stage: 3, switch: 2, stuck_at: intended.toggled() };
        let observed = self_route_with_fault(&net, &perm, fault);
        assert_ne!(observed, healthy.outputs());
        // Exactly two tags displaced.
        let wrong = observed.iter().zip(healthy.outputs()).filter(|(a, b)| a != b).count();
        assert_eq!(wrong, 2);
    }

    #[test]
    fn probe_campaign_narrows_suspects() {
        let net = Benes::new(3);
        let probes = vec![
            Bpc::bit_reversal(3).to_permutation(),
            cyclic_shift(3, 1),
            Bpc::vector_reversal(3).to_permutation(),
            cyclic_shift(3, 5),
        ];
        // Pick a fault that disrupts at least one probe.
        let fault = StuckSwitch { stage: 2, switch: 1, stuck_at: SwitchState::Cross };
        let survivors = diagnose_with_probes(&net, &probes, fault);
        assert!(survivors.contains(&fault), "true fault eliminated");
        // The campaign must narrow things well below the single-probe
        // hypothesis count.
        let single = locate_stuck_switch(
            &net,
            &probes[0],
            &self_route_with_fault(&net, &probes[0], fault),
        );
        assert!(
            survivors.len() <= single.len(),
            "campaign ({}) should not widen the single-probe set ({})",
            survivors.len(),
            single.len()
        );
        // All survivors must behave identically to the true fault on
        // every probe (the natural equivalence class).
        for s in &survivors {
            for p in &probes {
                assert_eq!(
                    self_route_with_fault(&net, p, *s),
                    self_route_with_fault(&net, p, fault)
                );
            }
        }
    }

    #[test]
    fn multiple_faults_may_be_unexplainable() {
        // Corrupt the observation by hand so no single fault explains it:
        // swap two outputs that no single switch could swap alone at the
        // last stage while everything else is untouched... simplest:
        // a 3-cycle of tags.
        let net = Benes::new(3);
        let perm = Bpc::bit_reversal(3).to_permutation();
        let mut observed = net.self_route(&perm).outputs().to_vec();
        let tmp = observed[0];
        observed[0] = observed[3];
        observed[3] = observed[5];
        observed[5] = tmp;
        let hypotheses = locate_stuck_switch(&net, &perm, &observed);
        assert!(hypotheses.is_empty(), "a 3-cycle cannot be a single stuck switch");
    }
}
