//! The self-routing Benes network of Nassimi & Sahni (1980).
//!
//! This crate is the paper's primary contribution: an `N = 2^n`
//! input/output Benes permutation network whose switches set **themselves**
//! from the destination tags travelling with the data, giving a total
//! set-up-plus-transit delay of `O(log N)` gate delays for the rich class
//! `F(n)` of permutations characterized in §II of the paper.
//!
//! # Crate layout
//!
//! * [`topology`] — the static recursive structure of `B(n)` (Fig. 1):
//!   `2·log N − 1` stages of `N/2` binary switches and the inter-stage
//!   wiring, plus the per-stage *control bit* assignment of Fig. 3.
//! * [`network`] — the circuit model: [`network::Benes`] (immutable
//!   topology) and [`network::SwitchSettings`] (a full
//!   switch-state assignment), with externally-set routing
//!   ([`Benes::route_with`](network::Benes::route_with)).
//! * [`selfroute`] — the paper's self-routing scheme (Fig. 3): each switch
//!   in stage `b` / stage `2n−2−b` sets itself from bit `b` of its upper
//!   input's destination tag, plus the "omega bit" variant that forces
//!   stages `0..n−1` straight to realize all of `Ω(n)`. This scalar walk is
//!   the reference oracle; the hot path lives in [`word`].
//! * [`word`] — the same kernels in word-parallel (bit-sliced) form: whole
//!   switch columns as `u64` masks applied with delta-swaps, an order of
//!   magnitude faster than the switch-at-a-time walk.
//! * [`class_f`] — membership in `F(n)`: the Theorem 1 recursion and an
//!   independent check by direct simulation.
//! * [`census`] — exact `|F(n)|` via a transfer-matrix product formula
//!   derived from Theorem 1, constructive enumeration of `F(n)`, and a
//!   Monte-Carlo estimator for sizes beyond exact reach.
//! * [`diagnose`] — field diagnostics: locate a stuck switch from the
//!   observed misrouting fingerprint, with multi-probe campaigns.
//! * [`factor`] — the `Ω⁻¹·Ω` factorization: any permutation splits at
//!   the Benes middle stage into an inverse-omega followed by an omega
//!   permutation (the paper's §II structural remark, made a checked
//!   theorem).
//! * [`parallel_setup`] — the `O(log² N)` pointer-jumping parallel set-up
//!   (the paper's reference \[7\] complexity class), with parallel-round
//!   accounting to quantify the set-up bottleneck self-routing removes.
//! * [`waksman`] — the classical `O(N log N)` looping set-up algorithm
//!   (Waksman / Opferman–Tsao-Wu, the paper's reference \[10\]); with
//!   external set-up the network realizes **all** `N!` permutations.
//! * [`pipeline`] — the §IV pipelined mode: registers between stages, one
//!   new vector per clock after a `2n−1`-clock fill latency.
//! * [`trace`] — full per-link route traces (reproducing Figs. 4 and 5).
//! * [`render`] — ASCII rendering of the network and traces (Fig. 1).
//!
//! # Quick start
//!
//! ```
//! use benes_core::network::Benes;
//! use benes_perm::bpc::Bpc;
//!
//! // Build B(3) (8 terminals, 5 stages, 20 switches).
//! let net = Benes::new(3);
//! assert_eq!(net.stage_count(), 5);
//! assert_eq!(net.switch_count(), 20);
//!
//! // Self-route the bit-reversal permutation of the paper's Fig. 4.
//! let perm = Bpc::bit_reversal(3).to_permutation();
//! let outcome = net.self_route(&perm);
//! assert!(outcome.is_success());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod census;
pub mod class_f;
pub mod diagnose;
pub mod factor;
pub mod faults;
pub mod network;
pub mod parallel_setup;
pub mod pipeline;
pub mod render;
pub mod selfroute;
pub mod topology;
pub mod trace;
pub mod waksman;
pub mod word;

pub use class_f::{check_f, is_in_f, is_in_f_by_simulation, FViolation};
pub use faults::{FaultKind, FaultSet, FaultSetupError};
pub use network::{Benes, SwitchSettings, SwitchState};
pub use selfroute::SelfRouteOutcome;
