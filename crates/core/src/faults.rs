//! Fault injection and fault-tolerant routing.
//!
//! The Benes network's rearrangeability gives it intrinsic path
//! diversity: for most permutations many distinct switch assignments
//! realize the same mapping, because every constraint loop of the
//! looping set-up ([`crate::waksman`]) may be seeded into either
//! subnetwork. This module turns that freedom into a robustness layer:
//!
//! * [`FaultSet`] — a per-switch fault overlay for one `B(n)` network
//!   (stuck-at-straight, stuck-at-cross, or dead switches);
//! * fault-aware execution — [`FaultSet::apply_to`] distorts any
//!   [`SwitchSettings`] the way the broken hardware would, and
//!   [`self_route_with_faults`] / [`self_route_omega_with_faults`]
//!   replay the paper's self-routing rule through the damaged fabric;
//! * [`setup_avoiding`] — a fault-avoiding Waksman set-up that searches
//!   the free seeding choices of the looping decomposition for a switch
//!   assignment **agreeing with every stuck switch**, so the settings
//!   route correctly on the faulty hardware (and, because they agree,
//!   on healthy hardware too). When no agreeing assignment exists the
//!   typed [`FaultSetupError::Unavoidable`] is returned.
//!
//! Fault semantics:
//!
//! * a **stuck** switch ignores its commanded state and always applies
//!   the stuck one — the classical stuck-at model of
//!   [`crate::diagnose`], extended to whole fault sets;
//! * a **dead** switch is adversarial: it applies the *opposite* of
//!   whatever is commanded. Since every terminal's path crosses every
//!   stage, and a permutation determines each switch's required state
//!   exactly, a dead switch can never be planned around — any fault set
//!   containing one is unavoidable for every permutation.

use std::collections::BTreeMap;
use std::fmt;

use benes_perm::Permutation;

use crate::network::{Benes, NetworkError, SwitchSettings, SwitchState};
use crate::selfroute::SelfRouteOutcome;
use crate::topology;
use crate::waksman::SetupError;

/// The failure mode of one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The switch always passes straight, whatever is commanded.
    StuckStraight,
    /// The switch always crosses, whatever is commanded.
    StuckCross,
    /// The switch is adversarial: it applies the opposite of the
    /// commanded state. No set-up can agree with it.
    Dead,
}

impl FaultKind {
    /// The state a stuck switch holds, or `None` for a dead switch.
    #[must_use]
    pub fn stuck_state(self) -> Option<SwitchState> {
        match self {
            Self::StuckStraight => Some(SwitchState::Straight),
            Self::StuckCross => Some(SwitchState::Cross),
            Self::Dead => None,
        }
    }

    /// The state the faulty switch actually applies when `commanded` is
    /// requested.
    #[must_use]
    pub fn effective(self, commanded: SwitchState) -> SwitchState {
        match self {
            Self::StuckStraight => SwitchState::Straight,
            Self::StuckCross => SwitchState::Cross,
            Self::Dead => commanded.toggled(),
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::StuckStraight => write!(f, "stuck-at-straight"),
            Self::StuckCross => write!(f, "stuck-at-cross"),
            Self::Dead => write!(f, "dead"),
        }
    }
}

/// A set of per-switch faults for one `B(n)` network.
///
/// Stored as an ordered map keyed by `(stage, switch)` so iteration,
/// display and the fault-avoiding planner are fully deterministic.
///
/// # Examples
///
/// ```
/// use benes_core::faults::{FaultKind, FaultSet};
/// use benes_core::{SwitchSettings, SwitchState};
///
/// let mut faults = FaultSet::new(2);
/// faults.insert(1, 0, FaultKind::StuckCross).unwrap();
/// let healthy = SwitchSettings::all_straight(2);
/// let effective = faults.apply_to(&healthy);
/// assert_eq!(effective.get(1, 0), SwitchState::Cross);
/// assert_eq!(effective.cross_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSet {
    n: u32,
    faults: BTreeMap<(usize, usize), FaultKind>,
}

/// Error produced when registering a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultError {
    /// The `(stage, switch)` coordinates are outside the `B(n)` fabric.
    OutOfRange {
        /// The offending stage.
        stage: usize,
        /// The offending switch row.
        switch: usize,
        /// The network order the fault set was built for.
        n: u32,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfRange { stage, switch, n } => write!(
                f,
                "switch ({stage}, {switch}) does not exist in B({n}) \
                 ({} stages of {} switches)",
                topology::stage_count(*n),
                topology::switches_per_stage(*n)
            ),
        }
    }
}

impl std::error::Error for FaultError {}

impl FaultSet {
    /// An empty fault set for `B(n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range (see [`topology::MAX_N`]).
    #[must_use]
    pub fn new(n: u32) -> Self {
        topology::validate_n(n);
        Self { n, faults: BTreeMap::new() }
    }

    /// The network order `n` this fault set describes.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Registers (or replaces) a fault at `(stage, switch)`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::OutOfRange`] if the coordinates do not name
    /// a switch of `B(n)`.
    pub fn insert(
        &mut self,
        stage: usize,
        switch: usize,
        kind: FaultKind,
    ) -> Result<(), FaultError> {
        if stage >= topology::stage_count(self.n)
            || switch >= topology::switches_per_stage(self.n)
        {
            return Err(FaultError::OutOfRange { stage, switch, n: self.n });
        }
        self.faults.insert((stage, switch), kind);
        Ok(())
    }

    /// Removes the fault at `(stage, switch)`, returning it if present.
    pub fn remove(&mut self, stage: usize, switch: usize) -> Option<FaultKind> {
        self.faults.remove(&(stage, switch))
    }

    /// Removes every fault.
    pub fn clear(&mut self) {
        self.faults.clear();
    }

    /// The fault at `(stage, switch)`, if any.
    #[must_use]
    pub fn get(&self, stage: usize, switch: usize) -> Option<FaultKind> {
        self.faults.get(&(stage, switch)).copied()
    }

    /// The number of faulty switches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the fabric is healthy (no registered faults).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Whether any registered fault is [`FaultKind::Dead`].
    #[must_use]
    pub fn has_dead(&self) -> bool {
        self.faults.values().any(|&k| k == FaultKind::Dead)
    }

    /// Iterates the faults in deterministic `(stage, switch)` order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, FaultKind)> + '_ {
        self.faults.iter().map(|(&(stage, switch), &kind)| (stage, switch, kind))
    }

    /// The state switch `(stage, switch)` actually takes when
    /// `commanded` is requested, under this fault overlay.
    #[must_use]
    pub fn effective_state(
        &self,
        stage: usize,
        switch: usize,
        commanded: SwitchState,
    ) -> SwitchState {
        match self.get(stage, switch) {
            Some(kind) => kind.effective(commanded),
            None => commanded,
        }
    }

    /// The settings the faulty fabric *actually applies* when `settings`
    /// is commanded: every healthy switch obeys, every faulty switch
    /// follows its fault.
    ///
    /// # Panics
    ///
    /// Panics if `settings` was built for a different network order.
    #[must_use]
    pub fn apply_to(&self, settings: &SwitchSettings) -> SwitchSettings {
        assert_eq!(
            settings.n(),
            self.n,
            "fault set is for B({}), settings are for B({})",
            self.n,
            settings.n()
        );
        let mut effective = settings.clone();
        for (&(stage, switch), &kind) in &self.faults {
            effective.set(stage, switch, kind.effective(settings.get(stage, switch)));
        }
        effective
    }

    /// Whether `settings` **agrees** with every fault: each stuck switch
    /// is commanded exactly its stuck state (so the overlay is a no-op).
    /// Always `false` when a dead switch is registered and the set is
    /// non-trivially consulted — a dead switch agrees with nothing.
    #[must_use]
    pub fn agrees_with(&self, settings: &SwitchSettings) -> bool {
        self.faults.iter().all(|(&(stage, switch), &kind)| {
            kind.stuck_state() == Some(settings.get(stage, switch))
        })
    }

    /// Itemizes [`Self::agrees_with`]: every fault whose forced state
    /// differs from the commanded one, as
    /// `(stage, switch, commanded, forced)` where `forced` is `None`
    /// for a dead switch (which disagrees with any command). Empty
    /// exactly when `agrees_with` holds.
    #[must_use]
    pub fn disagreements(
        &self,
        settings: &SwitchSettings,
    ) -> Vec<(usize, usize, SwitchState, Option<SwitchState>)> {
        self.faults
            .iter()
            .filter_map(|(&(stage, switch), &kind)| {
                let commanded = settings.get(stage, switch);
                (kind.stuck_state() != Some(commanded))
                    .then(|| (stage, switch, commanded, kind.stuck_state()))
            })
            .collect()
    }

    /// `count` random stuck-at faults (never dead) on distinct switches,
    /// derived deterministically from `seed` with a splitmix64 stream —
    /// the standard campaign generator for tests, the CLI and EXP-FAULTS.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the switch count of `B(n)`.
    #[must_use]
    pub fn random_stuck(n: u32, count: usize, seed: u64) -> Self {
        topology::validate_n(n);
        assert!(
            count <= topology::switch_count(n),
            "cannot place {count} faults on {} switches",
            topology::switch_count(n)
        );
        let mut set = Self::new(n);
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        while set.len() < count {
            let stage = (next() % topology::stage_count(n) as u64) as usize;
            let switch = (next() % topology::switches_per_stage(n) as u64) as usize;
            if set.get(stage, switch).is_some() {
                continue;
            }
            let kind = if next() & 1 == 0 {
                FaultKind::StuckStraight
            } else {
                FaultKind::StuckCross
            };
            set.insert(stage, switch, kind).expect("coordinates drawn in range");
        }
        set
    }
}

impl fmt::Display for FaultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "B({}): healthy", self.n);
        }
        write!(f, "B({}):", self.n)?;
        for (stage, switch, kind) in self.iter() {
            write!(f, " ({stage},{switch})={kind}")?;
        }
        Ok(())
    }
}

/// Routes `inputs` through `net` with `settings` commanded and the fault
/// overlay applied — what the broken hardware would actually do.
///
/// # Errors
///
/// Returns the usual [`NetworkError`]s for length/order mismatches.
///
/// # Panics
///
/// Panics if `faults.n() != settings.n()`.
pub fn route_with_faults<T: Clone>(
    net: &Benes,
    settings: &SwitchSettings,
    faults: &FaultSet,
    inputs: &[T],
) -> Result<Vec<T>, NetworkError> {
    net.route_with(&faults.apply_to(settings), inputs)
}

/// The permutation the faulty fabric realizes when `settings` is
/// commanded.
///
/// # Errors
///
/// Returns [`NetworkError::SettingsOrder`] on an order mismatch.
///
/// # Panics
///
/// Panics if `faults.n() != settings.n()`.
pub fn realized_with_faults(
    net: &Benes,
    settings: &SwitchSettings,
    faults: &FaultSet,
) -> Result<Permutation, NetworkError> {
    net.realized_permutation(&faults.apply_to(settings))
}

/// Self-routes `perm` through the faulty fabric: healthy switches obey
/// the Fig. 3 tag rule, faulty switches follow their fault.
///
/// # Panics
///
/// Panics if `perm.len() != net.terminal_count()` or
/// `faults.n() != net.n()`.
#[must_use]
pub fn self_route_with_faults(
    net: &Benes,
    perm: &Permutation,
    faults: &FaultSet,
) -> SelfRouteOutcome {
    assert_eq!(perm.len(), net.terminal_count(), "permutation length must be N");
    assert_eq!(faults.n(), net.n(), "fault set order must match the network");
    let tags: Vec<u32> = perm.destinations().to_vec();
    let (outputs, settings) = net.propagate(tags, |s, i, upper, _| {
        let commanded =
            SwitchState::from_bit(benes_bits::bit(u64::from(*upper), net.control_bit(s)));
        faults.effective_state(s, i, commanded)
    });
    SelfRouteOutcome::new(outputs, settings)
}

/// Self-routes `perm` with the omega bit asserted through the faulty
/// fabric (stages `0..n−1` commanded straight, the rest by tag).
///
/// # Panics
///
/// Panics if `perm.len() != net.terminal_count()` or
/// `faults.n() != net.n()`.
#[must_use]
pub fn self_route_omega_with_faults(
    net: &Benes,
    perm: &Permutation,
    faults: &FaultSet,
) -> SelfRouteOutcome {
    assert_eq!(perm.len(), net.terminal_count(), "permutation length must be N");
    assert_eq!(faults.n(), net.n(), "fault set order must match the network");
    let forced_straight = net.n() as usize - 1;
    let tags: Vec<u32> = perm.destinations().to_vec();
    let (outputs, settings) = net.propagate(tags, |s, i, upper, _| {
        let commanded = if s < forced_straight {
            SwitchState::Straight
        } else {
            SwitchState::from_bit(benes_bits::bit(u64::from(*upper), net.control_bit(s)))
        };
        faults.effective_state(s, i, commanded)
    });
    SelfRouteOutcome::new(outputs, settings)
}

/// Error produced by [`setup_avoiding`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultSetupError {
    /// The permutation itself cannot be set up (bad length / too large).
    Setup(SetupError),
    /// The fault set was built for a different network order.
    OrderMismatch {
        /// The order the permutation requires.
        required: u32,
        /// The order the fault set describes.
        faults: u32,
    },
    /// No switch assignment realizing the permutation agrees with every
    /// fault: either a dead switch is present (nothing agrees with one),
    /// or the seeding search exhausted every consistent choice (proof of
    /// unavoidability for the search space explored; the search is
    /// budgeted, so on very large fault sets this is "not found within
    /// budget").
    Unavoidable,
}

impl fmt::Display for FaultSetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Setup(e) => write!(f, "set-up failed: {e}"),
            Self::OrderMismatch { required, faults } => write!(
                f,
                "permutation needs B({required}) but the fault set describes B({faults})"
            ),
            Self::Unavoidable => {
                write!(f, "no set-up realizing the permutation agrees with the fault set")
            }
        }
    }
}

impl std::error::Error for FaultSetupError {}

impl From<SetupError> for FaultSetupError {
    fn from(e: SetupError) -> Self {
        Self::Setup(e)
    }
}

/// Node budget for the seeding search: far above anything `k ≤ 2` fault
/// campaigns need on the orders the engine serves, while bounding the
/// worst case (the number of free seeding bits grows with `N log N`).
const SEARCH_BUDGET: usize = 200_000;

/// Computes switch settings realizing `d` that **agree with every stuck
/// switch** in `faults` — the fault-avoiding Waksman set-up.
///
/// The looping decomposition leaves one free binary choice per
/// constraint loop (which subnetwork the loop's seed routes through).
/// This function searches those free choices depth-first, pruning
/// seedings that contradict a stuck switch in the current block's outer
/// stages, and recursing into the induced sub-permutations. Blocks whose
/// switch range contains no fault are set up greedily (seed 0, the
/// classical algorithm) without branching, so the search is cheap
/// whenever the fault set is small.
///
/// Because the returned settings agree with every stuck switch, the
/// fault overlay is a **no-op** on them: they realize `d` on the faulty
/// fabric *and* on healthy hardware — safe to cache and replay after a
/// repair.
///
/// # Errors
///
/// * [`FaultSetupError::Setup`] — `d` has an unroutable length;
/// * [`FaultSetupError::OrderMismatch`] — `faults` describes another
///   order;
/// * [`FaultSetupError::Unavoidable`] — no agreeing assignment exists
///   (always the case when `faults` contains a dead switch).
///
/// # Examples
///
/// ```
/// use benes_core::faults::{setup_avoiding, FaultKind, FaultSet};
/// use benes_core::{Benes, SwitchState};
/// use benes_perm::Permutation;
///
/// let net = Benes::new(2);
/// let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
/// let mut faults = FaultSet::new(2);
/// faults.insert(0, 0, FaultKind::StuckStraight).unwrap();
/// let settings = setup_avoiding(&d, &faults).unwrap();
/// assert_eq!(settings.get(0, 0), SwitchState::Straight); // agrees
/// assert_eq!(net.realized_permutation(&settings).unwrap(), d);
/// ```
pub fn setup_avoiding(
    d: &Permutation,
    faults: &FaultSet,
) -> Result<SwitchSettings, FaultSetupError> {
    let n = d
        .log2_len()
        .filter(|&n| n >= 1)
        .ok_or(SetupError::NotPowerOfTwo { len: d.len() })?;
    if n > topology::MAX_N {
        return Err(FaultSetupError::Setup(SetupError::TooLarge { n }));
    }
    if faults.n() != n {
        return Err(FaultSetupError::OrderMismatch { required: n, faults: faults.n() });
    }
    // A dead switch applies the opposite of any commanded state, and the
    // permutation determines every switch's required state exactly, so
    // no assignment can agree with it.
    if faults.has_dead() {
        return Err(FaultSetupError::Unavoidable);
    }
    let mut settings = SwitchSettings::all_straight(n);
    let dest: Vec<u32> = d.destinations().to_vec();
    let mut budget = SEARCH_BUDGET;
    if solve(&dest, n, 0, 0, &mut settings, faults, &mut budget) {
        debug_assert!(faults.agrees_with(&settings));
        debug_assert_eq!(
            Benes::new(n).realized_permutation(&faults.apply_to(&settings)).unwrap(),
            *d,
            "fault-avoiding set-up must realize d through the faulty fabric"
        );
        Ok(settings)
    } else {
        Err(FaultSetupError::Unavoidable)
    }
}

/// One constraint loop of the looping decomposition, recorded under
/// seeding 0; seeding 1 flips every side in the loop.
struct Loop {
    /// `(input_index, side_under_seed_0)` members.
    inputs: Vec<(usize, u8)>,
    /// `(output_index, side_under_seed_0)` members.
    outputs: Vec<(usize, u8)>,
}

/// Whether the half-open switch rectangle of the `B(m)` block based at
/// `(stage_base, row_base)` contains any registered fault.
fn block_has_fault(faults: &FaultSet, m: u32, stage_base: usize, row_base: usize) -> bool {
    let stages = 2 * m as usize - 1;
    let rows = 1usize << (m - 1);
    faults.iter().any(|(stage, switch, _)| {
        (stage_base..stage_base + stages).contains(&stage)
            && (row_base..row_base + rows).contains(&switch)
    })
}

/// Recursively assigns the switches of the `B(m)` block at
/// `(stage_base, row_base)` so it realizes `perm` while agreeing with
/// every stuck switch inside the block. Returns `false` when no
/// agreeing assignment exists (or the budget ran out).
fn solve(
    perm: &[u32],
    m: u32,
    stage_base: usize,
    row_base: usize,
    settings: &mut SwitchSettings,
    faults: &FaultSet,
    budget: &mut usize,
) -> bool {
    let len = perm.len();
    debug_assert_eq!(len, 1 << m);
    if *budget == 0 {
        return false;
    }
    *budget -= 1;

    if m == 1 {
        let required =
            if perm[0] == 0 { SwitchState::Straight } else { SwitchState::Cross };
        if let Some(kind) = faults.get(stage_base, row_base) {
            if kind.stuck_state() != Some(required) {
                return false;
            }
        }
        settings.set(stage_base, row_base, required);
        return true;
    }

    // Fault-free blocks never fail: the classical greedy set-up applies.
    if !block_has_fault(faults, m, stage_base, row_base) {
        crate::waksman::setup_recursive(perm, m, stage_base, row_base, settings);
        return true;
    }

    // Trace the constraint loops once (under seeding 0).
    let mut inv = vec![0u32; len];
    for (i, &o) in perm.iter().enumerate() {
        inv[o as usize] = i as u32; // analyze:allow(truncating-cast): i < 2^MAX_N terminals
    }
    let mut in_side: Vec<Option<u8>> = vec![None; len];
    let mut out_side: Vec<Option<u8>> = vec![None; len];
    let mut loops: Vec<Loop> = Vec::new();
    let mut loop_of_in_switch = vec![usize::MAX; len / 2];
    let mut loop_of_out_switch = vec![usize::MAX; len / 2];

    for seed in 0..len {
        if in_side[seed].is_some() {
            continue;
        }
        let id = loops.len();
        let mut lp = Loop { inputs: Vec::new(), outputs: Vec::new() };
        let mut x = seed;
        in_side[x] = Some(0);
        lp.inputs.push((x, 0));
        loop_of_in_switch[x / 2] = id;
        loop {
            let o = perm[x] as usize;
            let side = in_side[x].expect("assigned");
            out_side[o] = Some(side);
            lp.outputs.push((o, side));
            loop_of_out_switch[o / 2] = id;
            let op = o ^ 1;
            let other = 1 - side;
            if out_side[op].is_some() {
                break;
            }
            out_side[op] = Some(other);
            lp.outputs.push((op, other));
            let xp = inv[op] as usize;
            in_side[xp] = Some(other);
            lp.inputs.push((xp, other));
            loop_of_in_switch[xp / 2] = id;
            let xq = xp ^ 1;
            let next = 1 - other;
            if in_side[xq].is_some() {
                break;
            }
            in_side[xq] = Some(next);
            lp.inputs.push((xq, next));
            x = xq;
        }
        loops.push(lp);
    }

    let half = len / 2;
    let stages = 2 * m as usize - 1;
    let last_stage = stage_base + stages - 1;

    // Per-loop allowed seedings, pruned by the stuck switches of this
    // block's outer stages. A first-stage switch i is straight iff its
    // upper input 2i routes up; under seeding s of the loop owning it,
    // that side is `side_0 XOR s`.
    let mut allowed: Vec<[bool; 2]> = vec![[true, true]; loops.len()];
    for i in 0..half {
        for (stage, loop_id, base_side) in [
            (stage_base, loop_of_in_switch[i], in_side[2 * i].expect("covered")),
            (last_stage, loop_of_out_switch[i], out_side[2 * i].expect("covered")),
        ] {
            if let Some(kind) = faults.get(stage, row_base + i) {
                let stuck = kind.stuck_state().expect("dead sets rejected up front");
                // Under seeding s the switch state is straight iff
                // base_side ^ s == 0.
                for s in 0..2u8 {
                    let state = if base_side ^ s == 0 {
                        SwitchState::Straight
                    } else {
                        SwitchState::Cross
                    };
                    if state != stuck {
                        allowed[loop_id][s as usize] = false;
                    }
                }
            }
        }
    }
    if allowed.iter().any(|a| !a[0] && !a[1]) {
        return false;
    }

    // Only loops that can influence a deeper fault (or are themselves
    // constrained) need branching; everything else takes its first
    // allowed seeding. Both children are affected by every loop, so any
    // deeper fault makes all loops branch-worthy — the budget bounds it.
    let upper_fault = block_has_fault(faults, m - 1, stage_base + 1, row_base);
    let lower_fault = block_has_fault(faults, m - 1, stage_base + 1, row_base + half / 2);
    let deep_fault = upper_fault || lower_fault;

    let mut seeding = vec![0u8; loops.len()];
    for (i, a) in allowed.iter().enumerate() {
        seeding[i] = if a[0] { 0 } else { 1 };
    }

    let branch: Vec<usize> = (0..loops.len())
        .filter(|&i| allowed[i][0] && allowed[i][1] && deep_fault)
        .collect();

    // Depth-first over the branching loops' seedings.
    let mut choice = vec![0u8; branch.len()];
    loop {
        for (bi, &li) in branch.iter().enumerate() {
            seeding[li] = choice[bi];
        }
        if try_seeding(
            perm, m, stage_base, row_base, settings, faults, budget, &loops, &seeding,
        ) {
            return true;
        }
        if *budget == 0 {
            return false;
        }
        // Next combination (binary counter over the branching loops).
        let mut bi = 0;
        loop {
            if bi == branch.len() {
                return false;
            }
            if choice[bi] == 0 {
                choice[bi] = 1;
                break;
            }
            choice[bi] = 0;
            bi += 1;
        }
    }
}

/// Applies one complete seeding vector: fixes this block's outer stages,
/// derives the induced sub-permutations, and recurses into both
/// children. Returns `false` (leaving `settings` dirty for the caller to
/// overwrite on the next attempt) if either child fails.
fn try_seeding(
    perm: &[u32],
    m: u32,
    stage_base: usize,
    row_base: usize,
    settings: &mut SwitchSettings,
    faults: &FaultSet,
    budget: &mut usize,
    loops: &[Loop],
    seeding: &[u8],
) -> bool {
    let len = perm.len();
    let half = len / 2;
    let stages = 2 * m as usize - 1;

    // Realize the chosen sides.
    let mut in_side = vec![0u8; len];
    let mut out_side = vec![0u8; len];
    for (id, lp) in loops.iter().enumerate() {
        for &(x, s0) in &lp.inputs {
            in_side[x] = s0 ^ seeding[id];
        }
        for &(o, s0) in &lp.outputs {
            out_side[o] = s0 ^ seeding[id];
        }
    }

    let mut upper = vec![0u32; half];
    let mut lower = vec![0u32; half];
    for i in 0..half {
        let up_in = if in_side[2 * i] == 0 { 2 * i } else { 2 * i + 1 };
        let state = if up_in == 2 * i { SwitchState::Straight } else { SwitchState::Cross };
        debug_assert!(
            faults
                .get(stage_base, row_base + i)
                .is_none_or(|k| k.stuck_state() == Some(state)),
            "constrained seeding must agree with first-stage faults"
        );
        settings.set(stage_base, row_base + i, state);
        upper[i] = perm[up_in] >> 1;
        lower[i] = perm[up_in ^ 1] >> 1;

        let state =
            if out_side[2 * i] == 0 { SwitchState::Straight } else { SwitchState::Cross };
        debug_assert!(
            faults
                .get(stage_base + stages - 1, row_base + i)
                .is_none_or(|k| k.stuck_state() == Some(state)),
            "constrained seeding must agree with last-stage faults"
        );
        settings.set(stage_base + stages - 1, row_base + i, state);
    }

    solve(&upper, m - 1, stage_base + 1, row_base, settings, faults, budget)
        && solve(
            &lower,
            m - 1,
            stage_base + 1,
            row_base + half / 2,
            settings,
            faults,
            budget,
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waksman;
    use benes_perm::bpc::Bpc;

    fn p(v: &[u32]) -> Permutation {
        Permutation::from_destinations(v.to_vec()).unwrap()
    }

    fn all_perms(len: u32) -> Vec<Permutation> {
        fn rec(rem: &mut Vec<u32>, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if rem.is_empty() {
                out.push(cur.clone());
                return;
            }
            for idx in 0..rem.len() {
                let v = rem.remove(idx);
                cur.push(v);
                rec(rem, cur, out);
                cur.pop();
                rem.insert(idx, v);
            }
        }
        let mut out = Vec::new();
        rec(&mut (0..len).collect(), &mut Vec::new(), &mut out);
        out.into_iter().map(|d| Permutation::from_destinations(d).unwrap()).collect()
    }

    #[test]
    fn fault_set_validates_coordinates() {
        let mut f = FaultSet::new(2);
        assert!(f.insert(0, 0, FaultKind::StuckCross).is_ok());
        assert!(f.insert(3, 0, FaultKind::StuckCross).is_err()); // 3 stages in B(2)
        assert!(f.insert(0, 2, FaultKind::StuckCross).is_err()); // 2 rows in B(2)
        assert_eq!(f.len(), 1);
        assert_eq!(f.remove(0, 0), Some(FaultKind::StuckCross));
        assert!(f.is_empty());
    }

    #[test]
    fn overlay_distorts_only_faulty_switches() {
        let mut f = FaultSet::new(2);
        f.insert(1, 1, FaultKind::StuckCross).unwrap();
        f.insert(2, 0, FaultKind::Dead).unwrap();
        let mut commanded = SwitchSettings::all_straight(2);
        commanded.set(2, 0, SwitchState::Cross);
        let effective = f.apply_to(&commanded);
        assert_eq!(effective.get(1, 1), SwitchState::Cross); // stuck
        assert_eq!(effective.get(2, 0), SwitchState::Straight); // dead: toggled
        assert_eq!(effective.get(0, 0), SwitchState::Straight); // healthy
    }

    #[test]
    fn agreeing_settings_see_noop_overlay() {
        let d = p(&[2, 5, 3, 7, 1, 6, 4, 0]);
        let settings = waksman::setup(&d).unwrap();
        let mut f = FaultSet::new(3);
        // Register a fault stuck at exactly the state the set-up chose.
        f.insert(
            2,
            1,
            match settings.get(2, 1) {
                SwitchState::Straight => FaultKind::StuckStraight,
                SwitchState::Cross => FaultKind::StuckCross,
            },
        )
        .unwrap();
        assert!(f.agrees_with(&settings));
        assert_eq!(f.apply_to(&settings), settings);
    }

    #[test]
    fn self_route_with_empty_faults_matches_healthy() {
        let net = Benes::new(3);
        let f = FaultSet::new(3);
        let d = Bpc::bit_reversal(3).to_permutation();
        assert_eq!(self_route_with_faults(&net, &d, &f), net.self_route(&d));
        let fig5 = p(&[1, 3, 2, 0]);
        let net2 = Benes::new(2);
        let f2 = FaultSet::new(2);
        assert_eq!(
            self_route_omega_with_faults(&net2, &fig5, &f2),
            net2.self_route_omega(&fig5)
        );
    }

    #[test]
    fn stuck_switch_breaks_self_route_when_it_matters() {
        let net = Benes::new(3);
        let d = Bpc::bit_reversal(3).to_permutation();
        let healthy = net.self_route(&d);
        // Stage 0 of Fig. 4 is [=, =, x, x]; stick switch 2 at straight.
        let mut f = FaultSet::new(3);
        f.insert(0, 2, FaultKind::StuckStraight).unwrap();
        let outcome = self_route_with_faults(&net, &d, &f);
        assert!(!outcome.is_success());
        assert_ne!(outcome.outputs(), healthy.outputs());
    }

    #[test]
    fn setup_avoiding_without_faults_matches_classical_behaviour() {
        let net = Benes::new(3);
        let f = FaultSet::new(3);
        for d in [
            p(&[2, 5, 3, 7, 1, 6, 4, 0]),
            Bpc::bit_reversal(3).to_permutation(),
            Permutation::identity(8),
        ] {
            let s = setup_avoiding(&d, &f).unwrap();
            assert_eq!(net.realized_permutation(&s).unwrap(), d);
        }
    }

    #[test]
    fn setup_avoiding_agrees_with_single_stuck_switch_exhaustively() {
        // Every permutation of S_4, every switch, both stuck states:
        // whenever the planner claims success the settings agree with the
        // fault and realize D through the faulty fabric.
        let net = Benes::new(2);
        let mut avoidable = 0usize;
        let mut unavoidable = 0usize;
        for d in all_perms(4) {
            for stage in 0..net.stage_count() {
                for switch in 0..net.switches_per_stage() {
                    for kind in [FaultKind::StuckStraight, FaultKind::StuckCross] {
                        let mut f = FaultSet::new(2);
                        f.insert(stage, switch, kind).unwrap();
                        match setup_avoiding(&d, &f) {
                            Ok(s) => {
                                assert!(f.agrees_with(&s), "D={d} fault {f}");
                                assert_eq!(
                                    realized_with_faults(&net, &s, &f).unwrap(),
                                    d,
                                    "D={d} fault {f}"
                                );
                                avoidable += 1;
                            }
                            Err(FaultSetupError::Unavoidable) => {
                                // Cross-check by brute force: no agreeing
                                // settings realize d.
                                assert!(
                                    !brute_force_avoidable(&net, &d, &f),
                                    "planner missed an agreeing set-up for D={d}, {f}"
                                );
                                unavoidable += 1;
                            }
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    }
                }
            }
        }
        assert!(avoidable > 0);
        // Middle-stage B(1) blocks are forced, so some single stuck
        // switches really are unavoidable for some permutations.
        assert!(unavoidable > 0);
    }

    /// Exhaustively checks whether ANY full switch assignment both
    /// agrees with the fault set and realizes `d` (B(2): 6 switches).
    fn brute_force_avoidable(net: &Benes, d: &Permutation, f: &FaultSet) -> bool {
        let stages = net.stage_count();
        let rows = net.switches_per_stage();
        let bits = stages * rows;
        for mask in 0u32..(1 << bits) {
            let mut s = SwitchSettings::all_straight(net.n());
            for b in 0..bits {
                if mask & (1 << b) != 0 {
                    s.set(b / rows, b % rows, SwitchState::Cross);
                }
            }
            if f.agrees_with(&s) && net.realized_permutation(&s).unwrap() == *d {
                return true;
            }
        }
        false
    }

    #[test]
    fn setup_avoiding_handles_double_faults_on_b3() {
        // A deterministic sweep of two-fault sets on B(3): success must
        // be verified end-to-end; failure must at least be consistent
        // (reporting Unavoidable, never panicking).
        let net = Benes::new(3);
        let d = p(&[2, 5, 3, 7, 1, 6, 4, 0]);
        let mut ok = 0usize;
        let mut unavoidable = 0usize;
        for seed in 0..64u64 {
            let f = FaultSet::random_stuck(3, 2, seed);
            match setup_avoiding(&d, &f) {
                Ok(s) => {
                    assert!(f.agrees_with(&s));
                    assert_eq!(realized_with_faults(&net, &s, &f).unwrap(), d);
                    ok += 1;
                }
                Err(FaultSetupError::Unavoidable) => unavoidable += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(ok > 0, "double faults should often be avoidable ({unavoidable} not)");
    }

    #[test]
    fn dead_switch_is_always_unavoidable() {
        let mut f = FaultSet::new(3);
        f.insert(2, 0, FaultKind::Dead).unwrap();
        assert!(f.has_dead());
        let d = Bpc::bit_reversal(3).to_permutation();
        assert_eq!(setup_avoiding(&d, &f), Err(FaultSetupError::Unavoidable));
    }

    #[test]
    fn setup_avoiding_validates_inputs() {
        let f = FaultSet::new(3);
        assert!(matches!(
            setup_avoiding(&Permutation::identity(6), &f),
            Err(FaultSetupError::Setup(SetupError::NotPowerOfTwo { len: 6 }))
        ));
        assert_eq!(
            setup_avoiding(&Permutation::identity(16), &f),
            Err(FaultSetupError::OrderMismatch { required: 4, faults: 3 })
        );
    }

    #[test]
    fn random_stuck_is_deterministic_and_in_range() {
        let a = FaultSet::random_stuck(4, 3, 7);
        let b = FaultSet::random_stuck(4, 3, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.has_dead());
        for (stage, switch, _) in a.iter() {
            assert!(stage < topology::stage_count(4));
            assert!(switch < topology::switches_per_stage(4));
        }
        assert_ne!(a, FaultSet::random_stuck(4, 3, 8));
    }

    #[test]
    fn display_formats() {
        let mut f = FaultSet::new(2);
        assert_eq!(f.to_string(), "B(2): healthy");
        f.insert(0, 1, FaultKind::StuckCross).unwrap();
        assert_eq!(f.to_string(), "B(2): (0,1)=stuck-at-cross");
    }
}
