//! Membership in the self-routing class `F(n)` (Theorem 1 of the paper).
//!
//! `F(n)` is the set of permutations the self-routing Benes network
//! realizes correctly. Theorem 1 characterizes it recursively: `D ∈ F(n)`
//! iff the tag vectors `U` and `L` induced on the upper and lower
//! `B(n−1)` subnetworks by the stage-0 switch rule are both permutations
//! and both in `F(n−1)`.
//!
//! Two independent deciders are provided:
//!
//! * [`is_in_f`] / [`check_f`] — the Theorem 1 recursion, operating purely
//!   on tag vectors (`O(N log N)` time, no network object needed);
//!   [`check_f`] additionally reports *where* the recursion fails;
//! * [`is_in_f_by_simulation`] — builds `B(n)` and self-routes, declaring
//!   membership iff every tag reaches its named output.
//!
//! The two are property-tested against each other; their agreement is an
//! end-to-end check of the flattened network wiring against the paper's
//! recursive definition.
//!
//! # Examples
//!
//! ```
//! use benes_core::class_f::{is_in_f, is_in_f_by_simulation};
//! use benes_perm::Permutation;
//!
//! // Fig. 5: D = (1, 3, 2, 0) ∉ F(2).
//! let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
//! assert!(!is_in_f(&d));
//! assert!(!is_in_f_by_simulation(&d));
//! ```

use std::fmt;

use benes_bits::bit;
use benes_perm::Permutation;

use crate::network::Benes;

/// Which subnetwork a recursion step descended into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Half {
    /// The upper `B(n−1)` subnetwork (tags `U`).
    Upper,
    /// The lower `B(n−1)` subnetwork (tags `L`).
    Lower,
}

impl fmt::Display for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Half::Upper => write!(f, "upper"),
            Half::Lower => write!(f, "lower"),
        }
    }
}

/// Why a permutation is not in `F(n)`: at some recursion level, the tag
/// vector handed to one subnetwork is not a permutation (Theorem 1's
/// condition fails).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FViolation {
    /// The path of subnetwork choices from `B(n)` down to the failing
    /// level (empty means the failure is at the outermost split).
    pub path: Vec<Half>,
    /// The half whose tag vector failed to be a permutation.
    pub half: Half,
    /// The (reduced) tag that two different inputs both carried.
    pub duplicate_tag: u64,
    /// The sub-problem size `m` (the failing vector should have been a
    /// permutation of `0..2^m`).
    pub level: u32,
}

impl fmt::Display for FViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "not in F: at level B({}), {} subnetwork receives tag {} twice (path: ",
            self.level, self.half, self.duplicate_tag
        )?;
        if self.path.is_empty() {
            write!(f, "root")?;
        } else {
            for (i, h) in self.path.iter().enumerate() {
                if i > 0 {
                    write!(f, "/")?;
                }
                write!(f, "{h}")?;
            }
        }
        write!(f, ")")
    }
}

impl std::error::Error for FViolation {}

/// Decides `D ∈ F(n)` by the Theorem 1 recursion.
///
/// Returns `false` if the permutation length is not a power of two
/// (the network requires `N = 2^n`).
///
/// # Examples
///
/// ```
/// use benes_core::class_f::is_in_f;
/// use benes_perm::bpc::Bpc;
///
/// // Theorem 2: every BPC permutation is in F.
/// assert!(is_in_f(&Bpc::bit_reversal(4).to_permutation()));
/// ```
#[must_use]
pub fn is_in_f(d: &Permutation) -> bool {
    check_f(d).is_ok()
}

/// Decides `D ∈ F(n)` and, on failure, reports where Theorem 1's condition
/// breaks.
///
/// # Errors
///
/// Returns an [`FViolation`] naming the recursion level, subnetwork and
/// duplicated tag. A permutation whose length is not a power of two fails
/// at the outermost level with `duplicate_tag = 0`.
pub fn check_f(d: &Permutation) -> Result<(), FViolation> {
    let Some(n) = d.log2_len() else {
        return Err(FViolation {
            path: Vec::new(),
            half: Half::Upper,
            duplicate_tag: 0,
            level: 0,
        });
    };
    if n == 0 {
        // A single terminal: only the identity exists; trivially routable.
        return Ok(());
    }
    let tags: Vec<u64> = d.destinations().iter().map(|&t| u64::from(t)).collect();
    check_level(&tags, n, &mut Vec::new())
}

/// One level of the Theorem 1 recursion on raw tag vectors.
fn check_level(tags: &[u64], m: u32, path: &mut Vec<Half>) -> Result<(), FViolation> {
    if m == 1 {
        // B(1): the two tags must be {0, 1}; the switch then delivers them
        // regardless of which is on top.
        debug_assert_eq!(tags.len(), 2);
        if tags[0] ^ tags[1] == 1 && tags[0] <= 1 {
            return Ok(());
        }
        return Err(FViolation {
            path: path.clone(),
            half: Half::Upper,
            duplicate_tag: tags[0],
            level: 1,
        });
    }
    let half = tags.len() / 2;
    let mut upper = Vec::with_capacity(half);
    let mut lower = Vec::with_capacity(half);
    for i in 0..half {
        let t0 = tags[2 * i];
        let t1 = tags[2 * i + 1];
        // Switch rule: state = bit 0 of the upper input's tag. State 0
        // sends the upper input up; state 1 sends it down.
        let (u, l) = if bit(t0, 0) == 0 { (t0, t1) } else { (t1, t0) };
        upper.push(u >> 1);
        lower.push(l >> 1);
    }
    for (half_id, vec) in [(Half::Upper, &upper), (Half::Lower, &lower)] {
        if let Some(dup) = first_duplicate(vec, m - 1) {
            return Err(FViolation {
                path: path.clone(),
                half: half_id,
                duplicate_tag: dup,
                level: m,
            });
        }
    }
    path.push(Half::Upper);
    check_level(&upper, m - 1, path)?;
    path.pop();
    path.push(Half::Lower);
    check_level(&lower, m - 1, path)?;
    path.pop();
    Ok(())
}

/// Returns a duplicated (or out-of-range) value if `v` is not a permutation
/// of `0..2^m`.
fn first_duplicate(v: &[u64], m: u32) -> Option<u64> {
    let mut seen = vec![false; 1 << m];
    for &t in v {
        match seen.get_mut(t as usize) {
            Some(slot) if !*slot => *slot = true,
            _ => return Some(t),
        }
    }
    None
}

/// Decides `D ∈ F(n)` by building `B(n)` and running the self-routing
/// simulation — an implementation independent of the Theorem 1 recursion.
///
/// Returns `false` if the permutation length is not a power of two.
///
/// Prefer [`is_in_f`] in hot paths (no network allocation); prefer
/// [`Benes::self_route`] directly when the network object already exists.
#[must_use]
pub fn is_in_f_by_simulation(d: &Permutation) -> bool {
    let Some(n) = d.log2_len() else { return false };
    if n == 0 {
        return true;
    }
    Benes::new(n).self_route(d).is_success()
}

#[cfg(test)]
mod tests {
    use super::*;
    use benes_perm::bpc::Bpc;
    use benes_perm::omega::{cyclic_shift, is_inverse_omega, is_omega, p_ordering_shift};

    fn all_perms(len: u32) -> Vec<Permutation> {
        fn rec(rem: &mut Vec<u32>, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if rem.is_empty() {
                out.push(cur.clone());
                return;
            }
            for idx in 0..rem.len() {
                let v = rem.remove(idx);
                cur.push(v);
                rec(rem, cur, out);
                cur.pop();
                rem.insert(idx, v);
            }
        }
        let mut out = Vec::new();
        rec(&mut (0..len).collect(), &mut Vec::new(), &mut out);
        out.into_iter().map(|d| Permutation::from_destinations(d).unwrap()).collect()
    }

    #[test]
    fn recursion_and_simulation_agree_exhaustively_n2() {
        for d in all_perms(4) {
            assert_eq!(is_in_f(&d), is_in_f_by_simulation(&d), "D = {d}");
        }
    }

    #[test]
    fn recursion_and_simulation_agree_exhaustively_n3() {
        for d in all_perms(8) {
            assert_eq!(is_in_f(&d), is_in_f_by_simulation(&d), "D = {d}");
        }
    }

    #[test]
    fn fig5_violation_is_located() {
        let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
        let v = check_f(&d).unwrap_err();
        // Stage 0: switch 0 sees D_0 = 1 (bit 0 = 1, cross): U_0 = D_1 = 3,
        // L_0 = 1. Switch 1 sees D_2 = 2 (straight): U_1 = 2, L_1 = 0.
        // U = (3, 2) → high bits (1, 1): duplicate tag 1 in the upper half.
        assert_eq!(v.half, Half::Upper);
        assert_eq!(v.duplicate_tag, 1);
        assert_eq!(v.level, 2);
        assert!(v.path.is_empty());
        assert_eq!(
            v.to_string(),
            "not in F: at level B(2), upper subnetwork receives tag 1 twice (path: root)"
        );
    }

    #[test]
    fn theorem2_bpc_subset_f() {
        // Exhaustive at n = 2, 3 over Table I and random-ish BPC vectors.
        for n in [2u32, 3, 4] {
            let mut cases = vec![
                Bpc::identity(n),
                Bpc::bit_reversal(n),
                Bpc::vector_reversal(n),
                Bpc::perfect_shuffle(n),
                Bpc::unshuffle(n),
            ];
            if n % 2 == 0 {
                cases.push(Bpc::matrix_transpose(n));
                cases.push(Bpc::shuffled_row_major(n));
                cases.push(Bpc::bit_shuffle(n));
            }
            for b in cases {
                assert!(is_in_f(&b.to_permutation()), "BPC {b} not in F({n})");
            }
        }
    }

    #[test]
    fn theorem2_exhaustive_n3() {
        // Every one of the 2^3 · 3! = 48 BPC(3) permutations is in F(3).
        let mut count = 0;
        for d in all_perms(8) {
            if Bpc::from_permutation(&d).is_some() {
                assert!(is_in_f(&d), "BPC perm {d} not in F(3)");
                count += 1;
            }
        }
        assert_eq!(count, 48);
    }

    #[test]
    fn theorem3_inverse_omega_subset_f() {
        // Exhaustive at n = 3: Ω⁻¹(3) ⊆ F(3).
        for d in all_perms(8) {
            if is_inverse_omega(&d) {
                assert!(is_in_f(&d), "Ω⁻¹ perm {d} not in F(3)");
            }
        }
    }

    #[test]
    fn omega_is_not_subset_of_f() {
        // Fig. 5's D ∈ Ω(2) ∖ F(2); count how many Ω(3) escape F(3).
        let escapees =
            all_perms(8).into_iter().filter(|d| is_omega(d) && !is_in_f(d)).count();
        assert!(escapees > 0, "some Ω permutations must lie outside F");
    }

    #[test]
    fn f_class_counts() {
        // |F(2)| = 20 of the 24 permutations of 4 elements. Derivation:
        // with input pairs {0,1}/{2,3} on the two stage-0 switches the tag
        // split always works (8 perms); with pairs {0,2}/{1,3} exactly one
        // ordering per switch pairing works (4 perms); with pairs
        // {0,3}/{1,2} every ordering works (8 perms). Note |Ω(2)| = 16:
        // the self-routing Benes class is strictly richer than omega.
        let f2 = all_perms(4).iter().filter(|d| is_in_f(d)).count();
        let f2_sim = all_perms(4).iter().filter(|d| is_in_f_by_simulation(d)).count();
        assert_eq!(f2, f2_sim);
        assert_eq!(f2, 20);
    }

    #[test]
    fn useful_inverse_omega_permutations_in_f() {
        for n in 2..8u32 {
            assert!(is_in_f(&cyclic_shift(n, 7)));
            assert!(is_in_f(&p_ordering_shift(n, 5, 2)));
        }
    }

    #[test]
    fn closure_counterexample() {
        // §II: A = (3,0,1,2) ∈ F(2), B = (0,1,3,2) ∈ F(2), A∘B ∉ F(2).
        let a = Permutation::from_destinations(vec![3, 0, 1, 2]).unwrap();
        let b = Permutation::from_destinations(vec![0, 1, 3, 2]).unwrap();
        assert!(is_in_f(&a));
        assert!(is_in_f(&b));
        let ab = a.then(&b);
        assert_eq!(ab.destinations(), &[2, 0, 1, 3]);
        assert!(!is_in_f(&ab));
    }

    #[test]
    fn non_power_of_two_rejected() {
        let d = Permutation::identity(6);
        assert!(!is_in_f(&d));
        assert!(!is_in_f_by_simulation(&d));
    }

    #[test]
    fn theorem4_within_blocks_in_f() {
        use benes_perm::partition::{within_blocks, JPartition};
        // J = {1} on n = 3; permute within blocks by members of F(2).
        let j = JPartition::new(3, [1]).unwrap();
        let f2_members: Vec<Permutation> =
            all_perms(4).into_iter().filter(is_in_f).collect();
        for g0 in &f2_members {
            for g1 in &f2_members {
                let g = within_blocks(&j, |b| if b == 0 { g0.clone() } else { g1.clone() })
                    .unwrap();
                assert!(is_in_f(&g), "Theorem 4 violated for ({g0}, {g1})");
            }
        }
    }

    #[test]
    fn theorem5_between_blocks_in_f() {
        use benes_perm::partition::{between_blocks, JPartition};
        let j = JPartition::new(3, [2]).unwrap(); // two blocks of 4
        let f2_members: Vec<Permutation> =
            all_perms(4).into_iter().filter(is_in_f).collect();
        let swap = Permutation::from_destinations(vec![1, 0]).unwrap();
        for block_map in [Permutation::identity(2), swap] {
            for g0 in f2_members.iter().take(6) {
                for g1 in f2_members.iter().take(6) {
                    let g = between_blocks(&j, &block_map, |b| {
                        if b == 0 {
                            g0.clone()
                        } else {
                            g1.clone()
                        }
                    })
                    .unwrap();
                    assert!(is_in_f(&g), "Theorem 5 violated");
                }
            }
        }
    }
}
