//! The circuit model of the Benes network: an immutable topology
//! ([`Benes`]) plus a separate switch-state assignment
//! ([`SwitchSettings`]).
//!
//! Keeping states separate from structure mirrors the hardware reality the
//! paper discusses: the wiring is fixed; what varies per permutation (and,
//! in pipelined mode, per clock) is the vector of switch states. It also
//! lets the external set-up path ([`crate::waksman`]) and the self-routing
//! path ([`crate::selfroute`]) share one routing engine.

use std::fmt;

use crate::topology;

/// The state of a binary switch (Fig. 2 of the paper).
///
/// * `Straight` (the paper's state **0**): upper input → upper output,
///   lower input → lower output.
/// * `Cross` (state **1**): upper input → lower output, lower input →
///   upper output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SwitchState {
    /// State 0: pass-through.
    #[default]
    Straight,
    /// State 1: exchange.
    Cross,
}

impl SwitchState {
    /// The state selected by a destination-tag bit (Fig. 3): bit 0 ⇒
    /// straight, bit 1 ⇒ cross.
    ///
    /// # Panics
    ///
    /// Panics if `bit > 1`.
    #[must_use]
    pub fn from_bit(bit: u64) -> Self {
        match bit {
            0 => Self::Straight,
            1 => Self::Cross,
            _ => panic!("switch control bit must be 0 or 1 (got {bit})"),
        }
    }

    /// The paper's numeric encoding: 0 for straight, 1 for cross.
    #[must_use]
    pub fn as_bit(self) -> u64 {
        match self {
            Self::Straight => 0,
            Self::Cross => 1,
        }
    }

    /// The opposite state.
    #[must_use]
    pub fn toggled(self) -> Self {
        match self {
            Self::Straight => Self::Cross,
            Self::Cross => Self::Straight,
        }
    }
}

impl fmt::Display for SwitchState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Straight => write!(f, "="),
            Self::Cross => write!(f, "x"),
        }
    }
}

/// A complete switch-state assignment for a `B(n)` network: one
/// [`SwitchState`] per switch in each of the `2n − 1` stages.
///
/// # Examples
///
/// ```
/// use benes_core::{SwitchSettings, SwitchState};
///
/// let mut s = SwitchSettings::all_straight(2);
/// s.set(1, 0, SwitchState::Cross);
/// assert_eq!(s.get(1, 0), SwitchState::Cross);
/// assert_eq!(s.cross_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SwitchSettings {
    n: u32,
    stages: Vec<Vec<SwitchState>>,
}

impl SwitchSettings {
    /// All switches in state 0 (straight) for a `B(n)` network.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range (see [`topology::MAX_N`]).
    #[must_use]
    pub fn all_straight(n: u32) -> Self {
        topology::validate_n(n);
        let stages = vec![
            vec![SwitchState::Straight; topology::switches_per_stage(n)];
            topology::stage_count(n)
        ];
        Self { n, stages }
    }

    /// The network order `n` these settings belong to.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The state of switch `switch` in stage `stage`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn get(&self, stage: usize, switch: usize) -> SwitchState {
        self.stages[stage][switch]
    }

    /// Sets the state of switch `switch` in stage `stage`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, stage: usize, switch: usize, state: SwitchState) {
        self.stages[stage][switch] = state;
    }

    /// The states of one stage, top to bottom.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    #[must_use]
    pub fn stage(&self, stage: usize) -> &[SwitchState] {
        &self.stages[stage]
    }

    /// The number of stages (`2n − 1`).
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The number of switches currently in the cross state.
    #[must_use]
    pub fn cross_count(&self) -> usize {
        self.stages
            .iter()
            .map(|st| st.iter().filter(|&&s| s == SwitchState::Cross).count())
            .sum()
    }

    /// The state bits of every switch, stage-major — the `N·log N − N/2`
    /// bits an SIMD set-up computation would return (§I of the paper).
    #[must_use]
    pub fn to_bits(&self) -> Vec<u64> {
        self.stages.iter().flat_map(|st| st.iter().map(|s| s.as_bit())).collect()
    }
}

/// Error produced when routing through a [`Benes`] network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// The input vector length did not match the terminal count.
    InputLength {
        /// Expected `N = 2^n`.
        expected: usize,
        /// Provided length.
        actual: usize,
    },
    /// The settings were built for a different network order.
    SettingsOrder {
        /// The network's `n`.
        network_n: u32,
        /// The settings' `n`.
        settings_n: u32,
    },
    /// The permutation length did not match the terminal count.
    PermutationLength {
        /// Expected `N = 2^n`.
        expected: usize,
        /// Provided length.
        actual: usize,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InputLength { expected, actual } => {
                write!(f, "input vector has length {actual}, network expects {expected}")
            }
            Self::SettingsOrder { network_n, settings_n } => {
                write!(f, "settings are for B({settings_n}), network is B({network_n})")
            }
            Self::PermutationLength { expected, actual } => {
                write!(f, "permutation has length {actual}, network expects {expected}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// An `N = 2^n` input/output Benes network: the immutable wiring of
/// Fig. 1, flattened to `2n − 1` stages.
///
/// Routing entry points:
///
/// * [`Benes::route_with`] — externally supplied [`SwitchSettings`]
///   (e.g. from [`crate::waksman::setup`]); realizes **all** `N!`
///   permutations;
/// * [`Benes::self_route`] (in [`crate::selfroute`]) — the paper's
///   destination-tag self-routing; realizes exactly the class `F(n)`;
/// * [`Benes::self_route_omega`] — the "omega bit" variant for `Ω(n)`.
///
/// # Examples
///
/// ```
/// use benes_core::Benes;
///
/// let net = Benes::new(4);
/// assert_eq!(net.terminal_count(), 16);
/// assert_eq!(net.stage_count(), 7);
/// assert_eq!(net.switch_count(), 16 * 4 - 8);
/// ```
#[derive(Debug, Clone)]
pub struct Benes {
    n: u32,
    links: Vec<Vec<u32>>,
}

impl Benes {
    /// Builds `B(n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > ` [`topology::MAX_N`].
    #[must_use]
    pub fn new(n: u32) -> Self {
        topology::validate_n(n);
        Self { n, links: topology::build_links(n) }
    }

    /// The network order `n`.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The number of input (and output) terminals, `N = 2^n`.
    #[must_use]
    pub fn terminal_count(&self) -> usize {
        topology::terminal_count(self.n)
    }

    /// The number of switch stages, `2n − 1`.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        topology::stage_count(self.n)
    }

    /// The number of switches per stage, `N/2`.
    #[must_use]
    pub fn switches_per_stage(&self) -> usize {
        topology::switches_per_stage(self.n)
    }

    /// The total number of binary switches, `N·log N − N/2`.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        topology::switch_count(self.n)
    }

    /// The destination-tag bit controlling `stage` under self-routing.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    #[must_use]
    pub fn control_bit(&self, stage: usize) -> u32 {
        topology::control_bit(self.n, stage)
    }

    /// The wiring permutation between `stage` and `stage + 1`: output port
    /// `p` of `stage` drives input port `link(stage)[p]` of the next
    /// stage.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= stage_count() − 1`.
    #[must_use]
    pub fn link(&self, stage: usize) -> &[u32] {
        &self.links[stage]
    }

    /// Routes `inputs` through the network with externally supplied switch
    /// settings; element `i` enters at terminal `i`.
    ///
    /// # Errors
    ///
    /// Returns an error if the input length or settings order mismatch.
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_core::{Benes, SwitchSettings, SwitchState};
    ///
    /// let net = Benes::new(1); // single switch
    /// let mut s = SwitchSettings::all_straight(1);
    /// assert_eq!(net.route_with(&s, &[10, 20])?, vec![10, 20]);
    /// s.set(0, 0, SwitchState::Cross);
    /// assert_eq!(net.route_with(&s, &[10, 20])?, vec![20, 10]);
    /// # Ok::<(), benes_core::network::NetworkError>(())
    /// ```
    pub fn route_with<T>(
        &self,
        settings: &SwitchSettings,
        inputs: &[T],
    ) -> Result<Vec<T>, NetworkError>
    where
        T: Clone,
    {
        if settings.n() != self.n {
            return Err(NetworkError::SettingsOrder {
                network_n: self.n,
                settings_n: settings.n(),
            });
        }
        if inputs.len() != self.terminal_count() {
            return Err(NetworkError::InputLength {
                expected: self.terminal_count(),
                actual: inputs.len(),
            });
        }
        let (out, _) = self.propagate(inputs.to_vec(), |s, i, _, _| settings.get(s, i));
        Ok(out)
    }

    /// The shared routing engine: pushes `inputs` through all stages,
    /// asking `decide` for each switch's state (it receives the stage,
    /// switch index and references to the two inputs). Returns the output
    /// terminal values and the settings that were applied.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != terminal_count()`; public entry points
    /// validate first.
    pub(crate) fn propagate<T>(
        &self,
        inputs: Vec<T>,
        mut decide: impl FnMut(usize, usize, &T, &T) -> SwitchState,
    ) -> (Vec<T>, SwitchSettings) {
        assert_eq!(inputs.len(), self.terminal_count(), "propagate: bad input length");
        let stages = self.stage_count();
        let mut settings = SwitchSettings::all_straight(self.n);
        let mut cur: Vec<Option<T>> = inputs.into_iter().map(Some).collect();
        for s in 0..stages {
            let mut out: Vec<Option<T>> = (0..cur.len()).map(|_| None).collect();
            for i in 0..cur.len() / 2 {
                let state = {
                    let a = cur[2 * i].as_ref().expect("port filled");
                    let b = cur[2 * i + 1].as_ref().expect("port filled");
                    decide(s, i, a, b)
                };
                settings.set(s, i, state);
                let a = cur[2 * i].take().expect("port filled");
                let b = cur[2 * i + 1].take().expect("port filled");
                match state {
                    SwitchState::Straight => {
                        out[2 * i] = Some(a);
                        out[2 * i + 1] = Some(b);
                    }
                    SwitchState::Cross => {
                        out[2 * i] = Some(b);
                        out[2 * i + 1] = Some(a);
                    }
                }
            }
            if s < stages - 1 {
                let link = &self.links[s];
                let mut next: Vec<Option<T>> = (0..out.len()).map(|_| None).collect();
                for (p, item) in out.into_iter().enumerate() {
                    next[link[p] as usize] = item;
                }
                cur = next;
            } else {
                cur = out;
            }
        }
        let outputs = cur.into_iter().map(|o| o.expect("every port filled")).collect();
        (outputs, settings)
    }

    /// The gate-delay cost of one traversal: one switch delay per stage,
    /// `2·log N − 1` in total. With self-routing this **is** the full
    /// set-up-plus-transit time (the paper's headline `O(log N)` claim).
    #[must_use]
    pub fn transit_delay(&self) -> usize {
        self.stage_count()
    }

    /// Replays a switch-state assignment and reports the permutation the
    /// network realizes under it: input `i` emerges at output
    /// `realized[i]`.
    ///
    /// This is the **settings-replay** entry point for plan caches and
    /// other serving layers: a [`SwitchSettings`] computed once (by
    /// [`crate::waksman::setup`], a self-routing pass, or deserialization)
    /// can be re-applied in a single `O(N log N)` transit with **zero**
    /// set-up work, and this method states exactly which permutation that
    /// replay performs.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::SettingsOrder`] if the settings were built
    /// for a different network order.
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_core::{waksman, Benes};
    /// use benes_perm::Permutation;
    ///
    /// let net = Benes::new(2);
    /// let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
    /// let settings = waksman::setup(&d).unwrap();
    /// // Replaying the cached settings realizes exactly `d` again.
    /// assert_eq!(net.realized_permutation(&settings)?, d);
    /// # Ok::<(), benes_core::network::NetworkError>(())
    /// ```
    pub fn realized_permutation(
        &self,
        settings: &SwitchSettings,
    ) -> Result<benes_perm::Permutation, NetworkError> {
        // analyze:allow(truncating-cast): terminal_count = 2^n ≤ 2^MAX_N
        let ids: Vec<u32> = (0..self.terminal_count() as u32).collect();
        let arrived = self.route_with(settings, &ids)?;
        // arrived[o] = input record at output o; the realized permutation
        // sends input i to the output where i surfaced.
        let mut dest = vec![0u32; arrived.len()];
        for (o, &i) in arrived.iter().enumerate() {
            dest[i as usize] = o as u32; // analyze:allow(truncating-cast): o < 2^MAX_N terminals
        }
        Ok(benes_perm::Permutation::from_destinations(dest)
            .expect("any switch assignment permutes the inputs"))
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for SwitchState {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_bit().serialize(serializer)
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for SwitchState {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match u64::deserialize(deserializer)? {
            0 => Ok(Self::Straight),
            1 => Ok(Self::Cross),
            other => Err(serde::de::Error::custom(format!(
                "switch state must be 0 or 1 (got {other})"
            ))),
        }
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for SwitchSettings {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (self.n, self.to_bits()).serialize(serializer)
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for SwitchSettings {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error;
        let (n, bits) = <(u32, Vec<u64>)>::deserialize(deserializer)?;
        if n == 0 || n > crate::topology::MAX_N {
            return Err(D::Error::custom(format!("network order {n} out of range")));
        }
        let expected = crate::topology::switch_count(n);
        if bits.len() != expected {
            return Err(D::Error::custom(format!(
                "expected {expected} switch bits for B({n}), got {}",
                bits.len()
            )));
        }
        let mut settings = SwitchSettings::all_straight(n);
        let per = crate::topology::switches_per_stage(n);
        for (idx, bit) in bits.into_iter().enumerate() {
            let state = match bit {
                0 => SwitchState::Straight,
                1 => SwitchState::Cross,
                other => {
                    return Err(D::Error::custom(format!(
                        "switch state must be 0 or 1 (got {other})"
                    )))
                }
            };
            settings.set(idx / per, idx % per, state);
        }
        Ok(settings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_state_encoding() {
        assert_eq!(SwitchState::from_bit(0), SwitchState::Straight);
        assert_eq!(SwitchState::from_bit(1), SwitchState::Cross);
        assert_eq!(SwitchState::Straight.as_bit(), 0);
        assert_eq!(SwitchState::Cross.as_bit(), 1);
        assert_eq!(SwitchState::Straight.toggled(), SwitchState::Cross);
        assert_eq!(SwitchState::default(), SwitchState::Straight);
    }

    #[test]
    #[should_panic(expected = "control bit")]
    fn switch_state_rejects_bad_bit() {
        let _ = SwitchState::from_bit(2);
    }

    #[test]
    fn settings_dimensions() {
        let s = SwitchSettings::all_straight(3);
        assert_eq!(s.stage_count(), 5);
        assert_eq!(s.stage(0).len(), 4);
        assert_eq!(s.cross_count(), 0);
        assert_eq!(s.to_bits().len(), 20);
    }

    #[test]
    fn all_straight_routes_identity() {
        for n in 1..6u32 {
            let net = Benes::new(n);
            let s = SwitchSettings::all_straight(n);
            let data: Vec<u32> = (0..net.terminal_count() as u32).collect();
            assert_eq!(net.route_with(&s, &data).unwrap(), data, "n = {n}");
        }
    }

    #[test]
    fn all_cross_routes_pair_swap_through_b1() {
        let net = Benes::new(1);
        let mut s = SwitchSettings::all_straight(1);
        s.set(0, 0, SwitchState::Cross);
        assert_eq!(net.route_with(&s, &['a', 'b']).unwrap(), vec!['b', 'a']);
    }

    #[test]
    fn single_cross_in_first_stage_of_b2() {
        // Crossing stage-0 switch 0 of B(2) swaps where inputs 0 and 1
        // travel; with all other switches straight the final outputs swap
        // exactly terminals 0 and... trace it: stage0 cross sends input 0
        // down the lower subnetwork and input 1 up.
        let net = Benes::new(2);
        let mut s = SwitchSettings::all_straight(2);
        s.set(0, 0, SwitchState::Cross);
        let out = net.route_with(&s, &[0u32, 1, 2, 3]).unwrap();
        // Input 0 → lower subnetwork input 0 → output port 1 of last
        // stage's switch 0... full trace gives [1, 0, 2, 3].
        assert_eq!(out, vec![1, 0, 2, 3]);
    }

    #[test]
    fn route_with_validates_lengths() {
        let net = Benes::new(2);
        let s = SwitchSettings::all_straight(2);
        assert_eq!(
            net.route_with(&s, &[1, 2, 3]),
            Err(NetworkError::InputLength { expected: 4, actual: 3 })
        );
        let wrong = SwitchSettings::all_straight(3);
        assert_eq!(
            net.route_with(&wrong, &[0, 1, 2, 3]),
            Err(NetworkError::SettingsOrder { network_n: 2, settings_n: 3 })
        );
    }

    #[test]
    fn routing_is_a_bijection_for_random_settings() {
        // Any switch assignment must permute the inputs (no loss, no dup).
        let net = Benes::new(4);
        let mut s = SwitchSettings::all_straight(4);
        // A deterministic "random" pattern.
        for stage in 0..s.stage_count() {
            for sw in 0..net.switches_per_stage() {
                if (stage * 7 + sw * 3) % 5 < 2 {
                    s.set(stage, sw, SwitchState::Cross);
                }
            }
        }
        let data: Vec<u32> = (0..16).collect();
        let mut out = net.route_with(&s, &data).unwrap();
        out.sort_unstable();
        assert_eq!(out, data);
    }

    #[test]
    fn realized_permutation_inverts_route_with() {
        // For a deterministic settings pattern, the realized permutation
        // must agree with what route_with actually does to the data.
        let net = Benes::new(3);
        let mut s = SwitchSettings::all_straight(3);
        for stage in 0..s.stage_count() {
            for sw in 0..net.switches_per_stage() {
                if (stage + 2 * sw) % 3 == 0 {
                    s.set(stage, sw, SwitchState::Cross);
                }
            }
        }
        let realized = net.realized_permutation(&s).unwrap();
        let data: Vec<u32> = (100..108).collect();
        let routed = net.route_with(&s, &data).unwrap();
        for (i, &d) in realized.destinations().iter().enumerate() {
            assert_eq!(routed[d as usize], data[i]);
        }
    }

    #[test]
    fn realized_permutation_checks_order() {
        let net = Benes::new(2);
        let s = SwitchSettings::all_straight(3);
        assert!(matches!(
            net.realized_permutation(&s),
            Err(NetworkError::SettingsOrder { network_n: 2, settings_n: 3 })
        ));
    }

    #[test]
    fn transit_delay_matches_stage_count() {
        for n in 1..8 {
            let net = Benes::new(n);
            assert_eq!(net.transit_delay(), 2 * n as usize - 1);
        }
    }
}
