//! The paper's self-routing scheme (§I, Fig. 3), including the "omega bit"
//! variant of §II and payload-carrying routing.
//!
//! Every input carries a `log N`-bit **destination tag**. A switch in stage
//! `b` or stage `2n−2−b` examines **bit `b` of the tag on its upper input**
//! and sets itself to that state: bit 0 ⇒ straight, bit 1 ⇒ cross. No
//! global set-up computation happens; the total delay is one switch delay
//! per stage, `2·log N − 1`.
//!
//! Not every permutation routes correctly this way — the class that does
//! is `F(n)` (see [`crate::class_f`]). [`SelfRouteOutcome`] reports both
//! the realized mapping and whether it matched the requested permutation.
//!
//! The **omega bit** extension (§II, after Theorem 3): when asserted, every
//! switch in stages `0..n−1` forces itself straight, and only the last `n`
//! stages (which form an omega network) self-route. This realizes every
//! `Ω(n)` permutation, including those outside `F(n)` such as the paper's
//! Fig. 5 example.
//!
//! Two forms of each kernel exist. The switch-at-a-time walk in this module
//! ([`Benes::self_route`], [`Benes::self_route_omega`]) materializes the
//! full [`SelfRouteOutcome`] (arrival tags **and** settings) and serves as
//! the reference oracle. The word-parallel form ([`Benes::self_route_fast`],
//! [`Benes::self_route_omega_fast`], backed by [`crate::word`]) computes
//! whole switch columns as `u64` masks and is what the engine's hot path
//! uses; exhaustive and property-based tests pin the two to bit-identical
//! agreement.

use benes_perm::Permutation;

use crate::network::{Benes, NetworkError, SwitchSettings, SwitchState};

/// The result of a self-routing attempt.
///
/// # Examples
///
/// ```
/// use benes_core::Benes;
/// use benes_perm::Permutation;
///
/// let net = Benes::new(2);
/// // Fig. 5 of the paper: D = (1, 3, 2, 0) does NOT self-route.
/// let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
/// let outcome = net.self_route(&d);
/// assert!(!outcome.is_success());
/// assert_eq!(outcome.misrouted(), vec![(0, 2), (2, 0)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfRouteOutcome {
    outputs: Vec<u32>,
    settings: SwitchSettings,
}

impl SelfRouteOutcome {
    pub(crate) fn new(outputs: Vec<u32>, settings: SwitchSettings) -> Self {
        Self { outputs, settings }
    }

    /// The destination tag that arrived at each output terminal.
    ///
    /// Routing succeeded iff `outputs()[o] == o` for every terminal `o`.
    #[must_use]
    pub fn outputs(&self) -> &[u32] {
        &self.outputs
    }

    /// The switch states the network chose for itself.
    #[must_use]
    pub fn settings(&self) -> &SwitchSettings {
        &self.settings
    }

    /// Whether every tag reached the output terminal it names.
    #[must_use]
    pub fn is_success(&self) -> bool {
        // analyze:allow(truncating-cast): o indexes ≤ 2^MAX_N terminals
        self.outputs.iter().enumerate().all(|(o, &t)| o as u32 == t)
    }

    /// The misrouted terminals as `(output, arrived_tag)` pairs (empty on
    /// success).
    #[must_use]
    pub fn misrouted(&self) -> Vec<(usize, u32)> {
        self.outputs
            .iter()
            .enumerate()
            // analyze:allow(truncating-cast): o indexes ≤ 2^MAX_N terminals
            .filter(|&(o, &t)| o as u32 != t)
            .map(|(o, &t)| (o, t))
            .collect()
    }

    /// Consumes the outcome, returning `(outputs, settings)`.
    #[must_use]
    pub fn into_parts(self) -> (Vec<u32>, SwitchSettings) {
        (self.outputs, self.settings)
    }
}

impl Benes {
    /// Self-routes the permutation `perm`: input `i` carries tag
    /// `perm[i]`, every switch sets itself by the Fig. 3 rule, and the
    /// arrival tags are reported.
    ///
    /// Succeeds (tags arrive at their named outputs) iff `perm ∈ F(n)`.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != terminal_count()`; use
    /// [`Benes::try_self_route`] for a fallible version.
    #[must_use]
    pub fn self_route(&self, perm: &Permutation) -> SelfRouteOutcome {
        self.try_self_route(perm).expect("permutation length must match network")
    }

    /// Fallible [`Benes::self_route`].
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::PermutationLength`] on a length mismatch.
    pub fn try_self_route(
        &self,
        perm: &Permutation,
    ) -> Result<SelfRouteOutcome, NetworkError> {
        if perm.len() != self.terminal_count() {
            return Err(NetworkError::PermutationLength {
                expected: self.terminal_count(),
                actual: perm.len(),
            });
        }
        let tags: Vec<u32> = perm.destinations().to_vec();
        let (outputs, settings) = self.propagate(tags, |s, _, upper, _| {
            SwitchState::from_bit(benes_bits::bit(u64::from(*upper), self.control_bit(s)))
        });
        Ok(SelfRouteOutcome::new(outputs, settings))
    }

    /// Self-routes with the **omega bit** asserted: stages `0..n−1` are
    /// forced straight; the last `n` stages self-route as usual.
    ///
    /// Succeeds iff `perm ∈ Ω(n)` (Lawrie's omega class) — including
    /// permutations outside `F(n)` such as the paper's Fig. 5 example.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != terminal_count()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_core::Benes;
    /// use benes_perm::Permutation;
    ///
    /// let net = Benes::new(2);
    /// let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
    /// assert!(!net.self_route(&d).is_success());     // not in F(2)
    /// assert!(net.self_route_omega(&d).is_success()); // but in Ω(2)
    /// ```
    #[must_use]
    pub fn self_route_omega(&self, perm: &Permutation) -> SelfRouteOutcome {
        self.try_self_route_omega(perm).expect("permutation length must match network")
    }

    /// Fallible [`Benes::self_route_omega`].
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::PermutationLength`] on a length mismatch.
    pub fn try_self_route_omega(
        &self,
        perm: &Permutation,
    ) -> Result<SelfRouteOutcome, NetworkError> {
        if perm.len() != self.terminal_count() {
            return Err(NetworkError::PermutationLength {
                expected: self.terminal_count(),
                actual: perm.len(),
            });
        }
        let forced_straight = self.n() as usize - 1; // stages 0..n−1
        let tags: Vec<u32> = perm.destinations().to_vec();
        let (outputs, settings) = self.propagate(tags, |s, _, upper, _| {
            if s < forced_straight {
                SwitchState::Straight
            } else {
                SwitchState::from_bit(benes_bits::bit(
                    u64::from(*upper),
                    self.control_bit(s),
                ))
            }
        });
        Ok(SelfRouteOutcome::new(outputs, settings))
    }

    /// Word-parallel [`Benes::self_route`]: the same Fig. 3 rule evaluated
    /// one switch *column* at a time as `u64` masks (see [`crate::word`]).
    ///
    /// Roughly an order of magnitude faster than the scalar walk; returns
    /// the compact [`crate::word::WordOutcome`] instead of a
    /// [`SelfRouteOutcome`].
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::PermutationLength`] on a length mismatch.
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_core::Benes;
    /// use benes_perm::bpc::Bpc;
    ///
    /// let net = Benes::new(3);
    /// let d = Bpc::bit_reversal(3).to_permutation();
    /// assert!(net.self_route_fast(&d).unwrap().is_success());
    /// ```
    pub fn self_route_fast(
        &self,
        perm: &Permutation,
    ) -> Result<crate::word::WordOutcome, NetworkError> {
        crate::word::self_route(self.n(), perm)
    }

    /// Word-parallel [`Benes::self_route_omega`] (see [`crate::word`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::PermutationLength`] on a length mismatch.
    pub fn self_route_omega_fast(
        &self,
        perm: &Permutation,
    ) -> Result<crate::word::WordOutcome, NetworkError> {
        crate::word::self_route_omega(self.n(), perm)
    }

    /// Self-routes arbitrary records: each `(tag, payload)` pair enters at
    /// its position's terminal and is switched by the tag alone, exactly
    /// as hardware would move `(destination, data)` words.
    ///
    /// Returns the records in output-terminal order together with the
    /// settings chosen. If the tag vector is a permutation in `F(n)` the
    /// payloads arrive permuted accordingly; otherwise some records
    /// surface at the wrong terminals (their tags say so).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InputLength`] if the record count is not
    /// `N`.
    ///
    /// # Examples
    ///
    /// ```
    /// use benes_core::Benes;
    ///
    /// let net = Benes::new(1);
    /// let out = net.self_route_records(vec![(1u32, "a"), (0u32, "b")])?;
    /// assert_eq!(out.0, vec![(0, "b"), (1, "a")]);
    /// # Ok::<(), benes_core::network::NetworkError>(())
    /// ```
    pub fn self_route_records<T>(
        &self,
        records: Vec<(u32, T)>,
    ) -> Result<(Vec<(u32, T)>, SwitchSettings), NetworkError> {
        if records.len() != self.terminal_count() {
            return Err(NetworkError::InputLength {
                expected: self.terminal_count(),
                actual: records.len(),
            });
        }
        Ok(self.propagate(records, |s, _, upper, _| {
            SwitchState::from_bit(benes_bits::bit(u64::from(upper.0), self.control_bit(s)))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benes_perm::bpc::Bpc;
    use benes_perm::omega::{cyclic_shift, p_ordering, segment_cyclic_shift};

    #[test]
    fn identity_self_routes_with_all_straight() {
        for n in 1..7u32 {
            let net = Benes::new(n);
            let outcome = net.self_route(&Permutation::identity(net.terminal_count()));
            assert!(outcome.is_success());
            assert_eq!(outcome.settings().cross_count(), 0);
        }
    }

    #[test]
    fn fig4_bit_reversal_on_b3() {
        // The paper's Fig. 4: bit reversal self-routes on B(3).
        let net = Benes::new(3);
        let perm = Bpc::bit_reversal(3).to_permutation();
        assert_eq!(perm.destinations(), &[0, 4, 2, 6, 1, 5, 3, 7]);
        let outcome = net.self_route(&perm);
        assert!(outcome.is_success());
        // Stage 0 states are bit 0 of the upper input tags D_0, D_2, D_4,
        // D_6 = 0, 2, 1, 3 → straight, straight, cross, cross.
        use SwitchState::{Cross, Straight};
        assert_eq!(outcome.settings().stage(0), &[Straight, Straight, Cross, Cross]);
        // Last stage states are bit 0 of the upper input tag of each final
        // switch; success means outputs are sorted 0..8.
        assert_eq!(outcome.outputs(), &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn fig5_failure_on_b2() {
        // The paper's Fig. 5: D = (1, 3, 2, 0) cannot self-route on B(2).
        let net = Benes::new(2);
        let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
        let outcome = net.self_route(&d);
        assert!(!outcome.is_success());
        // Trace by hand: stage 0 takes bit 0 of D_0 = 1 (cross) and of
        // D_2 = 2 (straight). Tags after stage 0: [3, 1, 2, 0]. Link
        // [0,2,1,3] → middle inputs [3, 2, 1, 0]. Middle (bit 1): switch 0
        // sees 3 (bit 1 = 1, cross) → [2, 3]; switch 1 sees 1 (bit 1 = 0,
        // straight) → [1, 0]. Link → [2, 1, 3, 0]. Last stage (bit 0):
        // switch 0 sees 2 (straight) → [2, 1]; switch 1 sees 3 (cross) →
        // [0, 3]. Outputs: [2, 1, 0, 3].
        assert_eq!(outcome.outputs(), &[2, 1, 0, 3]);
        assert_eq!(outcome.misrouted(), vec![(0, 2), (2, 0)]);
    }

    #[test]
    fn all_table1_bpc_permutations_self_route() {
        for n in [2u32, 4, 6] {
            let net = Benes::new(n);
            for (name, b) in [
                ("transpose", Bpc::matrix_transpose(n)),
                ("bit reversal", Bpc::bit_reversal(n)),
                ("vector reversal", Bpc::vector_reversal(n)),
                ("perfect shuffle", Bpc::perfect_shuffle(n)),
                ("unshuffle", Bpc::unshuffle(n)),
                ("shuffled row major", Bpc::shuffled_row_major(n)),
                ("bit shuffle", Bpc::bit_shuffle(n)),
            ] {
                let outcome = net.self_route(&b.to_permutation());
                assert!(outcome.is_success(), "{name} failed on B({n})");
            }
        }
    }

    #[test]
    fn inverse_omega_permutations_self_route() {
        for n in 2..7u32 {
            let net = Benes::new(n);
            for d in [
                cyclic_shift(n, 3),
                cyclic_shift(n, -1),
                p_ordering(n, 3),
                segment_cyclic_shift(n, 1.max(n - 1), 2),
            ] {
                assert!(net.self_route(&d).is_success(), "n = {n}");
            }
        }
    }

    #[test]
    fn omega_bit_realizes_omega_permutations() {
        // Ω(2) = 16 permutations; all must route with the omega bit, and
        // exactly the Ω ones succeed.
        let net = Benes::new(2);
        let mut succeeded = 0;
        for d in all_perms(4) {
            let ok = net.self_route_omega(&d).is_success();
            assert_eq!(ok, benes_perm::omega::is_omega(&d), "D = {d}");
            if ok {
                succeeded += 1;
            }
        }
        assert_eq!(succeeded, 16);
    }

    #[test]
    fn omega_bit_forces_first_stages_straight() {
        let net = Benes::new(3);
        let d = cyclic_shift(3, 5);
        let outcome = net.self_route_omega(&d);
        for s in 0..2 {
            assert!(outcome
                .settings()
                .stage(s)
                .iter()
                .all(|&st| st == SwitchState::Straight));
        }
    }

    #[test]
    fn records_carry_payloads() {
        let net = Benes::new(3);
        let perm = Bpc::vector_reversal(3).to_permutation();
        let records: Vec<(u32, String)> = perm
            .destinations()
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, format!("payload-{i}")))
            .collect();
        let (out, _) = net.self_route_records(records).unwrap();
        for (o, (tag, payload)) in out.iter().enumerate() {
            assert_eq!(*tag, o as u32);
            // Vector reversal: output o receives input N−1−o.
            assert_eq!(payload, &format!("payload-{}", 7 - o));
        }
    }

    #[test]
    fn length_mismatch_is_reported() {
        let net = Benes::new(2);
        let d = Permutation::identity(8);
        assert_eq!(
            net.try_self_route(&d),
            Err(NetworkError::PermutationLength { expected: 4, actual: 8 })
        );
        assert!(net.self_route_records(vec![(0u32, ())]).is_err());
    }

    #[test]
    fn settings_follow_the_upper_input_rule() {
        // Re-derive every switch state from the trace invariant: the state
        // equals the control bit of the upper input's tag. We verify by
        // re-routing with the captured settings and getting identical
        // outputs.
        let net = Benes::new(4);
        let perm = Bpc::bit_reversal(4).to_permutation();
        let outcome = net.self_route(&perm);
        let replay = net.route_with(outcome.settings(), perm.destinations()).unwrap();
        assert_eq!(replay, outcome.outputs());
    }

    fn all_perms(len: u32) -> Vec<Permutation> {
        fn rec(rem: &mut Vec<u32>, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if rem.is_empty() {
                out.push(cur.clone());
                return;
            }
            for idx in 0..rem.len() {
                let v = rem.remove(idx);
                cur.push(v);
                rec(rem, cur, out);
                cur.pop();
                rem.insert(idx, v);
            }
        }
        let mut out = Vec::new();
        rec(&mut (0..len).collect(), &mut Vec::new(), &mut out);
        out.into_iter().map(|d| Permutation::from_destinations(d).unwrap()).collect()
    }
}
