//! Full route traces: the per-stage tag snapshots behind the paper's
//! Figs. 4 and 5.
//!
//! A [`RouteTrace`] records, for one routing attempt, the destination tag
//! sitting on every input port of every stage, the state every switch
//! assumed, and the tags that finally surfaced at the output terminals.
//! [`crate::render::render_trace`] turns it into the figure-style text.

use benes_perm::Permutation;

use crate::faults::FaultSet;
use crate::network::{Benes, NetworkError, SwitchSettings, SwitchState};

/// How the switches were controlled during a traced route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// The paper's self-routing rule (Fig. 3).
    SelfRouting,
    /// Self-routing with the omega bit asserted (first `n−1` stages forced
    /// straight).
    OmegaBit,
    /// Externally supplied settings.
    External,
}

/// A complete record of one pass through the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTrace {
    n: u32,
    mode: TraceMode,
    stage_inputs: Vec<Vec<u32>>,
    settings: SwitchSettings,
    outputs: Vec<u32>,
}

impl RouteTrace {
    /// Traces a self-routed pass of `perm` through `net`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::PermutationLength`] on a length mismatch.
    pub fn capture_self_route(
        net: &Benes,
        perm: &Permutation,
    ) -> Result<Self, NetworkError> {
        Self::capture(net, perm, TraceMode::SelfRouting, None, None)
    }

    /// Traces an omega-bit pass of `perm` through `net`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::PermutationLength`] on a length mismatch.
    pub fn capture_omega(net: &Benes, perm: &Permutation) -> Result<Self, NetworkError> {
        Self::capture(net, perm, TraceMode::OmegaBit, None, None)
    }

    /// Traces a self-routed pass over the **faulty** fabric: healthy
    /// switches obey the tag rule, faulty switches follow their fault.
    /// This is the flight-recorder hook — the engine captures exactly
    /// what a failed request saw, stage by stage.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::PermutationLength`] on a length mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `faults.n() != net.n()` (matching the other
    /// fault-overlay entry points in [`crate::faults`]).
    pub fn capture_self_route_with_faults(
        net: &Benes,
        perm: &Permutation,
        faults: &FaultSet,
    ) -> Result<Self, NetworkError> {
        assert_eq!(faults.n(), net.n(), "fault set order must match the network");
        Self::capture(net, perm, TraceMode::SelfRouting, None, Some(faults))
    }

    /// Traces an omega-bit pass over the faulty fabric.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::PermutationLength`] on a length mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `faults.n() != net.n()`.
    pub fn capture_omega_with_faults(
        net: &Benes,
        perm: &Permutation,
        faults: &FaultSet,
    ) -> Result<Self, NetworkError> {
        assert_eq!(faults.n(), net.n(), "fault set order must match the network");
        Self::capture(net, perm, TraceMode::OmegaBit, None, Some(faults))
    }

    /// Traces a pass with externally supplied settings over the faulty
    /// fabric (every faulty switch overrides its commanded state).
    ///
    /// # Errors
    ///
    /// Returns an error on a length or settings-order mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `faults.n() != net.n()`.
    pub fn capture_external_with_faults(
        net: &Benes,
        perm: &Permutation,
        settings: &SwitchSettings,
        faults: &FaultSet,
    ) -> Result<Self, NetworkError> {
        assert_eq!(faults.n(), net.n(), "fault set order must match the network");
        if settings.n() != net.n() {
            return Err(NetworkError::SettingsOrder {
                network_n: net.n(),
                settings_n: settings.n(),
            });
        }
        Self::capture(net, perm, TraceMode::External, Some(settings), Some(faults))
    }

    /// Traces a pass of `perm`'s tags with externally supplied settings.
    ///
    /// # Errors
    ///
    /// Returns an error on a length or settings-order mismatch.
    pub fn capture_external(
        net: &Benes,
        perm: &Permutation,
        settings: &SwitchSettings,
    ) -> Result<Self, NetworkError> {
        if settings.n() != net.n() {
            return Err(NetworkError::SettingsOrder {
                network_n: net.n(),
                settings_n: settings.n(),
            });
        }
        Self::capture(net, perm, TraceMode::External, Some(settings), None)
    }

    fn capture(
        net: &Benes,
        perm: &Permutation,
        mode: TraceMode,
        external: Option<&SwitchSettings>,
        faults: Option<&FaultSet>,
    ) -> Result<Self, NetworkError> {
        if perm.len() != net.terminal_count() {
            return Err(NetworkError::PermutationLength {
                expected: net.terminal_count(),
                actual: perm.len(),
            });
        }
        let stages = net.stage_count();
        let mut stage_inputs: Vec<Vec<u32>> = vec![vec![0; net.terminal_count()]; stages];
        let forced_straight = match mode {
            TraceMode::OmegaBit => net.n() as usize - 1,
            _ => 0,
        };
        let tags: Vec<u32> = perm.destinations().to_vec();
        let (outputs, settings) = net.propagate(tags, |s, i, upper, lower| {
            stage_inputs[s][2 * i] = *upper;
            stage_inputs[s][2 * i + 1] = *lower;
            let commanded = match (mode, external) {
                (TraceMode::External, Some(ext)) => ext.get(s, i),
                _ if s < forced_straight => SwitchState::Straight,
                _ => SwitchState::from_bit(benes_bits::bit(
                    u64::from(*upper),
                    net.control_bit(s),
                )),
            };
            match faults {
                Some(f) => f.effective_state(s, i, commanded),
                None => commanded,
            }
        });
        Ok(Self { n: net.n(), mode, stage_inputs, settings, outputs })
    }

    /// The network order `n`.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// How the switches were controlled.
    #[must_use]
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// The tags on the input ports of `stage` (port-major, i.e. switch
    /// `i`'s inputs are entries `2i` and `2i+1`).
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    #[must_use]
    pub fn stage_input(&self, stage: usize) -> &[u32] {
        &self.stage_inputs[stage]
    }

    /// The states every switch assumed.
    #[must_use]
    pub fn settings(&self) -> &SwitchSettings {
        &self.settings
    }

    /// The tags that surfaced at the output terminals.
    #[must_use]
    pub fn outputs(&self) -> &[u32] {
        &self.outputs
    }

    /// Whether every tag reached its named output.
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.outputs.iter().enumerate().all(|(o, &t)| o as u32 == t)
    }

    /// The misrouted `(output, arrived_tag)` pairs.
    #[must_use]
    pub fn misrouted(&self) -> Vec<(usize, u32)> {
        self.outputs
            .iter()
            .enumerate()
            .filter(|&(o, &t)| o as u32 != t)
            .map(|(o, &t)| (o, t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benes_perm::bpc::Bpc;

    #[test]
    fn trace_matches_plain_self_route() {
        let net = Benes::new(3);
        let perm = Bpc::bit_reversal(3).to_permutation();
        let trace = RouteTrace::capture_self_route(&net, &perm).unwrap();
        let outcome = net.self_route(&perm);
        assert_eq!(trace.outputs(), outcome.outputs());
        assert_eq!(trace.settings(), outcome.settings());
        assert!(trace.is_success());
    }

    #[test]
    fn fig4_stage0_tags_are_the_permutation() {
        let net = Benes::new(3);
        let perm = Bpc::bit_reversal(3).to_permutation();
        let trace = RouteTrace::capture_self_route(&net, &perm).unwrap();
        assert_eq!(trace.stage_input(0), perm.destinations());
    }

    #[test]
    fn fig5_trace_reproduces_failure() {
        let net = Benes::new(2);
        let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
        let trace = RouteTrace::capture_self_route(&net, &d).unwrap();
        assert!(!trace.is_success());
        assert_eq!(trace.stage_input(0), &[1, 3, 2, 0]);
        // After stage 0 (cross, straight) and the link: middle sees
        // [3, 2, 1, 0].
        assert_eq!(trace.stage_input(1), &[3, 2, 1, 0]);
        assert_eq!(trace.outputs(), &[2, 1, 0, 3]);
    }

    #[test]
    fn omega_trace_forces_straight_stages() {
        let net = Benes::new(3);
        let d = benes_perm::omega::cyclic_shift(3, 1);
        let trace = RouteTrace::capture_omega(&net, &d).unwrap();
        assert_eq!(trace.mode(), TraceMode::OmegaBit);
        for s in 0..2 {
            assert!(trace
                .settings()
                .stage(s)
                .iter()
                .all(|&st| st == SwitchState::Straight));
        }
        assert!(trace.is_success());
    }

    #[test]
    fn external_trace_replays_waksman() {
        let net = Benes::new(3);
        let d = Permutation::from_destinations(vec![5, 2, 7, 0, 1, 6, 3, 4]).unwrap();
        let settings = crate::waksman::setup(&d).unwrap();
        let trace = RouteTrace::capture_external(&net, &d, &settings).unwrap();
        assert!(trace.is_success());
        assert_eq!(trace.settings(), &settings);
    }

    #[test]
    fn length_mismatch_rejected() {
        let net = Benes::new(2);
        let d = Permutation::identity(8);
        assert!(RouteTrace::capture_self_route(&net, &d).is_err());
    }
}
