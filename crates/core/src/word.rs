//! Word-parallel (bit-sliced) self-routing kernels.
//!
//! The scalar kernels in [`crate::selfroute`] walk the network one switch at
//! a time: per stage, per switch, extract the upper tag's control bit,
//! branch, and move two tags. This module computes **whole switch columns at
//! once** as `u64` masks, in the style of SNIPPETS.md snippet 1's
//! `benes_step`: settings become mask words, and applying a column is a
//! handful of shifts/XORs per destination-bit plane instead of `N/2`
//! branches.
//!
//! # Flattened coordinates
//!
//! The trick that makes this cheap is a change of coordinates. Conjugating
//! the network by the composed inter-stage links "flattens" it into a
//! butterfly: tracking each stage-0 input position forward through the links
//! alone (ignoring switches), stage `s` always pairs flattened positions
//! that differ in exactly bit `δ(s) = control_bit(s) = min(s, 2n−2−s)`, with
//! the physical **upper** input of each switch sitting at the flattened
//! position whose bit `δ(s)` is *clear*. Moreover the composition of **all**
//! links is the identity (the closing links mirror-invert the opening ones),
//! so after the last column the flattened positions *are* the physical
//! output terminals. Consequently the kernel needs **no link permutations at
//! all** — just one masked delta-swap per stage per bit plane. The
//! `flattened_pairing_is_control_bit` test verifies this structural claim
//! against [`Benes::link`] for every order up to `B(8)`.
//!
//! # Representation
//!
//! A routing state is `n` **bit planes** of `N = 2^n` bits each, packed into
//! `W = max(1, N/64)` words per plane: bit `p` of plane `b` holds bit `b` of
//! the destination tag currently at flattened position `p`. Stage `s` with
//! pairing distance `d = 2^{δ(s)}` then reads its whole cross-mask from
//! plane `δ(s)` (the upper input's control bit, for every switch at once),
//! overlays any stuck/dead fault masks, and applies the column with
//! [`benes_bits::delta_swap`] (intra-word for `d < 64`, word-pair XOR
//! otherwise).
//!
//! The scalar kernels remain the **oracle**: exhaustive `B(2)`/`B(3)` and
//! property-based `B(4..8)` tests assert output- and settings-level
//! agreement on healthy and faulty fabrics.
//!
//! # Examples
//!
//! ```
//! use benes_core::word;
//! use benes_perm::bpc::Bpc;
//!
//! // Fig. 4 of the paper: bit reversal self-routes on B(3).
//! let d = Bpc::bit_reversal(3).to_permutation();
//! let outcome = word::self_route(3, &d).unwrap();
//! assert!(outcome.is_success());
//! assert_eq!(outcome.outputs(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
//! ```

use benes_perm::Permutation;

use crate::faults::FaultSet;
use crate::network::{Benes, NetworkError, SwitchSettings, SwitchState};
use crate::topology;

/// Words per bit plane for an order-`n` network.
#[inline]
fn word_count(n: u32) -> usize {
    let size = 1usize << n;
    size.div_ceil(64)
}

/// The identity pattern for plane `b`, word `w`: bit `p` set iff bit `b` of
/// the global position `64·w + p` is set. Tags sitting at their own index
/// produce exactly these planes.
#[inline]
fn identity_plane_word(n: u32, b: u32, w: usize) -> u64 {
    let pattern = if b < 6 {
        !benes_bits::delta_mask(b)
    } else if (w >> (b - 6)) & 1 == 1 {
        u64::MAX
    } else {
        0
    };
    if n < 6 {
        pattern & benes_bits::mask(1 << n)
    } else {
        pattern
    }
}

/// Per-stage fault overlay masks in flattened upper-position coordinates.
#[derive(Clone, Default)]
struct StageFaults {
    /// Upper positions whose switch is stuck (either way): commanded bit is
    /// ignored there.
    stuck: Vec<u64>,
    /// Upper positions stuck at Cross.
    stuck_cross: Vec<u64>,
    /// Upper positions whose switch is dead: commanded bit is complemented.
    dead: Vec<u64>,
    /// Whether this stage has any fault at all (fast skip).
    any: bool,
}

/// The result of a word-parallel self-routing pass.
///
/// Holds the final bit planes (in flattened coordinates, which after the
/// last stage coincide with physical output terminals) plus the per-stage
/// cross-masks actually applied, so the realized [`SwitchSettings`] can be
/// recovered for oracle comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordOutcome {
    n: u32,
    words: usize,
    planes: Vec<u64>,
    stage_cross: Vec<u64>,
}

impl WordOutcome {
    /// The network order `n` this outcome was computed for.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// `true` iff every destination tag arrived at its own output terminal.
    ///
    /// Checked directly against the constant identity bit patterns — no
    /// unpacking, `n · W` word compares.
    #[must_use]
    pub fn is_success(&self) -> bool {
        for b in 0..self.n {
            let base = b as usize * self.words;
            for w in 0..self.words {
                if self.planes[base + w] != identity_plane_word(self.n, b, w) {
                    return false;
                }
            }
        }
        true
    }

    /// Unpacks the planes: `outputs()[terminal]` is the destination tag that
    /// arrived at that output terminal.
    #[must_use]
    pub fn outputs(&self) -> Vec<u32> {
        let size = 1usize << self.n;
        let mut out = vec![0u32; size];
        for b in 0..self.n {
            let base = b as usize * self.words;
            for w in 0..self.words {
                let mut word = self.planes[base + w];
                while word != 0 {
                    let p = word.trailing_zeros() as usize;
                    out[(w << 6) | p] |= 1 << b;
                    word &= word - 1;
                }
            }
        }
        out
    }

    /// Recovers the realized [`SwitchSettings`] by mapping each stage's
    /// flattened cross-mask back to physical switch indices via `net`'s
    /// links. Intended for oracle comparison against the scalar kernels.
    ///
    /// # Errors
    ///
    /// [`NetworkError::SettingsOrder`] if `net` is of a different order.
    pub fn settings(&self, net: &Benes) -> Result<SwitchSettings, NetworkError> {
        if net.n() != self.n {
            return Err(NetworkError::SettingsOrder {
                network_n: net.n(),
                settings_n: self.n,
            });
        }
        let size = 1usize << self.n;
        let stages = 2 * self.n as usize - 1;
        let mut settings = SwitchSettings::all_straight(self.n);
        // p2f[q] = flattened coordinate handled by physical port q at the
        // current stage; identity at stage 0, advanced by each link.
        let mut p2f: Vec<u32> = (0..size as u32).collect();
        for s in 0..stages {
            let cross = &self.stage_cross[s * self.words..(s + 1) * self.words];
            for i in 0..size / 2 {
                let u = p2f[2 * i] as usize;
                if (cross[u >> 6] >> (u & 63)) & 1 == 1 {
                    settings.set(s, i, SwitchState::Cross);
                }
            }
            if s + 1 < stages {
                p2f = advance(&p2f, net.link(s));
            }
        }
        Ok(settings)
    }
}

/// Advances the physical→flattened map across one inter-stage link: the
/// element at output port `p` arrives at input port `link[p]`.
fn advance(p2f: &[u32], link: &[u32]) -> Vec<u32> {
    let mut next = vec![0u32; p2f.len()];
    for (p, &f) in p2f.iter().enumerate() {
        next[link[p] as usize] = f;
    }
    next
}

/// Builds per-stage fault masks in flattened upper-position coordinates by
/// walking the physical→flattened map through the links once.
fn stage_fault_masks(net: &Benes, faults: &FaultSet) -> Vec<StageFaults> {
    let size = net.terminal_count();
    let words = word_count(net.n());
    let stages = net.stage_count();
    let mut out = vec![
        StageFaults {
            stuck: vec![0; words],
            stuck_cross: vec![0; words],
            dead: vec![0; words],
            any: false
        };
        stages
    ];
    let mut p2f: Vec<u32> = (0..size as u32).collect();
    for (s, masks) in out.iter_mut().enumerate() {
        for (_, switch, kind) in faults.iter().filter(|&(fs, _, _)| fs == s) {
            let u = p2f[2 * switch] as usize;
            let (w, bit) = (u >> 6, 1u64 << (u & 63));
            masks.any = true;
            match kind {
                crate::faults::FaultKind::StuckStraight => masks.stuck[w] |= bit,
                crate::faults::FaultKind::StuckCross => {
                    masks.stuck[w] |= bit;
                    masks.stuck_cross[w] |= bit;
                }
                crate::faults::FaultKind::Dead => masks.dead[w] |= bit,
            }
        }
        if s + 1 < stages {
            p2f = advance(&p2f, net.link(s));
        }
    }
    out
}

/// Packs one `≤ 64`-position chunk of destination tags into per-plane
/// accumulators. Branch-free — a data-dependent branch per position-bit
/// mispredicts ~half the time on permutation data and dominates the
/// whole kernel — and monomorphized per order so the plane loop unrolls.
#[inline]
fn pack_chunk<const NB: usize>(chunk: &[u32], acc: &mut [u64; MAX_PLANES]) {
    for (p, &v) in chunk.iter().enumerate() {
        let v = u64::from(v);
        for b in 0..NB {
            acc[b] |= ((v >> b) & 1) << p;
        }
    }
}

/// Upper bound on `n` for the unrolled packer (planes per accumulator
/// block); orders beyond it take the generic loop.
const MAX_PLANES: usize = 16;

/// Packs a destination permutation into `n` bit planes.
fn pack(n: u32, d: &Permutation) -> Vec<u64> {
    let words = word_count(n);
    let mut planes = vec![0u64; n as usize * words];
    let dests = d.destinations();
    for w in 0..words {
        let start = w << 6;
        let chunk = &dests[start..dests.len().min(start + 64)];
        let mut acc = [0u64; MAX_PLANES];
        if n <= 8 && chunk.len() == 64 {
            // Byte-gather fast path: tags fit in a byte, so eight of
            // them pack into one word and a mask-multiply-shift gathers
            // bit `b` of all eight at once (⌈5⌉ ops per position instead
            // of `n`).
            for g in 0..8usize {
                let mut eight = 0u64;
                for (k, &v) in chunk[g * 8..(g + 1) * 8].iter().enumerate() {
                    eight |= u64::from(v & 0xff) << (8 * k);
                }
                for (b, slot) in acc.iter_mut().enumerate().take(n as usize) {
                    let t = (eight >> b) & 0x0101_0101_0101_0101;
                    *slot |= (t.wrapping_mul(0x0102_0408_1020_4080) >> 56) << (8 * g);
                }
            }
            for (b, &a) in acc.iter().enumerate().take(n as usize) {
                planes[b * words + w] = a;
            }
            continue;
        }
        match n {
            1 => pack_chunk::<1>(chunk, &mut acc),
            2 => pack_chunk::<2>(chunk, &mut acc),
            3 => pack_chunk::<3>(chunk, &mut acc),
            4 => pack_chunk::<4>(chunk, &mut acc),
            5 => pack_chunk::<5>(chunk, &mut acc),
            6 => pack_chunk::<6>(chunk, &mut acc),
            7 => pack_chunk::<7>(chunk, &mut acc),
            8 => pack_chunk::<8>(chunk, &mut acc),
            9 => pack_chunk::<9>(chunk, &mut acc),
            10 => pack_chunk::<10>(chunk, &mut acc),
            11 => pack_chunk::<11>(chunk, &mut acc),
            12 => pack_chunk::<12>(chunk, &mut acc),
            13 => pack_chunk::<13>(chunk, &mut acc),
            14 => pack_chunk::<14>(chunk, &mut acc),
            15 => pack_chunk::<15>(chunk, &mut acc),
            16 => pack_chunk::<16>(chunk, &mut acc),
            _ => {
                for (p, &v) in chunk.iter().enumerate() {
                    let v = u64::from(v);
                    for (b, slot) in acc.iter_mut().enumerate().take(n as usize) {
                        *slot |= ((v >> b) & 1) << p;
                    }
                }
            }
        }
        for b in 0..(n as usize).min(MAX_PLANES) {
            planes[b * words + w] = acc[b];
        }
        // Orders past the accumulator width spill plane-by-plane.
        for b in MAX_PLANES..n as usize {
            let mut word = 0u64;
            for (p, &v) in chunk.iter().enumerate() {
                word |= ((u64::from(v) >> b) & 1) << p;
            }
            planes[b * words + w] = word;
        }
    }
    planes
}

/// The shared column-at-a-time routing pass.
fn route(
    n: u32,
    d: &Permutation,
    omega: bool,
    faults: Option<&[StageFaults]>,
) -> Result<WordOutcome, NetworkError> {
    assert!(n >= 1, "word kernels require n >= 1");
    let size = 1usize << n;
    if d.len() != size {
        return Err(NetworkError::PermutationLength { expected: size, actual: d.len() });
    }
    let words = word_count(n);
    let mut planes = pack(n, d);
    let stages = 2 * n as usize - 1;
    // Omega-bit variant (§II after Theorem 3): stages 0..n−1 forced straight.
    let forced_below = n as usize - 1;
    let mut stage_cross = vec![0u64; stages * words];
    for s in 0..stages {
        let c = topology::control_bit(n, s);
        let forced_straight = omega && s < forced_below;
        let sf = faults.and_then(|f| f[s].any.then_some(&f[s]));
        if forced_straight && sf.is_none() {
            // A healthy forced-straight column moves nothing: skip it.
            continue;
        }
        let cross = &mut stage_cross[s * words..(s + 1) * words];
        if !forced_straight {
            // Commanded mask: control bit of the upper input of every pair,
            // read for the whole column from plane δ(s).
            let plane_c = &planes[c as usize * words..(c as usize + 1) * words];
            if c < 6 {
                let m = benes_bits::delta_mask(c);
                for (cw, &pw) in cross.iter_mut().zip(plane_c) {
                    *cw = pw & m;
                }
            } else {
                for (w, (cw, &pw)) in cross.iter_mut().zip(plane_c).enumerate() {
                    *cw = if (w >> (c - 6)) & 1 == 0 { pw } else { 0 };
                }
            }
        }
        if let Some(f) = sf {
            // Stuck switches ignore the command, dead ones invert it.
            for (w, cw) in cross.iter_mut().enumerate() {
                *cw = ((*cw & !f.stuck[w]) | f.stuck_cross[w]) ^ f.dead[w];
            }
        }
        // Apply the column to every plane: one delta-swap per plane word.
        if c < 6 {
            let shift = 1u32 << c;
            for b in 0..n as usize {
                let base = b * words;
                for w in 0..words {
                    planes[base + w] =
                        benes_bits::delta_swap(planes[base + w], cross[w], shift);
                }
            }
        } else {
            // Pairs span words: partner word sits 2^(c-6) words higher.
            let half = 1usize << (c - 6);
            for b in 0..n as usize {
                let base = b * words;
                for wa in 0..words {
                    if (wa >> (c - 6)) & 1 == 0 {
                        let wb = wa + half;
                        let t = (planes[base + wa] ^ planes[base + wb]) & cross[wa];
                        planes[base + wa] ^= t;
                        planes[base + wb] ^= t;
                    }
                }
            }
        }
    }
    Ok(WordOutcome { n, words, planes, stage_cross })
}

/// Word-parallel self-routing of `d` through a healthy `B(n)`
/// (the fast form of [`Benes::try_self_route`](crate::network::Benes)).
///
/// # Errors
///
/// [`NetworkError::PermutationLength`] if `d.len() != 2^n`.
///
/// # Examples
///
/// ```
/// use benes_core::word;
/// use benes_perm::Permutation;
///
/// // Fig. 5 of the paper: D = (1, 3, 2, 0) does NOT self-route on B(2)…
/// let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
/// assert!(!word::self_route(2, &d).unwrap().is_success());
/// // …but it does with the omega bit asserted.
/// assert!(word::self_route_omega(2, &d).unwrap().is_success());
/// ```
pub fn self_route(n: u32, d: &Permutation) -> Result<WordOutcome, NetworkError> {
    route(n, d, false, None)
}

/// Word-parallel omega-bit self-routing: stages `0..n−1` forced straight,
/// the trailing omega half self-routes (realizes all of `Ω(n)`).
///
/// # Errors
///
/// [`NetworkError::PermutationLength`] if `d.len() != 2^n`.
pub fn self_route_omega(n: u32, d: &Permutation) -> Result<WordOutcome, NetworkError> {
    route(n, d, true, None)
}

/// Word-parallel self-routing over a faulty fabric: stuck/dead switches are
/// overlaid per stage as flattened masks (the word form of
/// [`crate::faults::self_route_with_faults`]).
///
/// # Panics
///
/// Panics if `faults` was built for a different order than `net`.
///
/// # Errors
///
/// [`NetworkError::PermutationLength`] if `d.len()` is not `net`'s terminal
/// count.
pub fn self_route_with_faults(
    net: &Benes,
    d: &Permutation,
    faults: &FaultSet,
) -> Result<WordOutcome, NetworkError> {
    assert_eq!(net.n(), faults.n(), "fault set order must match the network");
    route(net.n(), d, false, Some(&stage_fault_masks(net, faults)))
}

/// Word-parallel omega-bit self-routing over a faulty fabric.
///
/// Note that faults fire even in the forced-straight stages: a dead or
/// stuck-cross switch there still disturbs the column, exactly as in the
/// scalar [`crate::faults::self_route_omega_with_faults`].
///
/// # Panics
///
/// Panics if `faults` was built for a different order than `net`.
///
/// # Errors
///
/// [`NetworkError::PermutationLength`] if `d.len()` is not `net`'s terminal
/// count.
pub fn self_route_omega_with_faults(
    net: &Benes,
    d: &Permutation,
    faults: &FaultSet,
) -> Result<WordOutcome, NetworkError> {
    assert_eq!(net.n(), faults.n(), "fault set order must match the network");
    route(net.n(), d, true, Some(&stage_fault_masks(net, faults)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{self, FaultKind};

    /// The structural claim the whole module rests on: tracked through the
    /// links, stage `s` pairs flattened positions differing in exactly bit
    /// `control_bit(s)` (physical upper port = bit clear), and the
    /// composition of all links is the identity.
    #[test]
    fn flattened_pairing_is_control_bit() {
        for n in 1..=8u32 {
            let net = Benes::new(n);
            let size = net.terminal_count();
            let stages = net.stage_count();
            let mut p2f: Vec<u32> = (0..size as u32).collect();
            for s in 0..stages {
                let c = net.control_bit(s);
                for i in 0..size / 2 {
                    let upper = p2f[2 * i];
                    let lower = p2f[2 * i + 1];
                    assert_eq!(upper >> c & 1, 0, "B({n}) stage {s} switch {i}");
                    assert_eq!(lower, upper | (1 << c), "B({n}) stage {s} switch {i}");
                }
                if s + 1 < stages {
                    p2f = advance(&p2f, net.link(s));
                }
            }
            let identity: Vec<u32> = (0..size as u32).collect();
            assert_eq!(p2f, identity, "B({n}): links do not compose to identity");
        }
    }

    #[test]
    fn identity_plane_word_matches_definition() {
        for n in 1..=8u32 {
            let words = word_count(n);
            for b in 0..n {
                for w in 0..words {
                    let mut expected = 0u64;
                    for p in 0..64usize {
                        let pos = (w << 6) | p;
                        if pos < (1 << n) && (pos >> b) & 1 == 1 {
                            expected |= 1 << p;
                        }
                    }
                    assert_eq!(identity_plane_word(n, b, w), expected, "n={n} b={b} w={w}");
                }
            }
        }
    }

    #[test]
    fn pack_then_unpack_round_trips() {
        for n in [1u32, 3, 6, 7, 8] {
            let d = lcg_perm(n, 0x5eed ^ u64::from(n));
            let outcome = WordOutcome {
                n,
                words: word_count(n),
                planes: pack(n, &d),
                stage_cross: Vec::new(),
            };
            assert_eq!(outcome.outputs(), d.destinations());
        }
    }

    #[test]
    fn rejects_length_mismatch() {
        let d = Permutation::identity(4);
        assert_eq!(
            self_route(3, &d),
            Err(NetworkError::PermutationLength { expected: 8, actual: 4 })
        );
    }

    /// Exhaustive agreement with the scalar oracle on B(2) and B(3):
    /// success flag, arrival tags, and recovered settings, for both the
    /// plain and the omega-bit kernels.
    #[test]
    fn exhaustive_agreement_with_scalar_oracle() {
        for n in [2u32, 3] {
            let net = Benes::new(n);
            for d in all_perms(1 << n) {
                let scalar = net.self_route(&d);
                let word = self_route(n, &d).unwrap();
                assert_eq!(word.is_success(), scalar.is_success(), "B({n}) {d:?}");
                assert_eq!(word.outputs(), scalar.outputs(), "B({n}) {d:?}");
                assert_eq!(
                    &word.settings(&net).unwrap(),
                    scalar.settings(),
                    "B({n}) {d:?}"
                );

                let scalar_o = net.self_route_omega(&d);
                let word_o = self_route_omega(n, &d).unwrap();
                assert_eq!(
                    word_o.is_success(),
                    scalar_o.is_success(),
                    "B({n}) omega {d:?}"
                );
                assert_eq!(word_o.outputs(), scalar_o.outputs(), "B({n}) omega {d:?}");
                assert_eq!(
                    &word_o.settings(&net).unwrap(),
                    scalar_o.settings(),
                    "B({n}) omega {d:?}"
                );
            }
        }
    }

    /// Same exhaustive comparison over faulty fabrics, including a dead
    /// switch and faults inside the omega-forced stages.
    #[test]
    fn exhaustive_faulty_agreement_with_scalar_oracle() {
        let n = 3u32;
        let net = Benes::new(n);
        let fault_sets = [
            fault_set(n, &[(0, 1, FaultKind::StuckCross)]),
            fault_set(n, &[(2, 0, FaultKind::StuckStraight), (4, 3, FaultKind::Dead)]),
            fault_set(
                n,
                &[
                    (0, 0, FaultKind::Dead),
                    (1, 2, FaultKind::StuckCross),
                    (3, 1, FaultKind::StuckStraight),
                ],
            ),
        ];
        for fs in &fault_sets {
            for d in all_perms(1 << n) {
                let scalar = faults::self_route_with_faults(&net, &d, fs);
                let word = self_route_with_faults(&net, &d, fs).unwrap();
                assert_eq!(word.is_success(), scalar.is_success(), "{fs:?} {d:?}");
                assert_eq!(word.outputs(), scalar.outputs(), "{fs:?} {d:?}");
                assert_eq!(
                    &word.settings(&net).unwrap(),
                    scalar.settings(),
                    "{fs:?} {d:?}"
                );

                let scalar_o = faults::self_route_omega_with_faults(&net, &d, fs);
                let word_o = self_route_omega_with_faults(&net, &d, fs).unwrap();
                assert_eq!(
                    word_o.is_success(),
                    scalar_o.is_success(),
                    "omega {fs:?} {d:?}"
                );
                assert_eq!(word_o.outputs(), scalar_o.outputs(), "omega {fs:?} {d:?}");
                assert_eq!(
                    &word_o.settings(&net).unwrap(),
                    scalar_o.settings(),
                    "omega {fs:?} {d:?}"
                );
            }
        }
    }

    /// Multi-word orders exercise the cross-word (`δ(s) ≥ 6`) column path:
    /// B(7) pairs words at distance 1 and B(8) at distances 1 and 2.
    #[test]
    fn multiword_orders_agree_with_scalar_oracle() {
        for n in [6u32, 7, 8] {
            let net = Benes::new(n);
            for seed in 0..8u64 {
                let d = lcg_perm(n, seed.wrapping_mul(0x9e37_79b9) ^ u64::from(n));
                let scalar = net.self_route(&d);
                let word = self_route(n, &d).unwrap();
                assert_eq!(word.is_success(), scalar.is_success(), "B({n}) seed {seed}");
                assert_eq!(word.outputs(), scalar.outputs(), "B({n}) seed {seed}");
                assert_eq!(
                    &word.settings(&net).unwrap(),
                    scalar.settings(),
                    "B({n}) seed {seed}"
                );
            }
            // Random stuck/dead fabric at the same orders.
            let fs = FaultSet::random_stuck(n, 4, 0xfab ^ u64::from(n));
            for seed in 0..4u64 {
                let d = lcg_perm(n, seed ^ 0xabcd);
                let scalar = faults::self_route_with_faults(&net, &d, &fs);
                let word = self_route_with_faults(&net, &d, &fs).unwrap();
                assert_eq!(word.outputs(), scalar.outputs(), "B({n}) faulty seed {seed}");
            }
        }
    }

    /// The paper's Fig. 5 example, traced by hand in flattened form.
    #[test]
    fn fig5_word_trace() {
        let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
        let outcome = self_route(2, &d).unwrap();
        assert!(!outcome.is_success());
        assert_eq!(outcome.outputs(), vec![2, 1, 0, 3]);
        assert!(self_route_omega(2, &d).unwrap().is_success());
    }

    fn fault_set(n: u32, entries: &[(usize, usize, FaultKind)]) -> FaultSet {
        let mut fs = FaultSet::new(n);
        for &(s, i, k) in entries {
            fs.insert(s, i, k).unwrap();
        }
        fs
    }

    /// Deterministic Fisher–Yates driven by a 64-bit LCG.
    fn lcg_perm(n: u32, seed: u64) -> Permutation {
        let size = 1usize << n;
        let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let mut dest: Vec<u32> = (0..size as u32).collect();
        for i in (1..size).rev() {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            dest.swap(i, j);
        }
        Permutation::from_destinations(dest).unwrap()
    }

    fn all_perms(len: usize) -> Vec<Permutation> {
        fn rec(rem: &mut Vec<u32>, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if rem.is_empty() {
                out.push(cur.clone());
                return;
            }
            for idx in 0..rem.len() {
                let v = rem.remove(idx);
                cur.push(v);
                rec(rem, cur, out);
                cur.pop();
                rem.insert(idx, v);
            }
        }
        let mut raw = Vec::new();
        rec(&mut (0..len as u32).collect(), &mut Vec::new(), &mut raw);
        raw.into_iter().map(|d| Permutation::from_destinations(d).unwrap()).collect()
    }
}
