//! The classical external set-up algorithm for the Benes network
//! (Waksman, *A permutation network*, 1968 — the paper's reference \[10\]).
//!
//! This is the baseline the paper improves on: given an **arbitrary**
//! permutation `D`, compute a complete switch-state assignment in
//! `O(N log N)` sequential time, then route. The self-routing scheme of
//! [`crate::selfroute`] eliminates this set-up entirely — but only for
//! permutations in `F(n)`; with external set-up the Benes network realizes
//! all `N!` permutations ("if we allow the added capability of disabling
//! the self-setting logic … the network can realize all N! permutations",
//! §I).
//!
//! The algorithm is the standard looping 2-colouring: at each recursion
//! level, inputs `2i/2i+1` must split across the two subnetworks, and so
//! must outputs `2j/2j+1`; following the constraint chains around their
//! cycles assigns every terminal to the upper (0) or lower (1) subnetwork,
//! fixing the outer stages and inducing one half-size permutation per
//! subnetwork.
//!
//! # Examples
//!
//! ```
//! use benes_core::{Benes, waksman};
//! use benes_perm::Permutation;
//!
//! // Fig. 5's permutation is NOT self-routable — but external set-up
//! // handles it.
//! let net = Benes::new(2);
//! let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
//! let settings = waksman::setup(&d)?;
//! let out = net.route_with(&settings, &[0u32, 1, 2, 3]).unwrap();
//! assert_eq!(out, vec![3, 0, 2, 1]); // output D_i holds input i
//! # Ok::<(), benes_core::waksman::SetupError>(())
//! ```

use std::fmt;

use benes_perm::Permutation;

use crate::network::{SwitchSettings, SwitchState};
use crate::topology;

/// Error produced by [`setup`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SetupError {
    /// The permutation length is not a power of two.
    NotPowerOfTwo {
        /// The offending length.
        len: usize,
    },
    /// The permutation is larger than the largest supported network.
    TooLarge {
        /// The required order `n`.
        n: u32,
    },
}

impl fmt::Display for SetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotPowerOfTwo { len } => {
                write!(f, "permutation length {len} is not a power of two")
            }
            Self::TooLarge { n } => write!(
                f,
                "network order {n} exceeds the supported maximum {}",
                topology::MAX_N
            ),
        }
    }
}

impl std::error::Error for SetupError {}

/// Computes switch settings realizing the arbitrary permutation `d` on
/// `B(n)` — the paper's baseline `O(N log N)` set-up.
///
/// The returned settings route input `i` to output `d[i]` via
/// [`crate::network::Benes::route_with`].
///
/// # Errors
///
/// Returns an error if the length is not a power of two or exceeds the
/// supported maximum. Lengths of 1 (`n = 0`) are rejected as well: the
/// smallest Benes network is `B(1)`.
pub fn setup(d: &Permutation) -> Result<SwitchSettings, SetupError> {
    let n = d
        .log2_len()
        .filter(|&n| n >= 1)
        .ok_or(SetupError::NotPowerOfTwo { len: d.len() })?;
    if n > topology::MAX_N {
        return Err(SetupError::TooLarge { n });
    }
    let mut settings = SwitchSettings::all_straight(n);
    let dest: Vec<u32> = d.destinations().to_vec();
    setup_recursive(&dest, n, 0, 0, &mut settings);
    Ok(settings)
}

/// Sets the switches of the `B(m)` sub-network whose first stage is
/// `stage_base` and whose switch rows start at `row_base`, so that it
/// realizes `perm` (a permutation of `0..2^m`). Shared with the
/// fault-avoiding set-up of [`crate::faults`], which uses it for
/// fault-free sub-blocks.
pub(crate) fn setup_recursive(
    perm: &[u32],
    m: u32,
    stage_base: usize,
    row_base: usize,
    settings: &mut SwitchSettings,
) {
    let len = perm.len();
    debug_assert_eq!(len, 1 << m);
    if m == 1 {
        let state = if perm[0] == 0 { SwitchState::Straight } else { SwitchState::Cross };
        settings.set(stage_base, row_base, state);
        return;
    }

    // inverse permutation: which input feeds each output.
    let mut inv = vec![0u32; len];
    for (i, &o) in perm.iter().enumerate() {
        inv[o as usize] = i as u32; // analyze:allow(truncating-cast): i < 2^MAX_N terminals
    }

    // side assignment: 0 = upper subnetwork, 1 = lower.
    let mut in_side: Vec<Option<u8>> = vec![None; len];
    let mut out_side: Vec<Option<u8>> = vec![None; len];

    for seed in 0..len {
        if in_side[seed].is_some() {
            continue;
        }
        // Seed a new constraint loop: send this input through the upper
        // subnetwork, then alternate around the loop until it closes.
        let mut x = seed;
        in_side[x] = Some(0);
        loop {
            // Input x's side forces its output's side…
            let o = perm[x] as usize;
            out_side[o] = in_side[x];
            // …which forces the partner output to the other side…
            let op = o ^ 1;
            let other = 1 - out_side[o].expect("just assigned");
            if out_side[op].is_some() {
                debug_assert_eq!(out_side[op], Some(other), "loop inconsistency");
                break;
            }
            out_side[op] = Some(other);
            // …which forces the input feeding it…
            let xp = inv[op] as usize;
            in_side[xp] = Some(other);
            // …which forces the partner input to the other side.
            let xq = xp ^ 1;
            let next = 1 - other;
            if in_side[xq].is_some() {
                debug_assert_eq!(in_side[xq], Some(next), "loop inconsistency");
                break;
            }
            in_side[xq] = Some(next);
            x = xq;
        }
    }

    let half = len / 2;
    let stages = 2 * m as usize - 1;

    // Outer stages + induced sub-permutations.
    let mut upper = vec![0u32; half];
    let mut lower = vec![0u32; half];
    for i in 0..half {
        // First stage: straight iff the upper input (2i) goes up.
        let up_in = if in_side[2 * i] == Some(0) { 2 * i } else { 2 * i + 1 };
        let state = if up_in == 2 * i { SwitchState::Straight } else { SwitchState::Cross };
        settings.set(stage_base, row_base + i, state);
        upper[i] = perm[up_in] >> 1;
        lower[i] = perm[up_in ^ 1] >> 1;

        // Last stage: straight iff output 2i is fed by the upper
        // subnetwork.
        let state = if out_side[2 * i] == Some(0) {
            SwitchState::Straight
        } else {
            SwitchState::Cross
        };
        settings.set(stage_base + stages - 1, row_base + i, state);
    }

    setup_recursive(&upper, m - 1, stage_base + 1, row_base, settings);
    setup_recursive(&lower, m - 1, stage_base + 1, row_base + half / 2, settings);
}

/// The switches Waksman's *reduced* network `A(n)` removes: switch 0 of
/// the **first** stage of every recursive block can be fixed straight
/// without losing rearrangeability, because each constraint loop can be
/// seeded with its block-0 input sent to the upper subnetwork.
///
/// Returns `(stage, row)` pairs, `N/2 − 1` of them; removing them leaves
/// `N·log N − N + 1` switches — Waksman's optimal count.
///
/// [`setup`] is *compatible with the reduction by construction*: it seeds
/// every loop from the smallest unassigned input with side 0, so the
/// returned settings always leave these switches straight (tested
/// exhaustively).
///
/// # Panics
///
/// Panics if `n` is out of range.
#[must_use]
pub fn reduced_fixed_switches(n: u32) -> Vec<(usize, usize)> {
    topology::validate_n(n);
    let mut fixed = Vec::new();
    collect_fixed(n, 0, 0, &mut fixed);
    fixed
}

fn collect_fixed(
    m: u32,
    stage_base: usize,
    row_base: usize,
    out: &mut Vec<(usize, usize)>,
) {
    if m == 1 {
        return; // the single switch of B(1) is essential
    }
    out.push((stage_base, row_base));
    let half_rows = 1usize << (m - 2);
    collect_fixed(m - 1, stage_base + 1, row_base, out);
    collect_fixed(m - 1, stage_base + 1, row_base + half_rows, out);
}

/// The switch count of Waksman's reduced network `A(n)`:
/// `N·log N − N + 1`.
///
/// # Panics
///
/// Panics if `n` is out of range.
#[must_use]
pub fn reduced_switch_count(n: u32) -> usize {
    topology::switch_count(n) - reduced_fixed_switches(n).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Benes;

    #[test]
    fn reduced_fixed_switch_count_is_half_n_minus_1() {
        for n in 1..10u32 {
            let nn = 1usize << n;
            assert_eq!(reduced_fixed_switches(n).len(), nn / 2 - 1, "n = {n}");
            // Waksman's bound: N·log N − N + 1 switches suffice.
            assert_eq!(reduced_switch_count(n), nn * n as usize - nn + 1);
        }
    }

    #[test]
    fn fixed_switches_are_distinct_and_in_range() {
        let n = 5;
        let fixed = reduced_fixed_switches(n);
        let mut seen = std::collections::HashSet::new();
        for &(stage, row) in &fixed {
            assert!(stage < topology::stage_count(n));
            assert!(row < topology::switches_per_stage(n));
            // Only first-half stages host fixed switches (each block's
            // FIRST stage).
            assert!(stage < topology::stage_count(n) / 2 + 1);
            assert!(seen.insert((stage, row)), "duplicate fixed switch");
        }
    }

    #[test]
    fn setup_never_crosses_fixed_switches_exhaustive() {
        // The reduction is realized by this implementation for every
        // permutation of 8 elements: the returned settings are a valid
        // configuration of Waksman's A(3).
        let fixed = reduced_fixed_switches(3);
        for d in all_perms(8) {
            let settings = setup(&d).unwrap();
            for &(stage, row) in &fixed {
                assert_eq!(
                    settings.get(stage, row),
                    SwitchState::Straight,
                    "D = {d}: fixed switch ({stage},{row}) crossed"
                );
            }
        }
    }

    #[test]
    fn setup_never_crosses_fixed_switches_large_random_style() {
        let n = 7;
        let fixed = reduced_fixed_switches(n);
        let len = 1usize << n;
        let mut state = 99u64;
        for _ in 0..25 {
            let mut dest: Vec<u32> = (0..len as u32).collect();
            for i in (1..len).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                dest.swap(i, j);
            }
            let d = Permutation::from_destinations(dest).unwrap();
            let settings = setup(&d).unwrap();
            for &(stage, row) in &fixed {
                assert_eq!(settings.get(stage, row), SwitchState::Straight);
            }
        }
    }

    fn assert_realizes(net: &Benes, d: &Permutation) {
        let settings = setup(d).expect("setup succeeds");
        // Route the terminal indices; output D_i must hold input i,
        // i.e. output o holds inv[o].
        let data: Vec<u32> = (0..net.terminal_count() as u32).collect();
        let out = net.route_with(&settings, &data).unwrap();
        for (i, &dest) in d.destinations().iter().enumerate() {
            assert_eq!(out[dest as usize], i as u32, "input {i} missed output {dest}");
        }
    }

    #[test]
    fn realizes_all_permutations_n2_exhaustively() {
        let net = Benes::new(2);
        for d in all_perms(4) {
            assert_realizes(&net, &d);
        }
    }

    #[test]
    fn realizes_all_permutations_n3_exhaustively() {
        let net = Benes::new(3);
        for d in all_perms(8) {
            assert_realizes(&net, &d);
        }
    }

    #[test]
    fn realizes_structured_permutations_large() {
        use benes_perm::bpc::Bpc;
        use benes_perm::omega::cyclic_shift;
        for n in [4u32, 6, 8] {
            let net = Benes::new(n);
            assert_realizes(&net, &Bpc::bit_reversal(n).to_permutation());
            assert_realizes(&net, &Bpc::vector_reversal(n).to_permutation());
            assert_realizes(&net, &cyclic_shift(n, 3));
            assert_realizes(&net, &Permutation::identity(1 << n));
        }
    }

    #[test]
    fn realizes_worst_case_style_permutation() {
        // A permutation engineered to be far from F: reverse pairs within
        // a bit-reversal composed with a shift.
        let n = 5;
        let net = Benes::new(n);
        let d = benes_perm::bpc::Bpc::bit_reversal(n)
            .to_permutation()
            .then(&benes_perm::omega::cyclic_shift(n, 11));
        assert_realizes(&net, &d);
    }

    #[test]
    fn identity_setup_is_all_straight_equivalent() {
        // The identity must route correctly (states need not all be
        // straight — loop seeding may cross pairs of switches — but the
        // realized mapping must be the identity).
        let net = Benes::new(3);
        let id = Permutation::identity(8);
        let settings = setup(&id).unwrap();
        let data: Vec<u32> = (0..8).collect();
        assert_eq!(net.route_with(&settings, &data).unwrap(), data);
    }

    #[test]
    fn rejects_bad_lengths() {
        assert_eq!(
            setup(&Permutation::identity(6)),
            Err(SetupError::NotPowerOfTwo { len: 6 })
        );
        assert_eq!(
            setup(&Permutation::identity(1)),
            Err(SetupError::NotPowerOfTwo { len: 1 })
        );
    }

    #[test]
    fn setup_handles_permutations_outside_f() {
        // The whole point of external set-up: Fig. 5's permutation.
        let net = Benes::new(2);
        let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
        assert!(!net.self_route(&d).is_success());
        assert_realizes(&net, &d);
    }

    fn all_perms(len: u32) -> Vec<Permutation> {
        fn rec(rem: &mut Vec<u32>, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if rem.is_empty() {
                out.push(cur.clone());
                return;
            }
            for idx in 0..rem.len() {
                let v = rem.remove(idx);
                cur.push(v);
                rec(rem, cur, out);
                cur.pop();
                rem.insert(idx, v);
            }
        }
        let mut out = Vec::new();
        rec(&mut (0..len).collect(), &mut Vec::new(), &mut out);
        out.into_iter().map(|d| Permutation::from_destinations(d).unwrap()).collect()
    }
}
