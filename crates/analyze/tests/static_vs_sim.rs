//! The crate's acceptance property: **the static checker agrees with
//! full simulation bit-for-bit** — exhaustively on `B(2)` and `B(3)`,
//! and property-tested up to `B(8)`, on healthy and faulty fabrics.
//!
//! Simulation is the ground truth (`Benes::self_route` pushes real tags
//! through real switches); the static checker must reproduce its
//! verdicts, outputs and realized permutations without ever simulating.

use benes_analyze::{
    analyze_omega_route, analyze_self_route, check_settings, stage_bit_deviations,
    symbolic_realized, symbolic_realized_with_faults, SettingsVerdict,
};
use benes_core::faults::{realized_with_faults, FaultSet};
use benes_core::{is_in_f, Benes, SwitchSettings, SwitchState};
use benes_perm::omega::is_omega;
use benes_perm::Permutation;
use proptest::prelude::*;

/// Calls `visit` with every permutation of `0..2^n` (Heap's algorithm).
fn for_all_perms(n: u32, visit: &mut impl FnMut(&Permutation)) {
    fn rec(v: &mut Vec<u32>, k: usize, visit: &mut impl FnMut(&Permutation)) {
        if k + 1 >= v.len() {
            visit(&Permutation::from_destinations(v.clone()).unwrap());
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            rec(v, k + 1, visit);
            v.swap(k, i);
        }
    }
    let mut v: Vec<u32> = (0..1u32 << n).collect();
    rec(&mut v, 0, visit);
}

/// Exhaustive agreement on one order: verdicts, outputs, settings,
/// class predicates, and the stage-bit invariant.
fn exhaustive_agreement(n: u32) {
    let net = Benes::new(n);
    for_all_perms(n, &mut |d| {
        // Plain self-route: the symbolic walk vs the simulator.
        let walk = analyze_self_route(d);
        let sim = net.self_route(d);
        assert_eq!(
            walk.delivers(),
            sim.is_success(),
            "B({n}) D={d}: static delivery verdict diverges from simulation"
        );
        assert_eq!(
            walk.is_conflict_free(),
            sim.is_success(),
            "B({n}) D={d}: conflict-freeness must characterize delivery"
        );
        assert_eq!(
            walk.is_conflict_free(),
            is_in_f(d),
            "B({n}) D={d}: conflict-freeness must characterize F(n)"
        );
        assert_eq!(
            walk.outputs,
            sim.outputs(),
            "B({n}) D={d}: symbolic outputs diverge from simulated outputs"
        );
        assert_eq!(
            &walk.settings,
            sim.settings(),
            "B({n}) D={d}: the walk must derive the simulator's settings"
        );
        if walk.is_conflict_free() {
            assert!(
                stage_bit_deviations(&walk.settings, d).is_empty(),
                "B({n}) D={d}: self-routed settings must obey the stage-bit rule"
            );
        }

        // Omega walk: first n−1 stages forced straight.
        let omega_walk = analyze_omega_route(d);
        let omega_sim = net.self_route_omega(d);
        assert_eq!(
            omega_walk.delivers(),
            omega_sim.is_success(),
            "B({n}) D={d}: omega verdicts diverge"
        );
        assert_eq!(
            omega_walk.is_conflict_free(),
            is_omega(d),
            "B({n}) D={d}: omega conflict-freeness must characterize Ω(n)"
        );
        assert_eq!(omega_walk.outputs, omega_sim.outputs(), "B({n}) D={d}");
    });
}

#[test]
fn static_checker_agrees_with_simulation_exhaustively_on_b2() {
    exhaustive_agreement(2);
}

#[test]
fn static_checker_agrees_with_simulation_exhaustively_on_b3() {
    exhaustive_agreement(3);
}

/// A uniformly random switch-state matrix for `B(n)`.
fn arb_settings(n: u32) -> impl Strategy<Value = SwitchSettings> {
    Just(()).prop_perturb(move |(), mut rng| {
        let mut s = SwitchSettings::all_straight(n);
        for stage in 0..benes_core::topology::stage_count(n) {
            for switch in 0..benes_core::topology::switches_per_stage(n) {
                if rng.random::<u64>() & 1 == 1 {
                    s.set(stage, switch, SwitchState::Cross);
                }
            }
        }
        s
    })
}

/// A random fault set (possibly with dead switches) for `B(n)`.
fn arb_faults(n: u32, max: usize) -> impl Strategy<Value = FaultSet> {
    use benes_core::FaultKind;
    Just(()).prop_perturb(move |(), mut rng| {
        let mut f = FaultSet::new(n);
        let count = (rng.random::<u64>() as usize) % (max + 1);
        for _ in 0..count {
            let stage =
                (rng.random::<u64>() as usize) % benes_core::topology::stage_count(n);
            let switch = (rng.random::<u64>() as usize)
                % benes_core::topology::switches_per_stage(n);
            let kind = match rng.random::<u64>() % 4 {
                0 => FaultKind::StuckCross,
                1 => FaultKind::Dead,
                _ => FaultKind::StuckStraight,
            };
            f.insert(stage, switch, kind).unwrap();
        }
        f
    })
}

/// A random permutation of `0..2^n` via index shuffling.
fn arb_permutation(n: u32) -> impl Strategy<Value = Permutation> {
    let len = 1usize << n;
    Just(()).prop_perturb(move |(), mut rng| {
        let mut dest: Vec<u32> = (0..len as u32).collect();
        for i in (1..len).rev() {
            let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
            dest.swap(i, j);
        }
        Permutation::from_destinations(dest).unwrap()
    })
}

proptest! {
    /// Symbolic composition equals hardware replay for arbitrary switch
    /// matrices on B(4) and B(8).
    #[test]
    fn symbolic_realization_matches_replay(s4 in arb_settings(4), s8 in arb_settings(8)) {
        for (n, s) in [(4u32, &s4), (8, &s8)] {
            let net = Benes::new(n);
            let symbolic = symbolic_realized(s);
            let replayed = net.realized_permutation(s).unwrap();
            prop_assert_eq!(&symbolic, &replayed, "B({}) diverged", n);
            // check_settings against the replayed truth is always Realizes.
            prop_assert_eq!(check_settings(s, &replayed), SettingsVerdict::Realizes);
        }
    }

    /// The static fault overlay agrees with the simulated faulty fabric:
    /// same realized permutation (or `None` exactly when a dead switch
    /// is present), and the agreement verdict is itemized correctly.
    #[test]
    fn faulty_realization_matches_replay(
        s in arb_settings(4),
        f in arb_faults(4, 5),
    ) {
        let net = Benes::new(4);
        let symbolic = symbolic_realized_with_faults(&s, &f);
        if f.has_dead() {
            prop_assert_eq!(symbolic, None, "a dead switch defeats static realization");
        } else {
            let replayed = realized_with_faults(&net, &s, &f).unwrap();
            prop_assert_eq!(symbolic.as_ref(), Some(&replayed));
        }
        // Agreement ⇔ no itemized disagreements ⇔ the overlay is a no-op.
        let dis = f.disagreements(&s);
        prop_assert_eq!(f.agrees_with(&s), dis.is_empty());
        if dis.is_empty() {
            prop_assert_eq!(&f.apply_to(&s), &s);
        } else {
            prop_assert_ne!(&f.apply_to(&s), &s);
        }
    }

    /// On random permutations of B(5): the static verdict matches the
    /// class predicate and the simulator for both walks.
    #[test]
    fn random_permutations_agree_on_b5(d in arb_permutation(5)) {
        let net = Benes::new(5);
        let walk = analyze_self_route(&d);
        prop_assert_eq!(walk.delivers(), is_in_f(&d));
        prop_assert_eq!(walk.delivers(), net.self_route(&d).is_success());
        let omega_walk = analyze_omega_route(&d);
        prop_assert_eq!(omega_walk.delivers(), is_omega(&d));
        prop_assert_eq!(omega_walk.delivers(), net.self_route_omega(&d).is_success());
    }
}
