//! The model↔engine bridge: replay schedules of the abstract queue
//! model's decisions against the real `SubmissionQueue` (through the
//! engine's hidden `model_bridge` hooks) and assert the two agree on
//! every conservation counter, the total depth, and the per-shard
//! depths after every step.
//!
//! The pillar-3 model checker's proofs are about an abstraction; this
//! test is what pins the abstraction to the shipped code. The mirror
//! below *is* the model's data semantics — admission reserves then
//! scatters by `mix64(fingerprint ^ nonce)`, dequeue uses the model's
//! own `Protocol::scan_take` (own shard first, then steal), drain
//! strands and cancels what is queued — so any drift between
//! `queue.rs` and the model shows up as a counter or depth mismatch
//! here rather than silently invalidating the checker's certificates.

use benes_analyze::model::queue::Protocol;
use benes_engine::model_bridge::BridgeQueue;
use benes_perm::Permutation;
use proptest::prelude::*;

/// One scheduled step, as the model would label it.
#[derive(Debug, Clone)]
enum Op {
    /// A submitter's admit (reserve + scatter + push).
    Admit(u64),
    /// A worker's take scan: `(worker, batch)`.
    Take(usize, usize),
}

/// A deterministic permutation of `0..2^n` from a seed (xorshift
/// Fisher–Yates), so admits carry varied fingerprints.
fn seeded_perm(n: u32, seed: u64) -> Permutation {
    let size = 1u32 << n;
    let mut dest: Vec<u32> = (0..size).collect();
    let mut s = seed | 1;
    for i in (1..size as usize).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        dest.swap(i, (s % (i as u64 + 1)) as usize);
    }
    Permutation::from_destinations(dest).unwrap()
}

/// The abstract side of the bridge: the model's queue-data semantics,
/// driven deterministically.
struct Mirror {
    shards: Vec<u8>,
    max_depth: Option<usize>,
    nonce: u64,
    draining: bool,
    submitted: u64,
    rejected: u64,
    completed: u64,
    canceled: u64,
}

impl Mirror {
    fn new(shard_count: usize, max_depth: Option<usize>) -> Self {
        Self {
            shards: vec![0; shard_count],
            max_depth,
            nonce: 0,
            draining: false,
            submitted: 0,
            rejected: 0,
            completed: 0,
            canceled: 0,
        }
    }

    fn depth(&self) -> usize {
        self.shards.iter().map(|&s| s as usize).sum()
    }

    /// The model's admission rule: draining rejects; a full bounded
    /// queue rejects (the bridge admits non-blocking, the model's
    /// gate-park branch is its blocking analogue); otherwise reserve,
    /// scatter by fingerprint ⊕ nonce, push.
    fn admit(&mut self, fingerprint: u64) -> bool {
        if self.draining {
            self.rejected += 1;
            return false;
        }
        if self.max_depth.is_some_and(|max| self.depth() >= max) {
            self.rejected += 1;
            return false;
        }
        let shard = BridgeQueue::scatter_shard(fingerprint, self.nonce, self.shards.len());
        self.nonce += 1;
        self.shards[shard] += 1;
        self.submitted += 1;
        true
    }

    /// The model's dequeue rule, via the checker's own `scan_take`.
    fn take(&mut self, batch: usize, worker: usize) -> usize {
        let batch = u8::try_from(batch.min(255)).unwrap();
        match Protocol::scan_take(&self.shards, batch, worker) {
            Some((shard, taken)) => {
                self.shards[shard] -= taken;
                self.completed += u64::from(taken);
                usize::from(taken)
            }
            None => 0,
        }
    }

    /// The model's drain: close admission, cancel everything queued.
    fn drain(&mut self) -> usize {
        self.draining = true;
        let stranded = self.depth();
        self.canceled += stranded as u64;
        self.shards.iter_mut().for_each(|s| *s = 0);
        stranded
    }
}

/// Asserts the real queue and the mirror agree on depth and placement.
fn assert_in_sync(real: &BridgeQueue, mirror: &Mirror, step: usize) {
    assert_eq!(real.depth(), mirror.depth(), "total depth diverged at step {step}");
    let real_shards = real.shard_depths();
    let mirror_shards: Vec<u64> = mirror.shards.iter().map(|&s| u64::from(s)).collect();
    assert_eq!(real_shards, mirror_shards, "per-shard depths diverged at step {step}");
}

/// Runs one schedule end to end and checks every counter.
fn run_schedule(shard_count: usize, max_depth: Option<usize>, ops: &[Op]) {
    let real = BridgeQueue::new(shard_count, max_depth);
    let mut mirror = Mirror::new(shard_count, max_depth);
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Admit(seed) => {
                let perm = seeded_perm(3, seed);
                let admitted = real.admit(perm.clone());
                let expected = mirror.admit(perm.fingerprint());
                assert_eq!(admitted, expected, "admission verdict diverged at step {step}");
            }
            Op::Take(worker, batch) => {
                let worker = worker % shard_count;
                let taken = real.take(batch, worker);
                let expected = mirror.take(batch, worker);
                assert_eq!(taken, expected, "take count diverged at step {step}");
            }
        }
        assert_in_sync(&real, &mirror, step);
    }
    let stranded = real.drain();
    let expected_stranded = mirror.drain();
    assert_eq!(stranded, expected_stranded, "drain stranded counts diverged");
    assert_in_sync(&real, &mirror, ops.len());

    // Post-drain admissions must be refused identically on both sides.
    let perm = seeded_perm(3, 7);
    assert!(!real.admit(perm.clone()));
    assert!(!mirror.admit(perm.fingerprint()));

    let stats = real.stats();
    assert_eq!(stats.submitted, mirror.submitted, "submitted diverged");
    assert_eq!(stats.rejected, mirror.rejected, "rejected diverged");
    assert_eq!(stats.completed, mirror.completed, "completed diverged");
    assert_eq!(stats.canceled, mirror.canceled, "canceled diverged");
    assert!(stats.conserves_requests(), "real queue broke conservation: {stats:?}");
    assert_eq!(
        mirror.completed + mirror.canceled,
        mirror.submitted,
        "mirror broke conservation"
    );
}

/// One op: biased 3:2 toward admits so queues actually fill.
fn op_strategy() -> impl Strategy<Value = Op> {
    (any::<u64>(), any::<u64>(), 0usize..4, 1usize..4).prop_map(|(tag, seed, w, b)| {
        if tag % 5 < 3 {
            Op::Admit(seed)
        } else {
            Op::Take(w, b)
        }
    })
}

/// A schedule of up to 48 ops (length itself is generated).
fn schedule_strategy() -> impl Strategy<Value = Vec<Op>> {
    (0usize..48).prop_flat_map(|len| collection::vec(op_strategy(), len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Unbounded queues: every admit lands, takes and drain agree.
    #[test]
    fn unbounded_schedules_agree(
        shard_count in 1usize..5,
        ops in schedule_strategy(),
    ) {
        run_schedule(shard_count, None, &ops);
    }

    /// Bounded queues: full-queue rejections fire on the same steps on
    /// both sides (the depth bound is the model's `max_depth` check and
    /// the real queue's CAS reservation).
    #[test]
    fn bounded_schedules_agree(
        shard_count in 1usize..4,
        max_depth in 1usize..5,
        ops in schedule_strategy(),
    ) {
        run_schedule(shard_count, Some(max_depth), &ops);
    }
}

/// A fixed burst regression: admissions scatter over several shards,
/// then a single worker steals everything in own-shard-first order.
#[test]
fn steal_sweep_replays_identically() {
    let ops: Vec<Op> =
        (0..12).map(Op::Admit).chain((0..8).map(|_| Op::Take(1, 2))).collect();
    run_schedule(3, None, &ops);
}
