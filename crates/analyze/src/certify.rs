//! F(n)-membership certificates and closed-form cross-checks.
//!
//! [`certify_f`] turns the symbolic walk of
//! [`analyze_self_route`] into a
//! portable **certificate**: the commanded switch matrix, verifiable
//! later (or elsewhere) by two static facts — it realizes `D`, and it
//! satisfies the stage-bit invariant. Those two facts *are* the Fig. 3
//! rule, so a verified certificate proves `D ∈ F(n)` without either
//! simulation or a rerun of Theorem 1's recursion.
//!
//! [`closed_form_findings`] then cross-checks the paper's closed forms
//! against the recursion: every BPC permutation (Theorem 2) and every
//! Ω⁻¹ member (Theorem 3) must certify, every Ω member must pass the
//! omega-bit walk, and the dataflow checker must agree with
//! [`benes_core::class_f::check_f`] exactly.

use benes_core::class_f::check_f;
use benes_perm::bpc::Bpc;
use benes_perm::omega::{is_inverse_omega, is_omega};
use benes_perm::Permutation;

use crate::plancheck::{
    analyze_omega_route, analyze_self_route, check_settings, stage_bit_deviations,
    Conflict, SettingsVerdict,
};
use crate::report::{Finding, Pillar};
use benes_core::SwitchSettings;

/// A static proof that a permutation self-routes (`D ∈ F(n)`): the
/// switch matrix the destination-tag rule commands. Check it with
/// [`FCertificate::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FCertificate {
    settings: SwitchSettings,
}

impl FCertificate {
    /// The network order the certificate is for.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.settings.n()
    }

    /// The certified switch matrix.
    #[must_use]
    pub fn settings(&self) -> &SwitchSettings {
        &self.settings
    }

    /// Verifies the certificate against `d`, independently of how it
    /// was produced: the matrix must symbolically realize `d` **and**
    /// satisfy the stage-bit invariant (every stage keyed on its
    /// control bit). Together these reconstruct the Fig. 3 derivation,
    /// so verification succeeding proves `d ∈ F(n)`.
    #[must_use]
    pub fn verify(&self, d: &Permutation) -> bool {
        d.len() == self.settings.stage(0).len() * 2
            && check_settings(&self.settings, d) == SettingsVerdict::Realizes
            && stage_bit_deviations(&self.settings, d).is_empty()
    }
}

/// Certifies `D ∈ F(n)` by the symbolic dataflow walk, or reports the
/// split conflicts proving `D ∉ F(n)`.
///
/// # Errors
///
/// Returns the list of Theorem 1 violations when `D ∉ F(n)`.
///
/// # Panics
///
/// Panics if `d.len()` is not `2^n` with `n ≥ 1`.
pub fn certify_f(d: &Permutation) -> Result<FCertificate, Vec<Conflict>> {
    let a = analyze_self_route(d);
    if a.is_conflict_free() {
        Ok(FCertificate { settings: a.settings })
    } else {
        Err(a.conflicts)
    }
}

/// Cross-checks every closed-form class predicate against the
/// recursive characterization for one permutation. Clean on every
/// permutation if the implementation honors Theorems 1–3; any finding
/// is an implementation bug, not a property of `d`.
///
/// # Panics
///
/// Panics if `d.len()` is not `2^n` with `n ≥ 1`.
#[must_use]
pub fn closed_form_findings(d: &Permutation) -> Vec<Finding> {
    let n = d.log2_len().unwrap_or(0);
    let loc = format!("B({n})");
    let mut findings = Vec::new();

    let cert = certify_f(d);
    let static_in_f = cert.is_ok();
    if static_in_f != check_f(d).is_ok() {
        findings.push(Finding::error(
            Pillar::Domain,
            "dataflow-vs-theorem1",
            &loc,
            0,
            format!(
                "dataflow checker says {d} ∈ F = {static_in_f}, Theorem 1 recursion disagrees"
            ),
        ));
    }
    if let Ok(cert) = &cert {
        if !cert.verify(d) {
            findings.push(Finding::error(
                Pillar::Domain,
                "certificate-invalid",
                &loc,
                0,
                format!("certificate for {d} fails independent verification"),
            ));
        }
    }
    if Bpc::from_permutation(d).is_some() && !static_in_f {
        findings.push(Finding::error(
            Pillar::Domain,
            "bpc-closed-form",
            &loc,
            0,
            format!("{d} is BPC but does not certify (Theorem 2 violated)"),
        ));
    }
    if is_inverse_omega(d) && !static_in_f {
        findings.push(Finding::error(
            Pillar::Domain,
            "inverse-omega-closed-form",
            &loc,
            0,
            format!("{d} ∈ Ω⁻¹ but does not certify (Theorem 3 violated)"),
        ));
    }
    if is_omega(d) && !analyze_omega_route(d).is_conflict_free() {
        findings.push(Finding::error(
            Pillar::Domain,
            "omega-closed-form",
            &loc,
            0,
            format!("{d} ∈ Ω but the omega-bit walk conflicts"),
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use benes_core::class_f::is_in_f;

    fn p(v: &[u32]) -> Permutation {
        Permutation::from_destinations(v.to_vec()).unwrap()
    }

    /// All permutations of 0..len, recursively.
    fn all_perms(len: u32) -> Vec<Vec<u32>> {
        if len == 0 {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for rest in all_perms(len - 1) {
            for pos in 0..=rest.len() {
                let mut v = rest.clone();
                v.insert(pos, len - 1);
                out.push(v);
            }
        }
        out
    }

    #[test]
    fn exhaustive_b2_certificates_match_theorem1() {
        let mut members = 0;
        for v in all_perms(4) {
            let d = p(&v);
            match certify_f(&d) {
                Ok(cert) => {
                    members += 1;
                    assert!(cert.verify(&d), "certificate for {d} must verify");
                    assert!(is_in_f(&d), "{d} certified but Theorem 1 rejects it");
                }
                Err(conflicts) => {
                    assert!(!conflicts.is_empty());
                    assert!(!is_in_f(&d), "{d} rejected but Theorem 1 accepts it");
                }
            }
            assert!(closed_form_findings(&d).is_empty(), "closed forms disagree on {d}");
        }
        assert_eq!(members, 20, "|F(2)| = 20");
    }

    #[test]
    fn certificates_do_not_transfer_between_permutations() {
        let rev = p(&[0, 4, 2, 6, 1, 5, 3, 7]);
        let cert = certify_f(&rev).unwrap();
        assert!(cert.verify(&rev));
        assert!(!cert.verify(&Permutation::identity(8)));
        assert!(!cert.verify(&Permutation::identity(4)), "wrong order never verifies");
        assert_eq!(cert.n(), 3);
    }

    #[test]
    fn named_families_certify_up_to_n6() {
        for n in 1..=6u32 {
            assert!(closed_form_findings(&Bpc::bit_reversal(n).to_permutation()).is_empty());
            assert!(closed_form_findings(&Bpc::unshuffle(n).to_permutation()).is_empty());
            assert!(closed_form_findings(&benes_perm::omega::cyclic_shift(n, 1)).is_empty());
        }
    }
}
