//! The **condvar-wait-outside-loop** lint.
//!
//! A `Condvar::wait`/`wait_timeout` that is not re-armed by an
//! enclosing loop is wrong twice over: spurious wakeups are permitted
//! by the platform (the predicate may be false on return), and a
//! notify that lands between the predicate check and the park is lost
//! forever. Every park in the engine must therefore sit inside a
//! `loop`/`while`/`for` that re-checks its predicate — exactly the
//! shape the pillar-3 model checker assumes when it proves the queue's
//! no-lost-wakeup property, so this lint is the bridge between the
//! abstract model's park/wake semantics and the shipped source.
//!
//! Condvar waits are recognized by argument shape, not receiver name:
//! `cv.wait(guard)` takes the guard (one argument), `cv.wait_timeout(
//! guard, dur)` takes two. Zero-argument `.wait()` (a join handle or
//! ticket) and one-argument `.wait_timeout(dur)` (the engine's
//! `Ticket::wait_timeout`) are not condvar parks and are ignored.

use crate::report::{Finding, Pillar};

use super::source::SourceFile;

/// Scans one file for condvar waits outside a predicate loop.
#[must_use]
pub fn scan_condvar_waits(display: &str, file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut depth: i64 = 0;
    // Depths at which a loop body began; non-empty = inside a loop.
    let mut loop_floors: Vec<i64> = Vec::new();
    // A loop header whose `{` has not appeared yet (multi-line
    // `while cond\n && more\n {` headers).
    let mut pending_loop = false;
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        let trimmed = code.trim_start();
        if !line.in_test {
            // A new fn body is a fresh context.
            if code.contains("fn ") && code.contains('(') {
                loop_floors.clear();
                pending_loop = false;
            }
            if is_loop_header(trimmed) {
                pending_loop = true;
            }
            if pending_loop && code.contains('{') {
                loop_floors.push(depth + 1);
                pending_loop = false;
            }
            if has_condvar_wait(code)
                && loop_floors.is_empty()
                && !file.allows(idx, "condvar-wait-outside-loop")
            {
                findings.push(Finding::error(
                    Pillar::Workspace,
                    "condvar-wait-outside-loop",
                    display,
                    idx + 1,
                    "condvar wait outside a predicate re-check loop: spurious \
                     wakeups return with the predicate still false, and a notify \
                     landing before the park is lost; wrap the wait in a \
                     `while !predicate` loop"
                        .to_string(),
                ));
            }
        }
        depth += i64::from(super::source_brace_delta(code));
        while loop_floors.last().is_some_and(|floor| depth < *floor) {
            loop_floors.pop();
        }
    }
    findings
}

/// Does this (trimmed) line begin a loop?
fn is_loop_header(trimmed: &str) -> bool {
    trimmed.starts_with("while ")
        || trimmed.starts_with("while(")
        || trimmed.starts_with("for ")
        || trimmed == "loop"
        || trimmed.starts_with("loop ")
        || trimmed.starts_with("loop{")
}

/// Does the line contain a condvar-shaped wait call (`.wait(` with an
/// argument, or `.wait_timeout(` with two)?
fn has_condvar_wait(code: &str) -> bool {
    call_args(code, ".wait(").is_some_and(|args| !args.trim().is_empty())
        || call_args(code, ".wait_timeout(").is_some_and(has_top_level_comma)
}

/// The argument text of the first `needle` call on the line, up to the
/// matching close paren (or end of line for calls that wrap).
fn call_args(code: &str, needle: &str) -> Option<String> {
    let at = code.find(needle)?;
    let rest = &code[at + needle.len()..];
    let mut depth = 1i32;
    let mut args = String::new();
    for c in rest.chars() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(args);
                }
            }
            _ => {}
        }
        args.push(c);
    }
    Some(args)
}

/// Is there a comma outside any nested parens/brackets?
fn has_top_level_comma(args: String) -> bool {
    let mut depth = 0i32;
    for c in args.chars() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            ',' if depth == 0 => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(text: &str) -> Vec<Finding> {
        let file = SourceFile::parse(PathBuf::from("t.rs"), text);
        scan_condvar_waits("t.rs", &file)
    }

    #[test]
    fn bare_wait_outside_any_loop_is_flagged() {
        let fs = scan(
            "fn park(&self) {\n    let g = self.lock();\n    let g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 3);
    }

    #[test]
    fn wait_inside_while_predicate_is_clean() {
        let fs = scan(
            "fn park(&self) {\n    while self.depth() == 0 {\n        g = self.cv.wait(g).x();\n    }\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn wait_inside_loop_with_recheck_is_clean() {
        let fs = scan(
            "fn park(&self) {\n    loop {\n        if ready() { return; }\n        g = self.cv.wait(g).x();\n    }\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn multi_line_while_header_still_counts_as_a_loop() {
        let fs = scan(
            "fn park(&self) {\n    while self.depth() == 0\n        && !self.shutdown()\n    {\n        g = self.cv.wait(g).x();\n    }\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn wait_timeout_with_guard_and_duration_is_a_condvar_park() {
        let fs = scan(
            "fn park(&self) {\n    let (g2, _) = self.cv.wait_timeout(g, TICK).x();\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn ticket_and_join_waits_are_not_condvar_parks() {
        let fs = scan(
            "fn f(&self) {\n    let out = ticket.wait_timeout(TIMEOUT);\n    let joined = handle.wait();\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn loop_in_an_earlier_fn_does_not_bless_a_later_one() {
        let fs = scan(
            "fn a(&self) {\n    loop {\n        step();\n    }\n}\nfn b(&self) {\n    g = self.cv.wait(g).x();\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 7);
    }

    #[test]
    fn allow_marker_suppresses() {
        let fs = scan(
            "fn park(&self) {\n    // analyze:allow(condvar-wait-outside-loop): caller loops\n    g = self.cv.wait(g).x();\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let fs = scan(
            "#[cfg(test)]\nmod tests {\n    fn t(cv: &Condvar) { let g = cv.wait(g).unwrap(); }\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }
}
