//! Discarded-`Result` lint for engine job paths.
//!
//! `let _ = fallible(...)` silences `#[must_use]` without recording
//! why the error is safe to drop. In the engine's job paths a dropped
//! send/join error usually means a worker died and the caller will
//! hang or silently lose a result — precisely the failure mode the
//! fault-tolerance work exists to avoid. Intentional discards must
//! carry `// analyze:allow(discarded-result): <why>`.

use crate::report::{Finding, Pillar};

use super::source::SourceFile;

/// Scans one file for unmarked `let _ =` discards outside tests.
#[must_use]
pub fn scan_discards(display: &str, file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let trimmed = line.code.trim_start();
        let discards = trimmed.starts_with("let _ =") || trimmed.starts_with("let _=");
        if discards && !file.allows(idx, "discarded-result") {
            findings.push(Finding::error(
                Pillar::Workspace,
                "discarded-result",
                display,
                idx + 1,
                "silently discarded Result in an engine job path; state why the \
                 error is droppable with an analyze:allow(discarded-result) marker"
                    .to_string(),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(text: &str) -> Vec<Finding> {
        let file = SourceFile::parse(PathBuf::from("t.rs"), text);
        scan_discards("t.rs", &file)
    }

    #[test]
    fn bare_discard_is_flagged() {
        let findings = scan("fn f() {\n    let _ = send(x);\n}\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn marked_discard_and_named_underscore_pass() {
        let text = "fn f() {\n    // analyze:allow(discarded-result): receiver gone means caller quit\n    let _ = send(x);\n    let _guard = lock();\n}\n";
        assert!(scan(text).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let text = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = send(x); }\n}\n";
        assert!(scan(text).is_empty());
    }
}
