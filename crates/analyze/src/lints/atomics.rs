//! The **relaxed-control** lint.
//!
//! A `fetch_*`/`compare_exchange`/`swap` at `Ordering::Relaxed` whose
//! **result is consumed** is feeding a value with no cross-thread
//! ordering guarantee into a decision. That is sometimes exactly right
//! (a scatter nonce, an approximate LRU stamp) and sometimes a
//! conservation bug waiting for a reordering — the difference is an
//! argument about the algorithm, which is precisely what the
//! `analyze:allow(relaxed-control): <reason>` marker records.
//!
//! Statement-position bumps whose result is discarded
//! (`counter.fetch_add(1, Ordering::Relaxed);`) are *not* flagged:
//! monotonic counters read at quiescence (after a join or drain
//! barrier, which publishes everything) are the engine's sanctioned
//! use of relaxed atomics, and the pillar-3 model checker's
//! conservation property is proven against exactly that read-at-
//! quiescence discipline.

use crate::report::{Finding, Pillar};

use super::source::SourceFile;

/// Atomic read-modify-write method names (with their leading dot).
const RMW_CALLS: &[&str] = &[
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_and(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_max(",
    ".fetch_min(",
    ".fetch_update(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
    ".swap(",
];

/// Scans one file for consumed-result relaxed RMWs.
#[must_use]
pub fn scan_relaxed_control(display: &str, file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for needle in RMW_CALLS {
            let Some(at) = code.find(needle) else { continue };
            let args = call_args(&code[at + needle.len()..]);
            if !args.contains("Relaxed") {
                continue;
            }
            if !result_consumed(code, at, needle, &args) {
                continue;
            }
            if file.allows(idx, "relaxed-control") {
                continue;
            }
            let method = needle.trim_start_matches('.').trim_end_matches('(');
            findings.push(Finding::error(
                Pillar::Workspace,
                "relaxed-control",
                display,
                idx + 1,
                format!(
                    "the result of this `{method}` at Ordering::Relaxed feeds a \
                     decision, but Relaxed gives the read no cross-thread \
                     ordering; upgrade the ordering or justify with \
                     analyze:allow(relaxed-control)"
                ),
            ));
            break; // one finding per line is enough
        }
    }
    findings
}

/// Argument text from after the open paren to its matching close (or
/// end of line for calls that wrap).
fn call_args(rest: &str) -> String {
    let mut depth = 1i32;
    let mut args = String::new();
    for c in rest.chars() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => {
                depth -= 1;
                if depth == 0 {
                    return args;
                }
            }
            _ => {}
        }
        args.push(c);
    }
    args
}

/// Is the call's result consumed, rather than discarded at statement
/// position? Consumed means: bound (`let x = …`), compared or tested
/// (`if`/`while`/`match`/`return`), assigned, chained into a further
/// call, or left as a tail expression.
fn result_consumed(code: &str, at: usize, needle: &str, args: &str) -> bool {
    let trimmed = code.trim_start();
    let before = &code[..at];
    let after = {
        // Text after the call's closing paren on this line.
        let open = at + needle.len();
        let close = open + args.len();
        code.get(close + 1..).unwrap_or("")
    };
    trimmed.starts_with("let ")
        || trimmed.starts_with("if ")
        || trimmed.starts_with("while ")
        || trimmed.starts_with("match ")
        || trimmed.starts_with("return ")
        || before.contains('=')
        || !after.trim_start().starts_with(';')
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(text: &str) -> Vec<Finding> {
        let file = SourceFile::parse(PathBuf::from("t.rs"), text);
        scan_relaxed_control("t.rs", &file)
    }

    #[test]
    fn bound_relaxed_fetch_is_flagged() {
        let fs = scan(
            "fn f(&self) {\n    let nonce = self.rr.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 2);
        assert_eq!(fs[0].lint, "relaxed-control");
    }

    #[test]
    fn discarded_statement_bump_is_clean() {
        let fs =
            scan("fn f(&self) {\n    self.submitted.fetch_add(1, Ordering::Relaxed);\n}\n");
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn discarded_fetch_max_is_clean() {
        let fs = scan(
            "fn f(&self) {\n    self.queue_high_water.fetch_max(depth, Ordering::Relaxed);\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn seqcst_rmw_is_never_flagged() {
        let fs = scan(
            "fn f(&self) {\n    let d = self.depth.fetch_add(1, Ordering::SeqCst);\n    if self.flag.swap(true, Ordering::SeqCst) { x(); }\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn relaxed_result_in_a_condition_is_flagged() {
        let fs = scan(
            "fn f(&self) {\n    if self.claimed.swap(true, Ordering::Relaxed) { return; }\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn chained_use_of_a_relaxed_result_is_flagged() {
        let fs = scan(
            "fn f(&self) {\n    self.seq.compare_exchange(a, b, Ordering::Relaxed, Ordering::Relaxed).ok();\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn non_atomic_slice_swap_is_ignored() {
        let fs = scan("fn f(dest: &mut [usize]) {\n    dest.swap(i, j);\n}\n");
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn allow_marker_with_reason_suppresses() {
        let fs = scan(
            "fn f(&self) {\n    // analyze:allow(relaxed-control): any shard is correct\n    let nonce = self.rr.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let fs = scan(
            "#[cfg(test)]\nmod tests {\n    fn t(a: &A) { let x = a.n.fetch_add(1, Ordering::Relaxed); }\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }
}
