//! Lock-discipline lints over the engine source.
//!
//! Two related checks:
//!
//! * **lock-order-cycle** — builds the static lock-acquisition graph:
//!   an edge `A → B` whenever a `.lock()` on `B` happens while a guard
//!   for `A` is still live in the same function. A cycle in that graph
//!   is a deadlock waiting for the right thread interleaving, which no
//!   amount of testing reliably reproduces — exactly the kind of fact
//!   worth proving statically.
//! * **lock-unwrap** — `.unwrap()`/`.expect(..)` on a lock or condvar
//!   result outside test code. The engine's sanctioned idiom is
//!   `unwrap_or_else(PoisonError::into_inner)` (a poisoned mutex holds
//!   plain-old-data that is safe to keep using); a bare unwrap turns
//!   one worker panic into a poisoned-lock panic cascade.
//!
//! The analysis is per-function and name-based: a lock's identity is
//! the last path segment before `.lock()` (`self.queue.lock()` and
//! `shared.queue.lock()` are the same lock `queue`), and helper
//! functions that return a `MutexGuard` count as acquisitions of the
//! lock they wrap.
//!
//! Identities are **instance-aware**: an index expression in the
//! receiver path qualifies the node, so `shards[a].lock()` and
//! `shards[b].lock()` are the distinct nodes `shards[a]` and
//! `shards[b]`. That distinction is what separates the three
//! same-base-name shapes:
//!
//! * same base, same index — **lock-reentry** (error): re-acquiring an
//!   instance already held self-deadlocks on a non-reentrant mutex;
//! * same base, different indices — a real edge plus a
//!   **lock-instance-order** warning: cross-instance nesting (the
//!   sharded queue's steal path is the motivating case) is only sound
//!   under a global instance order, which a static scan cannot prove.
//!   Opposite-order nesting elsewhere still completes a cycle and
//!   escalates to `lock-order-cycle`;
//! * same base, unknown instance (no index in the receiver) — a
//!   **lock-instance-order** warning with no edge, since the scan
//!   cannot tell reentry from ordered nesting.

use std::collections::{BTreeMap, BTreeSet};

use crate::report::{Finding, Pillar};

use super::source::SourceFile;

/// The static lock-acquisition graph of the scanned sources.
#[derive(Debug, Default, Clone)]
pub struct LockGraph {
    /// All lock names seen acquired anywhere.
    pub nodes: BTreeSet<String>,
    /// Edges `(held, acquired)` → one witness `(file, 1-based line)`.
    pub edges: BTreeMap<(String, String), (String, usize)>,
}

impl LockGraph {
    /// Human-readable one-line-per-fact summary (for the CLI).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "lock graph: {} lock(s), {} ordered acquisition edge(s)\n",
            self.nodes.len(),
            self.edges.len()
        ));
        for node in &self.nodes {
            out.push_str(&format!("  lock: {node}\n"));
        }
        for ((held, acquired), (file, line)) in &self.edges {
            out.push_str(&format!("  edge: {held} -> {acquired} ({file}:{line})\n"));
        }
        out
    }

    /// Finds cycles: every edge that participates in one becomes a
    /// finding (so the witness file/line is actionable).
    #[must_use]
    pub fn cycle_findings(&self) -> Vec<Finding> {
        let mut findings = Vec::new();
        for ((held, acquired), (file, line)) in &self.edges {
            if self.reaches(acquired, held) {
                findings.push(Finding::error(
                    Pillar::Workspace,
                    "lock-order-cycle",
                    file,
                    *line,
                    format!(
                        "acquiring `{acquired}` while holding `{held}` completes a \
                         lock-order cycle ({acquired} can be held while waiting for {held})"
                    ),
                ));
            }
        }
        findings
    }

    /// Is `to` reachable from `from` along acquisition edges?
    fn reaches(&self, from: &str, to: &str) -> bool {
        let mut stack = vec![from.to_string()];
        let mut seen = BTreeSet::new();
        while let Some(node) = stack.pop() {
            if node == to {
                return true;
            }
            if !seen.insert(node.clone()) {
                continue;
            }
            for (held, acquired) in self.edges.keys() {
                if *held == node && !seen.contains(acquired) {
                    stack.push(acquired.clone());
                }
            }
        }
        false
    }
}

/// A lock identity: base name plus an optional instance qualifier
/// (the index expression from the receiver path, whitespace-stripped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockId {
    /// Last path segment before `.lock()`.
    pub base: String,
    /// Index expression qualifying the instance, if one is visible.
    pub instance: Option<String>,
}

impl LockId {
    /// Graph-node rendering: `base` or `base[instance]`.
    #[must_use]
    pub fn rendered(&self) -> String {
        match &self.instance {
            Some(i) => format!("{}[{i}]", self.base),
            None => self.base.clone(),
        }
    }
}

/// A live guard inside a function body.
struct Held {
    lock: LockId,
    /// Binding name, if `let`-bound (so `drop(name)` releases it);
    /// `None` marks a temporary released at end of statement.
    binding: Option<String>,
    /// Brace depth at acquisition; leaving that scope releases it.
    depth: i64,
}

/// Scans `files`, returning the acquisition graph and the lock-unwrap
/// findings. `display` maps each file to the path shown in findings.
#[must_use]
pub fn scan_locks(files: &[(String, SourceFile)]) -> (LockGraph, Vec<Finding>) {
    // Pass 1: helpers returning a guard, e.g.
    //   fn lock_faults(&self) -> MutexGuard<'_, FaultSet> { self.faults.lock()… }
    // map helper name → wrapped lock name.
    let mut helpers: BTreeMap<String, LockId> = BTreeMap::new();
    for (_, file) in files {
        let mut pending: Option<String> = None;
        for line in &file.lines {
            if line.in_test {
                continue;
            }
            let code = &line.code;
            if let Some(name) = helper_signature(code) {
                pending = Some(name);
            }
            if let Some(helper) = pending.clone() {
                if let Some(lock) = lock_id(code) {
                    helpers.insert(helper, lock);
                    pending = None;
                }
            }
        }
    }

    let mut graph = LockGraph::default();
    let mut findings = Vec::new();
    for (display, file) in files {
        let mut depth: i64 = 0;
        let mut held: Vec<Held> = Vec::new();
        for (idx, line) in file.lines.iter().enumerate() {
            let code = &line.code;
            let lineno = idx + 1;
            let delta = super::source_brace_delta(code);
            // A new fn body starts a fresh holding context.
            if !line.in_test && code.contains("fn ") && code.contains('(') {
                held.clear();
            }
            if !line.in_test {
                // lock-unwrap: unwrap/expect on a lock or condvar wait.
                let touches_lock = code.contains(".lock()") || code.contains(".wait(");
                let unwraps = code.contains(".unwrap()") || code.contains(".expect(");
                if touches_lock && unwraps && !file.allows(idx, "lock-unwrap") {
                    findings.push(Finding::error(
                        Pillar::Workspace,
                        "lock-unwrap",
                        display,
                        lineno,
                        "unwrap()/expect() on a lock result outside a sanctioned \
                         poison-recovery helper; use \
                         unwrap_or_else(PoisonError::into_inner)"
                            .to_string(),
                    ));
                }
                // Acquisitions: direct `.lock()` or a guard-returning helper.
                let acquired = lock_id(code).or_else(|| {
                    helpers.keys().find(|h| calls(code, h)).map(|h| helpers[h].clone())
                });
                if let Some(lock) = acquired {
                    graph.nodes.insert(lock.rendered());
                    for h in &held {
                        if h.lock.base != lock.base {
                            graph
                                .edges
                                .entry((h.lock.rendered(), lock.rendered()))
                                .or_insert_with(|| (display.clone(), lineno));
                        } else if h.lock.instance.is_some()
                            && h.lock.instance == lock.instance
                        {
                            if !file.allows(idx, "lock-reentry") {
                                findings.push(Finding::error(
                                    Pillar::Workspace,
                                    "lock-reentry",
                                    display,
                                    lineno,
                                    format!(
                                        "re-acquiring `{}` while its guard is still \
                                         live self-deadlocks on a non-reentrant mutex",
                                        lock.rendered()
                                    ),
                                ));
                            }
                        } else {
                            // Same base, different (or unknown) instance.
                            if h.lock.instance.is_some() && lock.instance.is_some() {
                                graph
                                    .edges
                                    .entry((h.lock.rendered(), lock.rendered()))
                                    .or_insert_with(|| (display.clone(), lineno));
                            }
                            if !file.allows(idx, "lock-instance-order") {
                                findings.push(Finding::warning(
                                    Pillar::Workspace,
                                    "lock-instance-order",
                                    display,
                                    lineno,
                                    format!(
                                        "acquiring `{}` while holding `{}`: two \
                                         instances of the same lock are nested, which \
                                         is only deadlock-free under a global \
                                         instance order this scan cannot prove",
                                        lock.rendered(),
                                        h.lock.rendered()
                                    ),
                                ));
                            }
                        }
                    }
                    if let Some(binding) = let_binding(code) {
                        held.push(Held { lock, binding: Some(binding), depth });
                    } else if code.trim_start().starts_with("while ")
                        || code.trim_start().starts_with("if ")
                    {
                        // Guard lives for the condition's block body,
                        // one level deeper than the condition line.
                        held.push(Held { lock, binding: None, depth: depth + 1 });
                    }
                    // Other temporaries die at end of statement: no push.
                }
                // Explicit drops release by binding name.
                if let Some(dropped) = drop_target(code) {
                    held.retain(|h| h.binding.as_deref() != Some(dropped.as_str()));
                }
            }
            depth += i64::from(delta);
            held.retain(|h| h.depth <= depth);
        }
    }
    (graph, findings)
}

/// `fn NAME(..) -> … MutexGuard` on one line → `Some(NAME)`.
fn helper_signature(code: &str) -> Option<String> {
    if !code.contains("MutexGuard") || !code.contains("->") {
        return None;
    }
    let fn_pos = code.find("fn ")?;
    let rest = &code[fn_pos + 3..];
    let name: String =
        rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    (!name.is_empty()).then_some(name)
}

/// The lock identity behind a `.lock()` call: the last path segment
/// before it as the base, qualified by an index expression when one is
/// visible in the receiver — either directly (`shards[i].lock()` is
/// base `shards`, instance `i`) or one segment up (the sharded queue's
/// `shards[i].queue.lock()` is base `queue`, instance `i`).
fn lock_id(code: &str) -> Option<LockId> {
    let pos = code.find(".lock()")?;
    let mut chars: Vec<char> = code[..pos].chars().collect();
    // A direct index like `shards[i]` qualifies the instance.
    let mut instance = pop_index_group(&mut chars);
    let base: String = {
        let mut name: Vec<char> = Vec::new();
        while let Some(&c) = chars.last() {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                chars.pop();
            } else {
                break;
            }
        }
        name.iter().rev().collect()
    };
    if base.is_empty() {
        return None;
    }
    // `shards[i].queue.lock()`: the index one segment up still names
    // the instance of the per-shard lock.
    if instance.is_none() && chars.last() == Some(&'.') {
        chars.pop();
        instance = pop_index_group(&mut chars);
    }
    Some(LockId { base, instance })
}

/// If `chars` ends with a bracketed index group, removes it and
/// returns its contents with whitespace stripped (so `i % K` and
/// `i%K` are the same instance).
fn pop_index_group(chars: &mut Vec<char>) -> Option<String> {
    if chars.last() != Some(&']') {
        return None;
    }
    let mut depth = 0i32;
    let mut group: Vec<char> = Vec::new();
    while let Some(c) = chars.pop() {
        match c {
            ']' => {
                depth += 1;
                if depth > 1 {
                    group.push(c);
                }
            }
            '[' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                group.push(c);
            }
            c if c.is_whitespace() => {}
            c => group.push(c),
        }
    }
    Some(group.iter().rev().collect())
}

/// Does `code` call the function `name` (as `name(` with a non-ident
/// char before it)?
fn calls(code: &str, name: &str) -> bool {
    let needle = format!("{name}(");
    let mut start = 0;
    while let Some(found) = code[start..].find(&needle) {
        let at = start + found;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        // Exclude the definition site itself.
        let is_def = code[..at].trim_end().ends_with("fn");
        if before_ok && !is_def {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// `let NAME = …` / `let mut NAME = …` → `Some(NAME)`.
fn let_binding(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String =
        rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    (!name.is_empty() && name != "_").then_some(name)
}

/// `drop(NAME)` → `Some(NAME)`.
fn drop_target(code: &str) -> Option<String> {
    let pos = code.find("drop(")?;
    let rest = &code[pos + 5..];
    let name: String =
        rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    let closes = rest[name.len()..].starts_with(')');
    (!name.is_empty() && closes).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan_one(text: &str) -> (LockGraph, Vec<Finding>) {
        let file = SourceFile::parse(PathBuf::from("t.rs"), text);
        scan_locks(&[("t.rs".to_string(), file)])
    }

    #[test]
    fn nested_acquisition_makes_an_edge() {
        let (graph, _) = scan_one(
            "fn f(&self) {\n    let a = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);\n    let b = self.beta.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
        );
        assert!(graph.edges.contains_key(&("alpha".to_string(), "beta".to_string())));
        assert!(graph.cycle_findings().is_empty());
    }

    #[test]
    fn opposite_orders_are_a_cycle() {
        let (graph, _) = scan_one(
            "fn f(&self) {\n    let a = self.alpha.lock().x();\n    let b = self.beta.lock().x();\n}\nfn g(&self) {\n    let b = self.beta.lock().x();\n    let a = self.alpha.lock().x();\n}\n",
        );
        let cycles = graph.cycle_findings();
        assert!(!cycles.is_empty(), "graph: {graph:?}");
    }

    #[test]
    fn drop_releases_the_guard() {
        let (graph, _) = scan_one(
            "fn f(&self) {\n    let a = self.alpha.lock().x();\n    drop(a);\n    let b = self.beta.lock().x();\n}\n",
        );
        assert!(graph.edges.is_empty(), "graph: {graph:?}");
    }

    #[test]
    fn scope_exit_releases_the_guard() {
        let (graph, _) = scan_one(
            "fn f(&self) {\n    {\n        let a = self.alpha.lock().x();\n    }\n    let b = self.beta.lock().x();\n}\n",
        );
        assert!(graph.edges.is_empty(), "graph: {graph:?}");
    }

    #[test]
    fn helper_counts_as_acquisition() {
        let (graph, _) = scan_one(
            "fn lock_faults(&self) -> MutexGuard<'_, FaultSet> {\n    self.faults.lock().unwrap_or_else(PoisonError::into_inner)\n}\nfn f(&self) {\n    let g = self.lock_faults();\n    let q = self.queue.lock().x();\n}\n",
        );
        assert!(graph.edges.contains_key(&("faults".to_string(), "queue".to_string())));
    }

    #[test]
    fn shard_index_resolves_to_an_instance_qualified_node() {
        let (graph, _) =
            scan_one("fn f(&self) {\n    let g = self.shards[i % K].lock().x();\n}\n");
        assert!(graph.nodes.contains("shards[i%K]"), "graph: {graph:?}");
    }

    #[test]
    fn per_shard_queue_field_keeps_the_instance_qualifier() {
        let (graph, _) =
            scan_one("fn f(&self) {\n    let g = self.shards[k].queue.lock().x();\n}\n");
        assert!(graph.nodes.contains("queue[k]"), "graph: {graph:?}");
    }

    #[test]
    fn steal_order_cycle_across_shard_instances_is_flagged() {
        // Worker A nests shards[a] → shards[b]; worker B nests the
        // opposite order. Before instance-aware nodes this was
        // invisible (same base name, pair dropped); now it is a cycle.
        let (graph, findings) = scan_one(
            "fn f(&self) {\n    let a = self.shards[a].lock().x();\n    let b = self.shards[b].lock().x();\n}\nfn g(&self) {\n    let b = self.shards[b].lock().x();\n    let a = self.shards[a].lock().x();\n}\n",
        );
        assert!(
            graph.edges.contains_key(&("shards[a]".to_string(), "shards[b]".to_string())),
            "graph: {graph:?}"
        );
        let cycles = graph.cycle_findings();
        assert!(!cycles.is_empty(), "graph: {graph:?}");
        // The nesting itself is also surfaced as instance-order warnings.
        assert!(findings.iter().any(|f| f.lint == "lock-instance-order"));
    }

    #[test]
    fn same_instance_reacquisition_is_a_reentry_error_not_a_cycle() {
        let (graph, findings) = scan_one(
            "fn f(&self) {\n    let a = self.shards[a].lock().x();\n    let b = self.shards[a].lock().x();\n}\n",
        );
        assert!(findings.iter().any(|f| f.lint == "lock-reentry"), "{findings:?}");
        assert!(graph.cycle_findings().is_empty(), "graph: {graph:?}");
    }

    #[test]
    fn one_direction_of_instance_nesting_is_a_warning_not_a_cycle() {
        let (graph, findings) = scan_one(
            "fn f(&self) {\n    let a = self.shards[a].lock().x();\n    let b = self.shards[b].lock().x();\n}\n",
        );
        assert!(findings.iter().any(|f| f.lint == "lock-instance-order"));
        assert!(graph.cycle_findings().is_empty(), "graph: {graph:?}");
    }

    #[test]
    fn unknown_instances_warn_without_fabricating_an_edge() {
        // Two unindexed same-base receivers: could be reentry, could be
        // ordered nesting — the scan cannot tell, so it warns and does
        // not invent a self-edge (which would read as a cycle).
        let (graph, findings) = scan_one(
            "fn f(&self) {\n    let a = left.shard.lock().x();\n    let b = right.shard.lock().x();\n}\n",
        );
        assert!(findings.iter().any(|f| f.lint == "lock-instance-order"));
        assert!(graph.edges.is_empty(), "graph: {graph:?}");
        assert!(graph.cycle_findings().is_empty());
    }

    #[test]
    fn instance_lints_respect_allow_markers() {
        let (_, findings) = scan_one(
            "fn f(&self) {\n    let a = self.shards[a].lock().x();\n    // analyze:allow(lock-instance-order): a < b by construction\n    let b = self.shards[b].lock().x();\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn lock_unwrap_is_flagged_outside_tests_only() {
        let (_, findings) = scan_one(
            "fn f(&self) {\n    let a = self.alpha.lock().unwrap();\n}\n#[cfg(test)]\nmod tests {\n    fn t(e: &E) { let a = e.alpha.lock().unwrap(); }\n}\n",
        );
        assert_eq!(findings.len(), 1, "findings: {findings:?}");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn sanctioned_idiom_is_clean() {
        let (_, findings) = scan_one(
            "fn f(&self) {\n    let a = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
        );
        assert!(findings.is_empty(), "findings: {findings:?}");
    }
}
