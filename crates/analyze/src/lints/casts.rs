//! Truncating-cast lint for routing hot paths.
//!
//! A destination tag, port index or switch index in this codebase is
//! bounded by `N = 2^MAX_N` with `MAX_N = 24`, so a narrowing `as`
//! cast to `u32` is *usually* fine — but `as` truncates silently, and
//! one mis-scoped cast on a tag turns a provably-correct route into a
//! wrong-output delivery with no panic. Every narrowing cast in a hot
//! path must therefore carry an
//! `// analyze:allow(truncating-cast): <why the value fits>` marker
//! stating its bound; unmarked ones are findings.

use crate::report::{Finding, Pillar};

use super::source::SourceFile;

/// Narrowing integer targets flagged by the lint.
const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Scans one file for unmarked narrowing `as` casts outside tests.
#[must_use]
pub fn scan_casts(display: &str, file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for ty in NARROW {
            if has_cast_to(&line.code, ty) && !file.allows(idx, "truncating-cast") {
                findings.push(Finding::error(
                    Pillar::Workspace,
                    "truncating-cast",
                    display,
                    idx + 1,
                    format!(
                        "narrowing `as {ty}` in a routing hot path; `as` truncates \
                         silently — justify the bound with an \
                         analyze:allow(truncating-cast) marker or use try_from"
                    ),
                ));
                break; // one finding per line is enough
            }
        }
    }
    findings
}

/// Does `code` contain ` as TY` with a token boundary after `TY`?
fn has_cast_to(code: &str, ty: &str) -> bool {
    let needle = format!(" as {ty}");
    let mut start = 0;
    while let Some(found) = code[start..].find(&needle) {
        let end = start + found + needle.len();
        let boundary =
            code[end..].chars().next().is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            return true;
        }
        start = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(text: &str) -> Vec<Finding> {
        let file = SourceFile::parse(PathBuf::from("t.rs"), text);
        scan_casts("t.rs", &file)
    }

    #[test]
    fn unmarked_narrowing_cast_is_flagged() {
        let findings = scan("fn f(x: usize) -> u32 { x as u32 }\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn widening_and_usize_casts_pass() {
        let findings = scan("fn f(x: u32) -> u64 { let y = x as usize; y as u64 }\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn marker_and_test_code_are_exempt() {
        let text = "fn f(x: usize) -> u32 {\n    x as u32 // analyze:allow(truncating-cast): x < 2^24\n}\n#[cfg(test)]\nmod tests {\n    fn t(x: usize) -> u32 { x as u32 }\n}\n";
        assert!(scan(text).is_empty());
    }

    #[test]
    fn u32x_simd_type_is_not_a_narrow_cast() {
        assert!(scan("let v = x as u32x4;\n").is_empty());
    }
}
