//! Shared source-scanning infrastructure for the workspace linter:
//! comment/string stripping, `#[cfg(test)]` region tracking, and the
//! `analyze:allow(<lint>)` sanction markers.
//!
//! This is a deliberately small lexer, not a parser: it distinguishes
//! code from comments, string/char literals and raw strings (so lint
//! patterns never fire inside them), counts braces to find test
//! modules, and nothing more. Anything it cannot express is handled by
//! an explicit allow marker at the flagged line.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code: comments removed, string/char literal contents
    /// blanked (quotes kept), so substring lints see only real tokens.
    pub code: String,
    /// The line's comment text (for allow-marker detection).
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` module.
    pub in_test: bool,
}

/// A scanned source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path as given to [`SourceFile::load`].
    pub path: PathBuf,
    /// Scanned lines, in order.
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Reads and scans one file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying read error.
    pub fn load(path: &Path) -> io::Result<Self> {
        Ok(Self::parse(path.to_path_buf(), &fs::read_to_string(path)?))
    }

    /// Scans source text (exposed for tests).
    #[must_use]
    pub fn parse(path: PathBuf, text: &str) -> Self {
        let mut lines = scan(text);
        mark_test_regions(&mut lines);
        Self { path, lines }
    }

    /// Whether `lint` is sanctioned at 0-based line `idx`: an
    /// `analyze:allow(<lint>)` marker in a comment on the same line, or
    /// on a comment-only line directly above (an inline marker blesses
    /// its own line only).
    #[must_use]
    pub fn allows(&self, idx: usize, lint: &str) -> bool {
        let marker = format!("analyze:allow({lint})");
        let same = self.lines.get(idx).is_some_and(|l| l.comment.contains(&marker));
        let above = idx > 0 && {
            let prev = &self.lines[idx - 1];
            prev.comment.contains(&marker) && prev.code.trim().is_empty()
        };
        same || above
    }
}

/// Lexer states.
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Splits `text` into per-line code and comment streams.
fn scan(text: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == 'r' && is_raw_string_start(&chars, i) {
                    let hashes = count_hashes(&chars, i + 1);
                    code.push('"');
                    state = State::RawStr(hashes);
                    i += 2 + hashes as usize; // r, hashes, opening quote
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal is 'x' or an
                    // escape; a lifetime has no closing quote nearby.
                    if next == Some('\\') {
                        code.push('\'');
                        state = State::Char;
                        i += 2; // skip the backslash so '\'' works
                    } else if chars.get(i + 2) == Some(&'\'') {
                        code.push_str("''");
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (blanked anyway)
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    code.push('"');
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            State::Char => {
                if c == '\'' {
                    code.push('\'');
                    state = State::Code;
                }
                i += 1;
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line { code, comment, in_test: false });
    }
    lines
}

/// Does `r` at `i` open a raw (possibly byte) string?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Not part of an identifier like `for` or `r2`.
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

/// Does the quote at `i` close a raw string with `hashes` hashes?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks lines inside `#[cfg(test)] mod … { … }` regions (brace-counted
/// on the stripped code).
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut region_floor: Option<i64> = None;
    for line in lines.iter_mut() {
        let code = line.code.trim();
        if region_floor.is_some() {
            line.in_test = true;
        }
        if region_floor.is_none() {
            if code.contains("#[cfg(test)]") {
                armed = true;
            } else if armed && !code.is_empty() && !code.starts_with("#[") {
                if code.contains("mod") && code.contains('{') {
                    line.in_test = true;
                    region_floor = Some(depth);
                }
                armed = false;
            }
        }
        depth += i64::from(opens(&line.code)) - i64::from(closes(&line.code));
        if let Some(floor) = region_floor {
            if depth <= floor {
                region_floor = None;
            }
        }
    }
}

fn opens(code: &str) -> u32 {
    code.chars().filter(|&c| c == '{').count() as u32 // analyze:allow(truncating-cast): a line has far fewer than 2^32 braces
}

fn closes(code: &str) -> u32 {
    code.chars().filter(|&c| c == '}').count() as u32 // analyze:allow(truncating-cast): a line has far fewer than 2^32 braces
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("test.rs"), text)
    }

    #[test]
    fn comments_and_strings_are_stripped_from_code() {
        let f = parse("let x = \"as u32\"; // as u32 here\nlet y = 1;\n");
        assert!(!f.lines[0].code.contains("as u32"));
        assert!(f.lines[0].code.contains("let x"));
        assert!(f.lines[0].comment.contains("as u32"));
        assert_eq!(f.lines[1].code.trim(), "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let f = parse(
            "let s = r#\"x.lock().unwrap()\"#;\nlet c = '{'; let l: &'static str = \"\";\n",
        );
        assert!(!f.lines[0].code.contains("unwrap"));
        // The brace inside the char literal must not skew depth counts.
        assert_eq!(opens(&f.lines[1].code), 0);
        assert!(f.lines[1].code.contains("&'static"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = parse("a /* one /* two */ still */ b\n/* open\n.lock().unwrap()\n*/ c\n");
        assert!(f.lines[0].code.contains('a') && f.lines[0].code.contains('b'));
        assert!(!f.lines[2].code.contains("unwrap"));
        assert!(f.lines[3].code.contains('c'));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let text = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\nfn after() {}\n";
        let f = parse(text);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test, "body of the test module");
        assert!(!f.lines[5].in_test, "code after the module");
    }

    #[test]
    fn cfg_test_statement_does_not_open_a_region() {
        let text = "fn f() {\n    #[cfg(test)]\n    hooks::arm();\n    work();\n}\n";
        let f = parse(text);
        assert!(f.lines.iter().all(|l| !l.in_test));
    }

    #[test]
    fn allow_markers_cover_same_and_next_line() {
        let text = "// analyze:allow(truncating-cast): bounded\nlet a = x as u32;\nlet b = y as u32; // analyze:allow(truncating-cast): bounded\nlet c = z as u32;\n";
        let f = parse(text);
        assert!(f.allows(1, "truncating-cast"));
        assert!(f.allows(2, "truncating-cast"));
        assert!(!f.allows(3, "truncating-cast"));
        assert!(!f.allows(1, "lock-unwrap"));
    }
}
