//! Pillar 2: offline workspace lints over the repository's own source.
//!
//! Everything here reads `.rs` files straight off disk — no rustc, no
//! cargo metadata, no new dependencies — and enforces invariants that
//! the type system cannot: lock-acquisition ordering across the
//! multi-threaded engine, instance-aware so per-shard mutexes are
//! distinct nodes ([`locks`]), poison-handling discipline ([`locks`]),
//! condvar parks outside a predicate re-check loop ([`condvar`]),
//! relaxed atomic read-modify-writes whose results feed control
//! decisions ([`atomics`]), silently-truncating index casts in routing
//! hot paths ([`casts`]), and silently-discarded `Result`s in engine
//! job paths ([`results`]). The shared lexer lives in [`source`].
//!
//! Exemptions are explicit and greppable: a flagged line is sanctioned
//! by an `// analyze:allow(<lint>): <reason>` comment on the same line
//! or directly above, so every suppression documents its own bound.

pub mod atomics;
pub mod casts;
pub mod condvar;
pub mod locks;
pub mod results;
pub mod source;

use std::io;
use std::path::{Path, PathBuf};

use crate::report::Finding;
use locks::LockGraph;
use source::SourceFile;

/// Net brace delta of a stripped code line (`{` minus `}`).
pub(crate) fn source_brace_delta(code: &str) -> i32 {
    let mut delta = 0;
    for c in code.chars() {
        match c {
            '{' => delta += 1,
            '}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// Files covered by the lock and discarded-result lints: the whole
/// multi-threaded engine.
const LOCK_SCOPE: &[&str] = &["crates/engine/src"];

/// Files covered by the truncating-cast lint: the routing hot paths.
const CAST_SCOPE: &[&str] = &[
    "crates/core/src/network.rs",
    "crates/core/src/selfroute.rs",
    "crates/core/src/topology.rs",
    "crates/core/src/faults.rs",
    "crates/core/src/waksman.rs",
    "crates/engine/src",
];

/// Collects `.rs` files for a scope entry (a file, or a directory
/// scanned one level deep), as `(display, absolute)` pairs.
fn collect(root: &Path, entry: &str) -> io::Result<Vec<(String, PathBuf)>> {
    let abs = root.join(entry);
    let mut out = Vec::new();
    if abs.is_dir() {
        let mut names: Vec<_> = std::fs::read_dir(&abs)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        names.sort();
        for path in names {
            let file = path.file_name().and_then(|f| f.to_str()).unwrap_or("?");
            out.push((format!("{entry}/{file}"), path));
        }
    } else if abs.is_file() {
        out.push((entry.to_string(), abs));
    }
    Ok(out)
}

/// Runs every workspace lint from the repository root. Returns the
/// findings plus the lock-acquisition graph (reported even when clean,
/// so the CLI can show what was proven).
///
/// # Errors
///
/// Propagates I/O errors from reading source files; a missing scope
/// entry is not an error (the repo may grow or shrink).
pub fn lint_workspace(root: &Path) -> io::Result<(Vec<Finding>, LockGraph)> {
    let mut findings = Vec::new();

    let mut lock_files = Vec::new();
    for entry in LOCK_SCOPE {
        for (display, path) in collect(root, entry)? {
            lock_files.push((display, SourceFile::load(&path)?));
        }
    }
    let (graph, lock_findings) = locks::scan_locks(&lock_files);
    findings.extend(lock_findings);
    findings.extend(graph.cycle_findings());
    for (display, file) in &lock_files {
        findings.extend(results::scan_discards(display, file));
        findings.extend(condvar::scan_condvar_waits(display, file));
        findings.extend(atomics::scan_relaxed_control(display, file));
    }

    for entry in CAST_SCOPE {
        for (display, path) in collect(root, entry)? {
            let file = SourceFile::load(&path)?;
            findings.extend(casts::scan_casts(&display, &file));
        }
    }
    Ok((findings, graph))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shipped tree must lint clean: every remaining narrow cast
    /// and discard carries a justification marker, the engine holds no
    /// two locks in conflicting orders, and poison recovery goes
    /// through the sanctioned helper idiom.
    #[test]
    fn shipped_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let (findings, graph) = lint_workspace(&root).expect("workspace readable");
        assert!(findings.is_empty(), "workspace findings:\n{findings:#?}");
        // The engine's locks exist and are seen by the analysis.
        assert!(graph.nodes.contains("queue"), "graph: {graph:?}");
        assert!(graph.nodes.contains("faults"), "graph: {graph:?}");
    }
}
