//! Pillar 1: the symbolic dataflow checker.
//!
//! Everything here reasons about the *wiring description* of `B(n)`
//! ([`benes_core::topology`]) and a switch-state matrix — no record is
//! ever pushed through the circuit model. The checker walks the network
//! stage by stage propagating destination-bit constraints:
//!
//! * [`symbolic_realized`] composes the per-stage transpositions and
//!   link permutations to *prove* which permutation a settings matrix
//!   realizes — the static replacement for replaying a plan;
//! * [`analyze_self_route`] / [`analyze_omega_route`] derive the
//!   settings the Fig. 3 rule would command and report every **split
//!   conflict** (a subnetwork of the Fig. 1 recursion handed the same
//!   reduced destination tag twice — exactly the failure mode of
//!   Theorem 1), so conflict-freeness is equivalent to delivery;
//! * [`stage_bit_deviations`] verifies the stage-bit invariant: stage
//!   `b` and stage `2n−2−b` keyed on destination bit `b`;
//! * [`fault_disagreements`] / [`symbolic_realized_with_faults`] decide
//!   in `O(|faults|)` (plus one symbolic composition) whether a plan
//!   survives a degraded fabric — the static check the engine now uses
//!   in place of cache-replay validation;
//! * [`check_plan`] applies the lot to a [`benes_engine::Plan`].

use benes_core::faults::FaultSet;
use benes_core::topology;
use benes_core::{SwitchSettings, SwitchState};
use benes_engine::Plan;
use benes_perm::Permutation;

use crate::report::{Finding, Pillar};

/// The network order of a permutation, for the checker's entry points.
///
/// # Panics
///
/// Panics if `d.len()` is not `2^n` with `n ≥ 1` — callers validate
/// lengths at their API boundary (CLI parsing, engine planning).
#[must_use]
fn order_of(d: &Permutation) -> u32 {
    d.log2_len()
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| panic!("length {} is not 2^n with n >= 1", d.len()))
}

/// Computes the permutation a settings matrix realizes, purely
/// symbolically: each stage is a product of disjoint transpositions
/// (one per crossed switch) and each link is a fixed permutation from
/// [`topology::build_links`]; their composition is the realized routing.
///
/// Agrees with `Benes::realized_permutation` bit for bit (the property
/// tests prove it for n ≤ 8) while never constructing a network.
#[must_use]
pub fn symbolic_realized(settings: &SwitchSettings) -> Permutation {
    let n = settings.n();
    let nn = topology::terminal_count(n);
    let stages = topology::stage_count(n);
    let links = topology::build_links(n);
    // at[p] = the input whose record would occupy port p.
    let mut at: Vec<u32> = (0..nn as u32).collect();
    for s in 0..stages {
        for i in 0..nn / 2 {
            if settings.get(s, i) == SwitchState::Cross {
                at.swap(2 * i, 2 * i + 1);
            }
        }
        if s + 1 < stages {
            let link = &links[s];
            let mut next = vec![0u32; nn];
            for (p, &v) in at.iter().enumerate() {
                next[link[p] as usize] = v;
            }
            at = next;
        }
    }
    let mut dest = vec![0u32; nn];
    for (o, &i) in at.iter().enumerate() {
        dest[i as usize] = o as u32;
    }
    Permutation::from_destinations(dest).expect("switch settings always permute")
}

/// The verdict of [`check_settings`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SettingsVerdict {
    /// The matrix provably realizes the claimed permutation.
    Realizes,
    /// The matrix realizes a *different* permutation (reported).
    Misroutes {
        /// What the settings actually realize.
        realized: Permutation,
    },
}

/// Statically decides whether `settings` realize `claimed`.
///
/// # Panics
///
/// Panics if `claimed.len()` does not match the settings' order.
#[must_use]
pub fn check_settings(settings: &SwitchSettings, claimed: &Permutation) -> SettingsVerdict {
    assert_eq!(
        claimed.len(),
        topology::terminal_count(settings.n()),
        "claimed permutation length must match the settings' order"
    );
    let realized = symbolic_realized(settings);
    if realized == *claimed {
        SettingsVerdict::Realizes
    } else {
        SettingsVerdict::Misroutes { realized }
    }
}

/// A split conflict: at depth `stage + 1` of the Fig. 1 recursion, one
/// subnetwork was handed the same reduced destination tag twice — the
/// exact violation Theorem 1 forbids, detected without simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The stage whose output split produced the duplicate.
    pub stage: usize,
    /// Which subnetwork (block index at depth `stage + 1`).
    pub block: usize,
    /// The duplicated reduced tag (destination `>> (stage + 1)`).
    pub reduced_tag: u32,
    /// The two ports (in the depth-`stage + 1` layout) carrying it.
    pub ports: (usize, usize),
}

impl std::fmt::Display for Conflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "after stage {} subnetwork {} receives reduced tag {} on ports {} and {}",
            self.stage, self.block, self.reduced_tag, self.ports.0, self.ports.1
        )
    }
}

/// The result of symbolically running the destination-tag rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfRouteAnalysis {
    n: u32,
    /// The switch states the Fig. 3 rule commands.
    pub settings: SwitchSettings,
    /// The destination tag arriving at each output terminal.
    pub outputs: Vec<u32>,
    /// Every split conflict encountered (empty ⇔ `D ∈ F(n)` for the
    /// plain walk, `D ∈ Ω(n)` for the omega walk).
    pub conflicts: Vec<Conflict>,
}

impl SelfRouteAnalysis {
    /// The network order.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Whether every tag reaches the output it names.
    #[must_use]
    pub fn delivers(&self) -> bool {
        self.outputs.iter().enumerate().all(|(o, &t)| o as u32 == t)
    }

    /// Whether no subnetwork ever saw a duplicated reduced tag. By
    /// Theorem 1 this is equivalent to [`SelfRouteAnalysis::delivers`];
    /// the property tests assert the equivalence bit for bit.
    #[must_use]
    pub fn is_conflict_free(&self) -> bool {
        self.conflicts.is_empty()
    }
}

/// The shared walk: propagate tags, command switches by the control bit
/// (stages below `forced_straight` are pinned straight), and record
/// duplicate reduced tags at every split of the recursion.
fn analyze_tag_route(d: &Permutation, forced_straight: usize) -> SelfRouteAnalysis {
    let n = order_of(d);
    let nn = topology::terminal_count(n);
    let stages = topology::stage_count(n);
    let links = topology::build_links(n);
    let mut tags: Vec<u32> = d.destinations().to_vec();
    let mut settings = SwitchSettings::all_straight(n);
    let mut conflicts = Vec::new();
    for s in 0..stages {
        let bit = topology::control_bit(n, s);
        for i in 0..nn / 2 {
            let state = if s < forced_straight {
                SwitchState::Straight
            } else {
                SwitchState::from_bit(u64::from((tags[2 * i] >> bit) & 1))
            };
            settings.set(s, i, state);
            if state == SwitchState::Cross {
                tags.swap(2 * i, 2 * i + 1);
            }
        }
        if s + 1 < stages {
            let link = &links[s];
            let mut next = vec![0u32; nn];
            for (p, &t) in tags.iter().enumerate() {
                next[link[p] as usize] = t;
            }
            tags = next;
        }
        // The first n−1 links split the traffic into the recursion's
        // subnetworks; at depth s+1 each block of ports must hold a full
        // set of reduced tags. A duplicate here is the Theorem 1
        // violation that dooms the route — no simulation required.
        if s < n as usize - 1 {
            let depth = s + 1;
            let bsize = nn >> depth;
            for b in 0..(1usize << depth) {
                let mut seen = vec![usize::MAX; bsize];
                for off in 0..bsize {
                    let port = b * bsize + off;
                    let reduced = (tags[port] >> depth) as usize;
                    if seen[reduced] == usize::MAX {
                        seen[reduced] = port;
                    } else {
                        conflicts.push(Conflict {
                            stage: s,
                            block: b,
                            reduced_tag: reduced as u32,
                            ports: (seen[reduced], port),
                        });
                    }
                }
            }
        }
    }
    SelfRouteAnalysis { n, settings, outputs: tags, conflicts }
}

/// Symbolically runs the Fig. 3 self-routing rule for `D` and reports
/// the commanded settings, the arrival tags, and every split conflict.
/// `D ∈ F(n)` iff the analysis is conflict-free.
///
/// # Panics
///
/// Panics if `d.len()` is not `2^n` with `n ≥ 1`.
#[must_use]
pub fn analyze_self_route(d: &Permutation) -> SelfRouteAnalysis {
    analyze_tag_route(d, 0)
}

/// Symbolically runs the omega-bit variant (stages `0..n−1` forced
/// straight). `D ∈ Ω(n)` iff the analysis is conflict-free.
///
/// # Panics
///
/// Panics if `d.len()` is not `2^n` with `n ≥ 1`.
#[must_use]
pub fn analyze_omega_route(d: &Permutation) -> SelfRouteAnalysis {
    let n = order_of(d);
    analyze_tag_route(d, n as usize - 1)
}

/// One switch whose commanded state is not what the stage's control bit
/// dictates for the tag crossing its upper input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageBitDeviation {
    /// Stage of the deviating switch.
    pub stage: usize,
    /// Switch index within the stage.
    pub switch: usize,
    /// What the settings matrix commands.
    pub commanded: SwitchState,
    /// What the stage-bit rule would command (bit `min(s, 2n−2−s)` of
    /// the upper input's destination tag).
    pub keyed: SwitchState,
}

/// Verifies the stage-bit invariant of a settings matrix against `d`:
/// propagating `d`'s destination tags *under the given settings*, every
/// switch of stage `s` should hold bit `min(s, 2n−2−s)` of its upper
/// input's tag. Self-routed settings have zero deviations; externally
/// planned (Waksman) settings may deviate — each deviation is reported
/// with its coordinates.
///
/// # Panics
///
/// Panics if `d.len()` does not match the settings' order.
#[must_use]
pub fn stage_bit_deviations(
    settings: &SwitchSettings,
    d: &Permutation,
) -> Vec<StageBitDeviation> {
    let n = settings.n();
    assert_eq!(
        d.len(),
        topology::terminal_count(n),
        "permutation length must match the settings' order"
    );
    let nn = topology::terminal_count(n);
    let stages = topology::stage_count(n);
    let links = topology::build_links(n);
    let mut tags: Vec<u32> = d.destinations().to_vec();
    let mut deviations = Vec::new();
    for s in 0..stages {
        let bit = topology::control_bit(n, s);
        for i in 0..nn / 2 {
            let commanded = settings.get(s, i);
            let keyed = SwitchState::from_bit(u64::from((tags[2 * i] >> bit) & 1));
            if commanded != keyed {
                deviations.push(StageBitDeviation {
                    stage: s,
                    switch: i,
                    commanded,
                    keyed,
                });
            }
            if commanded == SwitchState::Cross {
                tags.swap(2 * i, 2 * i + 1);
            }
        }
        if s + 1 < stages {
            let link = &links[s];
            let mut next = vec![0u32; nn];
            for (p, &t) in tags.iter().enumerate() {
                next[link[p] as usize] = t;
            }
            tags = next;
        }
    }
    deviations
}

/// One registered fault whose forced state contradicts the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDisagreement {
    /// Stage of the faulty switch.
    pub stage: usize,
    /// Switch index within the stage.
    pub switch: usize,
    /// What the plan commands.
    pub commanded: SwitchState,
    /// The stuck state, or `None` for a dead switch (which never
    /// agrees with any plan).
    pub forced: Option<SwitchState>,
}

/// Lists every registered fault that disagrees with `settings` — the
/// itemized form of [`FaultSet::agrees_with`]. Empty means the fault
/// overlay is a no-op on this plan: whatever the plan realizes on a
/// healthy fabric, it realizes identically on this degraded one.
#[must_use]
pub fn fault_disagreements(
    settings: &SwitchSettings,
    faults: &FaultSet,
) -> Vec<FaultDisagreement> {
    faults
        .disagreements(settings)
        .into_iter()
        .map(|(stage, switch, commanded, forced)| FaultDisagreement {
            stage,
            switch,
            commanded,
            forced,
        })
        .collect()
}

/// The permutation `settings` realize on the fabric degraded by
/// `faults`, computed symbolically: overlay the stuck states, then
/// compose stages and links. Returns `None` when the set contains a
/// dead switch (no permutation is realized — the pair of records is
/// lost, which no overlay models).
///
/// # Panics
///
/// Panics if `faults.n() != settings.n()`.
#[must_use]
pub fn symbolic_realized_with_faults(
    settings: &SwitchSettings,
    faults: &FaultSet,
) -> Option<Permutation> {
    assert_eq!(faults.n(), settings.n(), "fault set and settings must share an order");
    if faults.has_dead() {
        return None;
    }
    Some(symbolic_realized(&faults.apply_to(settings)))
}

/// Statically audits one engine [`Plan`] for permutation `d` under an
/// optional fault set, returning findings (empty = the plan provably
/// serves `d` on that fabric). This is the checker behind the engine's
/// replay-free validation of cached plans on degraded fabrics.
///
/// # Panics
///
/// Panics if `d.len()` is not `2^n` with `n ≥ 1` or mismatches the
/// plan's order.
#[must_use]
pub fn check_plan(plan: &Plan, d: &Permutation, faults: Option<&FaultSet>) -> Vec<Finding> {
    let n = order_of(d);
    let loc = format!("B({n})");
    let mut findings = Vec::new();
    let derived = match plan {
        Plan::SelfRoute => {
            let a = analyze_self_route(d);
            for c in &a.conflicts {
                findings.push(Finding::error(
                    Pillar::Domain,
                    "self-route-conflict",
                    &loc,
                    0,
                    format!("plan claims D ∈ F({n}) but {c}"),
                ));
            }
            Some(a.settings)
        }
        Plan::OmegaBit => {
            let a = analyze_omega_route(d);
            for c in &a.conflicts {
                findings.push(Finding::error(
                    Pillar::Domain,
                    "omega-route-conflict",
                    &loc,
                    0,
                    format!("plan claims D ∈ Ω({n}) but {c}"),
                ));
            }
            Some(a.settings)
        }
        Plan::Settings(settings) => {
            if let SettingsVerdict::Misroutes { realized } = check_settings(settings, d) {
                findings.push(Finding::error(
                    Pillar::Domain,
                    "settings-misroute",
                    &loc,
                    0,
                    format!("cached settings realize {realized}, not {d}"),
                ));
            }
            Some(settings.clone())
        }
        Plan::TwoPass { first, second } => {
            if first.then(second) != *d {
                findings.push(Finding::error(
                    Pillar::Domain,
                    "factorization-mismatch",
                    &loc,
                    0,
                    format!("two-pass factors compose to {}, not {d}", first.then(second)),
                ));
            }
            for c in &analyze_self_route(first).conflicts {
                findings.push(Finding::error(
                    Pillar::Domain,
                    "self-route-conflict",
                    &loc,
                    0,
                    format!("two-pass first factor outside F({n}): {c}"),
                ));
            }
            for c in &analyze_omega_route(second).conflicts {
                findings.push(Finding::error(
                    Pillar::Domain,
                    "omega-route-conflict",
                    &loc,
                    0,
                    format!("two-pass second factor outside Ω({n}): {c}"),
                ));
            }
            // Two passes command different settings; fault agreement is
            // per pass and already covered by the conflict checks above.
            None
        }
    };
    if let (Some(settings), Some(faults)) = (derived, faults) {
        for dis in fault_disagreements(&settings, faults) {
            let forced =
                dis.forced.map_or_else(|| "dead".to_string(), |s| format!("stuck {s:?}"));
            findings.push(Finding::error(
                Pillar::Domain,
                "fault-disagreement",
                format!("B({n}) stage {} switch {}", dis.stage, dis.switch),
                0,
                format!(
                    "plan commands {:?} but the switch is {forced}; the plan cannot \
                     serve {d} on this fabric",
                    dis.commanded
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use benes_core::faults::FaultKind;
    use benes_core::waksman;
    use benes_core::Benes;

    fn p(v: &[u32]) -> Permutation {
        Permutation::from_destinations(v.to_vec()).unwrap()
    }

    #[test]
    fn symbolic_realized_matches_replay_on_waksman_settings() {
        let d = p(&[2, 5, 3, 7, 1, 6, 4, 0]);
        let settings = waksman::setup(&d).unwrap();
        assert_eq!(symbolic_realized(&settings), d);
        assert_eq!(check_settings(&settings, &d), SettingsVerdict::Realizes);
        let wrong = Permutation::identity(8);
        match check_settings(&settings, &wrong) {
            SettingsVerdict::Misroutes { realized } => assert_eq!(realized, d),
            SettingsVerdict::Realizes => panic!("must misroute the identity claim"),
        }
    }

    #[test]
    fn fig4_bit_reversal_is_conflict_free() {
        // Fig. 4 of the paper: the bit-reversal self-routes on B(3).
        let a = analyze_self_route(&p(&[0, 4, 2, 6, 1, 5, 3, 7]));
        assert!(a.is_conflict_free());
        assert!(a.delivers());
        assert!(stage_bit_deviations(&a.settings, &p(&[0, 4, 2, 6, 1, 5, 3, 7])).is_empty());
    }

    #[test]
    fn fig5_failure_is_detected_statically() {
        // Fig. 5: D = (1, 3, 2, 0) is outside F(2); the simulation
        // delivers (2, 1, 0, 3). The static walk must agree exactly.
        let d = p(&[1, 3, 2, 0]);
        let a = analyze_self_route(&d);
        assert!(!a.delivers());
        assert!(!a.is_conflict_free());
        assert_eq!(a.outputs, vec![2, 1, 0, 3]);
        // …and the omega walk proves the same D is in Ω(2).
        let o = analyze_omega_route(&d);
        assert!(o.delivers());
        assert!(o.is_conflict_free());
    }

    #[test]
    fn waksman_settings_for_non_f_perms_deviate_from_the_stage_bit_rule() {
        let d = p(&[1, 3, 2, 0]);
        let settings = waksman::setup(&d).unwrap();
        assert_eq!(check_settings(&settings, &d), SettingsVerdict::Realizes);
        assert!(
            !stage_bit_deviations(&settings, &d).is_empty(),
            "a permutation outside F(n) cannot satisfy the stage-bit invariant"
        );
    }

    #[test]
    fn fault_agreement_is_itemized() {
        let d = p(&[2, 5, 3, 7, 1, 6, 4, 0]);
        let settings = waksman::setup(&d).unwrap();
        let mut faults = FaultSet::new(3);
        // Agreeing fault: stuck at exactly the commanded state.
        let agree = match settings.get(0, 0) {
            SwitchState::Straight => FaultKind::StuckStraight,
            SwitchState::Cross => FaultKind::StuckCross,
        };
        faults.insert(0, 0, agree).unwrap();
        assert!(fault_disagreements(&settings, &faults).is_empty());
        assert_eq!(symbolic_realized_with_faults(&settings, &faults), Some(d.clone()));

        // Disagreeing fault: the opposite state.
        let disagree = match settings.get(1, 1) {
            SwitchState::Straight => FaultKind::StuckCross,
            SwitchState::Cross => FaultKind::StuckStraight,
        };
        faults.insert(1, 1, disagree).unwrap();
        let dis = fault_disagreements(&settings, &faults);
        assert_eq!(dis.len(), 1);
        assert_eq!((dis[0].stage, dis[0].switch), (1, 1));
        let realized = symbolic_realized_with_faults(&settings, &faults).unwrap();
        assert_ne!(realized, d, "a disagreeing overlay changes the routing");
        // A dead switch has no realized permutation at all.
        faults.insert(2, 0, FaultKind::Dead).unwrap();
        assert_eq!(symbolic_realized_with_faults(&settings, &faults), None);
        assert_eq!(fault_disagreements(&settings, &faults).len(), 2);
    }

    #[test]
    fn check_plan_flags_each_plan_shape() {
        let net = Benes::new(2);
        let d = p(&[1, 3, 2, 0]); // outside F(2), inside Ω(2)
        assert!(!check_plan(&Plan::SelfRoute, &d, None).is_empty());
        assert!(check_plan(&Plan::OmegaBit, &d, None).is_empty());
        let good = waksman::setup(&d).unwrap();
        assert!(check_plan(&Plan::Settings(good.clone()), &d, None).is_empty());
        let bad = SwitchSettings::all_straight(2);
        assert!(!check_plan(&Plan::Settings(bad), &d, None).is_empty());
        // Fault disagreement on an otherwise good plan is reported.
        let mut faults = FaultSet::new(2);
        let opposite = match good.get(0, 0) {
            SwitchState::Straight => FaultKind::StuckCross,
            SwitchState::Cross => FaultKind::StuckStraight,
        };
        faults.insert(0, 0, opposite).unwrap();
        let findings = check_plan(&Plan::Settings(good), &d, Some(&faults));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "fault-disagreement");
        // Sanity: the checker's notion of realization matches the net.
        assert_eq!(net.realized_permutation(&waksman::setup(&d).unwrap()).unwrap(), d);
    }
}
