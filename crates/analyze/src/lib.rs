//! Static analysis for the self-routing Benes workspace: prove routing
//! facts **without running the network**, and lint the workspace's own
//! invariants **without running the compiler**.
//!
//! The paper's central move is that control of `B(n)` can be decided
//! locally — stage `s` keys on destination-tag bit `min(s, 2n−2−s)`,
//! and Theorem 1 characterizes exactly which permutations survive that
//! rule. Those are *static* statements: they constrain the switch-state
//! matrix itself, not any particular signal propagation. This crate
//! takes them at their word, in two pillars:
//!
//! * **Pillar 1 — domain checks** ([`plancheck`], [`certify`],
//!   [`netlist_lint`]): a symbolic dataflow walk over a `SwitchMatrix`
//!   that proves conflict-freeness and permutation realization by
//!   composing transpositions (no simulation), verifies the stage-bit
//!   invariant, checks `F(n)` membership certificates and the
//!   BPC/inverse-omega closed forms against Theorem 1's recursion,
//!   statically validates cached plans against a `FaultSet`, and lints
//!   synthesized netlists for loops, width mismatches and fanout
//!   violations.
//! * **Pillar 2 — workspace lints** ([`lints`]): an offline,
//!   no-new-dependency source analyzer that builds the engine's
//!   lock-acquisition graph (flagging order cycles), enforces the
//!   poison-recovery idiom, and requires justification markers on
//!   narrowing index casts and discarded `Result`s in hot paths.
//!
//! Both pillars speak [`report::Finding`]; `benes-cli analyze` and
//! `scripts/analyze.sh` drive them as a tier-1 gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod lints;
pub mod netlist_lint;
pub mod plancheck;
pub mod report;

pub use certify::{certify_f, closed_form_findings, FCertificate};
pub use lints::lint_workspace;
pub use lints::locks::LockGraph;
pub use netlist_lint::{lint_gate_benes, lint_netlist};
pub use plancheck::{
    analyze_omega_route, analyze_self_route, check_plan, check_settings,
    fault_disagreements, stage_bit_deviations, symbolic_realized,
    symbolic_realized_with_faults, Conflict, FaultDisagreement, SelfRouteAnalysis,
    SettingsVerdict, StageBitDeviation,
};
pub use report::{render_human, render_json_lines, Finding, Pillar, Severity};
