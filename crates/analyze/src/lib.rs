//! Static analysis for the self-routing Benes workspace: prove routing
//! facts **without running the network**, and lint the workspace's own
//! invariants **without running the compiler**.
//!
//! The paper's central move is that control of `B(n)` can be decided
//! locally — stage `s` keys on destination-tag bit `min(s, 2n−2−s)`,
//! and Theorem 1 characterizes exactly which permutations survive that
//! rule. Those are *static* statements: they constrain the switch-state
//! matrix itself, not any particular signal propagation. This crate
//! takes them at their word, in two pillars:
//!
//! * **Pillar 1 — domain checks** ([`plancheck`], [`certify`],
//!   [`netlist_lint`]): a symbolic dataflow walk over a `SwitchMatrix`
//!   that proves conflict-freeness and permutation realization by
//!   composing transpositions (no simulation), verifies the stage-bit
//!   invariant, checks `F(n)` membership certificates and the
//!   BPC/inverse-omega closed forms against Theorem 1's recursion,
//!   statically validates cached plans against a `FaultSet`, and lints
//!   synthesized netlists for loops, width mismatches and fanout
//!   violations.
//! * **Pillar 2 — workspace lints** ([`lints`]): an offline,
//!   no-new-dependency source analyzer that builds the engine's
//!   instance-aware lock-acquisition graph (flagging order cycles,
//!   same-lock reentry and unprovable cross-instance nesting),
//!   enforces the poison-recovery idiom, flags condvar waits outside a
//!   predicate re-check loop and relaxed atomic RMWs whose results
//!   feed control decisions, and requires justification markers on
//!   narrowing index casts and discarded `Result`s in hot paths.
//! * **Pillar 3 — concurrency and kernel proofs** ([`model`], [`sym`],
//!   [`wordproof`]): an exhaustive-interleaving model checker over a
//!   faithful abstraction of the engine's sharded submission queue
//!   (request conservation, deadlock freedom, no lost wakeups — with
//!   seeded-mutant self-tests and counterexample traces), and a
//!   symbolic bit-plane prover that certifies the word-parallel
//!   routing kernels (including fault overlays) element-wise
//!   equivalent to the scalar oracle for every `n ≤ 8` by abstract
//!   evaluation — zero sampled inputs.
//!
//! All three pillars speak [`report::Finding`]; `benes-cli analyze`,
//! `scripts/analyze.sh` and `scripts/race.sh` drive them as tier-1
//! gates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod lints;
pub mod model;
pub mod netlist_lint;
pub mod plancheck;
pub mod report;
pub mod sym;
pub mod wordproof;

pub use certify::{certify_f, closed_form_findings, FCertificate};
pub use lints::lint_workspace;
pub use lints::locks::LockGraph;
pub use model::queue::{concurrency_findings, Protocol, ProtocolReport};
pub use model::{Counterexample, Exploration};
pub use netlist_lint::{lint_gate_benes, lint_netlist};
pub use plancheck::{
    analyze_omega_route, analyze_self_route, check_plan, check_settings,
    fault_disagreements, stage_bit_deviations, symbolic_realized,
    symbolic_realized_with_faults, Conflict, FaultDisagreement, SelfRouteAnalysis,
    SettingsVerdict, StageBitDeviation,
};
pub use report::{render_human, render_json_lines, Finding, Pillar, Severity};
pub use wordproof::{prove_all, prove_word_kernel, WordCertificate, WordDivergence};
