//! Small-support symbolic booleans for the word-kernel prover.
//!
//! The word≡scalar proof ([`crate::wordproof`]) cuts the network at every
//! stage boundary, so each formula it ever compares depends on at most a
//! handful of variables: the two paired tag bits, the upper control bit,
//! and the two fault bits of one switch. A boolean function over ≤ 6
//! variables fits in one `u64` truth table, which makes a *semantic
//! canonical form* practical: every [`Sym`] stores its sorted support with
//! don't-care variables removed and its full truth table. Two `Sym`s are
//! then equal **as functions** iff they are equal as values — equivalence
//! checking is `==`, and there is no room for a prover bug to hide in an
//! incomplete normalization. This is abstract evaluation, not sampling:
//! the table rows range over *all* assignments of the support.

use std::fmt;

/// Maximum support per function. The prover's cut-point discipline keeps
/// every formula within this bound; exceeding it is a prover bug and
/// panics loudly rather than degrading to an unsound comparison.
pub const MAX_SUPPORT: usize = 6;

/// A named symbolic variable of the word-kernel proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SymVar {
    /// Bit `bit` of the destination tag sitting at flattened position
    /// `flat` at the current stage cut.
    Data {
        /// Flattened (butterfly) position of the tag.
        flat: u16,
        /// Which bit of the tag.
        bit: u8,
    },
    /// One of the two fault-configuration bits of a switch. `which = 0`
    /// is the "stuck" bit `a`, `which = 1` is the auxiliary bit `b`:
    /// healthy = (0,0), stuck-straight = (1,0), stuck-cross = (1,1),
    /// dead = (0,1).
    Fault {
        /// Stage of the switch.
        stage: u8,
        /// Switch index within the stage.
        switch: u16,
        /// 0 for `a`, 1 for `b`.
        which: u8,
    },
}

const FILL: SymVar = SymVar::Data { flat: 0, bit: 0 };

/// A boolean function of at most [`MAX_SUPPORT`] variables in semantic
/// canonical form: sorted minimal support plus full truth table. Row `k`
/// of the table assigns variable `vars[i]` the value of bit `i` of `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sym {
    len: u8,
    vars: [SymVar; MAX_SUPPORT],
    table: u64,
}

fn row_mask(len: u8) -> u64 {
    if len >= 6 {
        u64::MAX
    } else {
        (1u64 << (1u32 << len)) - 1
    }
}

impl Sym {
    /// The constant `false`.
    #[must_use]
    pub fn falsehood() -> Self {
        Self { len: 0, vars: [FILL; MAX_SUPPORT], table: 0 }
    }

    /// The constant `true`.
    #[must_use]
    pub fn truth() -> Self {
        Self { len: 0, vars: [FILL; MAX_SUPPORT], table: 1 }
    }

    /// A boolean constant.
    #[must_use]
    pub fn constant(b: bool) -> Self {
        if b {
            Self::truth()
        } else {
            Self::falsehood()
        }
    }

    /// The projection onto one variable.
    #[must_use]
    pub fn var(v: SymVar) -> Self {
        let mut vars = [FILL; MAX_SUPPORT];
        vars[0] = v;
        Self { len: 1, vars, table: 0b10 }
    }

    /// `Some(value)` if the function is constant.
    #[must_use]
    pub fn as_const(&self) -> Option<bool> {
        (self.len == 0).then_some(self.table & 1 == 1)
    }

    /// The support size.
    #[must_use]
    pub fn support(&self) -> usize {
        self.len as usize
    }

    /// Logical negation.
    #[must_use]
    pub fn not(&self) -> Self {
        // Negation preserves dependence on every support variable, so the
        // result is already canonical.
        Self { table: !self.table & row_mask(self.len), ..*self }
    }

    /// Logical conjunction.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        self.binop(other, |a, b| a & b)
    }

    /// Logical disjunction.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        self.binop(other, |a, b| a | b)
    }

    /// Logical exclusive or.
    #[must_use]
    pub fn xor(&self, other: &Self) -> Self {
        self.binop(other, |a, b| a ^ b)
    }

    /// `if self { t } else { e }` — the 2×2 switch primitive.
    #[must_use]
    pub fn mux(&self, t: &Self, e: &Self) -> Self {
        self.and(t).or(&self.not().and(e))
    }

    /// Semantic equality. Because both sides are canonical this is plain
    /// structural equality — no alignment needed.
    #[must_use]
    pub fn equiv(&self, other: &Self) -> bool {
        self == other
    }

    /// Evaluates under a concrete assignment of the support.
    pub fn eval(&self, assign: impl Fn(SymVar) -> bool) -> bool {
        let mut idx = 0u64;
        for i in 0..self.len as usize {
            if assign(self.vars[i]) {
                idx |= 1 << i;
            }
        }
        (self.table >> idx) & 1 == 1
    }

    /// A distinguishing assignment if the two functions differ, covering
    /// the union of both supports.
    #[must_use]
    pub fn counterexample(&self, other: &Self) -> Option<Vec<(SymVar, bool)>> {
        let (vars, len) = merge_vars(self, other);
        let ta = self.expand(&vars, len);
        let tb = other.expand(&vars, len);
        let diff = ta ^ tb;
        if diff == 0 {
            return None;
        }
        let k = diff.trailing_zeros() as u64;
        Some((0..len as usize).map(|i| (vars[i], (k >> i) & 1 == 1)).collect())
    }

    fn binop(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        if self.len == other.len && self.vars == other.vars {
            // Fast path: identical supports, tables align directly.
            let s = Self {
                len: self.len,
                vars: self.vars,
                table: f(self.table, other.table) & row_mask(self.len),
            };
            return s.reduce();
        }
        let (vars, len) = merge_vars(self, other);
        let ta = self.expand(&vars, len);
        let tb = other.expand(&vars, len);
        let s = Self { len, vars, table: f(ta, tb) & row_mask(len) };
        s.reduce()
    }

    /// Re-expresses the truth table over a superset support.
    fn expand(&self, vars: &[SymVar; MAX_SUPPORT], len: u8) -> u64 {
        if self.len == len && self.vars == *vars {
            return self.table;
        }
        let mut map = [0usize; MAX_SUPPORT];
        for i in 0..self.len as usize {
            map[i] = vars[..len as usize]
                .iter()
                .position(|v| *v == self.vars[i])
                .expect("own support must be in the merged support");
        }
        let mut out = 0u64;
        for k in 0..(1u64 << len) {
            let mut idx = 0u64;
            for i in 0..self.len as usize {
                idx |= ((k >> map[i]) & 1) << i;
            }
            out |= ((self.table >> idx) & 1) << k;
        }
        out
    }

    /// Removes don't-care variables, restoring canonical form.
    fn reduce(mut self) -> Self {
        let mut i = 0;
        while i < self.len as usize {
            let stride = 1u64 << i;
            let rows = 1u64 << self.len;
            let mut depends = false;
            let mut k = 0u64;
            while k < rows {
                if (k & stride) == 0
                    && (self.table >> k) & 1 != (self.table >> (k | stride)) & 1
                {
                    depends = true;
                    break;
                }
                k += 1;
            }
            if depends {
                i += 1;
                continue;
            }
            // Drop variable i: keep the rows where it is 0, compacting.
            let mut table = 0u64;
            let mut dst = 0u64;
            for k in 0..rows {
                if k & stride == 0 {
                    table |= ((self.table >> k) & 1) << dst;
                    dst += 1;
                }
            }
            for j in i..self.len as usize - 1 {
                self.vars[j] = self.vars[j + 1];
            }
            self.vars[self.len as usize - 1] = FILL;
            self.len -= 1;
            self.table = table;
        }
        self
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(c) = self.as_const() {
            return write!(f, "{c}");
        }
        write!(f, "fn(")?;
        for i in 0..self.len as usize {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:?}", self.vars[i])?;
        }
        write!(f, ") table {:#x}", self.table)
    }
}

/// Merges two sorted supports, panicking past [`MAX_SUPPORT`].
fn merge_vars(a: &Sym, b: &Sym) -> ([SymVar; MAX_SUPPORT], u8) {
    let mut vars = [FILL; MAX_SUPPORT];
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    let (la, lb) = (a.len as usize, b.len as usize);
    while i < la || j < lb {
        let next = if i < la && (j >= lb || a.vars[i] <= b.vars[j]) {
            let v = a.vars[i];
            i += 1;
            if j < lb && b.vars[j] == v {
                j += 1;
            }
            v
        } else {
            let v = b.vars[j];
            j += 1;
            v
        };
        assert!(
            k < MAX_SUPPORT,
            "symbolic support exceeded {MAX_SUPPORT} variables — the prover's \
             stage-cut discipline is broken"
        );
        vars[k] = next;
        k += 1;
    }
    (vars, k as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(flat: u16, bit: u8) -> Sym {
        Sym::var(SymVar::Data { flat, bit })
    }

    #[test]
    fn canonical_form_makes_equivalence_structural() {
        let a = v(0, 0);
        let b = v(1, 0);
        // a ⊕ b built two different ways must be the same value.
        let direct = a.xor(&b);
        let via_mux = a.mux(&b.not(), &b);
        assert_eq!(direct, via_mux);
        assert!(direct.equiv(&via_mux));
    }

    #[test]
    fn dont_care_variables_are_dropped() {
        let a = v(0, 0);
        let b = v(1, 0);
        // a ∧ (b ∨ ¬b) depends only on a.
        let e = a.and(&b.or(&b.not()));
        assert_eq!(e, a);
        assert_eq!(e.support(), 1);
        // a ⊕ a is constant false with empty support.
        assert_eq!(a.xor(&a), Sym::falsehood());
    }

    #[test]
    fn constants_and_negation() {
        assert_eq!(Sym::truth().not(), Sym::falsehood());
        assert_eq!(Sym::constant(true).as_const(), Some(true));
        let a = v(3, 1);
        assert_eq!(a.not().not(), a);
        assert_eq!(a.and(&Sym::falsehood()), Sym::falsehood());
        assert_eq!(a.or(&Sym::falsehood()), a);
        assert_eq!(a.and(&Sym::truth()), a);
    }

    #[test]
    fn eval_agrees_with_construction() {
        let a = v(0, 0);
        let b = v(1, 0);
        let c = v(2, 0);
        let e = a.mux(&b, &c); // if a then b else c
        for bits in 0..8u8 {
            let assign = |var: SymVar| match var {
                SymVar::Data { flat, .. } => (bits >> flat) & 1 == 1,
                SymVar::Fault { .. } => false,
            };
            let expect =
                if bits & 1 == 1 { (bits >> 1) & 1 == 1 } else { (bits >> 2) & 1 == 1 };
            assert_eq!(e.eval(assign), expect, "bits {bits:03b}");
        }
    }

    #[test]
    fn counterexample_distinguishes_differing_functions() {
        let a = v(0, 0);
        let b = v(1, 0);
        let cex = a.and(&b).counterexample(&a.or(&b)).expect("and != or");
        // The witness must actually distinguish the two.
        let assign =
            |var: SymVar| cex.iter().find(|(v, _)| *v == var).map(|(_, x)| *x).unwrap();
        assert_ne!(a.and(&b).eval(assign), a.or(&b).eval(assign));
        assert!(a.and(&b).counterexample(&b.and(&a)).is_none());
    }

    #[test]
    #[should_panic(expected = "support exceeded")]
    fn support_overflow_panics() {
        let mut acc = Sym::falsehood();
        for i in 0..7u16 {
            acc = acc.xor(&v(i, 0));
        }
    }

    #[test]
    fn six_variable_functions_are_exact() {
        // Full 6-var majority-ish function round-trips through ops.
        let vars: Vec<Sym> = (0..6u16).map(|i| v(i, 0)).collect();
        let parity = vars.iter().fold(Sym::falsehood(), |a, x| a.xor(x));
        assert_eq!(parity.support(), 6);
        for bits in 0..64u8 {
            let assign = |var: SymVar| match var {
                SymVar::Data { flat, .. } => (bits >> flat) & 1 == 1,
                SymVar::Fault { .. } => false,
            };
            assert_eq!(parity.eval(assign), bits.count_ones() % 2 == 1);
        }
    }
}
