//! Pillar 3, part (a): a small exhaustive-interleaving model checker.
//!
//! The engine's sharded submission queue (`engine/queue.rs`) is the one
//! place in the workspace where correctness rests on a concurrency
//! *protocol* — a lock-free admission counter, two condvar parking lots
//! and a lock-then-notify discipline — rather than on types. Seeded
//! tests exercise a handful of schedules; this module enumerates **all**
//! of them over an abstract model of the protocol (see [`queue`]),
//! checking request conservation, deadlock freedom and the absence of
//! lost wakeups on every reachable state of a small configuration.
//!
//! The checker itself is deliberately plain: depth-first search over the
//! interleaving graph with a seen-state set (the classic explicit-state
//! construction that DPOR-style tools refine), a state budget so tier-1
//! stays fast, and counterexample traces reconstructed from the DFS
//! path. States are small `Clone + Hash` values, transitions are
//! `(label, successor)` pairs, and a *property* inspects each newly
//! visited state together with its enabled transitions.

use std::collections::HashSet;
use std::hash::Hash;

pub mod queue;

/// A property violation found during exploration, with the full
/// interleaving that reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Which property failed (`conservation`, `deadlock`, `lost-wakeup`).
    pub property: String,
    /// Human-readable transition labels from the initial state to the
    /// violating one, in schedule order.
    pub trace: Vec<String>,
    /// A rendering of the violating state plus what went wrong.
    pub detail: String,
}

impl Counterexample {
    /// The trace as one indented multi-line block for reports.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "property violated: {}\n  schedule ({} steps):\n",
            self.property,
            self.trace.len()
        );
        for (i, step) in self.trace.iter().enumerate() {
            out.push_str(&format!("    {:>2}. {step}\n", i + 1));
        }
        out.push_str(&format!("  state: {}\n", self.detail));
        out
    }
}

/// The outcome of one exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Distinct states visited (including the initial state).
    pub states: usize,
    /// Transitions examined (edges, including ones into already-seen
    /// states).
    pub transitions: usize,
    /// Whether the state budget stopped the search before exhaustion.
    /// A budget-clipped run proves nothing — treat it as a failure of
    /// the certification, not of the protocol.
    pub budget_exhausted: bool,
    /// The first violation found, if any.
    pub counterexample: Option<Counterexample>,
}

impl Exploration {
    /// `true` iff the full state space was explored and no property
    /// failed.
    #[must_use]
    pub fn certified(&self) -> bool {
        !self.budget_exhausted && self.counterexample.is_none()
    }
}

/// Exhaustively explores the interleaving graph from `initial`.
///
/// `successors` enumerates the enabled transitions of a state as
/// `(label, next-state)` pairs; `violation` inspects a state (with its
/// enabled transitions) and returns `Some((property, detail))` to stop
/// the search. The search visits every reachable state at most once and
/// stops early on the first violation or once `budget` distinct states
/// have been visited.
pub fn explore<S, FS, FV>(
    initial: S,
    successors: FS,
    violation: FV,
    budget: usize,
) -> Exploration
where
    S: Clone + Eq + Hash,
    FS: Fn(&S) -> Vec<(String, S)>,
    FV: Fn(&S, &[(String, S)]) -> Option<(String, String)>,
{
    struct Frame<S> {
        succs: Vec<(String, S)>,
        next: usize,
        labeled: bool,
    }

    let mut seen: HashSet<S> = HashSet::new();
    seen.insert(initial.clone());
    let mut states = 1usize;
    let mut transitions = 0usize;
    let mut path: Vec<String> = Vec::new();

    let root_succs = successors(&initial);
    if let Some((property, detail)) = violation(&initial, &root_succs) {
        return Exploration {
            states,
            transitions,
            budget_exhausted: false,
            counterexample: Some(Counterexample { property, trace: path, detail }),
        };
    }
    let mut stack: Vec<Frame<S>> =
        vec![Frame { succs: root_succs, next: 0, labeled: false }];
    let mut budget_exhausted = false;
    let mut counterexample = None;

    while let Some(top) = stack.last_mut() {
        if top.next >= top.succs.len() {
            let frame = stack.pop().expect("stack non-empty");
            if frame.labeled {
                path.pop();
            }
            continue;
        }
        let (label, child) = top.succs[top.next].clone();
        top.next += 1;
        transitions += 1;
        if !seen.insert(child.clone()) {
            continue;
        }
        states += 1;
        if states > budget {
            budget_exhausted = true;
            break;
        }
        let child_succs = successors(&child);
        path.push(label);
        if let Some((property, detail)) = violation(&child, &child_succs) {
            counterexample = Some(Counterexample { property, trace: path.clone(), detail });
            break;
        }
        stack.push(Frame { succs: child_succs, next: 0, labeled: true });
    }

    Exploration { states, transitions, budget_exhausted, counterexample }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-counter toy: each of two "threads" increments a shared
    /// counter twice. 9 distinct states, no violation.
    #[test]
    fn explores_the_full_product_graph() {
        let result = explore(
            (0u8, 0u8),
            |&(a, b)| {
                let mut out = Vec::new();
                if a < 2 {
                    out.push((format!("A: {a}->{}", a + 1), (a + 1, b)));
                }
                if b < 2 {
                    out.push((format!("B: {b}->{}", b + 1), (a, b + 1)));
                }
                out
            },
            |_, _| None,
            1_000,
        );
        assert!(result.certified());
        assert_eq!(result.states, 9);
    }

    #[test]
    fn reports_a_trace_to_the_violation() {
        // Violation when both counters hit 2: the trace must be 4 steps.
        let result = explore(
            (0u8, 0u8),
            |&(a, b)| {
                let mut out = Vec::new();
                if a < 2 {
                    out.push(("A".to_string(), (a + 1, b)));
                }
                if b < 2 {
                    out.push(("B".to_string(), (a, b + 1)));
                }
                out
            },
            |&(a, b), _| {
                (a == 2 && b == 2)
                    .then(|| ("both-maxed".to_string(), format!("a={a} b={b}")))
            },
            1_000,
        );
        let cex = result.counterexample.expect("must find the violation");
        assert_eq!(cex.property, "both-maxed");
        assert_eq!(cex.trace.len(), 4);
        assert!(cex.render().contains("both-maxed"));
    }

    #[test]
    fn budget_stops_the_search() {
        let result = explore(0u64, |&s| vec![("tick".to_string(), s + 1)], |_, _| None, 10);
        assert!(result.budget_exhausted);
        assert!(!result.certified());
    }
}
