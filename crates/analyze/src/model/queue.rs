//! A faithful abstract model of `engine/queue.rs`'s submission protocol.
//!
//! The model tracks exactly the state the real protocol synchronizes
//! on: per-shard queue lengths, the CAS-reserved admission depth
//! (reserved slots count toward `depth` *before* their job is pushed,
//! which is what lets the real workers spin instead of parking while a
//! push is in flight), the `draining`/`shutdown` flags, and the two
//! condvar parking lots — workers on `idle`/`available`, submitters on
//! `gate`/`space`, plus the drain waiter. Each transition is one
//! lock-protected step of the real code; the racy windows between steps
//! (reserve→push, scan→park, take→wake) are exactly the interleavings
//! the explorer enumerates.
//!
//! # Wake semantics
//!
//! Two admission-wake models are checked. [`AdmitWake::PerPush`] is the
//! literal code: every push notifies one parked worker (a condvar
//! `notify_one` delivered to a nondeterministically chosen waiter, lost
//! if nobody waits). [`AdmitWake::CoalescedBurst`] is an *adversarial
//! weakening*: during a burst, only the push that makes a shard
//! non-empty delivers a wake. This models the physical fact that a
//! `notify_one` issued while every sibling is already awake (taking,
//! serving, or merely runnable-but-unscheduled) lands in an empty wait
//! set and is lost forever — the exact regime of PR 7's burst bug.
//! Certifying the protocol under `CoalescedBurst` proves the post-take
//! `notify_all` is what re-engages parked workers once a burst's
//! coalesced wakes are gone; dropping it (the seeded mutant) yields a
//! lost-wakeup counterexample.
//!
//! # Properties
//!
//! * **conservation** — at full quiescence every job was served or
//!   rejected, every queue is empty and no admission slot leaks.
//! * **deadlock** — no reachable state stalls with a thread neither
//!   finished nor wakeable (covers the `gate`/`space` drain choreography
//!   and bounded-admission parking).
//! * **lost-wakeup** — no reachable state in which a parked worker can
//!   only ever be engaged by a busy sibling finishing service while
//!   unstarted work (queued in a shard, or hoarded behind the head of a
//!   sibling's batch) already exists. This is the engagement property
//!   whose violation *is* a lost wakeup: the wake that should have
//!   paired the idle worker with the waiting job was never delivered.

use super::{explore, Exploration};
use crate::report::{Finding, Pillar};

/// How admission (`admit`, after its push) wakes parked workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitWake {
    /// Every push delivers a `notify_one` to some parked worker (lost
    /// only when nobody is parked) — the literal code.
    PerPush,
    /// Only the push that turns a shard non-empty delivers a wake; the
    /// rest of the burst's notifies are adversarially coalesced (they
    /// model `notify_one` calls landing in an empty wait set).
    CoalescedBurst,
}

/// What a worker does after taking a batch that leaves `depth > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostTakeWake {
    /// `wake_workers(true)` — every parked sibling wakes (current code,
    /// the PR 7 fix).
    NotifyAll,
    /// `notify_one` — the pre-PR-7 one-at-a-time wake chain.
    NotifyOne,
    /// No post-take wake at all (the seeded lost-wakeup mutant).
    Nothing,
}

/// One protocol configuration: sizes plus the wake-policy knobs that
/// distinguish the shipped code from its seeded mutants.
#[derive(Debug, Clone)]
pub struct Protocol {
    /// Number of queue shards.
    pub shards: usize,
    /// Number of worker threads.
    pub workers: usize,
    /// Number of submitter threads.
    pub submitters: usize,
    /// Jobs each submitter admits.
    pub jobs_each: u8,
    /// Worker batch size (jobs drained per shard-lock acquisition).
    pub batch: u8,
    /// Bounded-admission depth, `None` for unbounded.
    pub max_depth: Option<u8>,
    /// Admission wake model.
    pub admit_wake: AdmitWake,
    /// Post-take wake policy.
    pub post_take_wake: PostTakeWake,
    /// Whether `admit` re-checks `draining` under the shard lock before
    /// pushing (the shipped shutdown race guard).
    pub recheck_draining_on_push: bool,
    /// Whether `release_slots` pulses the `gate`/`space` parking lot
    /// (wakes blocked submitters and the drain waiter).
    pub release_notifies_space: bool,
}

impl Protocol {
    /// The shipped protocol at the latency-critical `batch_size = 1`
    /// configuration, under literal per-push wake delivery.
    #[must_use]
    pub fn current() -> Self {
        Self {
            shards: 2,
            workers: 2,
            submitters: 2,
            jobs_each: 2,
            batch: 1,
            max_depth: None,
            admit_wake: AdmitWake::PerPush,
            post_take_wake: PostTakeWake::NotifyAll,
            recheck_draining_on_push: true,
            release_notifies_space: true,
        }
    }

    /// The shipped protocol under adversarial burst coalescing — the
    /// configuration that makes the post-take `notify_all` load-bearing.
    #[must_use]
    pub fn current_burst() -> Self {
        Self { admit_wake: AdmitWake::CoalescedBurst, ..Self::current() }
    }

    /// The shipped protocol with bounded admission, exercising the
    /// `gate`/`space` submitter parking and release choreography.
    #[must_use]
    pub fn current_bounded() -> Self {
        Self { max_depth: Some(2), ..Self::current() }
    }

    /// Seeded mutant: PR 7's lost-wakeup bug — the post-take
    /// `notify_all` dropped while depth stays positive.
    #[must_use]
    pub fn mutant_dropped_post_take_wake() -> Self {
        Self { post_take_wake: PostTakeWake::Nothing, ..Self::current_burst() }
    }

    /// Seeded mutant: the pre-PR-7 design — one global queue, batched
    /// drains under a single lock, and a one-at-a-time post-take wake
    /// chain. Its signature failure is a worker left parked while a
    /// sibling's batch hoards runnable jobs (the flat scaling curve).
    #[must_use]
    pub fn mutant_single_global_queue() -> Self {
        Self {
            shards: 1,
            workers: 3,
            submitters: 2,
            jobs_each: 2,
            batch: 2,
            max_depth: None,
            admit_wake: AdmitWake::PerPush,
            post_take_wake: PostTakeWake::NotifyOne,
            recheck_draining_on_push: true,
            release_notifies_space: true,
        }
    }

    /// Seeded mutant for the drain choreography: `release_slots` stops
    /// pulsing `space`, so the drain waiter sleeps through the moment
    /// the queue empties.
    #[must_use]
    pub fn mutant_silent_release() -> Self {
        Self { release_notifies_space: false, ..Self::current() }
    }

    fn total_jobs(&self) -> u16 {
        self.submitters as u16 * u16::from(self.jobs_each)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Worker {
    /// Scanning the shards (or spinning on the reserved-slot yield
    /// loop); always runnable.
    Scan,
    /// Asleep on `available`; runnable only via a delivered wake.
    Parked,
    /// Woken (notify delivered) but yet to re-evaluate the predicate.
    Woken,
    /// Serving a batch; the `u8` counts unserved jobs in hand.
    Busy(u8),
    /// Exited after observing shutdown with an empty queue.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Sub {
    /// Ready to admit; the `u8` counts jobs still to submit.
    Ready(u8),
    /// Holds a reserved admission slot for the next push.
    Reserved(u8),
    /// Asleep on `space` (queue full); runnable only via a wake.
    GateParked(u8),
    /// Woken from the gate, about to retry admission.
    GateWoken(u8),
    /// All jobs admitted or rejected.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Drainer {
    /// Shutdown not yet requested.
    Idle,
    /// `draining` set, waiting for `depth == 0`. `woken` records a
    /// pending `space` pulse; without one the waiter is asleep.
    Waiting { woken: bool },
    /// `shutdown` set, drain complete.
    Done,
}

/// One abstract protocol state (see module docs for the mapping onto
/// `engine/queue.rs`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QState {
    shards: Vec<u8>,
    reserved: u8,
    submitted: u8,
    served: u8,
    rejected: u8,
    draining: bool,
    shutdown: bool,
    workers: Vec<Worker>,
    subs: Vec<Sub>,
    drainer: Drainer,
}

impl QState {
    fn depth(&self) -> u16 {
        u16::from(self.reserved) + self.shards.iter().map(|&q| u16::from(q)).sum::<u16>()
    }

    fn queued(&self) -> u16 {
        self.shards.iter().map(|&q| u16::from(q)).sum()
    }

    /// Jobs that exist but have not begun service: queued in a shard,
    /// or hoarded behind the head of a busy worker's batch.
    fn unstarted(&self) -> u16 {
        self.queued()
            + self
                .workers
                .iter()
                .map(|w| match w {
                    Worker::Busy(t) => u16::from(t.saturating_sub(1)),
                    _ => 0,
                })
                .sum::<u16>()
    }

    fn all_done(&self) -> bool {
        self.workers.iter().all(|w| *w == Worker::Done)
            && self.subs.iter().all(|s| *s == Sub::Done)
            && self.drainer == Drainer::Done
    }

    fn render(&self) -> String {
        let workers: Vec<String> = self
            .workers
            .iter()
            .map(|w| match w {
                Worker::Scan => "scan".to_string(),
                Worker::Parked => "parked".to_string(),
                Worker::Woken => "woken".to_string(),
                Worker::Busy(t) => format!("busy({t})"),
                Worker::Done => "done".to_string(),
            })
            .collect();
        let subs: Vec<String> = self
            .subs
            .iter()
            .map(|s| match s {
                Sub::Ready(l) => format!("ready({l})"),
                Sub::Reserved(l) => format!("reserved({l})"),
                Sub::GateParked(l) => format!("gate-parked({l})"),
                Sub::GateWoken(l) => format!("gate-woken({l})"),
                Sub::Done => "done".to_string(),
            })
            .collect();
        format!(
            "shards={:?} reserved={} submitted={} served={} rejected={} draining={} shutdown={} workers=[{}] submitters=[{}] drainer={:?}",
            self.shards,
            self.reserved,
            self.submitted,
            self.served,
            self.rejected,
            self.draining,
            self.shutdown,
            workers.join(", "),
            subs.join(", "),
            self.drainer,
        )
    }
}

fn sub_next(left: u8) -> Sub {
    if left == 0 {
        Sub::Done
    } else {
        Sub::Ready(left)
    }
}

/// Wakes every gate-parked submitter and pends the drain waiter — the
/// model of `release_slots`' gate-touch plus `space.notify_all()`.
fn pulse_space(s: &mut QState) {
    for sub in &mut s.subs {
        if let Sub::GateParked(l) = *sub {
            *sub = Sub::GateWoken(l);
        }
    }
    if let Drainer::Waiting { .. } = s.drainer {
        s.drainer = Drainer::Waiting { woken: true };
    }
}

/// Wakes every parked worker — `wake_workers(true)`.
fn wake_all_workers(s: &mut QState) -> usize {
    let mut woken = 0;
    for w in &mut s.workers {
        if *w == Worker::Parked {
            *w = Worker::Woken;
            woken += 1;
        }
    }
    woken
}

impl Protocol {
    /// The initial state: everyone running, queues empty.
    #[must_use]
    pub fn initial(&self) -> QState {
        QState {
            shards: vec![0; self.shards],
            reserved: 0,
            submitted: 0,
            served: 0,
            rejected: 0,
            draining: false,
            shutdown: false,
            workers: vec![Worker::Scan; self.workers],
            subs: vec![sub_next(self.jobs_each); self.submitters],
            drainer: Drainer::Idle,
        }
    }

    /// One submitter's attempt to reserve an admission slot (the shared
    /// front half of `admit`), from `Ready` or `GateWoken`.
    fn reserve(&self, s: &QState, i: usize, left: u8, out: &mut Vec<(String, QState)>) {
        if s.draining {
            let mut n = s.clone();
            n.rejected += 1;
            n.subs[i] = sub_next(left - 1);
            out.push((format!("S{i}: admission refused (draining), job rejected"), n));
            return;
        }
        if let Some(max) = self.max_depth {
            if s.depth() >= u16::from(max) {
                let mut n = s.clone();
                n.subs[i] = Sub::GateParked(left);
                out.push((
                    format!("S{i}: queue full (depth={}), park on gate", s.depth()),
                    n,
                ));
                return;
            }
        }
        let mut n = s.clone();
        n.reserved += 1;
        n.subs[i] = Sub::Reserved(left);
        out.push((
            format!(
                "S{i}: reserve admission slot (depth {}->{})",
                s.depth(),
                s.depth() + 1
            ),
            n,
        ));
    }

    /// A reserved submitter's push, one successor per target shard (the
    /// scatter placement is adversarially nondeterministic) and, under
    /// `PerPush` wake delivery, per parked wake target.
    fn push(&self, s: &QState, i: usize, left: u8, out: &mut Vec<(String, QState)>) {
        if self.recheck_draining_on_push && s.draining {
            let mut n = s.clone();
            n.reserved -= 1;
            n.rejected += 1;
            n.subs[i] = sub_next(left - 1);
            if self.release_notifies_space {
                pulse_space(&mut n);
            }
            out.push((
                format!(
                    "S{i}: push aborted (draining re-check), slot released, job rejected"
                ),
                n,
            ));
            return;
        }
        for k in 0..self.shards {
            let mut n = s.clone();
            let was_empty = n.shards[k] == 0;
            n.shards[k] += 1;
            n.reserved -= 1;
            n.submitted += 1;
            n.subs[i] = sub_next(left - 1);
            let deliver = match self.admit_wake {
                AdmitWake::PerPush => true,
                AdmitWake::CoalescedBurst => was_empty,
            };
            let base = format!("S{i}: push job -> shard {k}");
            if deliver {
                let parked: Vec<usize> = n
                    .workers
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| **w == Worker::Parked)
                    .map(|(j, _)| j)
                    .collect();
                if parked.is_empty() {
                    out.push((format!("{base}; notify_one lost (no waiter)"), n));
                } else {
                    for j in parked {
                        let mut m = n.clone();
                        m.workers[j] = Worker::Woken;
                        out.push((format!("{base}; notify_one wakes W{j}"), m));
                    }
                }
            } else {
                out.push((format!("{base}; wake coalesced (shard already backlogged)"), n));
            }
        }
    }

    /// One worker scan: take from the first non-empty shard (own shard
    /// first, then stealing), exit on shutdown, or park.
    fn scan(&self, s: &QState, w: usize, out: &mut Vec<(String, QState)>) {
        if let Some((j, take)) = Self::scan_take(&s.shards, self.batch, w) {
            let mut n = s.clone();
            n.shards[j] -= take;
            n.workers[w] = Worker::Busy(take);
            if self.release_notifies_space {
                pulse_space(&mut n);
            }
            let depth_after = n.depth();
            let mut label = format!(
                "W{w}: take {take} from shard {j} (depth {}->{})",
                s.depth(),
                depth_after
            );
            if depth_after > 0 {
                match self.post_take_wake {
                    PostTakeWake::NotifyAll => {
                        let woken = wake_all_workers(&mut n);
                        label.push_str(&format!(
                            "; backlog remains -> notify_all wakes {woken}"
                        ));
                        out.push((label, n));
                    }
                    PostTakeWake::NotifyOne => {
                        let parked: Vec<usize> = n
                            .workers
                            .iter()
                            .enumerate()
                            .filter(|(_, ws)| **ws == Worker::Parked)
                            .map(|(j, _)| j)
                            .collect();
                        if parked.is_empty() {
                            label.push_str(
                                "; backlog remains -> notify_one lost (no waiter)",
                            );
                            out.push((label, n));
                        } else {
                            for t in parked {
                                let mut m = n.clone();
                                m.workers[t] = Worker::Woken;
                                out.push((
                                    format!(
                                        "{label}; backlog remains -> notify_one wakes W{t}"
                                    ),
                                    m,
                                ));
                            }
                        }
                    }
                    PostTakeWake::Nothing => {
                        label.push_str("; backlog remains, no post-take wake [mutant]");
                        out.push((label, n));
                    }
                }
            } else {
                out.push((label, n));
            }
            return;
        }
        if s.shutdown && s.depth() == 0 {
            let mut n = s.clone();
            n.workers[w] = Worker::Done;
            out.push((format!("W{w}: shutdown with empty queue, exit"), n));
            return;
        }
        if s.depth() == 0 {
            let mut n = s.clone();
            n.workers[w] = Worker::Parked;
            out.push((format!("W{w}: all shards empty, depth 0 -> park on idle"), n));
        }
        // depth > 0 with empty shards: a submitter holds a reserved,
        // unpushed slot — the real worker spins on the yield loop, which
        // adds no new state; the submitter's push is the progress step.
    }

    /// The dequeue rule shared by the model's worker scan and the
    /// model↔engine bridge test (`tests/bridge.rs`): take up to `batch`
    /// jobs from the first non-empty shard in own-shard-then-steal
    /// order, mirroring `SubmissionQueue::try_take`. Returns the shard
    /// index and how many jobs come off it, or `None` when every shard
    /// is empty.
    #[must_use]
    pub fn scan_take(shards: &[u8], batch: u8, worker: usize) -> Option<(usize, u8)> {
        let count = shards.len();
        (0..count)
            .map(|k| (worker + k) % count)
            .find(|&j| shards[j] > 0)
            .map(|j| (j, batch.min(shards[j])))
    }

    /// Enabled transitions of `s`.
    #[must_use]
    pub fn successors(&self, s: &QState) -> Vec<(String, QState)> {
        let mut out = Vec::new();
        for i in 0..self.submitters {
            match s.subs[i] {
                Sub::Ready(left) => self.reserve(s, i, left, &mut out),
                Sub::Reserved(left) => self.push(s, i, left, &mut out),
                Sub::GateWoken(left) => {
                    // Re-entry into the admission loop after a space
                    // pulse; same three-way branch as Ready.
                    let mut retries = Vec::new();
                    self.reserve(s, i, left, &mut retries);
                    for (label, n) in retries {
                        out.push((format!("{label} (after gate wake)"), n));
                    }
                }
                Sub::GateParked(_) | Sub::Done => {}
            }
        }
        for w in 0..self.workers {
            match s.workers[w] {
                Worker::Scan => self.scan(s, w, &mut out),
                Worker::Woken => {
                    let mut n = s.clone();
                    if s.depth() > 0 || s.shutdown {
                        n.workers[w] = Worker::Scan;
                        out.push((format!("W{w}: wake, predicate passes -> rescan"), n));
                    } else {
                        n.workers[w] = Worker::Parked;
                        out.push((format!("W{w}: wake, depth still 0 -> wait again"), n));
                    }
                }
                Worker::Busy(t) => {
                    let mut n = s.clone();
                    n.served += 1;
                    n.workers[w] = if t > 1 { Worker::Busy(t - 1) } else { Worker::Scan };
                    out.push((
                        format!("W{w}: finish serving one job (served {})", n.served),
                        n,
                    ));
                }
                Worker::Parked | Worker::Done => {}
            }
        }
        match s.drainer {
            Drainer::Idle => {
                let mut n = s.clone();
                n.draining = true;
                pulse_space(&mut n);
                if n.depth() == 0 {
                    n.shutdown = true;
                    let woken = wake_all_workers(&mut n);
                    n.drainer = Drainer::Done;
                    out.push((
                        format!("D: drain begins; queue already empty -> shutdown, wake {woken} workers"),
                        n,
                    ));
                } else {
                    n.drainer = Drainer::Waiting { woken: false };
                    out.push((
                        format!("D: drain begins (depth={}), wait on space", n.depth()),
                        n,
                    ));
                }
            }
            Drainer::Waiting { woken: true } => {
                let mut n = s.clone();
                if s.depth() == 0 {
                    n.shutdown = true;
                    let woken = wake_all_workers(&mut n);
                    n.drainer = Drainer::Done;
                    out.push((
                        format!(
                            "D: space pulse, depth 0 -> shutdown, wake {woken} workers"
                        ),
                        n,
                    ));
                } else {
                    n.drainer = Drainer::Waiting { woken: false };
                    out.push((
                        format!("D: space pulse, depth={} -> wait again", s.depth()),
                        n,
                    ));
                }
            }
            Drainer::Waiting { woken: false } | Drainer::Done => {}
        }
        out
    }

    /// Whether any transition other than a busy worker finishing a job
    /// (and other than the *start* of a drain, which is an environment
    /// decision, not protocol progress) is enabled in `s`.
    fn has_non_service_progress(&self, s: &QState) -> bool {
        for sub in &s.subs {
            match sub {
                Sub::Ready(_) | Sub::Reserved(_) | Sub::GateWoken(_) => return true,
                Sub::GateParked(_) | Sub::Done => {}
            }
        }
        for (w, ws) in s.workers.iter().enumerate() {
            match ws {
                Worker::Woken => return true,
                Worker::Scan => {
                    let has_work =
                        (0..self.shards).any(|k| s.shards[(w + k) % self.shards] > 0);
                    let can_exit = s.shutdown && s.depth() == 0;
                    let can_park = s.depth() == 0;
                    if has_work || can_exit || can_park {
                        return true;
                    }
                }
                Worker::Parked | Worker::Busy(_) | Worker::Done => {}
            }
        }
        matches!(s.drainer, Drainer::Waiting { woken: true })
    }

    /// The property oracle for [`explore`].
    #[must_use]
    pub fn violation(
        &self,
        s: &QState,
        succs: &[(String, QState)],
    ) -> Option<(String, String)> {
        if s.all_done() {
            let total = self.total_jobs();
            let balanced = u16::from(s.served) + u16::from(s.rejected) == total
                && s.submitted == s.served
                && s.queued() == 0
                && s.reserved == 0;
            if !balanced {
                return Some((
                    "conservation".to_string(),
                    format!(
                        "quiescent but unbalanced: {} jobs in, served={} rejected={} submitted={} — {}",
                        total,
                        s.served,
                        s.rejected,
                        s.submitted,
                        s.render()
                    ),
                ));
            }
            return None;
        }
        if succs.is_empty() {
            let parked_with_work = s.workers.contains(&Worker::Parked) && s.depth() > 0;
            let drain_asleep =
                matches!(s.drainer, Drainer::Waiting { woken: false }) && s.depth() == 0;
            let property =
                if parked_with_work || drain_asleep { "lost-wakeup" } else { "deadlock" };
            return Some((
                property.to_string(),
                format!(
                    "no thread can run but the system is not quiescent — {}",
                    s.render()
                ),
            ));
        }
        // Engagement: if the only possible progress is busy workers
        // finishing jobs, a parked worker must not coexist with
        // unstarted work — the wake that would have paired them was
        // lost.
        if !self.has_non_service_progress(s)
            && s.workers.contains(&Worker::Parked)
            && s.unstarted() > 0
        {
            return Some((
                "lost-wakeup".to_string(),
                format!(
                    "{} unstarted job(s) exist but a parked worker can only be engaged by a busy sibling finishing service — {}",
                    s.unstarted(),
                    s.render()
                ),
            ));
        }
        None
    }

    /// Exhaustively model-checks this configuration.
    #[must_use]
    pub fn check(&self, budget: usize) -> Exploration {
        explore(
            self.initial(),
            |s| self.successors(s),
            |s, succs| self.violation(s, succs),
            budget,
        )
    }
}

/// What one gate run expects from a protocol.
enum Expectation {
    /// Must certify (no counterexample, budget not exhausted).
    Certify,
    /// Must be flagged with exactly this property (a seeded mutant).
    Flag(&'static str),
    /// Must be flagged with any property (a seeded mutant whose
    /// classification may legitimately vary).
    FlagAny,
}

/// One line of the concurrency gate's report.
#[derive(Debug, Clone)]
pub struct ProtocolReport {
    /// Human name of the checked configuration.
    pub name: String,
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken.
    pub transitions: usize,
    /// `true` when the run matched its expectation.
    pub ok: bool,
    /// The property a counterexample violated, if one was found.
    pub property: Option<String>,
    /// The rendered counterexample (trace + violating state), if any.
    pub counterexample: Option<String>,
    /// `true` when this row is a seeded mutant (a counterexample is
    /// the *expected* outcome).
    pub mutant: bool,
}

/// The tier-1 concurrency gate: certifies the current protocol under
/// every abstraction (literal per-push wakes, adversarial coalesced
/// bursts, bounded admission) and self-tests the checker by requiring
/// that each seeded mutant is flagged. Returns findings (empty =
/// gate passes) plus one report row per configuration.
#[must_use]
pub fn concurrency_findings(budget: usize) -> (Vec<Finding>, Vec<ProtocolReport>) {
    let runs: Vec<(String, Protocol, Expectation)> = vec![
        (
            "sharded queue, per-push wake delivery".to_string(),
            Protocol::current(),
            Expectation::Certify,
        ),
        (
            "sharded queue, adversarial coalesced-burst wakes".to_string(),
            Protocol::current_burst(),
            Expectation::Certify,
        ),
        (
            "sharded queue, bounded admission (gate park/wake)".to_string(),
            Protocol::current_bounded(),
            Expectation::Certify,
        ),
        (
            "mutant: post-take notify_all dropped (reseeded PR 7 bug)".to_string(),
            Protocol::mutant_dropped_post_take_wake(),
            Expectation::Flag("lost-wakeup"),
        ),
        (
            "mutant: single global queue, notify_one chain (pre-PR 7 design)".to_string(),
            Protocol::mutant_single_global_queue(),
            Expectation::Flag("lost-wakeup"),
        ),
        (
            "mutant: slot release without the space pulse".to_string(),
            Protocol::mutant_silent_release(),
            Expectation::FlagAny,
        ),
    ];

    let mut findings = Vec::new();
    let mut reports = Vec::new();
    for (name, protocol, expectation) in runs {
        let result = protocol.check(budget);
        let coordinate = format!("queue model: {name}");
        let mutant = !matches!(expectation, Expectation::Certify);
        let mut ok = true;
        match (&expectation, &result.counterexample) {
            (Expectation::Certify, None) => {
                if result.budget_exhausted {
                    ok = false;
                    findings.push(Finding::error(
                        Pillar::Model,
                        "model-budget-exhausted",
                        &coordinate,
                        0,
                        format!(
                            "state budget of {budget} exhausted after {} states — \
                             nothing is proven; raise the budget",
                            result.states
                        ),
                    ));
                }
            }
            (Expectation::Certify, Some(cex)) => {
                ok = false;
                findings.push(Finding::error(
                    Pillar::Model,
                    "model-counterexample",
                    &coordinate,
                    0,
                    format!("{} violated:\n{}", cex.property, cex.render()),
                ));
            }
            (Expectation::Flag(want), Some(cex)) => {
                if cex.property != *want {
                    ok = false;
                    findings.push(Finding::error(
                        Pillar::Model,
                        "mutant-misclassified",
                        &coordinate,
                        0,
                        format!(
                            "seeded mutant flagged as `{}`, expected `{want}`",
                            cex.property
                        ),
                    ));
                }
            }
            (Expectation::FlagAny, Some(_)) => {}
            (Expectation::Flag(_) | Expectation::FlagAny, None) => {
                ok = false;
                findings.push(Finding::error(
                    Pillar::Model,
                    "mutant-not-flagged",
                    &coordinate,
                    0,
                    if result.budget_exhausted {
                        format!(
                            "state budget of {budget} exhausted before the seeded \
                             bug was found — the self-test is inconclusive"
                        )
                    } else {
                        "the checker certified a protocol with a seeded bug — its \
                         properties are too weak to trust"
                            .to_string()
                    },
                ));
            }
        }
        reports.push(ProtocolReport {
            name,
            states: result.states,
            transitions: result.transitions,
            ok,
            property: result.counterexample.as_ref().map(|c| c.property.clone()),
            counterexample: result
                .counterexample
                .as_ref()
                .map(super::Counterexample::render),
            mutant,
        });
    }
    (findings, reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: usize = 2_000_000;

    #[test]
    fn current_protocol_is_certified_under_per_push_wakes() {
        let result = Protocol::current().check(BUDGET);
        assert!(
            result.certified(),
            "expected certification, got {:?} after {} states",
            result.counterexample.map(|c| c.render()),
            result.states
        );
    }

    #[test]
    fn current_protocol_is_certified_under_burst_coalescing() {
        // The adversarial wake model: only the first push of a backlog
        // delivers a notify. The post-take notify_all must carry the
        // engagement on its own.
        let result = Protocol::current_burst().check(BUDGET);
        assert!(
            result.certified(),
            "expected certification, got {:?} after {} states",
            result.counterexample.map(|c| c.render()),
            result.states
        );
    }

    #[test]
    fn current_protocol_is_certified_with_bounded_admission() {
        let result = Protocol::current_bounded().check(BUDGET);
        assert!(
            result.certified(),
            "expected certification, got {:?} after {} states",
            result.counterexample.map(|c| c.render()),
            result.states
        );
    }

    #[test]
    fn mutant_dropping_the_post_take_notify_all_loses_a_wakeup() {
        // Satellite: PR 7's lost-wakeup bug re-introduced. The checker
        // must produce a readable counterexample trace.
        let result = Protocol::mutant_dropped_post_take_wake().check(BUDGET);
        let cex = result.counterexample.expect("mutant must be flagged");
        assert_eq!(cex.property, "lost-wakeup");
        assert!(!cex.trace.is_empty());
        let rendered = cex.render();
        assert!(
            rendered.contains("no post-take wake [mutant]"),
            "trace must show the dropped wake:\n{rendered}"
        );
        assert!(
            rendered.contains("parked"),
            "state must show the stranded worker:\n{rendered}"
        );
    }

    #[test]
    fn mutant_single_global_queue_starves_a_parked_worker() {
        // Satellite: the pre-PR-7 design — global queue, batch drains,
        // one-at-a-time wake chain. Its counterexample is the flat
        // scaling curve in miniature: a worker sleeps while a sibling's
        // batch hoards runnable jobs.
        let result = Protocol::mutant_single_global_queue().check(BUDGET);
        let cex = result.counterexample.expect("mutant must be flagged");
        assert_eq!(cex.property, "lost-wakeup");
        assert!(
            cex.detail.contains("unstarted"),
            "detail must describe the hoarded work: {}",
            cex.detail
        );
    }

    #[test]
    fn mutant_silent_release_deadlocks_the_drain() {
        // release_slots without the space pulse: the drain waiter sleeps
        // through the queue emptying.
        let result = Protocol::mutant_silent_release().check(BUDGET);
        let cex = result.counterexample.expect("mutant must be flagged");
        assert!(
            cex.property == "lost-wakeup" || cex.property == "deadlock",
            "got {}",
            cex.property
        );
    }

    #[test]
    fn conservation_catches_a_job_dropping_mutant() {
        // A worker that drops its batch on shutdown instead of serving
        // it must surface as a conservation violation. Simulated by
        // post-processing: serve fewer jobs than taken is not
        // expressible through Protocol knobs, so check the property
        // function directly on a corrupted quiescent state.
        let p = Protocol::current();
        let mut s = p.initial();
        s.workers = vec![Worker::Done; p.workers];
        s.subs = vec![Sub::Done; p.submitters];
        s.drainer = Drainer::Done;
        s.submitted = 4;
        s.served = 3; // one job vanished
        s.rejected = 0;
        let (property, _) = p.violation(&s, &[]).expect("must flag");
        assert_eq!(property, "conservation");
    }

    #[test]
    fn traces_replay_step_by_step() {
        // Every reported trace must be replayable: following the labels
        // from the initial state reaches the violating state.
        let p = Protocol::mutant_dropped_post_take_wake();
        let cex = p.check(BUDGET).counterexample.expect("mutant must be flagged");
        let mut state = p.initial();
        for step in &cex.trace {
            let succs = p.successors(&state);
            let (_, next) = succs
                .into_iter()
                .find(|(label, _)| label == step)
                .unwrap_or_else(|| panic!("trace step not enabled: {step}"));
            state = next;
        }
        assert!(cex.detail.contains(&state.render()), "final state must match the detail");
    }
}
