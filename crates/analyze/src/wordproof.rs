//! Pillar 3, part (b): a symbolic proof that the word-parallel routing
//! kernels equal the scalar oracle — for **every** input and **every**
//! fault configuration, with zero sampled inputs.
//!
//! [`crate::plancheck`] proves facts about individual plans; this module
//! proves a fact about the *kernels themselves*: `core/word.rs`'s
//! bit-sliced `route` computes, stage for stage, the same function as the
//! scalar `propagate` walk in `core/network.rs`/`core/faults.rs`, for all
//! orders `n ≤ 8`, both the plain and the omega-bit variants, with the
//! full `((cw & !stuck) | stuck_cross) ^ dead` fault overlay kept
//! symbolic per switch.
//!
//! # Method: stage-cut combinational equivalence
//!
//! The proof walks the network one stage at a time. At each stage
//! boundary it introduces a fresh symbolic variable for every (flattened
//! position, tag bit) pair — the *cut* — plus two symbolic fault bits per
//! switch, then builds two independent formulas over those variables:
//!
//! * the **word side** transcribes `word::route`'s column step literally:
//!   cross-mask read from plane `δ(s)` under `delta_mask`/word-parity
//!   selection, symbolic fault overlay at flattened upper positions, and
//!   the `t = (x ^ (x >> d)) & m; x ^ t ^ (t << d)` delta-swap shape
//!   (= `benes_bits::delta_swap_spec`, pinned to the shipped primitive by
//!   `benes-bits`' own tests) or the cross-word pair XOR-swap for
//!   `δ(s) ≥ 6`;
//! * the **scalar side** transcribes `propagate`: per switch, commanded
//!   state from the upper tag's control bit (forced straight in the omega
//!   prefix), `FaultKind::effective` as a mux tree over the same fault
//!   bits, then a conditional exchange of the paired tags.
//!
//! The two sides are compared bit-for-bit at the stage output through the
//! physical→flattened correspondence `p2f`, whose structure (stage `s`
//! pairs flattened positions differing in bit `δ(s)`, upper = bit clear;
//! all links compose to the identity) is itself re-verified here from
//! `Benes::link` — the proof does not *assume* the flattening claim, it
//! checks it. Per-stage equality of the two transition functions
//! composes inductively into end-to-end equality, and because each
//! compared formula depends on at most 5 variables, [`crate::sym`]'s
//! canonical truth tables decide each equivalence exactly.
//!
//! # What is and is not covered
//!
//! Covered: every tag assignment (a superset of permutations — the planes
//! are unconstrained), every fault configuration of every switch
//! (healthy, stuck-straight, stuck-cross, dead — the two symbolic fault
//! bits enumerate exactly these four), both kernels' forced-straight
//! omega prefix, and the fault-even-in-forced-stages behaviour. The
//! kernel's healthy-stage fast paths (skipping the overlay or a whole
//! forced column) are the all-healthy specialization of the proven
//! general path, under which the overlay is the identity. Not covered
//! symbolically: `pack`/`outputs` (byte-gather I/O conversion, pinned by
//! exhaustive unit tests in `core/word.rs`) and the drift between this
//! transcription and the shipped source — the latter is pinned by replay
//! tests below that step concrete inputs through the symbolic stage
//! functions and compare against the real kernel's public API.

use benes_core::network::Benes;
use benes_core::topology;

use crate::report::{Finding, Pillar};
use crate::sym::{Sym, SymVar};

/// A successful certification of one kernel variant at one order.
#[derive(Debug, Clone)]
pub struct WordCertificate {
    /// Network order.
    pub n: u32,
    /// `true` for the omega-bit kernel.
    pub omega: bool,
    /// Stages walked (`2n − 1`).
    pub stages: usize,
    /// Per-bit equivalence checks decided (each over all assignments of
    /// its support).
    pub checks: usize,
}

/// A divergence between the two kernels found by the prover.
#[derive(Debug, Clone)]
pub struct WordDivergence {
    /// Network order.
    pub n: u32,
    /// `true` for the omega-bit kernel.
    pub omega: bool,
    /// Stage at which the formulas differ.
    pub stage: usize,
    /// What differs, with a distinguishing assignment when applicable.
    pub detail: String,
}

impl WordDivergence {
    fn kernel(&self) -> &'static str {
        if self.omega {
            "omega"
        } else {
            "plain"
        }
    }
}

/// One symbolic bit plane: `words` symbolic 64-bit words.
type SymPlane = Vec<Vec<Sym>>;

fn word_count(size: usize) -> usize {
    size.div_ceil(64)
}

/// `p2f` advanced across one inter-stage link (the element at output
/// port `p` arrives at input port `link[p]`).
fn advance(p2f: &[usize], link: &[u32]) -> Vec<usize> {
    let mut next = vec![0usize; p2f.len()];
    for (p, &f) in p2f.iter().enumerate() {
        next[link[p] as usize] = f;
    }
    next
}

fn fault_bits(stage: usize, switch: usize) -> (Sym, Sym) {
    let a = Sym::var(SymVar::Fault { stage: stage as u8, switch: switch as u16, which: 0 });
    let b = Sym::var(SymVar::Fault { stage: stage as u8, switch: switch as u16, which: 1 });
    (a, b)
}

/// The word kernel's fault overlay applied to a commanded cross bit:
/// `((cw & !stuck) | stuck_cross) ^ dead` with `stuck = a`,
/// `stuck_cross = a ∧ b`, `dead = ¬a ∧ b`.
fn word_overlay(cw: &Sym, a: &Sym, b: &Sym) -> Sym {
    let stuck = a;
    let stuck_cross = a.and(b);
    let dead = a.not().and(b);
    cw.and(&stuck.not()).or(&stuck_cross).xor(&dead)
}

/// The scalar `FaultKind::effective` as a mux tree over the same fault
/// encoding: healthy → commanded, stuck-straight → straight, stuck-cross
/// → cross, dead → toggled.
fn scalar_effective(commanded: &Sym, a: &Sym, b: &Sym) -> Sym {
    a.mux(&b.mux(&Sym::truth(), &Sym::falsehood()), &b.mux(&commanded.not(), commanded))
}

/// The literal symbolic transcription of `benes_bits::delta_swap`:
/// `t = (x ^ (x >> shift)) & m; x ^ t ^ (t << shift)`, per bit.
fn sym_delta_swap(x: &[Sym], m: &[Sym], shift: usize) -> Vec<Sym> {
    let f = Sym::falsehood();
    let t: Vec<Sym> = (0..64)
        .map(|i| {
            let shifted = if i + shift < 64 { &x[i + shift] } else { &f };
            x[i].xor(shifted).and(&m[i])
        })
        .collect();
    (0..64)
        .map(|i| {
            let carried = if i >= shift { &t[i - shift] } else { &f };
            x[i].xor(&t[i]).xor(carried)
        })
        .collect()
}

/// One symbolic stage of `word::route` over fresh cut variables:
/// `planes[b][w][i]` of the stage output, faults symbolic.
fn word_stage(n: u32, stage: usize, omega: bool, p2f: &[usize]) -> Vec<SymPlane> {
    let size = 1usize << n;
    let words = word_count(size);
    let c = topology::control_bit(n, stage);
    let forced = omega && stage < n as usize - 1;

    let mut planes: Vec<SymPlane> = (0..n)
        .map(|b| {
            (0..words)
                .map(|w| {
                    (0..64)
                        .map(|i| {
                            let pos = (w << 6) | i;
                            if pos < size {
                                Sym::var(SymVar::Data { flat: pos as u16, bit: b as u8 })
                            } else {
                                Sym::falsehood()
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    // Commanded cross mask from plane δ(s), exactly as `route` reads it.
    let mut cross: SymPlane = vec![vec![Sym::falsehood(); 64]; words];
    if !forced {
        if c < 6 {
            let m = benes_bits::delta_mask(c);
            for w in 0..words {
                for i in 0..64 {
                    if (m >> i) & 1 == 1 {
                        cross[w][i] = planes[c as usize][w][i];
                    }
                }
            }
        } else {
            for w in 0..words {
                if (w >> (c - 6)) & 1 == 0 {
                    cross[w] = planes[c as usize][w].clone();
                }
            }
        }
    }

    // Symbolic fault overlay at flattened upper positions (the symbolic
    // form of `stage_fault_masks` + the overlay line in `route`).
    for i in 0..size / 2 {
        let u = p2f[2 * i];
        let (w, bit) = (u >> 6, u & 63);
        let (a, b) = fault_bits(stage, i);
        cross[w][bit] = word_overlay(&cross[w][bit], &a, &b);
    }

    // Apply the column to every plane.
    if c < 6 {
        let shift = 1usize << c;
        for plane in &mut planes {
            for (w, word) in plane.iter_mut().enumerate() {
                *word = sym_delta_swap(word, &cross[w], shift);
            }
        }
    } else {
        let half = 1usize << (c - 6);
        for plane in &mut planes {
            for wa in 0..words {
                if (wa >> (c - 6)) & 1 == 0 {
                    let wb = wa + half;
                    for i in 0..64 {
                        let t = plane[wa][i].xor(&plane[wb][i]).and(&cross[wa][i]);
                        plane[wa][i] = plane[wa][i].xor(&t);
                        plane[wb][i] = plane[wb][i].xor(&t);
                    }
                }
            }
        }
    }
    planes
}

/// One symbolic stage of the scalar `propagate` walk (switch column
/// only; the trailing link is pure renaming handled via `p2f`):
/// `out[port][bit]` over the same cut variables, reading the tag at
/// physical port `p` as the cut variables of flattened position
/// `p2f[p]`.
fn scalar_stage(n: u32, stage: usize, omega: bool, p2f: &[usize]) -> Vec<Vec<Sym>> {
    let size = 1usize << n;
    let c = topology::control_bit(n, stage) as usize;
    let forced = omega && stage < n as usize - 1;
    let tag =
        |p: usize, b: usize| Sym::var(SymVar::Data { flat: p2f[p] as u16, bit: b as u8 });
    let mut out = vec![vec![Sym::falsehood(); n as usize]; size];
    for i in 0..size / 2 {
        let commanded = if forced { Sym::falsehood() } else { tag(2 * i, c) };
        let (a, b) = fault_bits(stage, i);
        let cross = scalar_effective(&commanded, &a, &b);
        for bit in 0..n as usize {
            let upper = tag(2 * i, bit);
            let lower = tag(2 * i + 1, bit);
            out[2 * i][bit] = cross.mux(&lower, &upper);
            out[2 * i + 1][bit] = cross.mux(&upper, &lower);
        }
    }
    out
}

/// Proves `word::route(n, ·, omega, ·) ≡` scalar `propagate` for one
/// order and variant, or returns the first divergence with a witness.
///
/// # Errors
///
/// [`WordDivergence`] describing the stage, position and distinguishing
/// assignment at which the two kernels compute different functions.
///
/// # Panics
///
/// Panics if `n` is outside `1..=8` (the exhaustive-proof range).
pub fn prove_word_kernel(n: u32, omega: bool) -> Result<WordCertificate, WordDivergence> {
    assert!((1..=8).contains(&n), "the symbolic proof range is n in 1..=8");
    let net = Benes::new(n);
    let size = 1usize << n;
    let stages = 2 * n as usize - 1;
    let mut p2f: Vec<usize> = (0..size).collect();
    let mut checks = 0usize;

    for s in 0..stages {
        let c = topology::control_bit(n, s);
        // Structural claim first: stage s pairs flattened coordinates
        // differing in exactly bit δ(s), physical upper = bit clear.
        for i in 0..size / 2 {
            let u = p2f[2 * i];
            if u >> c & 1 != 0 || p2f[2 * i + 1] != u | (1 << c) {
                return Err(WordDivergence {
                    n,
                    omega,
                    stage: s,
                    detail: format!(
                        "flattening violated at switch {i}: ports map to {} / {}, expected bit-{c} pair",
                        p2f[2 * i],
                        p2f[2 * i + 1]
                    ),
                });
            }
        }

        let word_out = word_stage(n, s, omega, &p2f);
        let scalar_out = scalar_stage(n, s, omega, &p2f);
        for p in 0..size {
            let flat = p2f[p];
            let (w, i) = (flat >> 6, flat & 63);
            for b in 0..n as usize {
                let wf = &word_out[b][w][i];
                let sf = &scalar_out[p][b];
                checks += 1;
                if !wf.equiv(sf) {
                    let witness = wf
                        .counterexample(sf)
                        .map(|cex| {
                            cex.iter()
                                .map(|(v, x)| format!("{v:?}={}", u8::from(*x)))
                                .collect::<Vec<_>>()
                                .join(", ")
                        })
                        .unwrap_or_else(|| "supports differ".to_string());
                    return Err(WordDivergence {
                        n,
                        omega,
                        stage: s,
                        detail: format!(
                            "port {p} (flattened {flat}) bit {b}: word computes {wf}, scalar computes {sf}; distinguishing assignment: {witness}"
                        ),
                    });
                }
            }
        }
        if s + 1 < stages {
            p2f = advance(&p2f, net.link(s));
        }
    }

    // The links must compose to the identity, so the final flattened
    // coordinates are the physical output terminals.
    if p2f != (0..size).collect::<Vec<_>>() {
        return Err(WordDivergence {
            n,
            omega,
            stage: stages - 1,
            detail: "links do not compose to the identity".to_string(),
        });
    }

    Ok(WordCertificate { n, omega, stages, checks })
}

/// Runs the full proof matrix (`n = 1..=max_n`, plain and omega),
/// returning findings for any divergence plus the certificates earned.
#[must_use]
pub fn prove_all(max_n: u32) -> (Vec<Finding>, Vec<WordCertificate>) {
    let mut findings = Vec::new();
    let mut certs = Vec::new();
    for n in 1..=max_n {
        for omega in [false, true] {
            match prove_word_kernel(n, omega) {
                Ok(cert) => certs.push(cert),
                Err(div) => findings.push(Finding::error(
                    Pillar::Model,
                    "word-scalar-divergence",
                    format!("B({n}) {} kernel stage {}", div.kernel(), div.stage),
                    0,
                    div.detail,
                )),
            }
        }
    }
    (findings, certs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use benes_core::faults::{self, FaultKind, FaultSet};
    use benes_core::word;
    use benes_perm::Permutation;

    /// The tentpole acceptance check: word ≡ scalar for every n ≤ 8,
    /// both variants, all inputs, all fault configurations — decided by
    /// abstract evaluation, no sampled inputs anywhere in the proof.
    #[test]
    fn word_kernels_equal_the_scalar_oracle_for_all_orders_up_to_8() {
        let (findings, certs) = prove_all(8);
        assert!(
            findings.is_empty(),
            "kernel divergence: {}",
            findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
        assert_eq!(certs.len(), 16);
        // B(8): 15 stages × 256 positions × 8 bits each way.
        let b8 = certs.iter().find(|c| c.n == 8 && !c.omega).unwrap();
        assert_eq!(b8.checks, 15 * 256 * 8);
    }

    /// The fault-encoding lemma in isolation: the word overlay formula
    /// and the scalar mux tree are the same function of (commanded, a, b).
    #[test]
    fn fault_overlay_formulas_agree() {
        let c = Sym::var(SymVar::Data { flat: 0, bit: 0 });
        let (a, b) = fault_bits(0, 0);
        assert!(word_overlay(&c, &a, &b).equiv(&scalar_effective(&c, &a, &b)));
    }

    /// Tamper detection: a deliberately wrong word-side overlay (dead
    /// treated as stuck-cross) must be caught with a witness.
    #[test]
    fn prover_distinguishes_a_wrong_overlay() {
        let c = Sym::var(SymVar::Data { flat: 0, bit: 0 });
        let (a, b) = fault_bits(0, 0);
        let dead = a.not().and(&b);
        let wrong = c.and(&a.not()).or(&a.and(&b)).or(&dead); // OR instead of XOR
        let right = scalar_effective(&c, &a, &b);
        let cex = wrong.counterexample(&right).expect("must differ");
        // Differs exactly when the switch is dead and commanded is cross.
        let assign =
            |v: SymVar| cex.iter().find(|(w, _)| *w == v).map(|(_, x)| *x).unwrap_or(false);
        assert_ne!(wrong.eval(assign), right.eval(assign));
    }

    /// Drift guard: step concrete inputs through the *symbolic* stage
    /// functions and compare end-to-end against the real kernel's public
    /// API. Sampling is fine here — this test checks that the proof
    /// object describes the shipped code, not that the kernels agree
    /// (the proof itself settled that).
    #[test]
    fn symbolic_transcription_replays_the_real_kernel() {
        for (n, omega) in [(3u32, false), (3, true), (7, false), (8, true)] {
            let net = Benes::new(n);
            let size = 1usize << n;
            let d = lcg_perm(n, 0xd1f7 ^ u64::from(n));
            let mut fs = FaultSet::new(n);
            fs.insert(0, 0, FaultKind::Dead).unwrap();
            fs.insert(1, size / 4, FaultKind::StuckCross).unwrap();
            fs.insert(2 * n as usize - 2, size / 2 - 1, FaultKind::StuckStraight).unwrap();

            // Concrete planes in flattened coordinates, as `pack` lays
            // them out: bit b of the tag at position p.
            let dests = d.destinations();
            let mut tags: Vec<u32> = dests.to_vec();
            let mut p2f: Vec<usize> = (0..size).collect();
            let stages = 2 * n as usize - 1;
            for s in 0..stages {
                let word_out = word_stage(n, s, omega, &p2f);
                let assign = |v: SymVar| match v {
                    SymVar::Data { flat, bit } => (tags[flat as usize] >> bit) & 1 == 1,
                    SymVar::Fault { stage, switch, which } => {
                        let kind = fs.get(stage as usize, switch as usize);
                        let (a, b) = match kind {
                            None => (false, false),
                            Some(FaultKind::StuckStraight) => (true, false),
                            Some(FaultKind::StuckCross) => (true, true),
                            Some(FaultKind::Dead) => (false, true),
                        };
                        if which == 0 {
                            a
                        } else {
                            b
                        }
                    }
                };
                let mut next = vec![0u32; size];
                for (flat, slot) in next.iter_mut().enumerate() {
                    let (w, i) = (flat >> 6, flat & 63);
                    for (b, plane) in word_out.iter().enumerate() {
                        if plane[w][i].eval(assign) {
                            *slot |= 1 << b;
                        }
                    }
                }
                tags = next;
                if s + 1 < stages {
                    p2f = advance(&p2f, net.link(s));
                }
            }

            let real = if omega {
                word::self_route_omega_with_faults(&net, &d, &fs).unwrap()
            } else {
                word::self_route_with_faults(&net, &d, &fs).unwrap()
            };
            assert_eq!(tags, real.outputs(), "B({n}) omega={omega}");
            let scalar = if omega {
                faults::self_route_omega_with_faults(&net, &d, &fs)
            } else {
                faults::self_route_with_faults(&net, &d, &fs)
            };
            assert_eq!(tags, scalar.outputs(), "B({n}) omega={omega} scalar");
        }
    }

    fn lcg_perm(n: u32, seed: u64) -> Permutation {
        let size = 1usize << n;
        let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let mut dest: Vec<u32> = (0..size as u32).collect();
        for i in (1..size).rev() {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            dest.swap(i, j);
        }
        Permutation::from_destinations(dest).unwrap()
    }
}
