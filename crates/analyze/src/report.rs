//! The finding model shared by both analysis pillars, with JSON-lines
//! and human renderings (hand-rolled: the workspace is offline and the
//! linter must not grow dependencies).

use std::fmt;

/// Which analysis pillar produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pillar {
    /// Pillar 1: symbolic plan / certificate / netlist verification.
    Domain,
    /// Pillar 2: the offline workspace source linter.
    Workspace,
    /// Pillar 3: the concurrency model checker and the symbolic
    /// word-kernel equivalence prover.
    Model,
}

impl Pillar {
    /// Stable lowercase name used in machine output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Domain => "domain",
            Self::Workspace => "workspace",
            Self::Model => "model",
        }
    }
}

/// How serious a finding is. Every finding fails the `analyze` gate;
/// the severity only shades the rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A broken invariant (misroute, cycle, unsanctioned pattern).
    Error,
    /// Suspicious but conceivably intentional (e.g. dead logic).
    Warning,
}

impl Severity {
    /// Stable lowercase name used in machine output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Error => "error",
            Self::Warning => "warning",
        }
    }
}

/// One verdict from either pillar: a named lint, a location (a source
/// file and line, or a logical coordinate like `B(3) stage 2 switch 1`
/// with line 0), and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which pillar raised it.
    pub pillar: Pillar,
    /// Lint identifier, kebab-case (e.g. `lock-order-cycle`).
    pub lint: String,
    /// Source path or logical coordinate.
    pub file: String,
    /// 1-based source line; 0 when the location is not a source file.
    pub line: usize,
    /// Severity of the finding.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Builds an error-severity finding.
    #[must_use]
    pub fn error(
        pillar: Pillar,
        lint: &str,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Self {
            pillar,
            lint: lint.to_string(),
            file: file.into(),
            line,
            severity: Severity::Error,
            message: message.into(),
        }
    }

    /// Builds a warning-severity finding.
    #[must_use]
    pub fn warning(
        pillar: Pillar,
        lint: &str,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Self {
            severity: Severity::Warning,
            ..Self::error(pillar, lint, file, line, message)
        }
    }

    /// One JSON object per finding, on one line (JSON-lines output).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"pillar\":\"{}\",\"lint\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            self.pillar.name(),
            json_escape(&self.lint),
            self.severity.name(),
            json_escape(&self.file),
            self.line,
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(
                f,
                "{}: {} [{}/{}] {}",
                self.severity.name(),
                self.file,
                self.pillar.name(),
                self.lint,
                self.message
            )
        } else {
            write!(
                f,
                "{}: {}:{} [{}/{}] {}",
                self.severity.name(),
                self.file,
                self.line,
                self.pillar.name(),
                self.lint,
                self.message
            )
        }
    }
}

/// Renders a finding list for terminals: one line per finding plus a
/// summary tail line.
#[must_use]
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.len() - errors;
    out.push_str(&format!("findings: {errors} error(s), {warnings} warning(s)\n"));
    out
}

/// Renders a finding list as JSON lines (one object per line, no
/// enclosing array), matching `scripts/analyze.sh --json`.
#[must_use]
pub fn render_json_lines(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_json_line());
        out.push('\n');
    }
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_is_escaped_and_single_line() {
        let f = Finding::error(
            Pillar::Workspace,
            "lock-unwrap",
            "crates/engine/src/engine.rs",
            42,
            "says \"hi\"\nand more",
        );
        let line = f.to_json_line();
        assert_eq!(line.lines().count(), 1);
        assert!(line.contains("\\\"hi\\\""));
        assert!(line.contains("\\n"));
        assert!(line.contains("\"line\":42"));
        assert!(line.contains("\"pillar\":\"workspace\""));
    }

    #[test]
    fn human_rendering_counts_by_severity() {
        let fs = vec![
            Finding::error(Pillar::Domain, "misroute", "B(2)", 0, "wrong"),
            Finding::warning(Pillar::Domain, "dead-gate", "netlist", 0, "unused"),
        ];
        let text = render_human(&fs);
        assert!(text.contains("findings: 1 error(s), 1 warning(s)"));
        assert!(text.contains("error: B(2) [domain/misroute] wrong"));
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
    }
}
