//! Netlist lints for the synthesized `B(n)` hardware (`crates/gates`).
//!
//! [`lint_netlist`] checks any [`Netlist`] for the structural health
//! properties the evaluator silently assumes:
//!
//! * **combinational order** — every operand was created before its
//!   consumer, so the node list is acyclic and a single forward pass
//!   evaluates it (a cycle or forward reference would make
//!   `Netlist::eval` read an uncomputed wire);
//! * **dangling references** — outputs and operands name real wires;
//! * **fanout** — no wire drives more consumers than the stated bound,
//!   and no logic gate computes a value nobody reads (dead logic).
//!
//! [`lint_gate_benes`] adds the width/arity facts specific to the
//! Fig. 3 fabric: per-terminal bus widths, the omega control, and the
//! gate budget of `gates_per_switch` — so a synthesis regression shows
//! up as a finding, not as a mysteriously wrong routing.

use benes_core::topology;
use benes_gates::switch::gates_per_switch;
use benes_gates::{GateBenes, Netlist};

use crate::report::{Finding, Pillar};

/// Lints a netlist; `max_fanout` bounds the consumers per wire when
/// given (`None` skips the bound, dead-logic detection still runs).
/// `name` labels the findings (there is no file to point at).
#[must_use]
pub fn lint_netlist(nl: &Netlist, name: &str, max_fanout: Option<usize>) -> Vec<Finding> {
    let wires = nl.wire_count();
    let mut findings = Vec::new();
    let mut fanout = vec![0usize; wires];
    for (i, node) in nl.iter_nodes().enumerate() {
        for operand in node.operands() {
            if operand.id() >= i {
                findings.push(Finding::error(
                    Pillar::Domain,
                    "combinational-order",
                    name,
                    0,
                    format!(
                        "wire w{i} reads w{} which is not created yet \
                         (forward reference / combinational loop)",
                        operand.id()
                    ),
                ));
            }
            if operand.id() < wires {
                fanout[operand.id()] += 1;
            } else {
                findings.push(Finding::error(
                    Pillar::Domain,
                    "dangling-operand",
                    name,
                    0,
                    format!("wire w{i} reads nonexistent wire w{}", operand.id()),
                ));
            }
        }
    }
    for out in nl.output_nets() {
        if out.id() < wires {
            fanout[out.id()] += 1;
        } else {
            findings.push(Finding::error(
                Pillar::Domain,
                "dangling-output",
                name,
                0,
                format!("output names nonexistent wire w{}", out.id()),
            ));
        }
    }
    for (i, node) in nl.iter_nodes().enumerate() {
        if let Some(limit) = max_fanout {
            if fanout[i] > limit {
                findings.push(Finding::error(
                    Pillar::Domain,
                    "fanout-violation",
                    name,
                    0,
                    format!("wire w{i} drives {} consumers (bound {limit})", fanout[i]),
                ));
            }
        }
        if node.is_gate() && fanout[i] == 0 {
            findings.push(Finding::warning(
                Pillar::Domain,
                "dead-gate",
                name,
                0,
                format!("gate w{i} ({node:?}) drives nothing"),
            ));
        }
    }
    findings
}

/// Lints a synthesized [`GateBenes`]: the generic netlist checks with
/// the architecture-derived fanout bound, plus width/arity checks —
/// bus widths per terminal, the global omega control, and the exact
/// gate budget from [`gates_per_switch`].
#[must_use]
pub fn lint_gate_benes(hw: &GateBenes) -> Vec<Finding> {
    let n = hw.n();
    let w = hw.data_width();
    let terminals = topology::terminal_count(n);
    let switches = terminals / 2;
    let stages = topology::stage_count(n);
    let bus = (n + w) as usize;
    let name = format!("GateBenes({n}, {w})");
    let mut findings = Vec::new();

    // Fanout bound from the architecture: the shared omega enable feeds
    // one AND in each of the (n−1)·N/2 gated switches; a select line
    // feeds two ANDs per bus wire plus its inverter; a bus wire feeds
    // two muxes plus (for the control-bit tag wire) the select tap.
    let enable_fanout = (n as usize - 1) * switches;
    let select_fanout = 2 * bus + 1;
    let bound = enable_fanout.max(select_fanout).max(4);
    findings.extend(lint_netlist(hw.netlist(), &name, Some(bound)));

    let expected_inputs = 1 + terminals * bus; // the omega control, then tag+data per terminal
    if hw.netlist().input_count() != expected_inputs {
        findings.push(Finding::error(
            Pillar::Domain,
            "width-mismatch",
            &name,
            0,
            format!(
                "expected {expected_inputs} primary inputs (1 omega + {terminals}×{bus}), \
                 found {}",
                hw.netlist().input_count()
            ),
        ));
    }
    let expected_outputs = terminals * bus;
    if hw.netlist().output_count() != expected_outputs {
        findings.push(Finding::error(
            Pillar::Domain,
            "width-mismatch",
            &name,
            0,
            format!(
                "expected {expected_outputs} primary outputs ({terminals}×{bus}), found {}",
                hw.netlist().output_count()
            ),
        ));
    }
    // Gate budget: n−1 omega-gated stages, n free-running stages, one
    // shared omega inverter (absent for B(1), which has no gated stage).
    let gated = (n as u64 - 1) * switches as u64 * gates_per_switch(n, w, true);
    let free =
        (stages as u64 - (n as u64 - 1)) * switches as u64 * gates_per_switch(n, w, false);
    let expected_gates = gated + free + u64::from(n > 1);
    let actual = hw.gate_counts().total();
    if actual != expected_gates {
        findings.push(Finding::error(
            Pillar::Domain,
            "gate-budget",
            &name,
            0,
            format!(
                "expected {expected_gates} gates by the per-switch budget, found {actual}"
            ),
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_gate_benes_is_clean() {
        for (n, w) in [(1u32, 4u32), (2, 8), (3, 8)] {
            let hw = GateBenes::build(n, w);
            let findings = lint_gate_benes(&hw);
            assert!(findings.is_empty(), "GateBenes({n},{w}) findings: {findings:#?}");
        }
    }

    #[test]
    fn dead_gate_and_fanout_are_flagged() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let dead = nl.and(a, b);
        let live = nl.xor(a, b);
        nl.mark_output(live);
        let findings = lint_netlist(&nl, "toy", Some(1));
        assert!(findings.iter().any(
            |f| f.lint == "dead-gate" && f.message.contains(&format!("w{}", dead.id()))
        ));
        // `a` and `b` each feed two gates; the bound of 1 is exceeded.
        assert!(findings.iter().filter(|f| f.lint == "fanout-violation").count() >= 2);
        // With a generous bound only the dead gate remains.
        let relaxed = lint_netlist(&nl, "toy", Some(8));
        assert_eq!(relaxed.iter().filter(|f| f.lint == "fanout-violation").count(), 0);
    }

    #[test]
    fn healthy_netlists_prove_topological_order() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let na = nl.not(a);
        nl.mark_output(na);
        assert!(lint_netlist(&nl, "toy", None).is_empty());
    }
}
