//! Batcher's bitonic sorting network (the paper's reference \[11\]).
//!
//! The paper cites Batcher's network twice: in §I as the self-routing
//! alternative ("Batcher's sorting network is self-routing, but has
//! `O(log² N)` delay and `O(N log² N)` switches"), and in §III as the
//! asymptotically best known way to perform an *arbitrary* permutation on
//! a CCC/PSC (`O(log² N)` steps, by sorting on the destination tags).
//!
//! [`BitonicSorter`] models the comparator network explicitly: a schedule
//! of `n(n+1)/2` compare-exchange stages, each pairing elements that
//! differ in one index bit, with a data-independent direction pattern.
//! Routing a permutation = sorting the records by destination tag; it
//! succeeds for **all** `N!` permutations, at the cost of the deeper
//! network.

use benes_bits::bit;
use benes_perm::Permutation;

/// One compare-exchange stage of the bitonic schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompareStage {
    /// Elements `i` and `i ^ (1 << distance_bit)` are compared.
    pub distance_bit: u32,
    /// Elements are sorted ascending within their region iff bit
    /// `region_bit + 1` of the lower index is 0; `region_bit` is the `k`
    /// of the enclosing bitonic-merge phase.
    pub region_bit: u32,
}

/// An `N = 2^n` bitonic sorting network.
///
/// # Examples
///
/// ```
/// use benes_networks::BitonicSorter;
/// use benes_perm::Permutation;
///
/// let sorter = BitonicSorter::new(2);
/// assert_eq!(sorter.stage_count(), 3);       // n(n+1)/2
/// assert_eq!(sorter.comparator_count(), 6);  // N/2 per stage
///
/// // Bitonic routing handles permutations far outside F(n).
/// let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
/// let out = sorter.route(&d);
/// assert_eq!(out, (0..4).collect::<Vec<u32>>());
/// ```
#[derive(Debug, Clone)]
pub struct BitonicSorter {
    n: u32,
    schedule: Vec<CompareStage>,
}

impl BitonicSorter {
    /// Builds the sorter for `N = 2^n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 24`.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!((1..=24).contains(&n), "bitonic sorter requires 1 <= n <= 24");
        let mut schedule = Vec::new();
        for k in 0..n {
            for j in (0..=k).rev() {
                schedule.push(CompareStage { distance_bit: j, region_bit: k });
            }
        }
        Self { n, schedule }
    }

    /// The network order `n`.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The number of elements `N = 2^n`.
    #[must_use]
    pub fn terminal_count(&self) -> usize {
        1usize << self.n
    }

    /// The number of compare-exchange stages, `n(n+1)/2` — the network's
    /// delay in comparator levels.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.schedule.len()
    }

    /// The total number of comparators, `(N/2)·n(n+1)/2`.
    #[must_use]
    pub fn comparator_count(&self) -> usize {
        self.stage_count() * self.terminal_count() / 2
    }

    /// The stage schedule.
    #[must_use]
    pub fn schedule(&self) -> &[CompareStage] {
        &self.schedule
    }

    /// Sorts `records` ascending by key in place, counting nothing —
    /// the oblivious comparator network applied in software.
    ///
    /// # Panics
    ///
    /// Panics if `records.len() != terminal_count()`.
    pub fn sort_by_key<T, K: Ord>(&self, records: &mut [T], key: impl Fn(&T) -> K) {
        assert_eq!(
            records.len(),
            self.terminal_count(),
            "record count must equal terminal count"
        );
        for stage in &self.schedule {
            let d = 1usize << stage.distance_bit;
            for i in 0..records.len() {
                let partner = i ^ d;
                if partner <= i {
                    continue; // visit each pair once, from its low end
                }
                let ascending = bit(i as u64, stage.region_bit + 1) == 0;
                let out_of_order = key(&records[i]) > key(&records[partner]);
                if out_of_order == ascending {
                    records.swap(i, partner);
                }
            }
        }
    }

    /// Routes a permutation by sorting destination tags; the returned
    /// vector holds the tag arriving at each output (always
    /// `0, 1, …, N−1`: a sorter realizes every permutation).
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != terminal_count()`.
    #[must_use]
    pub fn route(&self, perm: &Permutation) -> Vec<u32> {
        let mut tags: Vec<u32> = perm.destinations().to_vec();
        self.sort_by_key(&mut tags, |&t| t);
        tags
    }

    /// Routes records `(tag, payload)` to their tag positions.
    ///
    /// # Panics
    ///
    /// Panics if `records.len() != terminal_count()`.
    #[must_use]
    pub fn route_records<T>(&self, mut records: Vec<(u32, T)>) -> Vec<(u32, T)> {
        self.sort_by_key(&mut records, |r| r.0);
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_comparator_counts() {
        for n in 1..10u32 {
            let s = BitonicSorter::new(n);
            assert_eq!(s.stage_count(), (n * (n + 1) / 2) as usize);
            assert_eq!(s.comparator_count(), s.stage_count() * (1usize << n) / 2);
        }
    }

    #[test]
    fn sorts_all_permutations_n3() {
        let s = BitonicSorter::new(3);
        // Exhaustive: every permutation of 8 sorts correctly.
        fn rec(rem: &mut Vec<u32>, cur: &mut Vec<u32>, s: &BitonicSorter) {
            if rem.is_empty() {
                let mut v = cur.clone();
                s.sort_by_key(&mut v, |&x| x);
                assert_eq!(v, (0..8).collect::<Vec<_>>(), "failed on {cur:?}");
                return;
            }
            for idx in 0..rem.len() {
                let v = rem.remove(idx);
                cur.push(v);
                rec(rem, cur, s);
                cur.pop();
                rem.insert(idx, v);
            }
        }
        rec(&mut (0..8).collect(), &mut Vec::new(), &s);
    }

    #[test]
    fn sorts_with_duplicates() {
        let s = BitonicSorter::new(3);
        let mut v = vec![3u32, 1, 3, 0, 2, 1, 0, 2];
        s.sort_by_key(&mut v, |&x| x);
        assert_eq!(v, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn routes_arbitrary_permutations() {
        use benes_perm::bpc::Bpc;
        for n in 1..8u32 {
            let s = BitonicSorter::new(n);
            let d = Bpc::bit_reversal(n).to_permutation();
            assert_eq!(s.route(&d), (0..1u32 << n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn route_records_carries_payloads() {
        let s = BitonicSorter::new(2);
        let out = s.route_records(vec![(2u32, 'a'), (0, 'b'), (3, 'c'), (1, 'd')]);
        assert_eq!(out, vec![(0, 'b'), (1, 'd'), (2, 'a'), (3, 'c')]);
    }

    #[test]
    fn sorts_random_like_sequences() {
        let s = BitonicSorter::new(6);
        // Deterministic pseudo-random input.
        let mut v: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(0x9E3779B9) % 97).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        s.sort_by_key(&mut v, |&x| x);
        assert_eq!(v, expected);
    }
}
