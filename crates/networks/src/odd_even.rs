//! Batcher's odd-even merge sorting network — the second construction of
//! the paper's reference \[11\].
//!
//! Batcher 1968 gives two sorting networks; the bitonic sorter
//! ([`crate::bitonic`]) and the odd-even mergesort implemented here. Both
//! have `O(log² N)` depth; odd-even merging uses fewer comparators
//! (`(p² − p + 4)·2^{p−2} − 1` for `N = 2^p`, versus the bitonic
//! `p(p+1)·2^{p−2}`), which matters for the §I switch-count comparison —
//! it is the cheapest *universal* self-routing alternative to the Benes
//! network, and still loses to it by a `Θ(log N)` factor in both
//! switches and delay.
//!
//! The construction is the classic recursion: sort each half, then merge
//! with the odd-even merger (compare-exchange `i ↔ i + 2^k` waves).

use benes_perm::Permutation;

/// One comparator: `(low, high)` positions; after the stage, the smaller
/// key sits at `low`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comparator {
    /// The position receiving the smaller key.
    pub low: usize,
    /// The position receiving the larger key.
    pub high: usize,
}

/// An `N = 2^p` odd-even mergesort network: an explicit list of
/// comparator stages (comparators within a stage touch disjoint lines).
///
/// # Examples
///
/// ```
/// use benes_networks::odd_even::OddEvenMergeSorter;
///
/// let s = OddEvenMergeSorter::new(3);
/// assert_eq!(s.stage_count(), 6); // p(p+1)/2
/// assert_eq!(s.comparator_count(), 19);
/// let mut v = vec![5u32, 7, 1, 0, 6, 2, 4, 3];
/// s.sort_by_key(&mut v, |&x| x);
/// assert_eq!(v, vec![0, 1, 2, 3, 4, 5, 6, 7]);
/// ```
#[derive(Debug, Clone)]
pub struct OddEvenMergeSorter {
    n: u32,
    stages: Vec<Vec<Comparator>>,
}

impl OddEvenMergeSorter {
    /// Builds the sorter for `N = 2^n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 20`.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!((1..=20).contains(&n), "odd-even mergesort requires 1 <= n <= 20");
        let len = 1usize << n;
        // Generate comparators with stage labels via the iterative
        // formulation (Batcher's algorithm): phase p = 1, 2, 4, …;
        // sub-phase k = p, p/2, …, 1.
        let mut stages: Vec<Vec<Comparator>> = Vec::new();
        let mut p = 1usize;
        while p < len {
            let mut k = p;
            while k >= 1 {
                let mut stage = Vec::new();
                let j_start = k % p;
                let mut j = j_start;
                while j + k < len {
                    let i_max = (k - 1).min(len - j - k - 1);
                    for i in 0..=i_max {
                        let a = i + j;
                        let b = i + j + k;
                        if a / (p * 2) == b / (p * 2) {
                            stage.push(Comparator { low: a, high: b });
                        }
                    }
                    j += k * 2;
                }
                if !stage.is_empty() {
                    stages.push(stage);
                }
                k /= 2;
            }
            p *= 2;
        }
        Self { n, stages }
    }

    /// The network order `n` (`N = 2^n` lines).
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The number of lines, `N = 2^n`.
    #[must_use]
    pub fn terminal_count(&self) -> usize {
        1usize << self.n
    }

    /// The number of comparator stages (the delay), `n(n+1)/2`.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The total number of comparators.
    #[must_use]
    pub fn comparator_count(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// The comparator stages.
    #[must_use]
    pub fn stages(&self) -> &[Vec<Comparator>] {
        &self.stages
    }

    /// Applies the network: sorts `records` ascending by `key`.
    ///
    /// # Panics
    ///
    /// Panics if `records.len() != terminal_count()`.
    pub fn sort_by_key<T, K: Ord>(&self, records: &mut [T], key: impl Fn(&T) -> K) {
        assert_eq!(
            records.len(),
            self.terminal_count(),
            "record count must equal line count"
        );
        for stage in &self.stages {
            for c in stage {
                if key(&records[c.low]) > key(&records[c.high]) {
                    records.swap(c.low, c.high);
                }
            }
        }
    }

    /// Routes a permutation by sorting its destination tags (always
    /// succeeds — a sorter is a universal permutation network).
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != terminal_count()`.
    #[must_use]
    pub fn route(&self, perm: &Permutation) -> Vec<u32> {
        let mut tags: Vec<u32> = perm.destinations().to_vec();
        self.sort_by_key(&mut tags, |&t| t);
        tags
    }
}

/// Batcher's closed form for the odd-even comparator count at `N = 2^p`:
/// `(p² − p + 4)·2^{p−2} − 1`.
///
/// # Panics
///
/// Panics if `p == 0`.
#[must_use]
pub fn comparator_count_closed_form(p: u32) -> u64 {
    assert!(p >= 1, "need p >= 1");
    let p64 = u64::from(p);
    if p == 1 {
        return 1;
    }
    (p64 * p64 - p64 + 4) * (1u64 << (p64 - 2)) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_all_permutations_n3() {
        // Zero-one principle would suffice; do the full S_8 anyway.
        let s = OddEvenMergeSorter::new(3);
        fn rec(rem: &mut Vec<u32>, cur: &mut Vec<u32>, s: &OddEvenMergeSorter) {
            if rem.is_empty() {
                let mut v = cur.clone();
                s.sort_by_key(&mut v, |&x| x);
                assert_eq!(v, (0..8).collect::<Vec<_>>(), "failed on {cur:?}");
                return;
            }
            for idx in 0..rem.len() {
                let v = rem.remove(idx);
                cur.push(v);
                rec(rem, cur, s);
                cur.pop();
                rem.insert(idx, v);
            }
        }
        rec(&mut (0..8).collect(), &mut Vec::new(), &s);
    }

    #[test]
    fn zero_one_principle_exhaustive_n4() {
        // Sorting networks sort everything iff they sort all 0/1 inputs.
        let s = OddEvenMergeSorter::new(4);
        for mask in 0u32..(1 << 16) {
            let mut v: Vec<u32> = (0..16).map(|b| (mask >> b) & 1).collect();
            s.sort_by_key(&mut v, |&x| x);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "failed on mask {mask:#x}");
        }
    }

    #[test]
    fn comparator_count_matches_closed_form() {
        for p in 1..=10u32 {
            let s = OddEvenMergeSorter::new(p);
            assert_eq!(
                s.comparator_count() as u64,
                comparator_count_closed_form(p),
                "p = {p}"
            );
        }
    }

    #[test]
    fn stage_count_is_p_p_plus_1_over_2() {
        for p in 1..=10u32 {
            let s = OddEvenMergeSorter::new(p);
            assert_eq!(s.stage_count() as u32, p * (p + 1) / 2, "p = {p}");
        }
    }

    #[test]
    fn fewer_comparators_than_bitonic() {
        use crate::bitonic::BitonicSorter;
        for p in 2..=12u32 {
            let oe = comparator_count_closed_form(p);
            let bi = BitonicSorter::new(p).comparator_count() as u64;
            assert!(oe < bi, "p = {p}: odd-even {oe} !< bitonic {bi}");
        }
    }

    #[test]
    fn stages_touch_disjoint_lines() {
        let s = OddEvenMergeSorter::new(6);
        for (idx, stage) in s.stages().iter().enumerate() {
            let mut seen = vec![false; s.terminal_count()];
            for c in stage {
                assert!(c.low < c.high);
                for line in [c.low, c.high] {
                    assert!(!seen[line], "stage {idx} reuses line {line}");
                    seen[line] = true;
                }
            }
        }
    }

    #[test]
    fn routes_permutations() {
        let s = OddEvenMergeSorter::new(4);
        let d = benes_perm::bpc::Bpc::bit_reversal(4).to_permutation();
        assert_eq!(s.route(&d), (0..16).collect::<Vec<u32>>());
    }
}
