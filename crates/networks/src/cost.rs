//! The hardware cost model behind the paper's §I network comparison
//! (experiment `EXP-COST`).
//!
//! For each candidate network this module records the closed-form switch
//! count, transit delay (in switching levels) and set-up cost model the
//! paper quotes, and — where we have an executable model — checks the
//! formula against the constructed object. The comparison the paper draws:
//!
//! | network | switches | delay | set-up | realizes |
//! |---|---|---|---|---|
//! | crossbar | `N²` | 1 | trivial | all `N!` |
//! | omega | `(N/2)·log N` | `log N` | self-routing | `Ω(n)` |
//! | bitonic sorter | `(N/2)·log N·(log N+1)/2` | `log N (log N+1)/2` | self-routing | all `N!` |
//! | Benes + Waksman | `N·log N − N/2` | `2 log N − 1` | `O(N log N)` serial | all `N!` |
//! | **self-routing Benes** | `N·log N − N/2` | `2 log N − 1` | **none** | `F(n)` ⊋ `BPC ∪ Ω⁻¹` |

use crate::bitonic::BitonicSorter;
use crate::crossbar::Crossbar;
use crate::omega_net::OmegaNetwork;
use benes_core::Benes;

/// How a network's switches are set for a new permutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetupModel {
    /// No set-up computation: switches decide from in-band tags.
    SelfRouting,
    /// Crosspoints close directly from the destination vector.
    Trivial,
    /// An external `O(N log N)` serial computation (Waksman).
    ExternalSerial,
}

impl std::fmt::Display for SetupModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SelfRouting => write!(f, "self-routing"),
            Self::Trivial => write!(f, "trivial"),
            Self::ExternalSerial => write!(f, "O(N log N) serial"),
        }
    }
}

/// The §I cost figures for one network at one size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkCost {
    /// Display name.
    pub name: &'static str,
    /// Number of binary switches / comparators / crosspoints.
    pub switches: u64,
    /// Transit delay in switching levels.
    pub delay: u64,
    /// How set-up happens.
    pub setup: SetupModel,
    /// Which permutations the network realizes without external help.
    pub realizes: &'static str,
}

/// Cost of the self-routing Benes network `B(n)` — verified against the
/// constructed [`Benes`] object.
///
/// # Panics
///
/// Panics if `n` is out of the range supported by [`Benes::new`].
#[must_use]
pub fn benes_self_routing(n: u32) -> NetworkCost {
    let net = Benes::new(n);
    NetworkCost {
        name: "Benes (self-routing)",
        switches: net.switch_count() as u64,
        delay: net.transit_delay() as u64,
        setup: SetupModel::SelfRouting,
        realizes: "F(n) ⊇ BPC ∪ Ω⁻¹ (Ω via omega bit; all N! with external set-up)",
    }
}

/// Cost of the Benes network with Waksman external set-up.
///
/// # Panics
///
/// Panics if `n` is out of range.
#[must_use]
pub fn benes_external(n: u32) -> NetworkCost {
    let net = Benes::new(n);
    NetworkCost {
        name: "Benes (Waksman set-up)",
        switches: net.switch_count() as u64,
        delay: net.transit_delay() as u64,
        setup: SetupModel::ExternalSerial,
        realizes: "all N!",
    }
}

/// Cost of Lawrie's omega network — verified against [`OmegaNetwork`].
///
/// # Panics
///
/// Panics if `n` is out of range.
#[must_use]
pub fn omega(n: u32) -> NetworkCost {
    let net = OmegaNetwork::new(n);
    NetworkCost {
        name: "Omega (Lawrie)",
        switches: net.switch_count() as u64,
        delay: net.stage_count() as u64,
        setup: SetupModel::SelfRouting,
        realizes: "Ω(n)",
    }
}

/// Cost of Batcher's bitonic sorting network — verified against
/// [`BitonicSorter`].
///
/// # Panics
///
/// Panics if `n` is out of range.
#[must_use]
pub fn bitonic(n: u32) -> NetworkCost {
    let s = BitonicSorter::new(n);
    NetworkCost {
        name: "Bitonic sorter (Batcher)",
        switches: s.comparator_count() as u64,
        delay: s.stage_count() as u64,
        setup: SetupModel::SelfRouting,
        realizes: "all N!",
    }
}

/// Cost of Batcher's odd-even mergesort network — verified against
/// [`crate::odd_even::OddEvenMergeSorter`]. Fewer comparators than the
/// bitonic sorter at the same depth.
///
/// # Panics
///
/// Panics if `n` is out of range.
#[must_use]
pub fn odd_even(n: u32) -> NetworkCost {
    let s = crate::odd_even::OddEvenMergeSorter::new(n);
    NetworkCost {
        name: "Odd-even mergesort (Batcher)",
        switches: s.comparator_count() as u64,
        delay: s.stage_count() as u64,
        setup: SetupModel::SelfRouting,
        realizes: "all N!",
    }
}

/// Cost of Waksman's reduced network `A(n)`: the Benes network with
/// `N/2 − 1` provably redundant switches removed — `N·log N − N + 1`
/// switches, the optimal rearrangeable count. Verified against
/// [`benes_core::waksman::reduced_switch_count`].
///
/// # Panics
///
/// Panics if `n` is out of range.
#[must_use]
pub fn waksman_reduced(n: u32) -> NetworkCost {
    NetworkCost {
        name: "Waksman A(n) (reduced Benes)",
        switches: benes_core::waksman::reduced_switch_count(n) as u64,
        delay: (2 * n - 1).into(),
        setup: SetupModel::ExternalSerial,
        realizes: "all N!",
    }
}

/// Cost of a full crossbar — verified against [`Crossbar`].
///
/// # Panics
///
/// Panics if `n > 31`.
#[must_use]
pub fn crossbar(n: u32) -> NetworkCost {
    assert!(n <= 31, "crossbar cost model limited to n <= 31");
    let x = Crossbar::new(1usize << n);
    NetworkCost {
        name: "Crossbar",
        switches: x.crosspoint_count() as u64,
        delay: x.transit_delay() as u64,
        setup: SetupModel::Trivial,
        realizes: "all N!",
    }
}

/// The full §I comparison at order `n`, in the paper's narrative order.
///
/// # Panics
///
/// Panics if `n` is out of range for any constituent model.
#[must_use]
pub fn comparison(n: u32) -> Vec<NetworkCost> {
    vec![
        crossbar(n),
        omega(n),
        bitonic(n),
        odd_even(n),
        waksman_reduced(n),
        benes_external(n),
        benes_self_routing(n),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_match_paper() {
        for n in 1..12u32 {
            let nn = 1u64 << n;
            assert_eq!(benes_self_routing(n).switches, nn * u64::from(n) - nn / 2);
            assert_eq!(benes_self_routing(n).delay, 2 * u64::from(n) - 1);
            assert_eq!(omega(n).switches, nn / 2 * u64::from(n));
            assert_eq!(omega(n).delay, u64::from(n));
            assert_eq!(bitonic(n).switches, nn / 2 * u64::from(n) * u64::from(n + 1) / 2);
            assert_eq!(bitonic(n).delay, u64::from(n) * u64::from(n + 1) / 2);
            assert_eq!(crossbar(n).switches, nn * nn);
            assert_eq!(crossbar(n).delay, 1);
        }
    }

    #[test]
    fn benes_is_twice_omega() {
        // §I: "The number of switches and the delay in our self-routing
        // network are both about twice the corresponding figures in a
        // self-routing omega network."
        for n in 4..12u32 {
            let b = benes_self_routing(n);
            let o = omega(n);
            // Both ratios are exactly (2n − 1)/n: below 2, approaching it.
            let switch_ratio = b.switches as f64 / o.switches as f64;
            let delay_ratio = b.delay as f64 / o.delay as f64;
            let expected = (2.0 * f64::from(n) - 1.0) / f64::from(n);
            assert!((switch_ratio - expected).abs() < 1e-9, "n={n}: {switch_ratio}");
            assert!((delay_ratio - expected).abs() < 1e-9, "n={n}: {delay_ratio}");
            assert!(switch_ratio > 1.7 && switch_ratio < 2.0);
        }
    }

    #[test]
    fn crossbar_dominates_switch_count_eventually() {
        for n in 6..14u32 {
            assert!(crossbar(n).switches > benes_self_routing(n).switches);
            assert!(crossbar(n).switches > bitonic(n).switches);
        }
    }

    #[test]
    fn comparison_has_all_seven_rows() {
        let rows = comparison(6);
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().any(|r| r.setup == SetupModel::Trivial));
        assert_eq!(
            rows.iter().filter(|r| r.setup == SetupModel::ExternalSerial).count(),
            2
        );
        assert_eq!(rows.iter().filter(|r| r.setup == SetupModel::SelfRouting).count(), 4);
    }

    #[test]
    fn odd_even_beats_bitonic_in_switches() {
        for n in 2..12u32 {
            assert!(odd_even(n).switches < bitonic(n).switches, "n = {n}");
            assert_eq!(odd_even(n).delay, bitonic(n).delay);
        }
    }

    #[test]
    fn waksman_reduction_saves_half_n_minus_1() {
        for n in 1..12u32 {
            let nn = 1u64 << n;
            assert_eq!(
                benes_external(n).switches - waksman_reduced(n).switches,
                nn / 2 - 1
            );
            assert_eq!(waksman_reduced(n).switches, nn * u64::from(n) - nn + 1);
        }
    }
}
