//! Lawrie's omega network and its inverse, as explicit circuit models.
//!
//! An omega network on `N = 2^n` terminals is `n` identical stages; each
//! stage first applies the perfect-shuffle wiring (index rotate-left) and
//! then a column of `N/2` two-by-two switches. A message self-routes by
//! its destination tag MSB-first: the switch output taken at stage `s` is
//! destination bit `n−1−s`. Unlike the Benes switch (which has one state
//! shared by both inputs), each omega switch input independently demands
//! an output — two inputs demanding the same output **conflict** and the
//! permutation is unrealizable.
//!
//! The inverse omega network runs the stages mirrored (switch column, then
//! *unshuffle* wiring), consuming destination bits LSB-first; it realizes
//! exactly the `Ω⁻¹(n)` class.
//!
//! These models exist to validate the `benes-perm` residue predicates
//! (`is_omega`, `is_inverse_omega`) against real hardware behaviour, and
//! to supply the omega column of the paper's §I network comparison: half
//! the switches and half the delay of `B(n)`, but a much smaller
//! realizable class — `2^{nN/2}` settings versus the Benes network's
//! richer `F(n)` plus all `N!` with external set-up.

use std::fmt;

use benes_bits::{bit, shuffle, unshuffle};
use benes_perm::Permutation;

/// A routing conflict: two tags demanded the same switch output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmegaConflict {
    /// The stage at which the conflict occurred (0-based).
    pub stage: usize,
    /// The switch (row) at which the conflict occurred.
    pub switch: usize,
    /// The two destination tags that collided.
    pub tags: (u32, u32),
}

impl fmt::Display for OmegaConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conflict at stage {}, switch {}: tags {} and {} demand the same output",
            self.stage, self.switch, self.tags.0, self.tags.1
        )
    }
}

impl std::error::Error for OmegaConflict {}

/// An `N = 2^n` omega network (shuffle-exchange, `n` stages).
///
/// # Examples
///
/// ```
/// use benes_networks::OmegaNetwork;
/// use benes_perm::Permutation;
///
/// let net = OmegaNetwork::new(2);
/// // Fig. 5's permutation is in Ω(2): the omega network realizes it.
/// let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
/// assert!(net.realizes(&d));
/// ```
#[derive(Debug, Clone)]
pub struct OmegaNetwork {
    n: u32,
}

impl OmegaNetwork {
    /// Builds the `N = 2^n` omega network.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 24`.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!((1..=24).contains(&n), "omega network requires 1 <= n <= 24");
        Self { n }
    }

    /// The network order `n`.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The number of terminals `N = 2^n`.
    #[must_use]
    pub fn terminal_count(&self) -> usize {
        1usize << self.n
    }

    /// The number of stages, `log N = n`.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.n as usize
    }

    /// The number of binary switches, `(N/2)·log N`.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.stage_count() * self.terminal_count() / 2
    }

    /// Self-routes the permutation; returns the per-stage positions on
    /// success or the first conflict encountered.
    ///
    /// # Errors
    ///
    /// Returns an [`OmegaConflict`] if two tags collide at a switch
    /// output. Permutations whose length is not `N` also conflict-error at
    /// stage 0 by convention — prefer validating the length up front.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != terminal_count()`.
    pub fn route(&self, perm: &Permutation) -> Result<Vec<u32>, OmegaConflict> {
        assert_eq!(
            perm.len(),
            self.terminal_count(),
            "permutation length must equal terminal count"
        );
        let nn = self.terminal_count();
        // positions[p] = tag currently at port p.
        let mut cur: Vec<Option<u32>> =
            perm.destinations().iter().map(|&d| Some(d)).collect();
        for s in 0..self.stage_count() {
            // Shuffle wiring: port p → rotate-left(p).
            let mut shuffled: Vec<Option<u32>> = vec![None; nn];
            for (p, t) in cur.into_iter().enumerate() {
                shuffled[shuffle(p as u64, self.n) as usize] = t;
            }
            // Exchange column: each input demands output bit0 = tag bit
            // n−1−s.
            let ctrl = self.n - 1 - s as u32;
            let mut next: Vec<Option<u32>> = vec![None; nn];
            for i in 0..nn / 2 {
                for port in [2 * i, 2 * i + 1] {
                    let tag = shuffled[port].expect("port filled");
                    let want = 2 * i + bit(u64::from(tag), ctrl) as usize;
                    if let Some(other) = next[want] {
                        return Err(OmegaConflict {
                            stage: s,
                            switch: i,
                            tags: (other, tag),
                        });
                    }
                    next[want] = Some(tag);
                }
            }
            cur = next;
        }
        Ok(cur.into_iter().map(|t| t.expect("port filled")).collect())
    }

    /// Whether the permutation routes without conflicts (membership in
    /// `Ω(n)` by direct simulation).
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != terminal_count()`.
    #[must_use]
    pub fn realizes(&self, perm: &Permutation) -> bool {
        match self.route(perm) {
            Ok(out) => out.iter().enumerate().all(|(o, &t)| o as u32 == t),
            Err(_) => false,
        }
    }

    /// Routes records `(tag, payload)` through the network; payloads ride
    /// with their tags exactly as on the Benes network.
    ///
    /// # Errors
    ///
    /// Returns the first [`OmegaConflict`] for non-omega tag vectors (the
    /// records are consumed either way — hardware would corrupt them).
    ///
    /// # Panics
    ///
    /// Panics if `records.len() != terminal_count()`.
    pub fn route_records<T>(
        &self,
        records: Vec<(u32, T)>,
    ) -> Result<Vec<(u32, T)>, OmegaConflict> {
        assert_eq!(records.len(), self.terminal_count(), "record count must be N");
        let nn = self.terminal_count();
        let mut cur: Vec<Option<(u32, T)>> = records.into_iter().map(Some).collect();
        for s in 0..self.stage_count() {
            let mut shuffled: Vec<Option<(u32, T)>> = (0..nn).map(|_| None).collect();
            for (p, t) in cur.into_iter().enumerate() {
                shuffled[shuffle(p as u64, self.n) as usize] = t;
            }
            let ctrl = self.n - 1 - s as u32;
            let mut next: Vec<Option<(u32, T)>> = (0..nn).map(|_| None).collect();
            for i in 0..nn / 2 {
                for port in [2 * i, 2 * i + 1] {
                    let rec = shuffled[port].take().expect("port filled");
                    let want = 2 * i + bit(u64::from(rec.0), ctrl) as usize;
                    if let Some(other) = &next[want] {
                        return Err(OmegaConflict {
                            stage: s,
                            switch: i,
                            tags: (other.0, rec.0),
                        });
                    }
                    next[want] = Some(rec);
                }
            }
            cur = next;
        }
        Ok(cur.into_iter().map(|t| t.expect("port filled")).collect())
    }
}

/// An `N = 2^n` inverse omega network (exchange-unshuffle, `n` stages).
///
/// Realizes exactly the `Ω⁻¹(n)` class — the permutations Theorem 3 of
/// the paper proves are self-routable on the Benes network.
///
/// # Examples
///
/// ```
/// use benes_networks::InverseOmegaNetwork;
/// use benes_perm::omega::cyclic_shift;
///
/// let net = InverseOmegaNetwork::new(3);
/// assert!(net.realizes(&cyclic_shift(3, 5)));
/// ```
#[derive(Debug, Clone)]
pub struct InverseOmegaNetwork {
    n: u32,
}

impl InverseOmegaNetwork {
    /// Builds the `N = 2^n` inverse omega network.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 24`.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!((1..=24).contains(&n), "inverse omega network requires 1 <= n <= 24");
        Self { n }
    }

    /// The network order `n`.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The number of terminals `N = 2^n`.
    #[must_use]
    pub fn terminal_count(&self) -> usize {
        1usize << self.n
    }

    /// The number of stages, `log N = n`.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.n as usize
    }

    /// The number of binary switches, `(N/2)·log N`.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.stage_count() * self.terminal_count() / 2
    }

    /// Self-routes the permutation, consuming destination bits LSB-first.
    ///
    /// # Errors
    ///
    /// Returns an [`OmegaConflict`] if two tags collide.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != terminal_count()`.
    pub fn route(&self, perm: &Permutation) -> Result<Vec<u32>, OmegaConflict> {
        assert_eq!(
            perm.len(),
            self.terminal_count(),
            "permutation length must equal terminal count"
        );
        let nn = self.terminal_count();
        let mut cur: Vec<Option<u32>> =
            perm.destinations().iter().map(|&d| Some(d)).collect();
        for s in 0..self.stage_count() {
            // Exchange column first: input demands output bit0 = tag bit s.
            let mut exchanged: Vec<Option<u32>> = vec![None; nn];
            for i in 0..nn / 2 {
                for port in [2 * i, 2 * i + 1] {
                    let tag = cur[port].expect("port filled");
                    let want = 2 * i + bit(u64::from(tag), s as u32) as usize;
                    if let Some(other) = exchanged[want] {
                        return Err(OmegaConflict {
                            stage: s,
                            switch: i,
                            tags: (other, tag),
                        });
                    }
                    exchanged[want] = Some(tag);
                }
            }
            // Unshuffle wiring: port p → rotate-right(p).
            let mut next: Vec<Option<u32>> = vec![None; nn];
            for (p, t) in exchanged.into_iter().enumerate() {
                next[unshuffle(p as u64, self.n) as usize] = t;
            }
            cur = next;
        }
        Ok(cur.into_iter().map(|t| t.expect("port filled")).collect())
    }

    /// Whether the permutation routes without conflicts (membership in
    /// `Ω⁻¹(n)` by direct simulation).
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != terminal_count()`.
    #[must_use]
    pub fn realizes(&self, perm: &Permutation) -> bool {
        match self.route(perm) {
            Ok(out) => out.iter().enumerate().all(|(o, &t)| o as u32 == t),
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benes_perm::omega::{
        conditional_exchange, cyclic_shift, is_inverse_omega, is_omega, p_ordering,
        segment_cyclic_shift,
    };

    fn all_perms(len: u32) -> Vec<Permutation> {
        fn rec(rem: &mut Vec<u32>, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if rem.is_empty() {
                out.push(cur.clone());
                return;
            }
            for idx in 0..rem.len() {
                let v = rem.remove(idx);
                cur.push(v);
                rec(rem, cur, out);
                cur.pop();
                rem.insert(idx, v);
            }
        }
        let mut out = Vec::new();
        rec(&mut (0..len).collect(), &mut Vec::new(), &mut out);
        out.into_iter().map(|d| Permutation::from_destinations(d).unwrap()).collect()
    }

    #[test]
    fn network_realizes_exactly_lawries_class_n2() {
        let net = OmegaNetwork::new(2);
        for d in all_perms(4) {
            assert_eq!(net.realizes(&d), is_omega(&d), "D = {d}");
        }
    }

    #[test]
    fn network_realizes_exactly_lawries_class_n3() {
        let net = OmegaNetwork::new(3);
        for d in all_perms(8) {
            assert_eq!(net.realizes(&d), is_omega(&d), "D = {d}");
        }
    }

    #[test]
    fn inverse_network_realizes_exactly_inverse_class_n3() {
        let net = InverseOmegaNetwork::new(3);
        for d in all_perms(8) {
            assert_eq!(net.realizes(&d), is_inverse_omega(&d), "D = {d}");
        }
    }

    #[test]
    fn inverse_is_forward_run_backwards() {
        // Ω⁻¹ membership of D equals Ω membership of D⁻¹.
        let fwd = OmegaNetwork::new(3);
        let inv = InverseOmegaNetwork::new(3);
        for d in all_perms(8) {
            assert_eq!(inv.realizes(&d), fwd.realizes(&d.inverse()), "D = {d}");
        }
    }

    #[test]
    fn identity_routes_on_both() {
        for n in 1..7u32 {
            let id = Permutation::identity(1 << n);
            assert!(OmegaNetwork::new(n).realizes(&id));
            assert!(InverseOmegaNetwork::new(n).realizes(&id));
        }
    }

    #[test]
    fn useful_permutations_route_on_inverse_network() {
        for n in 2..8u32 {
            let inv = InverseOmegaNetwork::new(n);
            assert!(inv.realizes(&cyclic_shift(n, 3)));
            assert!(inv.realizes(&p_ordering(n, 5)));
            assert!(inv.realizes(&segment_cyclic_shift(n, n - 1, 2)));
            assert!(inv.realizes(&conditional_exchange(n, 1)));
        }
    }

    #[test]
    fn records_ride_with_tags() {
        let net = OmegaNetwork::new(3);
        let d = benes_perm::omega::cyclic_shift(3, 2);
        let records: Vec<(u32, char)> =
            d.destinations().iter().zip('a'..).map(|(&t, c)| (t, c)).collect();
        let out = net.route_records(records).unwrap();
        let payloads: Vec<char> = out.iter().map(|r| r.1).collect();
        let expected: Vec<char> = d.apply(&('a'..).take(8).collect::<Vec<_>>());
        assert_eq!(payloads, expected);

        // Non-omega tags conflict.
        let rev = benes_perm::bpc::Bpc::bit_reversal(3).to_permutation();
        let records: Vec<(u32, u8)> = rev.destinations().iter().map(|&t| (t, 0)).collect();
        assert!(net.route_records(records).is_err());
    }

    #[test]
    fn conflict_reports_location() {
        // Bit reversal is not in Ω(3); the conflict must be reported.
        let net = OmegaNetwork::new(3);
        let d = benes_perm::bpc::Bpc::bit_reversal(3).to_permutation();
        let err = net.route(&d).unwrap_err();
        assert!(err.stage < 3);
        assert!(err.to_string().contains("conflict at stage"));
    }

    #[test]
    fn sizes_are_half_of_benes() {
        for n in 2..8u32 {
            let omega = OmegaNetwork::new(n);
            let nn = 1usize << n;
            assert_eq!(omega.stage_count(), n as usize);
            assert_eq!(omega.switch_count(), nn / 2 * n as usize);
            // Benes: 2n−1 stages ≈ 2× omega; N·n − N/2 switches ≈ 2× omega.
            assert!(2 * omega.stage_count() - 1 == 2 * n as usize - 1);
        }
    }

    #[test]
    fn omega_class_counts() {
        // |Ω(2)| = 16 = 2^(switches); |Ω(3)| = 2^12 / collisions... count.
        let net2 = OmegaNetwork::new(2);
        assert_eq!(all_perms(4).iter().filter(|d| net2.realizes(d)).count(), 16);
        // Each of the 2^12 settings of the 12 switches in Ω(3) yields a
        // mapping, but settings → permutations is injective for omega, and
        // only some mappings are permutations. Count what is realizable:
        let net3 = OmegaNetwork::new(3);
        let count3 = all_perms(8).iter().filter(|d| net3.realizes(d)).count();
        // Every switch assignment yields a distinct permutation, so
        // |Ω(n)| = 2^(switch count) = 2^((N/2)·log N); for n = 3 that is
        // 2^12 = 4096 of the 40320 permutations of 8 elements.
        assert_eq!(count3, 4096);
    }
}
