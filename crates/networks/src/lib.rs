//! Baseline interconnection networks for the self-routing Benes
//! reproduction.
//!
//! §I of the paper situates the self-routing Benes network against the
//! alternatives a designer had in 1980:
//!
//! * a **full crossbar** — trivial to set up but `O(N²)` switches
//!   ([`crossbar`]);
//! * **Lawrie's omega network** — self-routing with the same
//!   destination-tag idea, half the switches and half the delay of the
//!   Benes network, but a much smaller realizable class ([`omega_net`]);
//! * **Batcher's bitonic sorting network** — self-routing for *all*
//!   permutations, but `O(log² N)` delay and `O(N log² N)` comparator
//!   cost ([`bitonic`]);
//! * the Benes network itself with an `O(N log N)` **external set-up**
//!   (provided by `benes-core`'s `waksman` module).
//!
//! [`cost`] collects the closed-form switch/delay figures the paper quotes
//! and verifies them against the actual constructed objects — the basis of
//! the `EXP-COST` experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitonic;
pub mod cost;
pub mod crossbar;
pub mod gcn;
pub mod odd_even;
pub mod omega_net;

pub use bitonic::BitonicSorter;
pub use crossbar::Crossbar;
pub use gcn::GeneralizedConnectionNetwork;
pub use odd_even::OddEvenMergeSorter;
pub use omega_net::{InverseOmegaNetwork, OmegaConflict, OmegaNetwork};
