//! A generalized connection network (GCN) built around Benes networks —
//! the application the paper's §I points to ("the network finds
//! application as a subnetwork of a generalized connection network \[9\]",
//! Thompson).
//!
//! A *generalized connection* lets every output name **any** input —
//! several outputs may request the same input (broadcast) and some inputs
//! may go unrequested — where a permutation network insists on a
//! bijection. Thompson's recipe composes three `O(log N)`-depth stages:
//!
//! 1. **concentrate** — a Benes pass (Waksman-set) that moves each
//!    requested input to the start of its block of copies (block sizes =
//!    request multiplicities, laid out by prefix sums);
//! 2. **copy** — a `log N`-stage binary fan-out tree: at stage `s`, a
//!    record owning the span `[p, e)` with `e − p > 2^s` duplicates
//!    itself `2^s` positions to the right and splits the span — purely
//!    local decisions, like the self-routing switches;
//! 3. **distribute** — a second Benes pass routing copy `k` of input `i`
//!    to the `k`-th output (in ascending order) that requested `i`.
//!
//! Total: two Benes networks plus `log N` copy stages — `O(log N)` delay
//! and `O(N log N)` switches for arbitrary fan-out connections.

use std::fmt;

use benes_core::{waksman, Benes};
use benes_perm::Permutation;

/// Error produced by [`GeneralizedConnectionNetwork::realize`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GcnError {
    /// The request vector length is not the terminal count.
    RequestLength {
        /// Expected `N`.
        expected: usize,
        /// Provided length.
        actual: usize,
    },
    /// A request named an input outside `0..N`.
    SourceOutOfRange {
        /// The requesting output.
        output: usize,
        /// The out-of-range source.
        source: u32,
    },
    /// The input vector length is not the terminal count.
    InputLength {
        /// Expected `N`.
        expected: usize,
        /// Provided length.
        actual: usize,
    },
}

impl fmt::Display for GcnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RequestLength { expected, actual } => {
                write!(f, "request vector has length {actual}, expected {expected}")
            }
            Self::SourceOutOfRange { output, source } => {
                write!(f, "output {output} requests input {source}, which does not exist")
            }
            Self::InputLength { expected, actual } => {
                write!(f, "input vector has length {actual}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for GcnError {}

/// Per-realization cost report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcnCost {
    /// Switching levels traversed (two Benes passes + copy stages).
    pub delay_levels: usize,
    /// Copies fabricated by the fan-out tree (requests − distinct sources).
    pub copies_made: usize,
}

/// An `N = 2^n` generalized connection network.
///
/// # Examples
///
/// ```
/// use benes_networks::GeneralizedConnectionNetwork;
///
/// let gcn = GeneralizedConnectionNetwork::new(2);
/// // Output o requests input request[o]; input 2 is broadcast twice.
/// let out = gcn.realize(&[2, 0, 2, 1], &["a", "b", "c", "d"])?;
/// assert_eq!(out.0, vec!["c", "a", "c", "b"]);
/// # Ok::<(), benes_networks::gcn::GcnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GeneralizedConnectionNetwork {
    n: u32,
    benes: Benes,
}

impl GeneralizedConnectionNetwork {
    /// Builds the `N = 2^n` GCN.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for the underlying [`Benes`].
    #[must_use]
    pub fn new(n: u32) -> Self {
        Self { n, benes: Benes::new(n) }
    }

    /// The network order `n`.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The number of terminals `N = 2^n`.
    #[must_use]
    pub fn terminal_count(&self) -> usize {
        self.benes.terminal_count()
    }

    /// The total switching delay: two Benes passes plus `log N` copy
    /// stages, `2·(2n − 1) + n` levels.
    #[must_use]
    pub fn delay_levels(&self) -> usize {
        2 * self.benes.stage_count() + self.n as usize
    }

    /// Realizes the generalized connection: output `o` receives
    /// `inputs[request[o]]`. Returns the outputs and the cost report.
    ///
    /// # Errors
    ///
    /// Returns a [`GcnError`] if the request or input vectors have the
    /// wrong length or a request is out of range.
    pub fn realize<T: Clone>(
        &self,
        request: &[u32],
        inputs: &[T],
    ) -> Result<(Vec<T>, GcnCost), GcnError> {
        let len = self.terminal_count();
        if request.len() != len {
            return Err(GcnError::RequestLength { expected: len, actual: request.len() });
        }
        if inputs.len() != len {
            return Err(GcnError::InputLength { expected: len, actual: inputs.len() });
        }
        for (output, &source) in request.iter().enumerate() {
            if source as usize >= len {
                return Err(GcnError::SourceOutOfRange { output, source });
            }
        }

        // Fan-out per input and block starts (prefix sums). Unrequested
        // inputs get zero-width blocks; filler (unrequested) inputs park
        // in the remaining slots to complete the concentration
        // permutation.
        let mut fanout = vec![0usize; len];
        for &source in request {
            fanout[source as usize] += 1;
        }
        let mut start = vec![0usize; len];
        let mut acc = 0usize;
        for i in 0..len {
            start[i] = acc;
            acc += fanout[i];
        }

        // --- Phase 1: concentrate via Benes/Waksman. Requested input i
        // goes to position start[i]; the rest fill the free slots.
        let mut concentrate = vec![u32::MAX; len];
        for i in 0..len {
            if fanout[i] > 0 {
                concentrate[i] = start[i] as u32;
            }
        }
        let mut free: Vec<u32> = {
            let used: std::collections::HashSet<u32> =
                concentrate.iter().copied().filter(|&d| d != u32::MAX).collect();
            (0..len as u32).filter(|d| !used.contains(d)).collect()
        };
        for slot in concentrate.iter_mut() {
            if *slot == u32::MAX {
                *slot = free.pop().expect("slot counts balance");
            }
        }
        let concentrate =
            Permutation::from_destinations(concentrate).expect("constructed bijection");
        let settings = waksman::setup(&concentrate).expect("power-of-two length");
        let concentrated =
            self.benes.route_with(&settings, inputs).expect("validated lengths");

        // --- Phase 2: binary fan-out tree. Each live record owns a span
        // [p, e); at stage s it duplicates 2^s to the right when its span
        // is longer than 2^s. Local decisions only.
        let mut cells: Vec<Option<(T, usize)>> = concentrated
            .into_iter()
            .enumerate()
            .map(|(p, v)| {
                // Find the input whose block starts here, if any.
                // (Blocks were placed by phase 1; p is a block start iff
                // some i has fanout > 0 and start[i] == p.)
                Some((v, p)) // span end fixed up below
            })
            .collect();
        // Mark spans: block starts carry their block; everything else is
        // inert (span of 1 covering itself, or filler).
        let mut span_end = vec![0usize; len];
        for i in 0..len {
            if fanout[i] > 0 {
                span_end[start[i]] = start[i] + fanout[i];
            }
        }
        for (p, end) in span_end.iter().enumerate() {
            if let Some((_, e)) = cells[p].as_mut() {
                *e = if *end > 0 { *end } else { p }; // inert cells cover nothing
            }
        }
        let mut copies_made = 0usize;
        for s in (0..self.n).rev() {
            let step = 1usize << s;
            for p in 0..len {
                let Some((value, end)) = cells[p].clone() else { continue };
                if end > p && end - p > step {
                    // Duplicate to p + step; split the span.
                    copies_made += 1;
                    cells[p] = Some((value.clone(), p + step));
                    cells[p + step] = Some((value, end));
                }
            }
        }
        let copied: Vec<T> = cells.into_iter().map(|c| c.expect("cell filled").0).collect();

        // --- Phase 3: distribute via a second Benes/Waksman pass. Copy k
        // of input i (at position start[i] + k) goes to the k-th output
        // requesting i.
        let mut next_copy = start.clone();
        let mut distribute = vec![u32::MAX; len];
        for (output, &source) in request.iter().enumerate() {
            let pos = next_copy[source as usize];
            next_copy[source as usize] += 1;
            distribute[pos] = output as u32;
        }
        let mut free: Vec<u32> = {
            let used: std::collections::HashSet<u32> =
                distribute.iter().copied().filter(|&d| d != u32::MAX).collect();
            (0..len as u32).filter(|d| !used.contains(d)).collect()
        };
        for slot in distribute.iter_mut() {
            if *slot == u32::MAX {
                *slot = free.pop().expect("slot counts balance");
            }
        }
        let distribute =
            Permutation::from_destinations(distribute).expect("constructed bijection");
        let settings = waksman::setup(&distribute).expect("power-of-two length");
        let outputs = self.benes.route_with(&settings, &copied).expect("validated lengths");

        Ok((outputs, GcnCost { delay_levels: self.delay_levels(), copies_made }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_connection() {
        let gcn = GeneralizedConnectionNetwork::new(3);
        let req: Vec<u32> = (0..8).collect();
        let data: Vec<u32> = (100..108).collect();
        let (out, cost) = gcn.realize(&req, &data).unwrap();
        assert_eq!(out, data);
        assert_eq!(cost.copies_made, 0);
    }

    #[test]
    fn broadcast_one_to_all() {
        let gcn = GeneralizedConnectionNetwork::new(3);
        let req = vec![5u32; 8];
        let data: Vec<&str> = vec!["a", "b", "c", "d", "e", "f", "g", "h"];
        let (out, cost) = gcn.realize(&req, &data).unwrap();
        assert_eq!(out, vec!["f"; 8]);
        assert_eq!(cost.copies_made, 7);
    }

    #[test]
    fn exhaustive_all_request_maps_n2() {
        // Every one of the 4^4 = 256 generalized connections on N = 4.
        let gcn = GeneralizedConnectionNetwork::new(2);
        let data = [10u32, 20, 30, 40];
        for code in 0..256u32 {
            let req: Vec<u32> = (0..4).map(|o| (code >> (2 * o)) & 3).collect();
            let (out, _) = gcn.realize(&req, &data).unwrap();
            for (o, &src) in req.iter().enumerate() {
                assert_eq!(out[o], data[src as usize], "req {req:?}, output {o}");
            }
        }
    }

    #[test]
    fn random_style_requests_n4() {
        let gcn = GeneralizedConnectionNetwork::new(4);
        let data: Vec<u32> = (0..16).map(|i| 1000 + i).collect();
        // Deterministic pseudo-random requests, skewed toward broadcast.
        let mut state = 12345u64;
        for _ in 0..100 {
            let req: Vec<u32> = (0..16)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((state >> 40) % 7) as u32 // only inputs 0..7: heavy fan-out
                })
                .collect();
            let (out, _) = gcn.realize(&req, &data).unwrap();
            for (o, &src) in req.iter().enumerate() {
                assert_eq!(out[o], data[src as usize]);
            }
        }
    }

    #[test]
    fn permutation_requests_make_no_copies() {
        let gcn = GeneralizedConnectionNetwork::new(3);
        let d = benes_perm::bpc::Bpc::bit_reversal(3).to_permutation();
        // request[o] = source for output o = d⁻¹.
        let req: Vec<u32> = d.inverse().destinations().to_vec();
        let data: Vec<u32> = (0..8).collect();
        let (out, cost) = gcn.realize(&req, &data).unwrap();
        assert_eq!(out, d.apply(&data));
        assert_eq!(cost.copies_made, 0);
    }

    #[test]
    fn delay_is_logarithmic() {
        for n in 1..8u32 {
            let gcn = GeneralizedConnectionNetwork::new(n);
            assert_eq!(gcn.delay_levels(), 2 * (2 * n as usize - 1) + n as usize);
        }
    }

    #[test]
    fn errors_are_reported() {
        let gcn = GeneralizedConnectionNetwork::new(2);
        assert_eq!(
            gcn.realize(&[0, 1, 2], &[1, 2, 3, 4]),
            Err(GcnError::RequestLength { expected: 4, actual: 3 })
        );
        assert_eq!(
            gcn.realize(&[0, 1, 2, 9], &[1, 2, 3, 4]),
            Err(GcnError::SourceOutOfRange { output: 3, source: 9 })
        );
        assert_eq!(
            gcn.realize(&[0, 1, 2, 3], &[1, 2]),
            Err(GcnError::InputLength { expected: 4, actual: 2 })
        );
    }
}
