//! A full `N × N` crossbar — the trivial-setup baseline of §I.
//!
//! "A full crossbar is trivial to set up, but uses `O(N²)` switches." The
//! crossbar closes crosspoint `(i, D_i)` for each input and transfers all
//! data in a single switching level. It exists here to anchor the cost
//! comparison: constant delay and instant set-up, paid for with
//! quadratically many crosspoints.

use benes_perm::Permutation;

/// An `N × N` crossbar switch.
///
/// # Examples
///
/// ```
/// use benes_networks::Crossbar;
/// use benes_perm::Permutation;
///
/// let xbar = Crossbar::new(4);
/// assert_eq!(xbar.crosspoint_count(), 16);
/// let d = Permutation::from_destinations(vec![1, 3, 2, 0]).unwrap();
/// assert_eq!(xbar.route(&d, &['a', 'b', 'c', 'd']), vec!['d', 'a', 'c', 'b']);
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    size: usize,
}

impl Crossbar {
    /// Builds an `N × N` crossbar (any `N ≥ 1`; powers of two are not
    /// required here).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "crossbar requires at least one port");
        Self { size }
    }

    /// The number of input (and output) ports.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The number of crosspoints, `N²`.
    #[must_use]
    pub fn crosspoint_count(&self) -> usize {
        self.size * self.size
    }

    /// The transit delay in switching levels: 1.
    #[must_use]
    pub fn transit_delay(&self) -> usize {
        1
    }

    /// Routes `data` according to `perm` in one switching level
    /// (`data[i]` arrives at output `perm[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `perm.len()` or `data.len()` differ from [`Crossbar::size`].
    #[must_use]
    pub fn route<T: Clone>(&self, perm: &Permutation, data: &[T]) -> Vec<T> {
        assert_eq!(perm.len(), self.size, "permutation length must equal size");
        assert_eq!(data.len(), self.size, "data length must equal size");
        perm.apply(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_any_permutation() {
        let xbar = Crossbar::new(5);
        let d = Permutation::from_destinations(vec![4, 2, 0, 1, 3]).unwrap();
        let out = xbar.route(&d, &[10, 20, 30, 40, 50]);
        assert_eq!(out, vec![30, 40, 20, 50, 10]);
    }

    #[test]
    fn costs_are_quadratic_and_flat() {
        for size in [1usize, 4, 16, 100] {
            let xbar = Crossbar::new(size);
            assert_eq!(xbar.crosspoint_count(), size * size);
            assert_eq!(xbar.transit_delay(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn rejects_empty() {
        let _ = Crossbar::new(0);
    }
}
