//! Property-based tests for the baseline networks.

use benes_networks::{
    BitonicSorter, GeneralizedConnectionNetwork, InverseOmegaNetwork, OddEvenMergeSorter,
    OmegaNetwork,
};
use benes_perm::omega::{is_inverse_omega, is_omega};
use benes_perm::Permutation;
use proptest::prelude::*;

fn arb_permutation(len: usize) -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(move |(), mut rng| {
        let mut dest: Vec<u32> = (0..len as u32).collect();
        for i in (1..len).rev() {
            let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
            dest.swap(i, j);
        }
        Permutation::from_destinations(dest).expect("bijection")
    })
}

proptest! {
    /// The residue predicates equal the physical networks at n = 4
    /// (beyond the exhaustive n = 3 unit tests).
    #[test]
    fn omega_predicates_match_networks_n4(p in arb_permutation(16)) {
        prop_assert_eq!(OmegaNetwork::new(4).realizes(&p), is_omega(&p));
        prop_assert_eq!(InverseOmegaNetwork::new(4).realizes(&p), is_inverse_omega(&p));
    }

    /// Both sorting networks sort arbitrary u64 multisets.
    #[test]
    fn sorters_sort(values in proptest::collection::vec(0u64..1000, 32)) {
        let mut expected = values.clone();
        expected.sort_unstable();

        let mut a = values.clone();
        BitonicSorter::new(5).sort_by_key(&mut a, |&x| x);
        prop_assert_eq!(&a, &expected);

        let mut b = values;
        OddEvenMergeSorter::new(5).sort_by_key(&mut b, |&x| x);
        prop_assert_eq!(&b, &expected);
    }

    /// Both sorters route every permutation (universality).
    #[test]
    fn sorters_route_everything(p in arb_permutation(32)) {
        let sorted: Vec<u32> = (0..32).collect();
        prop_assert_eq!(BitonicSorter::new(5).route(&p), sorted.clone());
        prop_assert_eq!(OddEvenMergeSorter::new(5).route(&p), sorted);
    }

    /// The GCN serves arbitrary request maps, including heavy broadcast.
    #[test]
    fn gcn_serves_arbitrary_requests(req in proptest::collection::vec(0u32..16, 16)) {
        let gcn = GeneralizedConnectionNetwork::new(4);
        let data: Vec<u32> = (100..116).collect();
        let (out, cost) = gcn.realize(&req, &data).unwrap();
        for (o, &src) in req.iter().enumerate() {
            prop_assert_eq!(out[o], data[src as usize]);
        }
        // Copies made = requests − distinct requested sources.
        let distinct: std::collections::HashSet<u32> = req.iter().copied().collect();
        prop_assert_eq!(cost.copies_made, 16 - distinct.len());
    }

    /// GCN with a permutation request degenerates to permutation routing.
    #[test]
    fn gcn_on_permutations(p in arb_permutation(16)) {
        let gcn = GeneralizedConnectionNetwork::new(4);
        let data: Vec<u32> = (0..16).collect();
        let req: Vec<u32> = p.inverse().destinations().to_vec();
        let (out, cost) = gcn.realize(&req, &data).unwrap();
        prop_assert_eq!(out, p.apply(&data));
        prop_assert_eq!(cost.copies_made, 0);
    }
}
