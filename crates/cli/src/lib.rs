//! The command-line explorer behind the `benes-cli` binary.
//!
//! All command logic lives here (returning strings) so it is unit-testable;
//! the binary is a thin wrapper. Run `benes-cli help` for the command
//! catalogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use benes_core::class_f::check_f;
use benes_core::render::{render_structure, render_trace};
use benes_core::trace::RouteTrace;
use benes_core::{census, waksman, Benes};
use benes_gates::GateBenes;
use benes_networks::cost;
use benes_perm::bpc::Bpc;
use benes_perm::omega::{cyclic_shift, is_inverse_omega, is_omega, p_ordering};
use benes_perm::Permutation;
use benes_simd::ccc::Ccc;
use benes_simd::machine::{records_for, verify_routed};
use benes_simd::mcc::Mcc;
use benes_simd::psc::Psc;

/// Error produced by command parsing or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(String);

impl CliError {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// The help text.
#[must_use]
pub fn help() -> String {
    "\
benes-cli — explore the self-routing Benes network (Nassimi & Sahni 1980)

USAGE:
  benes-cli <command> [args]

COMMANDS:
  classify <D...>            class membership of a permutation
                             (destination tags, e.g. `classify 1 3 2 0`)
  route <D...> [mode]        trace a route; mode: self (default) | omega | waksman
  structure <n>              topology and size report for B(n)
  census [n]                 |F(n)| / |BPC| / |Ω| / |Ω⁻¹| (exact to n = 3)
  cost <n>                   the §I network-cost comparison at N = 2^n
  simd <machine> <D...>      route on ccc | psc | mcc, with route counts
  gates <n> [data_width]     synthesize B(n) to gates; counts and depth
  named <name> <n> [k]       generate a named permutation:
                             bit-reversal | transpose | vector-reversal |
                             shuffle | unshuffle | shift (k) | p-order (k)
  gcn <src...>               realize a generalized connection (output o
                             receives input src[o]; broadcasts allowed)
  dual <kappa> <D...>        plan a permutation on the §IV dual machine
                             (kappa = gate delays per SIMD routing step)
  diagnose <D...>            inject each possible stuck switch for D and
                             report how many are detectable / masked
  factor <D...>              split D into inverse-omega * omega factors
  engine [n] [reqs] [wkrs]   drive the batched routing engine over a mixed
                             workload on B(n) and print tier/cache stats
                             (defaults: n=4, 1000 requests, 4 workers)
  faults [n] [k] [reqs] [s]  fault-injection campaign: inject k random
                             stuck-at switch faults on B(n), serve a mixed
                             workload through the engine's reroute ladder,
                             and report degraded-mode stats
                             (defaults: n=3, k=2, 500 requests, seed 1)
  chaos [seed] [reqs]        deterministic chaos soak: a seeded schedule of
                             traffic, a forced-failure burst, a real fault
                             burst and recovery windows; checks the
                             conservation invariant and the breaker cycle,
                             exits nonzero on any violation
                             (defaults: seed 3962, 200 requests)
  analyze plan <D...>        static plan verification: closed forms vs
                             Theorem 1, split conflicts of the symbolic
                             self-route/omega walks, stage-bit invariant
  analyze netlist <n> [w]    lint the synthesized GateBenes(n, w) netlist
                             (loops, widths, fanout, gate budget)
  analyze workspace [root]   workspace invariant linter + domain self-checks;
                             add --json for JSON-lines findings; exits
                             nonzero when any finding survives
  analyze concurrency        exhaustive model check of the sharded
                             submission queue (conservation, deadlock
                             freedom, no lost wakeups) plus the seeded-
                             mutant self-test; --budget N caps states
                             (default 4000000, exhaustion fails), --json
                             for JSON-lines findings
  analyze word [max_n]       symbolic equivalence proof: the word-parallel
                             kernels (incl. fault overlays) against the
                             scalar oracle for every n <= max_n (default
                             and cap 8), zero sampled inputs; --json for
                             JSON-lines findings
  obs dump [n] [reqs]        run a mixed workload and print the engine's
                             metrics exposition (Prometheus text; add
                             --json for the JSON document)
  obs histogram [n] [reqs]   per-tier latency quantiles (p50/p90/p99/p999)
                             from a mixed workload on B(n)
  obs flightrec [n] [reqs]   flight-recorder dump: serve a healthy workload,
                             then one victim through an injected dead
                             switch, and render the last route attempts
                             (ladder, phase timings, failing-plan trace)
  shard route [n] [k] [s]    decompose one random 2^n permutation into the
                             three-stage block factorization and route it
                             across k engine shards with bitwise
                             recombination verification
                             (defaults: n=16, k=4 shards, seed 1)
  shard soak [s] [n] [p] [k] deterministic shard soak: p permutations of
                             2^n across k shards with a mid-stream fault
                             injected into exactly one shard; exits
                             nonzero on cross-shard contamination or a
                             conservation violation
                             (defaults: seed 1980, n=12, p=6, k=4)
  serve smoke [r] [t] [c]    loopback wire-service smoke: start an in-process
                             benes-serve on an ephemeral port, pipeline r
                             requests from t tenants over c connections,
                             and report per-tenant ledger conservation
                             (defaults: r=200, t=2, c=2; the long-running
                             daemon is the `benes-serve` binary)
  fleet soak --addrs A,B,..  remote-fleet soak: scatter a seeded permutation
                             stream across running benes-serve processes
                             (one RemoteShard per address) while an external
                             killer takes down --killable shards; exits
                             nonzero on cross-shard contamination, a wrong
                             surviving element, or a conservation violation;
                             optional --spare IDX=ADDR failover targets,
                             --killable I,J, --rounds R, --n N, --seed S,
                             --pause-ms P, --hedge-ms H; streams one
                             fleet-round line per round, then the report
                             and the benes_fleet_* exposition
  help                       this text
"
    .to_string()
}

/// Parses the tail of an argument list as a permutation.
fn parse_permutation(args: &[String]) -> Result<Permutation, CliError> {
    if args.is_empty() {
        return Err(CliError::new("expected destination tags, e.g. `1 3 2 0`"));
    }
    let dest: Result<Vec<u32>, _> = args.iter().map(|a| a.parse::<u32>()).collect();
    let dest = dest.map_err(|_| CliError::new("destination tags must be integers"))?;
    Permutation::from_destinations(dest)
        .map_err(|e| CliError::new(format!("not a permutation: {e}")))
}

fn parse_n(arg: Option<&String>, what: &str) -> Result<u32, CliError> {
    let s = arg.ok_or_else(|| CliError::new(format!("expected {what}")))?;
    let n: u32 =
        s.parse().map_err(|_| CliError::new(format!("{what} must be an integer")))?;
    if n == 0 || n > 20 {
        return Err(CliError::new(format!("{what} must be in 1..=20")));
    }
    Ok(n)
}

fn network_order(d: &Permutation) -> Result<u32, CliError> {
    d.log2_len()
        .filter(|&n| n >= 1)
        .ok_or_else(|| CliError::new(format!("length {} is not 2^n with n >= 1", d.len())))
}

/// Executes one command line (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing any parse or usage problem.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Ok(help());
    };
    let rest = &args[1..];
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(help()),
        "classify" => classify(rest),
        "route" => route(rest),
        "structure" => structure(rest),
        "census" => census_cmd(rest),
        "cost" => cost_cmd(rest),
        "simd" => simd(rest),
        "gates" => gates(rest),
        "named" => named(rest),
        "gcn" => gcn(rest),
        "dual" => dual(rest),
        "diagnose" => diagnose(rest),
        "factor" => factor(rest),
        "engine" => engine(rest),
        "faults" => faults_cmd(rest),
        "chaos" => chaos_cmd(rest),
        "analyze" => analyze(rest),
        "obs" => obs(rest),
        "shard" => shard_cmd(rest),
        "serve" => serve_cmd(rest),
        "fleet" => fleet_cmd(rest),
        other => {
            Err(CliError::new(format!("unknown command `{other}` (try `benes-cli help`)")))
        }
    }
}

fn gcn(args: &[String]) -> Result<String, CliError> {
    if args.is_empty() {
        return Err(CliError::new("expected a request vector, e.g. `gcn 2 0 2 1`"));
    }
    let req: Result<Vec<u32>, _> = args.iter().map(|a| a.parse::<u32>()).collect();
    let req = req.map_err(|_| CliError::new("requests must be integers"))?;
    let n = benes_bits::log2_exact(req.len() as u64)
        .filter(|&n| n >= 1)
        .ok_or_else(|| CliError::new("request count must be 2^n with n >= 1"))?;
    let gcn = benes_networks::GeneralizedConnectionNetwork::new(n);
    let data: Vec<u32> = (0..req.len() as u32).collect();
    let (out, cost) = gcn.realize(&req, &data).map_err(|e| CliError::new(e.to_string()))?;
    let mut s = format!(
        "generalized connection on B({n}): {} levels, {} copies fabricated\n",
        cost.delay_levels, cost.copies_made
    );
    s.push_str("output <- input: ");
    for (o, v) in out.iter().enumerate() {
        if o > 0 {
            s.push(' ');
        }
        s.push_str(&format!("{o}<-{v}"));
    }
    s.push('\n');
    Ok(s)
}

fn dual(args: &[String]) -> Result<String, CliError> {
    let kappa: u64 =
        args.first().and_then(|a| a.parse().ok()).filter(|&k| k >= 1).ok_or_else(|| {
            CliError::new("expected kappa >= 1 (gate delays per routing step)")
        })?;
    let d = parse_permutation(&args[1..])?;
    let n = network_order(&d)?;
    let m = benes_simd::dual::DualMachine::new(n, kappa);
    let plan = m.plan(&d);
    let path = match plan {
        benes_simd::dual::RoutePlan::DirectLink { .. } => "E(n) direct link",
        benes_simd::dual::RoutePlan::BenesNetwork { .. } => "B(n) self-route",
        benes_simd::dual::RoutePlan::LinkSimulation { .. } => "E(n) link simulation",
    };
    let ablation =
        benes_simd::dual::DualMachine::new(n, kappa).without_benes().plan(&d).gate_delays();
    Ok(format!(
        "plan: {path}, {} gate delays (without the Benes attachment: {})\n",
        plan.gate_delays(),
        ablation
    ))
}

fn factor(args: &[String]) -> Result<String, CliError> {
    use benes_perm::omega::{is_inverse_omega, is_omega};
    let d = parse_permutation(args)?;
    let _ = network_order(&d)?;
    let (p, q) = benes_core::factor::factor_inverse_omega_omega(&d)
        .map_err(|e| CliError::new(e.to_string()))?;
    debug_assert_eq!(p.then(&q), d);
    Ok(format!(
        "D = P then Q with\nP = {p}  (inverse-omega: {})\nQ = {q}  (omega: {})\n",
        is_inverse_omega(&p),
        is_omega(&q)
    ))
}

fn diagnose(args: &[String]) -> Result<String, CliError> {
    use benes_core::diagnose::{self_route_with_fault, StuckSwitch};
    let d = parse_permutation(args)?;
    let n = network_order(&d)?;
    if n > 6 {
        return Err(CliError::new("diagnosis sweep supported for n <= 6"));
    }
    let net = Benes::new(n);
    let healthy = net.self_route(&d);
    let mut masked = 0usize;
    let mut visible = 0usize;
    for stage in 0..net.stage_count() {
        for switch in 0..net.switches_per_stage() {
            let intended = healthy.settings().get(stage, switch);
            let fault = StuckSwitch { stage, switch, stuck_at: intended.toggled() };
            if self_route_with_fault(&net, &d, fault) == healthy.outputs() {
                masked += 1;
            } else {
                visible += 1;
            }
        }
    }
    let benign = net.switch_count();
    Ok(format!(
        "single-stuck-switch sweep for D = {d} on B({n}):\n\
         {benign} benign (stuck at the intended state, always invisible),\n\
         {masked} masked (wrong state, later stages re-sort the pair),\n\
         {visible} visible (misroute observable at the outputs)\n"
    ))
}

fn engine(args: &[String]) -> Result<String, CliError> {
    use benes_engine::{workload, Engine, EngineConfig};
    let n = match args.first() {
        Some(_) => parse_n(args.first(), "network order n")?,
        None => 4,
    };
    if !(3..=10).contains(&n) {
        return Err(CliError::new(
            "engine demo needs n in 3..=10 (below B(3) every permutation is in F ∪ Ω)",
        ));
    }
    let requests: usize = match args.get(1) {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&r| (1..=1_000_000).contains(&r))
            .ok_or_else(|| CliError::new("request count must be in 1..=1000000"))?,
        None => 1000,
    };
    let workers: usize = match args.get(2) {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&w| (1..=64).contains(&w))
            .ok_or_else(|| CliError::new("worker count must be in 1..=64"))?,
        None => 4,
    };

    let engine = Engine::new(EngineConfig { workers, ..EngineConfig::default() });
    let stream = workload::mixed_workload(n, requests, 0xbe25);
    let outcomes = engine.run_batch(stream);
    let misrouted = outcomes.iter().filter(|o| !o.is_ok()).count();
    let stats = engine.stats();

    let mut out = format!(
        "engine run: B({n}), {requests} requests, {workers} workers, batch size {}\n",
        engine.config().batch_size
    );
    out.push_str(&stats.report());
    out.push_str(&format!("cache entries      {}\n", engine.cache_len()));
    out.push_str(&format!("misrouted          {misrouted}\n"));
    Ok(out)
}

fn faults_cmd(args: &[String]) -> Result<String, CliError> {
    use benes_core::faults::{setup_avoiding, FaultSet};
    use benes_engine::{workload, Engine, EngineConfig, EngineError};

    let n = match args.first() {
        Some(_) => parse_n(args.first(), "network order n")?,
        None => 3,
    };
    if !(3..=10).contains(&n) {
        return Err(CliError::new(
            "fault campaign needs n in 3..=10 (below B(3) every permutation is in F ∪ Ω)",
        ));
    }
    let net = Benes::new(n);
    let k: usize = match args.get(1) {
        Some(s) => {
            s.parse().ok().filter(|&k| k <= net.switch_count()).ok_or_else(|| {
                CliError::new(format!(
                    "fault count must be in 0..={} (the switch count of B({n}))",
                    net.switch_count()
                ))
            })?
        }
        None => 2,
    };
    let requests: usize = match args.get(2) {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&r| (1..=1_000_000).contains(&r))
            .ok_or_else(|| CliError::new("request count must be in 1..=1000000"))?,
        None => 500,
    };
    let seed: u64 = match args.get(3) {
        Some(s) => s.parse().map_err(|_| CliError::new("seed must be an integer"))?,
        None => 1,
    };

    let faults = FaultSet::random_stuck(n, k, seed);
    let engine = Engine::new(EngineConfig::default());
    engine.set_faults(faults.clone());

    let stream = workload::mixed_workload(n, requests, seed);
    let achievable = stream.iter().filter(|d| setup_avoiding(d, &faults).is_ok()).count();
    let outcomes = engine.run_batch(stream);
    let served = outcomes.iter().filter(|o| o.is_ok()).count();
    let unroutable =
        outcomes.iter().filter(|o| o.result == Err(EngineError::Unroutable)).count();
    let stats = engine.stats();

    let mut out = format!(
        "fault-injection campaign: B({n}), {k} stuck switches, {requests} requests, seed {seed}\n"
    );
    out.push_str(&format!("fault set: {faults}\n"));
    out.push_str(&format!(
        "served {served}/{requests} ({:.1}%); planner-achievable {achievable} \
         ({unroutable} unroutable)\n",
        100.0 * served as f64 / requests as f64
    ));
    out.push_str(&stats.report());
    Ok(out)
}

/// The deterministic chaos soak behind `scripts/chaos.sh`: runs the
/// seeded overload schedule and treats any invariant violation as a
/// command failure (nonzero exit), so the soak can gate CI.
fn chaos_cmd(args: &[String]) -> Result<String, CliError> {
    use benes_engine::{run_soak, SoakConfig};
    let seed: u64 = match args.first() {
        Some(s) => s.parse().map_err(|_| CliError::new("seed must be an integer"))?,
        None => 3962,
    };
    let requests: usize = match args.get(1) {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&r| (1..=100_000).contains(&r))
            .ok_or_else(|| CliError::new("request count must be in 1..=100000"))?,
        None => 200,
    };
    let report = run_soak(&SoakConfig::new(seed, requests));
    let mut out =
        format!("chaos soak: seed {seed}, base traffic {requests} requests per phase\n");
    out.push_str(&report.render());
    if report.healthy() {
        Ok(out)
    } else {
        Err(CliError::new(out))
    }
}

fn obs(args: &[String]) -> Result<String, CliError> {
    let mode = args
        .first()
        .ok_or_else(|| CliError::new("expected obs mode: dump | histogram | flightrec"))?;
    match mode.as_str() {
        "dump" => obs_dump(&args[1..]),
        "histogram" => obs_histogram(&args[1..]),
        "flightrec" => obs_flightrec(&args[1..]),
        other => Err(CliError::new(format!(
            "unknown obs mode `{other}` (dump | histogram | flightrec)"
        ))),
    }
}

/// Shared front half of the `obs` modes: parse `[n] [reqs]` and drive a
/// mixed workload through a fresh engine so there is something to
/// observe.
fn obs_run(args: &[String]) -> Result<(benes_engine::Engine, u32, usize), CliError> {
    use benes_engine::{workload, Engine, EngineConfig};
    let n = match args.first() {
        Some(_) => parse_n(args.first(), "network order n")?,
        None => 4,
    };
    if !(3..=10).contains(&n) {
        return Err(CliError::new(
            "obs demo needs n in 3..=10 (below B(3) every permutation is in F ∪ Ω)",
        ));
    }
    let requests: usize = match args.get(1) {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&r| (1..=1_000_000).contains(&r))
            .ok_or_else(|| CliError::new("request count must be in 1..=1000000"))?,
        None => 1000,
    };
    let engine = Engine::new(EngineConfig::default());
    let outcomes = engine.run_batch(workload::mixed_workload(n, requests, 0xb0b5));
    debug_assert!(outcomes.iter().all(benes_engine::RequestOutcome::is_ok));
    Ok((engine, n, requests))
}

fn obs_dump(args: &[String]) -> Result<String, CliError> {
    let json = args.iter().any(|a| a == "--json");
    let positional: Vec<String> = args.iter().filter(|a| *a != "--json").cloned().collect();
    let (engine, _, _) = obs_run(&positional)?;
    let exposition = engine.stats().exposition();
    Ok(if json { exposition.to_json() } else { exposition.to_prometheus() })
}

fn obs_histogram(args: &[String]) -> Result<String, CliError> {
    let (engine, n, requests) = obs_run(args)?;
    let stats = engine.stats();

    let mut out = format!(
        "latency histograms: B({n}), {requests} mixed requests (submit → completion, ns)\n"
    );
    out.push_str(&format!(
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "path", "count", "p50", "p90", "p99", "p999", "max"
    ));
    let mut row = |path: &str, s: &benes_obs::HistogramSnapshot| {
        out.push_str(&format!(
            "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            path,
            s.count(),
            s.quantile(0.5),
            s.quantile(0.9),
            s.quantile(0.99),
            s.quantile(0.999),
            s.max()
        ));
    };
    row("all", &stats.latency);
    for (tier, snapshot) in &stats.tier_latency {
        if !snapshot.is_empty() {
            row(tier.name(), snapshot);
        }
    }
    if !stats.failed_latency.is_empty() {
        row("failed", &stats.failed_latency);
    }
    Ok(out)
}

fn obs_flightrec(args: &[String]) -> Result<String, CliError> {
    use benes_engine::workload::{self, Rng64};
    use benes_engine::{Engine, EngineConfig, FaultKind, FaultSet};

    let n = match args.first() {
        Some(_) => parse_n(args.first(), "network order n")?,
        None => 3,
    };
    if !(3..=10).contains(&n) {
        return Err(CliError::new(
            "obs demo needs n in 3..=10 (below B(3) every permutation is in F ∪ Ω)",
        ));
    }
    let requests: usize = match args.get(1) {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&r| (1..=10_000).contains(&r))
            .ok_or_else(|| CliError::new("request count must be in 1..=10000"))?,
        None => 6,
    };
    let show: usize = match args.get(2) {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&k| (1..=64).contains(&k))
            .ok_or_else(|| CliError::new("record count must be in 1..=64"))?,
        None => 4,
    };

    // One worker keeps the ring in submission order for the dump.
    let engine = Engine::new(EngineConfig { workers: 1, ..EngineConfig::default() });
    let outcomes = engine.run_batch(workload::mixed_workload(n, requests, 0xf11e));
    let healthy = outcomes.iter().filter(|o| o.is_ok()).count();

    // A dead switch toggles every command it receives, so no set-up can
    // agree with it: the victim deterministically walks the whole
    // reroute ladder and fails, leaving a full trace in the ring.
    let mut faults = FaultSet::new(n);
    faults.insert(0, 0, FaultKind::Dead).map_err(|e| CliError::new(e.to_string()))?;
    engine.set_faults(faults);
    let mut rng = Rng64::new(0x0b5e_55ed);
    let victim = workload::hard_permutation(&mut rng, n);
    let verdict = match engine.submit(victim).wait().result {
        Ok(tier) => format!("served by tier {}", tier.name()),
        Err(e) => format!("FAILED — {e}"),
    };

    let records = engine.flight_records(show);
    let mut out = format!(
        "flight recorder: {healthy}/{requests} healthy requests served on B({n}), then \
         one victim through a dead switch at stage 0 ({verdict})\n"
    );
    out.push_str(&format!(
        "showing the newest {} of {} surviving records ({} dropped under contention)\n\n",
        records.len(),
        engine.flight_records(usize::MAX).len(),
        engine.flight_dropped()
    ));
    for record in &records {
        out.push_str(&record.render());
        out.push('\n');
    }
    Ok(out)
}

fn analyze(args: &[String]) -> Result<String, CliError> {
    let mode = args.first().ok_or_else(|| {
        CliError::new(
            "expected analyze mode: plan | netlist | workspace | concurrency | word",
        )
    })?;
    match mode.as_str() {
        "plan" => analyze_plan(&args[1..]),
        "netlist" => analyze_netlist(&args[1..]),
        "workspace" => analyze_workspace(&args[1..]),
        "concurrency" => analyze_concurrency(&args[1..]),
        "word" => analyze_word(&args[1..]),
        other => Err(CliError::new(format!(
            "unknown analyze mode `{other}` (plan | netlist | workspace | concurrency | word)"
        ))),
    }
}

/// Static verification report for one permutation: closed forms against
/// Theorem 1, the symbolic walks, and the stage-bit invariant. Always
/// informational (a permutation outside `F(n)` is a fact, not a defect).
fn analyze_plan(args: &[String]) -> Result<String, CliError> {
    use benes_analyze::{analyze_omega_route, analyze_self_route, certify_f};

    let d = parse_permutation(args)?;
    let n = network_order(&d)?;
    let mut out = format!("static analysis of D = {d} on B({n})\n");

    let closed = benes_analyze::closed_form_findings(&d);
    if closed.is_empty() {
        out.push_str(
            "closed forms: dataflow walk, Theorem 1, BPC and omega \
                      predicates all agree\n",
        );
    } else {
        out.push_str(&benes_analyze::render_human(&closed));
    }

    let self_walk = analyze_self_route(&d);
    if self_walk.is_conflict_free() {
        out.push_str("self-route: conflict-free — D ∈ F(n), zero set-up\n");
    } else {
        out.push_str(&format!(
            "self-route: {} split conflict(s); first: {}\n",
            self_walk.conflicts.len(),
            self_walk.conflicts[0]
        ));
    }
    let omega_walk = analyze_omega_route(&d);
    if omega_walk.is_conflict_free() {
        out.push_str("omega-route: conflict-free — D ∈ Ω(n), first n−1 stages straight\n");
    } else {
        out.push_str(&format!(
            "omega-route: {} split conflict(s); first: {}\n",
            omega_walk.conflicts.len(),
            omega_walk.conflicts[0]
        ));
    }
    match certify_f(&d) {
        Ok(cert) => {
            out.push_str(&format!(
                "certificate: {} switch settings, symbolically realize D, \
                 zero stage-bit deviations\n",
                benes_core::topology::stage_count(cert.n())
                    * benes_core::topology::switches_per_stage(cert.n())
            ));
        }
        Err(conflicts) => {
            out.push_str(&format!(
                "certificate: none — {} conflicting subnetwork split(s) \
                 (Theorem 1 refuses D)\n",
                conflicts.len()
            ));
        }
    }
    Ok(out)
}

/// Netlist lint for the synthesized hardware; findings are defects.
fn analyze_netlist(args: &[String]) -> Result<String, CliError> {
    let n = parse_n(args.first(), "network order n")?;
    if n > 8 {
        return Err(CliError::new("netlist lint supported for n <= 8"));
    }
    let width = match args.get(1) {
        Some(w) => w
            .parse::<u32>()
            .ok()
            .filter(|&w| w <= 63)
            .ok_or_else(|| CliError::new("data width must be an integer <= 63"))?,
        None => 8,
    };
    let hw = GateBenes::build(n, width);
    let findings = benes_analyze::lint_gate_benes(&hw);
    if findings.is_empty() {
        Ok(format!(
            "GateBenes({n}, {width}): netlist clean — topological order proven, \
             widths and fanout bounds hold, gate budget exact ({} gates)\n",
            hw.gate_counts().total()
        ))
    } else {
        Err(CliError::new(benes_analyze::render_human(&findings)))
    }
}

/// The tier-1 gate: pillar-2 workspace lints plus a battery of domain
/// self-checks. Returns `Err` (nonzero exit) when anything is found.
fn analyze_workspace(args: &[String]) -> Result<String, CliError> {
    let json = args.iter().any(|a| a == "--json");
    let root: &str = args.iter().find(|a| *a != "--json").map_or(".", String::as_str);

    let (mut findings, graph) = benes_analyze::lint_workspace(std::path::Path::new(root))
        .map_err(|e| {
        CliError::new(format!("cannot scan workspace at `{root}`: {e}"))
    })?;
    findings.extend(domain_battery());

    if findings.is_empty() {
        let mut out = String::from("workspace analysis: clean\n");
        out.push_str(&graph.summary());
        out.push_str(
            "domain battery: exhaustive B(2) static-vs-simulation agreement, \
             closed forms on the named families, GateBenes netlist lints — all pass\n",
        );
        Ok(out)
    } else if json {
        Err(CliError::new(benes_analyze::render_json_lines(&findings)))
    } else {
        Err(CliError::new(benes_analyze::render_human(&findings)))
    }
}

/// Pillar 3, gate 1: the concurrency model checker over the sharded
/// submission-queue protocol, plus its seeded-mutant self-test.
/// Returns `Err` (nonzero exit) on any counterexample against the
/// current protocol, on budget exhaustion (nothing proven), or when a
/// seeded mutant goes unflagged (the checker itself is broken).
fn analyze_concurrency(args: &[String]) -> Result<String, CliError> {
    let json = args.iter().any(|a| a == "--json");
    let budget = match args.iter().position(|a| a == "--budget") {
        Some(i) => args
            .get(i + 1)
            .and_then(|b| b.parse::<usize>().ok())
            .filter(|&b| b > 0)
            .ok_or_else(|| CliError::new("--budget needs a positive integer"))?,
        None => 4_000_000,
    };

    let (findings, reports) = benes_analyze::model::queue::concurrency_findings(budget);
    if !findings.is_empty() {
        return Err(CliError::new(if json {
            benes_analyze::render_json_lines(&findings)
        } else {
            benes_analyze::render_human(&findings)
        }));
    }

    let mut out = String::from("concurrency model check: certified\n");
    let mut total_states = 0usize;
    for r in &reports {
        total_states += r.states;
        if r.mutant {
            out.push_str(&format!(
                "flagged as expected: {} — property `{}`, {} states explored\n",
                r.name,
                r.property.as_deref().unwrap_or("?"),
                r.states
            ));
        } else {
            out.push_str(&format!(
                "certified: {} — {} states, {} transitions, exhaustive\n",
                r.name, r.states, r.transitions
            ));
        }
    }
    // The mutants' counterexample traces are the self-test's evidence;
    // show the first in full so "readable trace" stays demonstrably true.
    if let Some(cex) = reports.iter().find_map(|r| r.counterexample.as_deref()) {
        out.push_str("first mutant counterexample trace:\n");
        for line in cex.lines() {
            out.push_str(&format!("  {line}\n"));
        }
    }
    out.push_str(&format!(
        "properties proven on the current protocol: request conservation, \
         deadlock freedom, no lost wakeups ({total_states} states total, budget {budget})\n"
    ));
    Ok(out)
}

/// Pillar 3, gate 2: the symbolic word-kernel equivalence prover.
/// Returns `Err` (nonzero exit) on any word/scalar divergence.
fn analyze_word(args: &[String]) -> Result<String, CliError> {
    let json = args.iter().any(|a| a == "--json");
    let max_n = match args.iter().find(|a| *a != "--json") {
        Some(s) => s
            .parse::<u32>()
            .ok()
            .filter(|&n| (1..=8).contains(&n))
            .ok_or_else(|| CliError::new("max_n must be an integer in 1..=8"))?,
        None => 8,
    };

    let (findings, certs) = benes_analyze::prove_all(max_n);
    if !findings.is_empty() {
        return Err(CliError::new(if json {
            benes_analyze::render_json_lines(&findings)
        } else {
            benes_analyze::render_human(&findings)
        }));
    }

    let mut out = String::from("word-kernel equivalence proof: certified\n");
    let total: usize = certs.iter().map(|c| c.checks).sum();
    for c in &certs {
        out.push_str(&format!(
            "proven: B({}) {} kernel ≡ scalar oracle — {} stages, {} per-bit checks\n",
            c.n,
            if c.omega { "omega-bit" } else { "self-route" },
            c.stages,
            c.checks
        ));
    }
    out.push_str(&format!(
        "word-parallel ≡ scalar for all n <= {max_n}, healthy and faulty \
         (symbolic fault variables), {total} checks, zero sampled inputs\n"
    ));
    Ok(out)
}

/// Domain self-checks for `analyze workspace`: the static checker must
/// agree with ground truth wherever ground truth is cheap to compute.
fn domain_battery() -> Vec<benes_analyze::Finding> {
    use benes_analyze::{analyze_self_route, closed_form_findings, Finding, Pillar};

    let mut findings = Vec::new();

    // Exhaustive B(2): the symbolic walk's verdict must match the
    // simulated self-route on all 24 permutations of S_4.
    let net = Benes::new(2);
    let mut dest = vec![0u32, 1, 2, 3];
    permute_all(&mut dest, 0, &mut |tags| {
        let d = Permutation::from_destinations(tags.to_vec()).unwrap();
        let static_ok = analyze_self_route(&d).is_conflict_free();
        let sim_ok = net.self_route(&d).is_success();
        if static_ok != sim_ok {
            findings.push(Finding::error(
                Pillar::Domain,
                "static-vs-simulation",
                format!("B(2) D = {d}"),
                0,
                format!("static checker says {static_ok}, simulation says {sim_ok}"),
            ));
        }
    });

    // Closed forms on the named families up to B(5).
    for n in 1..=5u32 {
        let mut family: Vec<Permutation> = vec![
            Bpc::bit_reversal(n).to_permutation(),
            Bpc::vector_reversal(n).to_permutation(),
            Bpc::perfect_shuffle(n).to_permutation(),
            Bpc::unshuffle(n).to_permutation(),
            cyclic_shift(n, 1),
        ];
        if n % 2 == 0 {
            family.push(Bpc::matrix_transpose(n).to_permutation());
        }
        for d in family {
            findings.extend(closed_form_findings(&d));
        }
    }

    // The shipped hardware synthesis lints clean.
    for (n, w) in [(2u32, 4u32), (3, 8)] {
        findings.extend(benes_analyze::lint_gate_benes(&GateBenes::build(n, w)));
    }
    findings
}

/// Heap's algorithm: calls `visit` with every permutation of `v[k..]`.
fn permute_all(v: &mut Vec<u32>, k: usize, visit: &mut impl FnMut(&[u32])) {
    if k + 1 >= v.len() {
        visit(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute_all(v, k + 1, visit);
        v.swap(k, i);
    }
}

fn classify(args: &[String]) -> Result<String, CliError> {
    let d = parse_permutation(args)?;
    let mut out = format!("D = {d}\n");
    match d.log2_len() {
        Some(n) if n >= 1 => out.push_str(&format!("N = {} (n = {n})\n", d.len())),
        _ => {
            out.push_str("length is not a power of two: no class applies\n");
            return Ok(out);
        }
    }
    match Bpc::from_permutation(&d) {
        Some(a) => out.push_str(&format!("BPC:  yes, A-vector {a}\n")),
        None => out.push_str("BPC:  no\n"),
    }
    out.push_str(&format!("Ω:    {}\n", is_omega(&d)));
    out.push_str(&format!("Ω⁻¹:  {}\n", is_inverse_omega(&d)));
    match check_f(&d) {
        Ok(()) => out.push_str("F:    yes — self-routes with zero set-up\n"),
        Err(v) => out.push_str(&format!("F:    no — {v}\n")),
    }
    Ok(out)
}

fn route(args: &[String]) -> Result<String, CliError> {
    let (mode, tag_args) = match args.last().map(String::as_str) {
        Some("self") | Some("omega") | Some("waksman") => {
            (args.last().map(String::to_owned).unwrap_or_default(), &args[..args.len() - 1])
        }
        _ => ("self".to_string(), args),
    };
    let d = parse_permutation(tag_args)?;
    let n = network_order(&d)?;
    let net = Benes::new(n);
    let trace = match mode.as_str() {
        "self" => RouteTrace::capture_self_route(&net, &d),
        "omega" => RouteTrace::capture_omega(&net, &d),
        "waksman" => {
            let settings = waksman::setup(&d)
                .map_err(|e| CliError::new(format!("set-up failed: {e}")))?;
            RouteTrace::capture_external(&net, &d, &settings)
        }
        _ => unreachable!("mode restricted above"),
    }
    .map_err(|e| CliError::new(e.to_string()))?;
    Ok(render_trace(&trace))
}

fn structure(args: &[String]) -> Result<String, CliError> {
    let n = parse_n(args.first(), "network order n")?;
    if n > 6 {
        let net = Benes::new(n);
        return Ok(format!(
            "B({n}): {} terminals, {} stages, {} switches (wiring table omitted for n > 6)\n",
            net.terminal_count(),
            net.stage_count(),
            net.switch_count()
        ));
    }
    Ok(render_structure(&Benes::new(n)))
}

fn census_cmd(args: &[String]) -> Result<String, CliError> {
    let max_n = match args.first() {
        Some(_) => parse_n(args.first(), "census order n")?,
        None => 3,
    };
    if max_n > 3 {
        return Err(CliError::new("exact census supports n <= 3"));
    }
    let mut out = String::from("n  |F(n)|  |BPC|  |Ω| = |Ω⁻¹|   N!\n");
    for n in 1..=max_n {
        let f = census::count_f(n);
        let nn = 1u64 << n;
        let bpc = nn as u128 * (1..=u128::from(n)).product::<u128>();
        let omega: u128 = 1 << (u64::from(n) * nn / 2);
        let fact: u128 = (1..=u128::from(nn)).product();
        out.push_str(&format!("{n}  {f}  {bpc}  {omega}  {fact}\n"));
    }
    Ok(out)
}

fn cost_cmd(args: &[String]) -> Result<String, CliError> {
    let n = parse_n(args.first(), "network order n")?;
    let mut out = format!("network costs at N = {} (n = {n})\n", 1u64 << n);
    for row in cost::comparison(n) {
        out.push_str(&format!(
            "{:<26} {:>14} switches  {:>5} levels  set-up: {}\n",
            row.name, row.switches, row.delay, row.setup
        ));
    }
    Ok(out)
}

fn simd(args: &[String]) -> Result<String, CliError> {
    let machine = args
        .first()
        .ok_or_else(|| CliError::new("expected machine: ccc | psc | mcc"))?
        .clone();
    let d = parse_permutation(&args[1..])?;
    let n = network_order(&d)?;
    let (ok, stats, name) = match machine.as_str() {
        "ccc" => {
            let (out, stats) = Ccc::new(n).route_f(records_for(&d));
            (verify_routed(&d, &out), stats, "cube-connected computer")
        }
        "psc" => {
            let (out, stats) = Psc::new(n).route_f(records_for(&d));
            (verify_routed(&d, &out), stats, "perfect shuffle computer")
        }
        "mcc" => {
            if n % 2 != 0 {
                return Err(CliError::new("the mesh needs even n (square array)"));
            }
            let (out, stats) = Mcc::new(n).route_f(records_for(&d));
            (verify_routed(&d, &out), stats, "mesh-connected computer")
        }
        other => {
            return Err(CliError::new(format!(
                "unknown machine `{other}` (ccc | psc | mcc)"
            )))
        }
    };
    Ok(format!(
        "{name}, N = {}\nrouted: {}\ncost: {stats}\n{}",
        d.len(),
        if ok { "yes" } else { "NO (permutation is outside F(n))" },
        if ok {
            String::new()
        } else {
            "fallback: sort-based routing handles any permutation in O(log² N)\n"
                .to_string()
        }
    ))
}

fn gates(args: &[String]) -> Result<String, CliError> {
    let n = parse_n(args.first(), "network order n")?;
    if n > 8 {
        return Err(CliError::new("gate synthesis supported for n <= 8"));
    }
    let width = match args.get(1) {
        Some(w) => w
            .parse::<u32>()
            .ok()
            .filter(|&w| w <= 63)
            .ok_or_else(|| CliError::new("data width must be an integer <= 63"))?,
        None => 8,
    };
    let hw = GateBenes::build(n, width);
    let counts = hw.gate_counts();
    Ok(format!(
        "gate-level B({n}) with {width}-bit payloads\n{counts}\ncritical path: {} gate levels (7n − 3 = {})\n",
        hw.critical_path(),
        7 * n - 3
    ))
}

fn named(args: &[String]) -> Result<String, CliError> {
    let name = args
        .first()
        .ok_or_else(|| CliError::new("expected a permutation name (see help)"))?
        .clone();
    let n = parse_n(args.get(1), "order n")?;
    let k: i64 = match args.get(2) {
        Some(s) => {
            s.parse().map_err(|_| CliError::new("parameter k must be an integer"))?
        }
        None => 1,
    };
    let d = match name.as_str() {
        "bit-reversal" => Bpc::bit_reversal(n).to_permutation(),
        "transpose" => {
            if n % 2 != 0 {
                return Err(CliError::new("transpose needs even n"));
            }
            Bpc::matrix_transpose(n).to_permutation()
        }
        "vector-reversal" => Bpc::vector_reversal(n).to_permutation(),
        "shuffle" => Bpc::perfect_shuffle(n).to_permutation(),
        "unshuffle" => Bpc::unshuffle(n).to_permutation(),
        "shift" => cyclic_shift(n, k),
        "p-order" => {
            let p = u64::try_from(k).ok().filter(|p| p % 2 == 1).ok_or_else(|| {
                CliError::new("p-order needs an odd positive parameter k")
            })?;
            p_ordering(n, p)
        }
        other => return Err(CliError::new(format!("unknown permutation `{other}`"))),
    };
    Ok(format!("{d}\n"))
}

fn shard_cmd(args: &[String]) -> Result<String, CliError> {
    let mode =
        args.first().ok_or_else(|| CliError::new("expected shard mode: route | soak"))?;
    match mode.as_str() {
        "route" => shard_route(&args[1..]),
        "soak" => shard_soak_cmd(&args[1..]),
        other => Err(CliError::new(format!("unknown shard mode `{other}` (route | soak)"))),
    }
}

/// One demonstration run of the coordinator: decompose a random `2^n`
/// permutation, scatter it across `k` engine shards, verify the bitwise
/// recombination, print the fleet's ledger.
fn shard_route(args: &[String]) -> Result<String, CliError> {
    use benes_engine::workload::{random_permutation, Rng64};
    use benes_shard::{ShardConfig, ShardCoordinator};
    let n: u32 = match args.first() {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&n| (2..=22).contains(&n))
            .ok_or_else(|| CliError::new("order n must be in 2..=22"))?,
        None => 16,
    };
    let shards: usize = match args.get(1) {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&k| (1..=64).contains(&k))
            .ok_or_else(|| CliError::new("shard count must be in 1..=64"))?,
        None => 4,
    };
    let seed: u64 = match args.get(2) {
        Some(s) => s.parse().map_err(|_| CliError::new("seed must be an integer"))?,
        None => 1,
    };
    let pi = random_permutation(&mut Rng64::new(seed), 1usize << n);
    let coord = ShardCoordinator::new(ShardConfig { shards, ..ShardConfig::default() });
    let outcome = coord.route(&pi).map_err(|e| CliError::new(e.to_string()))?;
    let mut out = format!(
        "routed a random permutation of 2^{n} = {} elements across {shards} shards\n\
         three-stage split: r={} -> {} blocks of {} (and {} colors), {} routing units\n\
         {}\n",
        1u64 << n,
        outcome.block_bits,
        1u64 << (n - outcome.block_bits),
        1u64 << outcome.block_bits,
        1u64 << outcome.block_bits,
        outcome.units.len(),
        outcome.summary(),
    );
    out.push_str(&coord.stats().report());
    if outcome.verified {
        Ok(out)
    } else {
        Err(CliError::new(out))
    }
}

/// The deterministic shard soak behind `scripts/shard.sh`: routes a
/// stream of giant permutations, injects a failpoint into exactly one
/// shard mid-stream, and fails (nonzero exit) on cross-shard
/// contamination, a conservation violation, or a clean round that does
/// not verify.
fn shard_soak_cmd(args: &[String]) -> Result<String, CliError> {
    use benes_shard::{run_shard_soak, ShardSoakConfig};
    let seed: u64 = match args.first() {
        Some(s) => s.parse().map_err(|_| CliError::new("seed must be an integer"))?,
        None => 1980,
    };
    let n: u32 = match args.get(1) {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&n| (2..=20).contains(&n))
            .ok_or_else(|| CliError::new("order n must be in 2..=20"))?,
        None => 12,
    };
    let permutations: usize = match args.get(2) {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&p| (2..=1000).contains(&p))
            .ok_or_else(|| CliError::new("permutation count must be in 2..=1000"))?,
        None => 6,
    };
    let shards: usize = match args.get(3) {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&k| (2..=64).contains(&k))
            .ok_or_else(|| CliError::new("shard count must be in 2..=64"))?,
        None => 4,
    };
    let cfg = ShardSoakConfig {
        n,
        permutations,
        shards,
        // The failpoint always targets shard 0; isolation is judged
        // against every other shard.
        faulty_shard: Some(0),
        ..ShardSoakConfig::new(seed)
    };
    let report = run_shard_soak(&cfg);
    let mut out = format!(
        "shard soak: seed {seed}, {permutations} permutations of 2^{n} across \
         {shards} shards, fault round targets shard 0\n"
    );
    out.push_str(&report.render());
    if report.healthy() {
        Ok(out)
    } else {
        Err(CliError::new(out))
    }
}

/// The loopback wire-service smoke behind `benes-cli serve smoke`:
/// starts an in-process server on an ephemeral port, pipelines a small
/// multi-tenant load through real sockets, and reports per-tenant
/// ledger conservation. The long-running daemon is the `benes-serve`
/// binary; this command exists so the wire path can be exercised from
/// the CLI test suite and scripts without process management.
fn serve_cmd(args: &[String]) -> Result<String, CliError> {
    use benes_engine::EngineConfig;
    use benes_serve::{Client, Frame, ServeConfig, Server, Status};
    use std::time::{Duration, Instant};

    let mode = args.first().ok_or_else(|| CliError::new("expected serve mode: smoke"))?;
    if mode != "smoke" {
        return Err(CliError::new(format!("unknown serve mode `{mode}` (smoke)")));
    }
    let requests: usize = match args.get(1) {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&r| (1..=100_000).contains(&r))
            .ok_or_else(|| CliError::new("request count must be in 1..=100000"))?,
        None => 200,
    };
    let tenants: u64 = match args.get(2) {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&t| (1..=64).contains(&t))
            .ok_or_else(|| CliError::new("tenant count must be in 1..=64"))?,
        None => 2,
    };
    let conns: usize = match args.get(3) {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&c| (1..=32).contains(&c))
            .ok_or_else(|| CliError::new("connection count must be in 1..=32"))?,
        None => 2,
    };

    // The whole batch is pipelined up front, so the per-tenant backlog
    // quota must admit it all; refusals are a separate test's concern.
    let config = ServeConfig {
        threads: 1,
        quota: requests,
        engine: EngineConfig { workers: 2, ..EngineConfig::default() },
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config)
        .map_err(|e| CliError::new(format!("bind loopback server: {e}")))?;
    let addr = server.local_addr();

    // Each connection carries one tenant; requests round-robin across
    // connections. Destinations are small cyclic shifts of 0..8 —
    // valid permutations the planner serves from the cached/self-route
    // tiers.
    let mut clients = Vec::new();
    for c in 0..conns {
        let client = Client::connect(addr)
            .map_err(|e| CliError::new(format!("connect to {addr}: {e}")))?;
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| CliError::new(format!("set read timeout: {e}")))?;
        clients.push((c as u64 % tenants + 1, client, 0usize));
    }
    for req in 0..requests {
        let (tenant, client, sent) = &mut clients[req % conns];
        let destinations: Vec<u32> = (0..8).map(|i| (i + req as u32) % 8).collect();
        let frame = Frame::Route {
            req_id: req as u64,
            tenant: *tenant,
            deadline_ms: 0,
            destinations,
        };
        client.send(&frame).map_err(|e| CliError::new(format!("send: {e}")))?;
        *sent += 1;
    }

    let mut by_status = vec![0u64; Status::ALL.len()];
    let mut latency_sum_ns = 0u128;
    let mut latency_max_ns = 0u64;
    for (_, client, sent) in &mut clients {
        for _ in 0..*sent {
            let reply = client.recv().map_err(|e| CliError::new(format!("recv: {e}")))?;
            let Frame::RouteReply { status, latency_ns, .. } = reply else {
                return Err(CliError::new(format!("unexpected reply frame {reply:?}")));
            };
            by_status[status as usize] += 1;
            latency_sum_ns += u128::from(latency_ns);
            latency_max_ns = latency_max_ns.max(latency_ns);
        }
    }

    // Replies precede the engine's terminal bookkeeping by a hair, so
    // poll the Stats frame until every tenant ledger conserves.
    let mut stats = Client::connect(addr)
        .map_err(|e| CliError::new(format!("connect for stats: {e}")))?;
    stats
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| CliError::new(format!("set read timeout: {e}")))?;
    let deadline = Instant::now() + Duration::from_secs(10);
    let rows = loop {
        stats.send(&Frame::Stats).map_err(|e| CliError::new(format!("stats: {e}")))?;
        let reply = stats.recv().map_err(|e| CliError::new(format!("stats: {e}")))?;
        let Frame::StatsReply { rows } = reply else {
            return Err(CliError::new(format!("unexpected stats reply {reply:?}")));
        };
        let settled = !rows.is_empty()
            && rows.iter().all(benes_serve::TenantRow::conserves_requests)
            && rows.iter().map(|r| r.submitted).sum::<u64>() == requests as u64;
        if settled {
            break rows;
        }
        if Instant::now() >= deadline {
            return Err(CliError::new(format!(
                "tenant ledgers did not settle/conserve within 10s: {rows:?}"
            )));
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    drop(stats);
    drop(clients);

    let mut out = format!(
        "serve smoke: {requests} requests, {tenants} tenants over {conns} connections, \
         loopback {addr}\n"
    );
    for (i, &count) in by_status.iter().enumerate() {
        if count > 0 {
            out.push_str(&format!("  {:<14} {count}\n", Status::ALL[i].name()));
        }
    }
    out.push_str(&format!(
        "latency: mean {:.1}us, max {:.1}us\n",
        latency_sum_ns as f64 / requests as f64 / 1e3,
        latency_max_ns as f64 / 1e3
    ));
    for row in &rows {
        out.push_str(&format!(
            "tenant {:>3}: submitted {} = completed {} + failed {} + shed {} + canceled {} \
             (rejected {}) — conserved\n",
            row.tenant,
            row.submitted,
            row.completed,
            row.failed,
            row.shed,
            row.canceled,
            row.rejected
        ));
    }
    let counters = server.counters();
    let protocol_errors =
        counters.protocol_errors.load(std::sync::atomic::Ordering::Relaxed);
    out.push_str(&format!(
        "server counters: accepted {}, replies {}, protocol errors {protocol_errors}\n",
        counters.accepted.load(std::sync::atomic::Ordering::Relaxed),
        counters.replies.load(std::sync::atomic::Ordering::Relaxed),
    ));
    let report = server.shutdown(Instant::now() + Duration::from_secs(5));
    out.push_str(&format!(
        "drain: canceled {}, timed_out {}\n",
        report.canceled, report.timed_out
    ));
    if protocol_errors == 0 && !report.timed_out {
        Ok(out)
    } else {
        Err(CliError::new(out))
    }
}

fn fleet_cmd(args: &[String]) -> Result<String, CliError> {
    let mode = args.first().ok_or_else(|| CliError::new("expected fleet mode: soak"))?;
    match mode.as_str() {
        "soak" => fleet_soak_cmd(&args[1..]),
        other => Err(CliError::new(format!("unknown fleet mode `{other}` (soak)"))),
    }
}

/// The remote-fleet soak behind `scripts/fleet.sh`: builds a
/// coordinator of [`benes_shard::RemoteShard`] backends over already
/// running `benes-serve` processes, routes a seeded permutation stream
/// while an **external** killer takes down killable shards (the script
/// does `kill -9` when it sees a `fleet-round` line), and exits
/// nonzero on contamination, a wrong surviving element, or a
/// conservation violation. Round progress streams to stdout so the
/// killer can time its strike; the final report and the
/// `benes_fleet_*` exposition follow.
fn fleet_soak_cmd(args: &[String]) -> Result<String, CliError> {
    use benes_engine::BreakerConfig;
    use benes_shard::{
        run_fleet_soak, Backend, FleetSoakConfig, RemoteConfig, RemoteShard, ShardConfig,
        ShardCoordinator,
    };
    use std::time::Duration;

    let mut addrs: Vec<String> = Vec::new();
    let mut spares: Vec<(usize, String)> = Vec::new();
    let mut killable: Vec<usize> = Vec::new();
    let mut rounds = 8usize;
    let mut n = 10u32;
    let mut seed = 2026u64;
    let mut pause_ms = 100u64;
    let mut hedge_ms: Option<u64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next().cloned().ok_or_else(|| CliError::new(format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--addrs" => {
                addrs = value("--addrs")?.split(',').map(str::to_string).collect();
            }
            "--spare" => {
                let v = value("--spare")?;
                let (idx, addr) = v
                    .split_once('=')
                    .ok_or_else(|| CliError::new("--spare expects IDX=HOST:PORT"))?;
                let idx: usize = idx
                    .parse()
                    .map_err(|_| CliError::new("--spare shard index must be an integer"))?;
                spares.push((idx, addr.to_string()));
            }
            "--killable" => {
                killable = value("--killable")?
                    .split(',')
                    .map(|s| {
                        s.parse().map_err(|_| {
                            CliError::new("--killable expects shard indices, e.g. 1,2")
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--rounds" => {
                rounds = value("--rounds")?
                    .parse()
                    .ok()
                    .filter(|&r| (1..=1000).contains(&r))
                    .ok_or_else(|| CliError::new("--rounds must be in 1..=1000"))?;
            }
            "--n" => {
                n = value("--n")?
                    .parse()
                    .ok()
                    .filter(|&n| (2..=16).contains(&n))
                    .ok_or_else(|| CliError::new("--n must be in 2..=16"))?;
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| CliError::new("--seed must be an integer"))?;
            }
            "--pause-ms" => {
                pause_ms = value("--pause-ms")?
                    .parse()
                    .map_err(|_| CliError::new("--pause-ms must be an integer"))?;
            }
            "--hedge-ms" => {
                hedge_ms = Some(
                    value("--hedge-ms")?
                        .parse()
                        .map_err(|_| CliError::new("--hedge-ms must be an integer"))?,
                );
            }
            other => {
                return Err(CliError::new(format!("unknown fleet soak argument `{other}`")))
            }
        }
    }
    if addrs.is_empty() {
        return Err(CliError::new("--addrs HOST:PORT,HOST:PORT,... is required"));
    }
    if let Some((idx, _)) = spares.iter().find(|(idx, _)| *idx >= addrs.len()) {
        return Err(CliError::new(format!(
            "--spare index {idx} out of range for {} shards",
            addrs.len()
        )));
    }
    if let Some(idx) = killable.iter().find(|&&idx| idx >= addrs.len()) {
        return Err(CliError::new(format!(
            "--killable index {idx} out of range for {} shards",
            addrs.len()
        )));
    }

    // Tight transport budgets: the gate script kills real processes,
    // so dead-endpoint paths must resolve in tens of milliseconds.
    let backends: Vec<Box<dyn Backend>> = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let spare = spares.iter().find(|(idx, _)| *idx == i).map(|(_, a)| a.clone());
            let cfg = RemoteConfig {
                spare: spare.clone(),
                connect_timeout: Duration::from_millis(250),
                request_timeout: Duration::from_secs(2),
                attempts: 2,
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    base_backoff: Duration::from_millis(20),
                    ..BreakerConfig::default()
                },
                reconnect_base: Duration::from_millis(5),
                reconnect_max: Duration::from_millis(50),
                probe_interval: Duration::from_millis(100),
                hedge: hedge_ms.filter(|_| spare.is_some()).map(Duration::from_millis),
                ..RemoteConfig::new(addr.clone())
            };
            Box::new(RemoteShard::new(cfg, i)) as Box<dyn Backend>
        })
        .collect();
    let coord = ShardCoordinator::with_backends(ShardConfig::default(), backends);

    let cfg = FleetSoakConfig {
        seed,
        n,
        rounds,
        round_pause: Duration::from_millis(pause_ms),
        killable: killable.clone(),
    };
    println!(
        "fleet soak: {} remote shards, {} spares, killable {:?}, {rounds} rounds of 2^{n}",
        addrs.len(),
        spares.len(),
        killable,
    );
    // Stream each round as it lands (stdout is line-buffered) so an
    // external killer can strike mid-soak.
    let report = run_fleet_soak(&coord, &cfg, |round, out| {
        println!("fleet-round {round}: {}", out.summary());
    });

    let mut out = report.render();
    out.push_str(&coord.fleet_stats().exposition().to_prometheus());
    if report.healthy() {
        Ok(out)
    } else {
        Err(CliError::new(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(line: &str) -> Result<String, CliError> {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        run(&args)
    }

    #[test]
    fn empty_args_print_help() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run_str("help").unwrap().contains("classify"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = run_str("frobnicate").unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn classify_fig5() {
        let out = run_str("classify 1 3 2 0").unwrap();
        assert!(out.contains("BPC:  no"));
        assert!(out.contains("Ω:    true"));
        assert!(out.contains("Ω⁻¹:  false"));
        assert!(out.contains("F:    no"));
    }

    #[test]
    fn classify_recovers_bpc_vector() {
        let out = run_str("classify 0 4 2 6 1 5 3 7").unwrap();
        assert!(out.contains("BPC:  yes"), "{out}");
        assert!(out.contains("F:    yes"));
    }

    #[test]
    fn classify_rejects_garbage() {
        assert!(run_str("classify 1 1").is_err());
        assert!(run_str("classify x y").is_err());
        assert!(run_str("classify").is_err());
        // Power-of-two check is a report, not an error.
        let out = run_str("classify 2 0 1").unwrap();
        assert!(out.contains("not a power of two"));
    }

    #[test]
    fn route_modes() {
        assert!(run_str("route 0 4 2 6 1 5 3 7").unwrap().contains("SUCCESS"));
        assert!(run_str("route 1 3 2 0").unwrap().contains("FAILURE"));
        assert!(run_str("route 1 3 2 0 omega").unwrap().contains("SUCCESS"));
        assert!(run_str("route 1 3 2 0 waksman").unwrap().contains("SUCCESS"));
    }

    #[test]
    fn structure_reports_sizes() {
        let out = run_str("structure 3").unwrap();
        assert!(out.contains("8 terminals, 5 stages, 20 switches"));
        let big = run_str("structure 10").unwrap();
        assert!(big.contains("1024 terminals"));
        assert!(run_str("structure 0").is_err());
    }

    #[test]
    fn census_defaults_to_three() {
        let out = run_str("census").unwrap();
        assert!(out.contains("11632"));
        assert!(run_str("census 4").is_err());
    }

    #[test]
    fn cost_lists_seven_networks() {
        let out = run_str("cost 6").unwrap();
        assert_eq!(out.matches("switches").count(), 7);
        assert!(out.contains("Crossbar"));
        assert!(out.contains("Waksman A(n)"));
    }

    #[test]
    fn simd_machines() {
        let out = run_str("simd ccc 0 4 2 6 1 5 3 7").unwrap();
        assert!(out.contains("routed: yes"));
        assert!(out.contains("5 steps"));
        let out = run_str("simd psc 0 4 2 6 1 5 3 7").unwrap();
        assert!(out.contains("9 unit-routes"));
        let out = run_str("simd mcc 1 3 2 0").unwrap();
        assert!(out.contains("routed: NO"));
        assert!(run_str("simd mcc 0 4 2 6 1 5 3 7").is_err()); // odd n
        assert!(run_str("simd tpu 0 1").is_err());
    }

    #[test]
    fn gates_report() {
        let out = run_str("gates 3 4").unwrap();
        assert!(out.contains("critical path: 18 gate levels"));
        assert!(run_str("gates 9").is_err());
    }

    #[test]
    fn named_generators() {
        assert_eq!(
            run_str("named bit-reversal 3").unwrap().trim(),
            "(0, 4, 2, 6, 1, 5, 3, 7)"
        );
        assert_eq!(run_str("named shift 2 1").unwrap().trim(), "(1, 2, 3, 0)");
        assert!(run_str("named transpose 3").is_err());
        assert!(run_str("named p-order 3 4").is_err()); // even p
        assert!(run_str("named nonesuch 3").is_err());
    }

    #[test]
    fn shard_route_verifies_recombination() {
        let out = run_str("shard route 10 3 7").unwrap();
        assert!(out.contains("verified=true"), "{out}");
        assert!(out.contains("fleet: shards=3"));
        assert!(run_str("shard route 25").is_err()); // n out of range
        assert!(run_str("shard bogus").is_err());
        assert!(run_str("shard").is_err());
    }

    #[test]
    fn shard_soak_gate_passes_on_defaults() {
        // Small soak (2^8, 4 rounds) so the unit test stays fast; the
        // script runs the full default.
        let out = run_str("shard soak 7 8 4 4").unwrap();
        assert!(out.contains("HEALTHY"), "{out}");
        assert!(out.contains("contaminated_units=0"), "{out}");
    }

    #[test]
    fn serve_smoke_conserves_tenant_ledgers() {
        let out = run_str("serve smoke 60 3 3").unwrap();
        assert!(out.contains("ok             60"), "{out}");
        assert!(out.contains("protocol errors 0"), "{out}");
        for tenant in 1..=3 {
            assert!(out.contains(&format!("tenant   {tenant}: submitted 20")), "{out}");
        }
        assert!(out.matches("— conserved").count() == 3, "{out}");
        assert!(run_str("serve").is_err());
        assert!(run_str("serve bogus").is_err());
        assert!(run_str("serve smoke 0").is_err());
    }

    #[test]
    fn fleet_soak_runs_against_in_process_servers() {
        use benes_engine::EngineConfig;
        use benes_serve::{ServeConfig, Server};
        let servers: Vec<Server> = (0..2)
            .map(|_| {
                let config = ServeConfig {
                    threads: 1,
                    engine: EngineConfig { workers: 2, ..EngineConfig::default() },
                    ..ServeConfig::default()
                };
                Server::start("127.0.0.1:0", config).expect("bind ephemeral port")
            })
            .collect();
        let addrs: Vec<String> =
            servers.iter().map(|s| s.local_addr().to_string()).collect();
        let out = run_str(&format!(
            "fleet soak --addrs {} --rounds 3 --n 6 --pause-ms 0",
            addrs.join(",")
        ))
        .unwrap();
        assert!(out.contains("fleet-soak: HEALTHY"), "{out}");
        assert!(out.contains("benes_fleet_failovers_total"), "{out}");
        assert!(out.contains("benes_fleet_shard_healthy"), "{out}");
        for s in servers {
            s.shutdown(std::time::Instant::now() + std::time::Duration::from_secs(5));
        }
    }

    #[test]
    fn fleet_soak_rejects_bad_usage() {
        assert!(run_str("fleet").is_err());
        assert!(run_str("fleet bogus").is_err());
        assert!(run_str("fleet soak").is_err()); // --addrs required
        assert!(run_str("fleet soak --addrs a --killable 5").is_err());
        assert!(run_str("fleet soak --addrs a --spare 3=b").is_err());
        assert!(run_str("fleet soak --addrs a --rounds 0").is_err());
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    fn run_str(line: &str) -> Result<String, CliError> {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        run(&args)
    }

    #[test]
    fn gcn_command() {
        let out = run_str("gcn 2 0 2 1").unwrap();
        assert!(out.contains("1 copies fabricated"));
        assert!(out.contains("0<-2"));
        assert!(run_str("gcn 0 1 2").is_err()); // not a power of two
        assert!(run_str("gcn 9 0 0 0").is_err()); // out of range source
        assert!(run_str("gcn").is_err());
    }

    #[test]
    fn dual_command() {
        let out = run_str("dual 25 0 4 2 6 1 5 3 7").unwrap();
        assert!(out.contains("B(n) self-route, 5 gate delays"));
        let out = run_str("dual 25 0 2 1 3").unwrap(); // shuffle on n=2
        assert!(out.contains("E(n) direct link"), "{out}");
        assert!(run_str("dual 0 0 1").is_err()); // kappa must be >= 1
    }

    #[test]
    fn factor_command() {
        let out = run_str("factor 1 3 2 0").unwrap();
        assert!(out.contains("inverse-omega: true"));
        assert!(out.contains("omega: true"));
        assert!(run_str("factor 0 1 2").is_err());
    }

    #[test]
    fn engine_command() {
        let out = run_str("engine 3 200 2").unwrap();
        assert!(out.contains("engine run: B(3), 200 requests, 2 workers"), "{out}");
        assert!(out.contains("200 submitted, 200 completed, 0 failed"), "{out}");
        assert!(out.contains("misrouted          0"), "{out}");
        assert!(run_str("engine 2").is_err()); // no hard perms below B(3)
        assert!(run_str("engine 4 0").is_err());
        assert!(run_str("engine 4 10 0").is_err());
    }

    #[test]
    fn faults_command() {
        let out = run_str("faults 3 2 120 7").unwrap();
        assert!(out.contains("fault-injection campaign: B(3), 2 stuck switches"), "{out}");
        assert!(out.contains("fault set: B(3):"), "{out}");
        assert!(out.contains("degraded mode"), "{out}");
        // A healthy campaign (k = 0) serves everything and stays clean.
        let clean = run_str("faults 3 0 60 7").unwrap();
        assert!(clean.contains("served 60/60"), "{clean}");
        assert!(!clean.contains("degraded mode"), "{clean}");
        assert!(run_str("faults 2").is_err()); // no hard perms below B(3)
        assert!(run_str("faults 3 999").is_err()); // more faults than switches
        assert!(run_str("faults 3 1 0").is_err());
    }

    #[test]
    fn chaos_command() {
        let out = run_str("chaos 3962 100").unwrap();
        assert!(out.contains("chaos soak: seed 3962"), "{out}");
        assert!(out.contains("breaker: opened"), "{out}");
        assert!(out.contains("conserved, no hangs, breaker cycled"), "{out}");
        assert!(run_str("chaos 1 0").is_err()); // zero requests
        assert!(run_str("chaos x").is_err()); // non-integer seed
    }

    #[test]
    fn obs_dump_round_trips_through_both_parsers() {
        let text = run_str("obs dump 3 150").unwrap();
        assert!(text.contains("# TYPE benes_requests_total counter"), "{text}");
        assert!(
            text.contains("benes_latency_ns{path=\"all\",quantile=\"0.99\"}"),
            "{text}"
        );
        let samples = benes_obs::parse_prometheus(&text).expect("exposition must parse");
        assert!(samples.iter().any(|s| s.name == "benes_requests_total"));

        let json = run_str("obs dump 3 150 --json").unwrap();
        let parsed = benes_obs::parse_json(&json).expect("JSON exposition must parse");
        assert!(parsed.iter().any(|s| s.name == "benes_queue_high_water"));
    }

    #[test]
    fn obs_histogram_reports_per_tier_quantiles() {
        let out = run_str("obs histogram 4 400").unwrap();
        assert!(out.contains("p50"), "{out}");
        assert!(out.contains("p99"), "{out}");
        // The mixed workload exercises the zero-setup, Waksman and
        // cached tiers; each must surface its own histogram row.
        assert!(out.contains("self-route"), "{out}");
        assert!(out.contains("waksman"), "{out}");
        assert!(out.contains("cached"), "{out}");
        assert!(run_str("obs histogram 2").is_err());
        assert!(run_str("obs histogram 4 0").is_err());
    }

    #[test]
    fn obs_flightrec_renders_the_injected_failure() {
        let out = run_str("obs flightrec 3 6").unwrap();
        assert!(out.contains("FAILED"), "{out}");
        assert!(out.contains("fault-detected"), "{out}");
        assert!(out.contains("unavoidable"), "{out}");
        assert!(out.contains("failing-plan trace:"), "{out}");
        assert!(out.contains("route attempt: fingerprint"), "{out}");
        assert!(run_str("obs flightrec 3 6 999").is_err());
    }

    #[test]
    fn obs_rejects_unknown_modes() {
        assert!(run_str("obs").is_err());
        assert!(run_str("obs spelunk").is_err());
    }

    #[test]
    fn diagnose_command() {
        let out = run_str("diagnose 0 4 2 6 1 5 3 7").unwrap();
        assert!(out.contains("20 benign"));
        assert!(out.contains("visible"));
        assert!(run_str("diagnose 1 0").is_ok());
    }

    #[test]
    fn analyze_concurrency_certifies_and_self_tests() {
        let out = run_str("analyze concurrency").unwrap();
        assert!(out.contains("concurrency model check: certified"), "{out}");
        // All three current-protocol abstractions certify exhaustively.
        assert_eq!(out.matches("certified: sharded queue").count(), 3, "{out}");
        // All three seeded mutants are flagged, with a readable trace.
        assert_eq!(out.matches("flagged as expected: mutant").count(), 3, "{out}");
        assert!(out.contains("counterexample trace"), "{out}");
        assert!(out.contains("no post-take wake [mutant]"), "{out}");
        assert!(out.contains("no lost wakeups"), "{out}");
    }

    #[test]
    fn analyze_concurrency_budget_exhaustion_is_a_failure() {
        let err = run_str("analyze concurrency --budget 10").unwrap_err();
        assert!(err.to_string().contains("model-budget-exhausted"), "{err}");
        assert!(run_str("analyze concurrency --budget").is_err());
        assert!(run_str("analyze concurrency --budget zero").is_err());
    }

    #[test]
    fn analyze_word_proves_small_orders() {
        let out = run_str("analyze word 3").unwrap();
        assert!(out.contains("word-kernel equivalence proof: certified"), "{out}");
        assert!(out.contains("B(3) self-route kernel"), "{out}");
        assert!(out.contains("B(3) omega-bit kernel"), "{out}");
        assert!(out.contains("zero sampled inputs"), "{out}");
        assert!(run_str("analyze word 9").is_err());
        assert!(run_str("analyze word 0").is_err());
    }
}
