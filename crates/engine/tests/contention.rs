//! Concurrency and end-to-end acceptance tests for the engine:
//! cache behaviour under contention, and a large mixed-workload batch
//! run on a multi-worker pool.

use benes_engine::workload::{self, Rng64};
use benes_engine::{Engine, EngineConfig, Fallback, Tier};
use std::sync::{Arc, Barrier};
use std::thread;

/// Two threads submitting the **same** permutation concurrently must
/// both succeed, and the cache must end with exactly one entry.
#[test]
fn concurrent_same_permutation_one_cache_entry() {
    let mut rng = Rng64::new(0x00c0_ffee);
    let hard = workload::hard_permutation(&mut rng, 4);

    // Repeat the race a few times: a single interleaving proves little.
    for round in 0..8 {
        let engine =
            Arc::new(Engine::new(EngineConfig { workers: 4, ..EngineConfig::default() }));
        let start = Arc::new(Barrier::new(2));

        let handles: Vec<_> = (0..2)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let start = Arc::clone(&start);
                let d = hard.clone();
                thread::spawn(move || {
                    start.wait();
                    engine.submit(d).wait()
                })
            })
            .collect();

        for handle in handles {
            let outcome = handle.join().expect("submitter thread panicked");
            assert!(outcome.is_ok(), "round {round}: {:?}", outcome.result);
        }
        assert_eq!(
            engine.cache_len(),
            1,
            "round {round}: duplicate submissions must collapse to one cache entry"
        );

        let stats = engine.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 0);
    }
}

/// Many threads hammering a small set of permutations: every request
/// succeeds and the cache holds at most one entry per distinct
/// cacheable permutation.
#[test]
fn many_threads_small_keyspace() {
    let mut rng = Rng64::new(77);
    let perms: Vec<_> = (0..4).map(|_| workload::hard_permutation(&mut rng, 4)).collect();

    let engine =
        Arc::new(Engine::new(EngineConfig { workers: 4, ..EngineConfig::default() }));
    let start = Arc::new(Barrier::new(8));

    let handles: Vec<_> = (0..8)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let start = Arc::clone(&start);
            let perms = perms.clone();
            thread::spawn(move || {
                start.wait();
                for i in 0..16 {
                    let outcome =
                        engine.submit(perms[(t + i) % perms.len()].clone()).wait();
                    assert!(outcome.is_ok(), "misroute under contention: {outcome:?}");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("submitter thread panicked");
    }

    let stats = engine.stats();
    assert_eq!(stats.completed, 8 * 16);
    assert_eq!(stats.failed, 0);
    assert!(engine.cache_len() <= perms.len());
    assert!(stats.cache_hits > 0, "repeats across threads must hit the cache");
}

/// Acceptance (b) + (c): a 4-worker batched run over ≥1000 mixed
/// requests returns a correct outcome for every request, and the stats
/// report non-zero counts for at least the self-route, Waksman, and
/// cache tiers.
#[test]
fn mixed_workload_1000_requests_on_four_workers() {
    let engine =
        Engine::new(EngineConfig { workers: 4, batch_size: 16, ..EngineConfig::default() });
    let stream = workload::mixed_workload(4, 1000, 0xbe5e);

    let outcomes = engine.run_batch(stream);
    assert_eq!(outcomes.len(), 1000);
    for (i, outcome) in outcomes.iter().enumerate() {
        assert!(outcome.is_ok(), "request {i} failed: {:?}", outcome.result);
    }

    let stats = engine.stats();
    assert_eq!(stats.submitted, 1000);
    assert_eq!(stats.completed, 1000);
    assert_eq!(stats.failed, 0);
    assert!(stats.self_route > 0, "Table I BPC members must self-route:\n{stats}");
    assert!(stats.waksman > 0, "hard permutations must reach the Waksman tier:\n{stats}");
    assert!(
        stats.cached > 0,
        "repeated hard permutations must replay from cache:\n{stats}"
    );
    assert_eq!(
        stats.self_route + stats.omega_bit + stats.factored + stats.waksman + stats.cached,
        1000,
        "every request lands in exactly one tier"
    );
    assert!(stats.latency_max_ns() >= stats.latency_min_ns());
    assert_eq!(stats.latency.count(), 1000, "every request lands in the histogram");
    assert!(stats.queue_high_water > 0);
}

/// The same mixed workload through the factored fallback: still fully
/// correct, and the expensive tier is the two-pass factorization
/// instead of Waksman.
#[test]
fn mixed_workload_factored_fallback() {
    let engine = Engine::new(EngineConfig {
        workers: 4,
        fallback: Fallback::Factored,
        ..EngineConfig::default()
    });
    let stream = workload::mixed_workload(3, 400, 0xfac7);

    let outcomes = engine.run_batch(stream);
    assert!(outcomes.iter().all(benes_engine::RequestOutcome::is_ok));

    let stats = engine.stats();
    assert_eq!(stats.completed, 400);
    assert_eq!(stats.waksman, 0, "factored fallback must never call the Waksman set-up");
    assert!(stats.factored > 0);
    assert!(stats.cached > 0, "two-pass plans are cacheable and must replay");
}

/// Tier bookkeeping is visible per request, not only in aggregate.
#[test]
fn outcomes_expose_their_tier() {
    let engine = Engine::new(EngineConfig::default());
    let mut rng = Rng64::new(11);
    let hard = workload::hard_permutation(&mut rng, 3);
    let bpc = workload::table1_permutations(3).remove(0).1;

    assert_eq!(engine.submit(bpc).wait().tier(), Some(Tier::SelfRoute));
    assert_eq!(engine.submit(hard.clone()).wait().tier(), Some(Tier::Waksman));
    assert_eq!(engine.submit(hard).wait().tier(), Some(Tier::Cached));
}
