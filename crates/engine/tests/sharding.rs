//! Integration tests for the sharded work-stealing submission queue:
//! conservation under steal races, drain-with-deadline across shards,
//! the deadline-after-chaos-delay shed, and the per-shard / queue-wait
//! observability surface.

use std::sync::Arc;
use std::time::{Duration, Instant};

use benes_engine::workload::mixed_workload;
use benes_engine::{ChaosConfig, Engine, EngineConfig, EngineError, Ticket};
use benes_perm::bpc::Bpc;
use benes_perm::Permutation;

fn small() -> Permutation {
    Bpc::bit_reversal(3).to_permutation()
}

/// Named-bug regression (worker.rs): the deadline was only checked
/// *before* the chaos delay, so a request whose injected delay carried
/// it past its deadline was planned, executed, and handed back a
/// success the engine had promised to shed. The worker must re-check
/// after waking.
#[test]
fn chaos_delay_past_deadline_sheds_after_wake() {
    let engine =
        Engine::new(EngineConfig { workers: 1, batch_size: 1, ..EngineConfig::default() });
    engine.set_chaos(ChaosConfig {
        seed: 9,
        fail_per_1024: 0,
        delay_per_1024: 1024, // every request sleeps…
        delay: Duration::from_millis(200),
    });
    // …and the deadline expires mid-sleep: dequeue happens well within
    // 50ms, the 200ms injected delay then overshoots the deadline.
    let outcome = engine
        .submit_with_deadline(small(), Instant::now() + Duration::from_millis(50))
        .wait();
    assert_eq!(
        outcome.result,
        Err(EngineError::DeadlineExceeded),
        "a delay past the deadline must shed, not serve"
    );
    let stats = engine.stats();
    assert_eq!(stats.completed, 0, "the expired request must never execute");
    assert_eq!(stats.deadline_exceeded, 1);
    assert!(stats.conserves_requests());
}

/// Steal races: many submitters hammering a multi-worker engine whose
/// batch size forces constant cross-shard stealing. Every request must
/// land in exactly one terminal state.
#[test]
fn submit_storm_conserves_requests_across_steals() {
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 4,
        batch_size: 1, // one job per take: maximal steal interleaving
        ..EngineConfig::default()
    }));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let tickets: Vec<_> = mixed_workload(3, 50, t)
                    .into_iter()
                    .map(|d| engine.submit(d))
                    .collect();
                tickets.into_iter().map(Ticket::wait).all(|o| o.is_ok())
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap(), "every stormed request must succeed");
    }
    let stats = engine.stats();
    assert_eq!(stats.submitted, 8 * 50);
    assert_eq!(stats.completed, 8 * 50);
    assert!(
        stats.conserves_requests(),
        "steal races must not lose or double-count:\n{stats}"
    );
}

/// Drain with a deadline while strands sit in *every* shard: the
/// timed-out drain must cancel all of them, not just one worker's.
#[test]
fn drain_deadline_cancels_strands_in_every_shard() {
    let engine =
        Engine::new(EngineConfig { workers: 4, batch_size: 1, ..EngineConfig::default() });
    engine.set_chaos(ChaosConfig {
        seed: 3,
        fail_per_1024: 0,
        delay_per_1024: 1024,
        delay: Duration::from_millis(250),
    });
    // Four in-flight jobs put every worker to sleep…
    let in_flight = engine.submit_all((0..4).map(|_| small()));
    std::thread::sleep(Duration::from_millis(60));
    // …then twelve strands spread round-robin over the four shards.
    let strands = engine.submit_all(mixed_workload(3, 12, 42));
    let report = engine.drain(Instant::now() + Duration::from_millis(10));
    assert!(report.timed_out, "deadline shorter than the in-flight sleeps");
    assert_eq!(report.canceled, 12, "every shard's strands are canceled");
    for t in in_flight {
        assert!(t.wait().is_ok(), "in-flight jobs finish during join");
    }
    for t in strands {
        assert_eq!(t.wait().result, Err(EngineError::Canceled));
    }
    assert!(engine.stats().conserves_requests());
}

/// The new observability surface: per-shard depths sized to the worker
/// pool, and end-to-end latency decomposed into queue wait + service
/// time, all visible in the stats report and the exposition.
#[test]
fn per_shard_depths_and_latency_split_are_visible() {
    let engine = Engine::new(EngineConfig { workers: 3, ..EngineConfig::default() });
    for t in engine.submit_all(mixed_workload(3, 30, 7)) {
        assert!(t.wait().is_ok());
    }
    let stats = engine.stats();
    assert_eq!(stats.queue_depths.len(), 3, "one depth gauge per shard");
    assert_eq!(
        stats.queue_depths.iter().sum::<u64>(),
        0,
        "all served: every shard drained"
    );
    assert_eq!(stats.queue_wait.count(), 30, "every served job records its wait");
    assert_eq!(stats.service.count(), 30, "every served job records its service time");
    let text = stats.exposition().to_prometheus();
    for needle in [
        "benes_queue_depth{shard=\"0\"}",
        "benes_queue_depth{shard=\"2\"}",
        "benes_queue_wait_ns{quantile=\"0.5\"}",
        "benes_service_ns{quantile=\"0.99\"}",
        "benes_queue_wait_ns_count",
        "benes_service_ns_count",
    ] {
        assert!(text.contains(needle), "exposition missing {needle}:\n{text}");
    }
    let human = stats.report();
    assert!(human.contains("queue wait (ns)"), "{human}");
    assert!(human.contains("service time (ns)"), "{human}");
    assert!(human.contains("per-shard queue depth"), "{human}");
}
