//! Deterministic chaos-soak integration tests: the acceptance
//! criteria for the overload-protection layer.
//!
//! The canonical seeded soak runs the engine through normal traffic, a
//! forced-failure burst, a recovery window, a real fault burst and a
//! healed cool-down, then drains it — and asserts the conservation
//! invariant `completed + failed + shed + canceled == submitted`, zero
//! hung waiters, and the breaker opening under the burst, shedding
//! instead of retrying, and re-closing after the burst clears.

use benes_engine::{run_soak, BreakerState, SoakConfig};

/// The tier-1 seed (`scripts/chaos.sh` uses the same one).
const SEED: u64 = 3962;

#[test]
fn seeded_soak_conserves_requests_and_cycles_the_breaker() {
    let report = run_soak(&SoakConfig::new(SEED, 200));
    let s = &report.stats;

    // Conservation: every admitted request reached exactly one
    // terminal state, and nobody waited forever for it.
    assert!(
        s.conserves_requests(),
        "conservation violated: {} submitted != {} completed + {} failed + {} shed + {} canceled",
        s.submitted,
        s.completed,
        s.failed,
        s.shed,
        s.canceled
    );
    assert_eq!(report.hung_waiters, 0, "no waiter may hang");

    // The forced burst failed real requests, tripped the breaker, and
    // the breaker shed instead of retrying.
    assert!(s.failed > 0, "the injected burst must fail requests");
    assert!(s.breaker_opened >= 1, "the burst must trip the breaker");
    assert!(s.breaker_shed >= 1, "an open breaker must shed");
    // The schedule guarantees deadline sheds (expired-deadline
    // submissions are part of the seeded admission mix).
    assert!(s.deadline_exceeded >= 1, "expired deadlines must shed");
    assert_eq!(s.shed, s.breaker_shed + s.deadline_exceeded, "sheds partition by reason");

    // After the burst cleared, a half-open probe succeeded and every
    // breaker finished closed.
    assert!(s.breaker_probes >= 1);
    assert!(s.breaker_reclosed >= 1, "breaker must re-close after the burst");
    assert!(!s.breaker_states.is_empty());
    assert!(s.breaker_states.iter().all(|(_, state)| *state == BreakerState::Closed));

    assert!(report.healthy(), "soak must pass wholesale:\n{}", report.render());
}

#[test]
fn soak_is_reproducible_in_its_invariant_surface() {
    // Thread interleavings vary run to run, but the seeded schedule
    // pins the invariant surface: both runs are healthy and both see
    // the same workload volume submitted through the same event list.
    let a = run_soak(&SoakConfig::new(7, 120));
    let b = run_soak(&SoakConfig::new(7, 120));
    assert!(a.healthy(), "run A:\n{}", a.render());
    assert!(b.healthy(), "run B:\n{}", b.render());
    assert_eq!(
        a.stats.submitted + a.stats.rejected,
        b.stats.submitted + b.stats.rejected,
        "same seed, same offered load"
    );
}

#[test]
fn soak_results_are_visible_in_the_exposition() {
    // Acceptance criterion: the shed / breaker story is all visible in
    // EngineStats::exposition().
    let report = run_soak(&SoakConfig::new(SEED, 150));
    assert!(report.healthy(), "{}", report.render());
    let text = report.stats.exposition().to_prometheus();
    for needle in [
        "benes_requests_total{state=\"shed\"}",
        "benes_requests_total{state=\"canceled\"}",
        "benes_requests_total{state=\"rejected\"}",
        "benes_shed_total{reason=\"deadline\"}",
        "benes_shed_total{reason=\"breaker\"}",
        "benes_breaker_total{event=\"opened\"}",
        "benes_breaker_total{event=\"reclosed\"}",
        "benes_breaker_state{order=\"3\"}",
    ] {
        assert!(text.contains(needle), "exposition missing {needle}:\n{text}");
    }
    assert!(
        text.contains("benes_latency_ns{path=\"shed\""),
        "shed latency histogram must be exported:\n{text}"
    );
    // The report renders the overload section too.
    let human = report.stats.report();
    assert!(human.contains("overload & lifecycle"), "{human}");
}
