//! Request-lifecycle integration tests: bounded admission, deadlines,
//! ticket polling, drain semantics, and the shutdown/condvar race.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use benes_engine::workload::mixed_workload;
use benes_engine::{ChaosConfig, Engine, EngineConfig, EngineError, SubmitError, Ticket};
use benes_perm::bpc::Bpc;
use benes_perm::Permutation;

fn small() -> Permutation {
    Bpc::bit_reversal(3).to_permutation()
}

/// An engine whose single worker is asleep long enough for the test to
/// deterministically observe a full queue: every request carries a
/// `delay` chaos sleep, so once the first job is dequeued the worker is
/// busy for `delay` while the queue backs up behind it.
fn slow_engine(depth: usize, delay: Duration) -> Engine {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        batch_size: 1,
        max_queue_depth: Some(depth),
        ..EngineConfig::default()
    });
    engine.set_chaos(ChaosConfig {
        seed: 1,
        fail_per_1024: 0,
        delay_per_1024: 1024,
        delay,
    });
    engine
}

#[test]
fn bounded_queue_rejects_and_times_out() {
    let engine = slow_engine(2, Duration::from_millis(150));
    let mut tickets = vec![engine.submit(small())];
    // Give the worker time to dequeue the first job and start its
    // injected sleep; the queue is then empty and all ours.
    std::thread::sleep(Duration::from_millis(50));
    tickets.push(engine.try_submit(small()).expect("depth 2, queue empty"));
    tickets.push(engine.try_submit(small()).expect("second slot"));
    assert!(
        matches!(engine.try_submit(small()), Err(SubmitError::QueueFull { depth: 2 })),
        "third must be rejected"
    );
    assert!(matches!(
        engine.submit_wait(small(), Duration::from_millis(10)),
        Err(SubmitError::Timeout)
    ));
    // Backpressure is transient: the worker drains, space appears, and
    // a bounded wait eventually admits.
    tickets.push(
        engine
            .submit_wait(small(), Duration::from_secs(10))
            .expect("space appears once the worker drains"),
    );
    engine.clear_chaos();
    for t in tickets {
        assert!(t.wait().is_ok());
    }
    let stats = engine.stats();
    assert_eq!(stats.rejected, 2, "QueueFull + Timeout both count rejected");
    assert_eq!(stats.submitted, 4);
    assert!(stats.conserves_requests());
}

#[test]
fn expired_deadline_sheds_without_execution() {
    let engine = Engine::new(EngineConfig { workers: 1, ..EngineConfig::default() });
    // Deadline already in the past: the worker must shed at dequeue.
    let outcome = engine.submit_with_deadline(small(), Instant::now()).wait();
    assert_eq!(outcome.result, Err(EngineError::DeadlineExceeded));
    let stats = engine.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(stats.completed, 0, "shed requests are never executed");
    assert_eq!(stats.shed_latency.count(), 1);
    assert!(stats.conserves_requests());
    // The flight record shows the shed and proves nothing was planned.
    let record = engine.flight_records(1).pop().expect("shed is recorded");
    assert_eq!(record.ladder.len(), 1);
    assert_eq!(record.ladder[0].to_string(), "deadline-shed");

    // A generous deadline serves normally.
    let ok = engine
        .submit_with_deadline(small(), Instant::now() + Duration::from_secs(30))
        .wait();
    assert!(ok.is_ok());
}

#[test]
fn try_result_polls_without_blocking() {
    let engine = slow_engine(16, Duration::from_millis(100));
    let mut ticket = engine.submit(small());
    // In flight (worker sleeping): poll returns None immediately.
    let polled_at = Instant::now();
    let first = ticket.try_result();
    assert!(polled_at.elapsed() < Duration::from_millis(90), "poll must not block");
    assert!(first.is_none(), "request still in flight");
    // wait_timeout shorter than the remaining delay also returns None…
    assert!(ticket.wait_timeout(Duration::from_millis(1)).is_none());
    // …and a full wait resolves; later polls replay the cached outcome.
    let outcome = ticket.wait_timeout(Duration::from_secs(10)).expect("resolves");
    assert!(outcome.is_ok());
    assert_eq!(ticket.try_result().map(|o| o.result), Some(outcome.result.clone()));
    assert_eq!(ticket.wait().result, outcome.result);
}

#[test]
fn drain_serves_or_cancels_everything_and_closes_admission() {
    let engine = slow_engine(64, Duration::from_millis(120));
    let mut tickets = vec![engine.submit(small())];
    std::thread::sleep(Duration::from_millis(40)); // worker now sleeping
    for perm in mixed_workload(3, 6, 5) {
        tickets.push(engine.submit(perm));
    }
    // Deadline shorter than the in-flight job's delay: the drain must
    // time out and cancel all six queued jobs.
    let report = engine.drain(Instant::now() + Duration::from_millis(10));
    assert!(report.timed_out);
    assert_eq!(report.canceled, 6);
    // Every outstanding ticket resolves instantly now.
    let outcomes: Vec<_> = tickets.drain(..).map(Ticket::wait).collect();
    assert!(outcomes[0].is_ok(), "in-flight job finished during join");
    for o in &outcomes[1..] {
        assert_eq!(o.result, Err(EngineError::Canceled));
    }
    let stats = engine.stats();
    assert_eq!(stats.canceled, 6);
    assert!(stats.conserves_requests());

    // Admission is closed: infallible submit hands back a pre-canceled
    // ticket, fallible paths report ShuttingDown.
    assert_eq!(engine.submit(small()).wait().result, Err(EngineError::Canceled));
    assert!(matches!(engine.try_submit(small()), Err(SubmitError::ShuttingDown)));
    assert!(matches!(
        engine.submit_wait(small(), Duration::from_millis(5)),
        Err(SubmitError::ShuttingDown)
    ));
    // Draining again is a harmless no-op.
    assert_eq!(engine.drain(Instant::now()), benes_engine::DrainReport::default());
}

#[test]
fn drain_with_room_serves_all_queued_work() {
    let engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
    let tickets = engine.submit_all(mixed_workload(3, 40, 6));
    let report = engine.drain(Instant::now() + Duration::from_secs(30));
    assert!(!report.timed_out);
    assert_eq!(report.canceled, 0, "a roomy deadline cancels nothing");
    for t in tickets {
        assert!(t.wait().is_ok());
    }
    assert!(engine.stats().conserves_requests());
}

#[test]
fn submit_wait_blocked_on_space_is_woken_by_drain() {
    let engine = Arc::new(slow_engine(1, Duration::from_millis(200)));
    let _in_flight = engine.submit(small());
    std::thread::sleep(Duration::from_millis(40)); // worker now sleeping
    let _queued = engine.submit(small()); // fills the depth-1 queue
    let (tx, rx) = mpsc::channel();
    let submitter = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            // Blocks on the space condvar: the queue is full and the
            // worker sleeps another ~160ms, but drain must wake us
            // well before space would have appeared.
            let result = engine.submit_wait(small(), Duration::from_secs(30));
            tx.send(result.map(|_| ())).unwrap();
        })
    };
    std::thread::sleep(Duration::from_millis(20)); // let it block
    let report = engine.drain(Instant::now() + Duration::from_secs(10));
    let woken = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("drain must wake the blocked submitter");
    assert_eq!(woken, Err(SubmitError::ShuttingDown));
    submitter.join().unwrap();
    assert!(!report.timed_out, "two queued jobs drain well inside 10s");
}

#[test]
fn shutdown_condvar_race_never_hangs() {
    // Satellite: a worker parked in `Condvar::wait` when shutdown flips
    // must wake and exit. ~100 iterations of create → (sometimes
    // submit) → drop, each bounded by a watchdog, to catch lost-wakeup
    // interleavings. The submit in odd iterations lands while workers
    // may be anywhere between parking and re-checking the predicate.
    for i in 0..100 {
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            let engine = Engine::new(EngineConfig {
                workers: 3,
                batch_size: 2,
                ..EngineConfig::default()
            });
            let ticket =
                (i % 2 == 1).then(|| engine.submit(Bpc::bit_reversal(3).to_permutation()));
            drop(engine);
            if let Some(t) = ticket {
                assert!(t.wait().is_ok(), "drop drains queued work");
            }
            tx.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(20))
            .unwrap_or_else(|_| panic!("iteration {i}: shutdown hung (lost wakeup)"));
        handle.join().unwrap();
    }
}
