//! Property tests for the tiered planner and the plan cache.
//!
//! The two satellite properties:
//! 1. the planner's chosen tier always agrees with the class
//!    predicates (`is_in_f` / `is_omega`);
//! 2. a cached plan replays to the identical input→output mapping as a
//!    fresh set-up.

use benes_core::{class_f, waksman, Benes};
use benes_engine::cache::PlanCache;
use benes_engine::plan::{execute, plan, Fallback, Plan, Tier};
use benes_perm::omega::is_omega;
use benes_perm::Permutation;
use proptest::prelude::*;
use std::sync::Arc;

/// A random permutation of `0..len` via index shuffling.
fn arb_permutation(len: usize) -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(move |(), mut rng| {
        let mut dest: Vec<u32> = (0..len as u32).collect();
        for i in (1..len).rev() {
            let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
            dest.swap(i, j);
        }
        Permutation::from_destinations(dest).expect("shuffle of identity is a bijection")
    })
}

proptest! {
    /// Satellite property 1: the tier fired by the planner matches the
    /// class predicates exactly.
    #[test]
    fn planner_tier_agrees_with_class_predicates(d in arb_permutation(16)) {
        let tier = plan(&d, Fallback::Waksman).unwrap().tier();
        match tier {
            Tier::SelfRoute => prop_assert!(class_f::is_in_f(&d)),
            Tier::OmegaBit => {
                prop_assert!(is_omega(&d));
                prop_assert!(!class_f::is_in_f(&d));
            }
            Tier::Waksman => {
                prop_assert!(!class_f::is_in_f(&d));
                prop_assert!(!is_omega(&d));
            }
            Tier::Factored | Tier::Cached => {
                prop_assert!(false, "fresh Waksman-fallback planning fired {tier}")
            }
        }
    }

    /// Every permutation routed via the self-route tier satisfies
    /// `is_in_f` — and actually self-routes on the network.
    #[test]
    fn self_route_tier_members_self_route(d in arb_permutation(8)) {
        let p = plan(&d, Fallback::Waksman).unwrap();
        if p.tier() == Tier::SelfRoute {
            prop_assert!(class_f::is_in_f(&d));
            prop_assert!(Benes::new(3).self_route(&d).is_success());
        }
    }

    /// Satellite property 2: replaying a plan through the cache yields
    /// the identical input→output mapping as a fresh Waksman set-up.
    #[test]
    fn cached_plan_replays_identically(d in arb_permutation(16)) {
        let net = Benes::new(4);
        let cache = PlanCache::new(16, 2);
        let fresh = plan(&d, Fallback::Waksman).unwrap();
        cache.insert(&d, Arc::new(fresh));
        let replayed = cache.get(&d).expect("plan was just inserted");

        // The cached plan must realize d...
        prop_assert!(execute(&net, &d, &replayed));
        // ...and when it carries settings, those settings must realize
        // the very same mapping as a from-scratch set-up.
        if let Plan::Settings(settings) = replayed.as_ref() {
            let fresh_settings = waksman::setup(&d).unwrap();
            let a = net.realized_permutation(settings).unwrap();
            let b = net.realized_permutation(&fresh_settings).unwrap();
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&a, &d);
        }
    }

    /// Both fallbacks realize arbitrary permutations correctly.
    #[test]
    fn both_fallbacks_execute_correctly(d in arb_permutation(16)) {
        let net = Benes::new(4);
        for fb in [Fallback::Waksman, Fallback::Factored] {
            let p = plan(&d, fb).unwrap();
            prop_assert!(execute(&net, &d, &p), "{fb:?} plan failed for {d}");
        }
    }

    /// The factored plan's halves land in the classes the §II
    /// factorization theorem promises, so both passes are zero-set-up.
    #[test]
    fn factored_halves_are_in_the_cheap_classes(d in arb_permutation(16)) {
        if let Plan::TwoPass { first, second } = plan(&d, Fallback::Factored).unwrap() {
            prop_assert!(benes_perm::omega::is_inverse_omega(&first));
            prop_assert!(class_f::is_in_f(&first), "Theorem 3: Ω⁻¹ ⊆ F");
            prop_assert!(is_omega(&second));
            prop_assert_eq!(first.then(&second), d);
        }
    }

    /// Fingerprint-keyed caching never returns a plan for a different
    /// permutation, even under heavy key churn.
    #[test]
    fn cache_never_confuses_permutations(perms in proptest::collection::vec(arb_permutation(16), 8)) {
        let cache = PlanCache::new(4, 1); // tiny: force evictions
        for d in &perms {
            cache.insert(d, Arc::new(plan(d, Fallback::Waksman).unwrap()));
        }
        let net = Benes::new(4);
        for d in &perms {
            if let Some(p) = cache.get(d) {
                prop_assert!(execute(&net, d, &p), "cache returned a wrong plan for {d}");
            }
        }
    }
}
