//! Multi-engine isolation smoke test.
//!
//! Audit note: the engine crate keeps **no** process-global state on
//! its serving path. Every `Engine::new(config)` owns its submission
//! queue, plan cache, fault registry, breakers, chaos injector, flight
//! recorder, and stats recorder behind one `Arc<Shared>`; the only
//! statics in the crate are the `#[cfg(test)]` worker test hooks
//! (`worker::test_hooks`), which are compiled out of this integration
//! build. This test is the executable form of that audit: eight
//! engines constructed concurrently from distinct configs must serve
//! and drain without sharing counters, caches, or faults.

use std::thread;
use std::time::{Duration, Instant};

use benes_engine::workload::mixed_workload;
use benes_engine::{Engine, EngineConfig, FaultKind};

#[test]
fn eight_engines_with_config_run_concurrently_and_drain_clean() {
    const ENGINES: usize = 8;
    const REQUESTS: usize = 60;

    let handles: Vec<_> = (0..ENGINES)
        .map(|i| {
            thread::spawn(move || {
                let engine = Engine::new(EngineConfig {
                    workers: 1 + i % 3,
                    batch_size: 1 + i % 4,
                    cache_capacity: 8 + i,
                    ..EngineConfig::default()
                });
                // Give each engine a distinct fault world: odd engines
                // serve around an injected stuck switch, even ones run
                // clean. Isolation means the clean engines never see a
                // fault counter move.
                if i % 2 == 1 {
                    engine
                        .inject_fault(4, 0, 0, FaultKind::StuckStraight)
                        .expect("B(4) has switch (0, 0)");
                }
                let outcomes =
                    engine.run_batch(mixed_workload(4, REQUESTS, 100 + i as u64));
                assert!(
                    outcomes.iter().all(|o| o.result.is_ok()),
                    "engine {i} dropped a request"
                );
                let report = engine.drain(Instant::now() + Duration::from_secs(10));
                assert_eq!(report.canceled, 0, "engine {i} stranded work");
                (i, engine.stats())
            })
        })
        .collect();

    for handle in handles {
        let (i, stats) = handle.join().expect("engine thread panicked");
        assert_eq!(stats.submitted, REQUESTS as u64, "engine {i}");
        assert_eq!(stats.completed, REQUESTS as u64, "engine {i}");
        assert!(stats.conserves_requests(), "engine {i} ledger unbalanced");
        if i % 2 == 1 {
            assert_eq!(stats.faults_injected, 1, "engine {i} lost its fault");
        } else {
            assert_eq!(
                stats.faults_injected, 0,
                "engine {i} saw a neighbor's fault — global state leak"
            );
        }
    }
}
