//! **benes-engine** — a batched, cached, multi-threaded
//! permutation-routing engine over the self-routing Benes network.
//!
//! The paper's headline economics: permutations in `F(n)` route
//! themselves in `O(log N)` with **zero** set-up, `Ω(n)` needs only one
//! asserted control wire, and everything else pays an `O(N log N)`
//! external set-up (Waksman) or an `Ω⁻¹ · Ω` factorization. A serving
//! system handling millions of requests must therefore *plan* per
//! request and never pay set-up twice for a repeated permutation. This
//! crate is that serving layer:
//!
//! * [`plan`] — the **tiered planner**: classify each request and pick
//!   the cheapest realization (cached → self-route → omega-bit →
//!   factored/Waksman), plus the executor that carries a plan out and
//!   verifies the realized routing;
//! * [`cache`] — the **plan cache**: a sharded LRU keyed by the stable
//!   64-bit permutation fingerprint, so repeated permutations replay
//!   cached [`benes_core::SwitchSettings`] with zero set-up;
//! * [`engine`] — the **batched worker pool**: `k` `std::thread`
//!   workers drain a submission queue in configurable batches and
//!   return per-request outcomes over `mpsc` channels — with a shared
//!   fault registry ([`Engine::inject_fault`]) and a detect → evict →
//!   re-plan-around-faults → bounded-retry ladder that keeps serving
//!   through stuck switches;
//! * [`stats`] — the **stats layer**: per-tier hit counters, cache
//!   hit/miss, queue-depth high-water mark, log-bucketed latency
//!   histograms (overall, per tier, failed path) with p50/p90/p99/p999
//!   quantiles, the degraded-mode fault/reroute counters, and a
//!   Prometheus/JSON exposition ([`EngineStats::exposition`]);
//! * [`flightrec`] — the **flight recorder**: every route attempt's
//!   decision ladder, phase timings and (for failures) the full
//!   per-stage [`benes_core::trace::RouteTrace`], kept in a bounded
//!   non-blocking ring ([`Engine::flight_records`]);
//! * [`workload`] — deterministic mixed workload generation (Table I
//!   `BPC` + `Ω` members + hard permutations with repeats) for demos,
//!   benchmarks and tests;
//! * [`breaker`] — the **circuit breaker**: per-order admission control
//!   over the fault-reroute ladder (closed → open after K consecutive
//!   fabric failures → half-open probe), with exponential backoff and
//!   deterministic seeded jitter;
//! * [`chaos`] — the **chaos harness**: a seeded injector (worker
//!   delays, forced failures) plus a scripted soak
//!   ([`chaos::run_soak`]) that checks the request-conservation
//!   invariant `completed + failed + shed + canceled == submitted`,
//!   hunts hung waiters, and proves the breaker opens and re-closes
//!   around a fault burst.
//!
//! # Overload protection & lifecycle
//!
//! Every request admitted by [`Engine::submit`] (or its bounded
//! cousins [`Engine::try_submit`] / [`Engine::submit_wait`], or the
//! deadline-carrying [`Engine::submit_with_deadline`]) reaches exactly
//! one terminal state — completed, failed, shed, or canceled — and its
//! [`Ticket`] always resolves: timeouts via [`Ticket::wait_timeout`],
//! polls via [`Ticket::try_result`], shutdown via [`Engine::drain`]
//! (which cancels rather than abandons).
//!
//! # Quick start
//!
//! ```
//! use benes_engine::{Engine, EngineConfig};
//! use benes_engine::workload::mixed_workload;
//!
//! let engine = Engine::new(EngineConfig { workers: 4, ..EngineConfig::default() });
//! let outcomes = engine.run_batch(mixed_workload(4, 200, 1));
//! assert!(outcomes.iter().all(|o| o.is_ok()));
//!
//! let stats = engine.stats();
//! assert_eq!(stats.completed, 200);
//! println!("{}", stats.report());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod engine;
pub mod flightrec;
#[doc(hidden)]
pub mod model_bridge;
pub mod plan;
pub mod queue;
pub mod stats;
mod worker;
pub mod workload;

pub use benes_core::faults::{FaultError, FaultKind, FaultSet};
pub use breaker::{Admission, Breaker, BreakerConfig, BreakerState};
pub use cache::PlanCache;
pub use chaos::{run_soak, ChaosConfig, ChaosEvent, ChaosSchedule, SoakConfig, SoakReport};
pub use engine::{
    DrainReport, Engine, EngineConfig, EngineError, RequestOutcome, SubmitError,
    SubmitOpts, Ticket,
};
pub use flightrec::{LadderStep, PhaseNanos, RouteAttempt};
pub use plan::{Fallback, Plan, PlanError, Tier};
pub use stats::{EngineStats, TenantStats};
